//! # stems — adaptive query processing with State Modules
//!
//! A from-scratch Rust reproduction of *"Using State Modules for Adaptive
//! Query Processing"* (Raman, Deshpande, Hellerstein — ICDE 2003, the
//! Telegraph project).
//!
//! The crate is an umbrella over the workspace:
//!
//! * [`types`] — values, rows, composite tuples, predicates.
//! * [`sim`] — the deterministic discrete-event simulation kernel that
//!   stands in for the paper's threaded runtime and networked sources.
//! * [`storage`] — dictionary stores backing SteMs (list / hash / adaptive /
//!   partitioned / sorted-run).
//! * [`catalog`] — tables, access-method descriptors, SPJ queries, join
//!   graphs, bind-field feasibility.
//! * [`sql`] — a small SQL front end producing query specs.
//! * [`core`] — **the paper's contribution**: SteMs, access & selection
//!   modules, the eddy, routing constraints and routing policies.
//! * [`baseline`] — traditional operators (index join, symmetric hash join,
//!   Grace/hybrid hash, sort-merge) used as comparators.
//! * [`datagen`] — the paper's Table 3 synthetic sources and more.
//!
//! ## Quickstart
//!
//! ```
//! use stems::prelude::*;
//!
//! // Two tiny tables joined through the eddy + SteMs.
//! let mut catalog = Catalog::new();
//! let r = catalog
//!     .add_table(
//!         TableDef::new("r", Schema::of(&[("k", ColumnType::Int), ("a", ColumnType::Int)]))
//!             .with_rows(vec![vec![1.into(), 10.into()], vec![2.into(), 20.into()]]),
//!     )
//!     .unwrap();
//! let s = catalog
//!     .add_table(
//!         TableDef::new("s", Schema::of(&[("x", ColumnType::Int)]))
//!             .with_rows(vec![vec![10.into()], vec![30.into()]]),
//!     )
//!     .unwrap();
//! catalog.add_scan(r, ScanSpec::default()).unwrap();
//! catalog.add_scan(s, ScanSpec::default()).unwrap();
//!
//! let query = parse_query(&catalog, "SELECT * FROM r, s WHERE r.a = s.x").unwrap();
//! let report = EddyExecutor::build(&catalog, &query, ExecConfig::default())
//!     .unwrap()
//!     .run();
//! assert_eq!(report.results.len(), 1); // r.a = 10 matches s.x = 10
//! ```

pub use stems_baseline as baseline;
pub use stems_catalog as catalog;
pub use stems_core as core;
pub use stems_datagen as datagen;
pub use stems_sim as sim;
pub use stems_sql as sql;
pub use stems_storage as storage;
pub use stems_types as types;

/// Commonly used items, for `use stems::prelude::*`.
pub mod prelude {
    pub use stems_catalog::{
        AccessMethodDef, Catalog, IndexSpec, QuerySpec, ScanSpec, SourceId, TableDef,
    };
    pub use stems_core::{EddyExecutor, ExecConfig, Report, RoutingPolicyKind};
    pub use stems_sql::parse_query;
    pub use stems_types::{
        CmpOp, ColRef, Column, ColumnType, Operand, PredId, Predicate, Row, Schema, TableIdx,
        TableSet, Tuple, Value,
    };
}
