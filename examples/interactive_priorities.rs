//! Online reordering under user interest (paper §4.1).
//!
//! The FFF motivation: "as the user sees these partial results, their
//! interests in different parts of the result may change." Here the user
//! cares about recent years first. With a priority predicate, matching
//! tuples jump module queues and their index lookups are served first —
//! interesting results surface immediately, total work unchanged.
//!
//! ```sh
//! cargo run --example interactive_priorities
//! ```

use stems::prelude::*;
use stems::sim::{secs_f, to_secs};

fn setup() -> Result<(Catalog, QuerySpec), Box<dyn std::error::Error>> {
    let n: i64 = 300;
    let mut catalog = Catalog::new();
    let papers = catalog.add_table(
        TableDef::new(
            "papers",
            Schema::of(&[("id", ColumnType::Int), ("year", ColumnType::Int)]),
        )
        .with_rows(
            (0..n)
                .map(|i| vec![i.into(), (1980 + (i * 13) % 45).into()])
                .collect(),
        ),
    )?;
    let citations = catalog.add_table(
        TableDef::new(
            "citations",
            Schema::of(&[("paper_id", ColumnType::Int), ("count", ColumnType::Int)]),
        )
        .with_rows(
            (0..n)
                .map(|i| vec![i.into(), ((i * 7) % 1000).into()])
                .collect(),
        ),
    )?;
    catalog.add_scan(papers, ScanSpec::with_rate(150.0))?;
    // citations only answer keyed lookups, 250 ms each.
    catalog.add_index(citations, IndexSpec::new(vec![0], secs_f(0.25)))?;
    let query = parse_query(
        &catalog,
        "SELECT p.id, p.year, c.count FROM papers p, citations c \
         WHERE p.id = c.paper_id",
    )?;
    Ok((catalog, query))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (catalog, query) = setup()?;
    let interest = Predicate::selection(
        PredId(0),
        ColRef::new(TableIdx(0), 1),
        CmpOp::Ge,
        Value::Int(2015),
    );

    let plain = EddyExecutor::build(&catalog, &query, ExecConfig::default())?.run();
    let boosted = EddyExecutor::build(
        &catalog,
        &query,
        ExecConfig {
            priority_pred: Some(interest.clone()),
            ..ExecConfig::default()
        },
    )?
    .run();
    assert_eq!(plain.results.len(), boosted.results.len());

    // Pair each result with its emission time via the results series.
    let timeline = |r: &Report| -> Vec<(f64, bool)> {
        let series = r.metrics.series("results").expect("series");
        r.results
            .iter()
            .zip(series.points())
            .map(|(tuple, (t, _))| (to_secs(*t), interest.eval(tuple) == Some(true)))
            .collect()
    };
    let kth_interesting = |tl: &[(f64, bool)], k: usize| {
        tl.iter()
            .filter(|(_, hot)| *hot)
            .nth(k - 1)
            .map(|(t, _)| *t)
            .unwrap_or(f64::NAN)
    };

    let tl_plain = timeline(&plain);
    let tl_boost = timeline(&boosted);
    let hot_total = tl_plain.iter().filter(|(_, h)| *h).count();

    println!("-- interactive priorities: user cares about papers from ≥ 2015");
    println!(
        "   {} of {} results are interesting",
        hot_total,
        plain.results.len()
    );
    println!("   time to k-th interesting result (seconds):");
    println!(
        "   {:>6} {:>12} {:>12}",
        "k", "unprioritized", "prioritized"
    );
    for k in [1, hot_total / 4, hot_total / 2, hot_total] {
        let k = k.max(1);
        println!(
            "   {:>6} {:>12.1} {:>12.1}",
            k,
            kth_interesting(&tl_plain, k),
            kth_interesting(&tl_boost, k)
        );
    }
    println!(
        "   completion unchanged: {:.1}s vs {:.1}s",
        to_secs(plain.end_time),
        to_secs(boosted.end_time)
    );
    Ok(())
}
