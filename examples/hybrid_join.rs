//! Watching the eddy hybridize index and hash joins (paper §4.3).
//!
//! The fig-8 setup in miniature: `R ⋈ T` where T has both a scan and an
//! asynchronous index. Early on, index lookups return *fresh* rows and the
//! benefit/cost policy routes bounced R tuples to the index; as the scan
//! fills SteM_T, index responses turn into duplicates, freshness decays,
//! and the same tuples are dropped to let the scan side finish — one join
//! algorithm morphing into another with no operator switch.
//!
//! ```sh
//! cargo run --example hybrid_join
//! ```

use stems::datagen::{Table3, Table3Config};
use stems::prelude::*;
use stems::sim::{secs, to_secs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = Table3Config {
        r_rows: 400,
        t_rows: 400,
        q4_r_scan_tps: 17.0,
        q4_t_scan_tps: 7.0,
        ..Table3Config::default()
    };
    let (catalog, query, _, _) = Table3::q4(&cfg)?;

    let config = ExecConfig {
        policy: RoutingPolicyKind::BenefitCost {
            epsilon: 0.05,
            drop_rate: 0.5,
        },
        ..ExecConfig::default()
    };
    let report = EddyExecutor::build(&catalog, &query, config)?.run();

    println!("-- index/hash hybridization on Q4 (R ⋈ T, scan + index on T)");
    println!("   {}", report.summary());

    let probes = report.metrics.series("am_probe_choices");
    let drops = report.metrics.series("policy_drops");
    let results = report.metrics.series("results").expect("results series");
    println!("\n   window      → index   dropped   results   (routing of bounced R tuples)");
    let mut prev = (0.0, 0.0);
    let horizon_s = to_secs(report.end_time).ceil() as u64;
    let step = (horizon_s / 8).max(1);
    let mut t = step;
    while t <= horizon_s + step {
        let at = secs(t.min(horizon_s));
        let p = probes.map_or(0.0, |s| s.value_at(at));
        let d = drops.map_or(0.0, |s| s.value_at(at));
        let (dp, dd) = (p - prev.0, d - prev.1);
        let share = if dp + dd > 0.0 { dp / (dp + dd) } else { 0.0 };
        println!(
            "   {:>3}s–{:>3}s → {:>5.0}   {:>7.0}   {:>7.0}   index share {:>4.0}%",
            t.saturating_sub(step),
            t.min(horizon_s),
            dp,
            dd,
            results.value_at(at),
            share * 100.0
        );
        prev = (p, d);
        if t >= horizon_s {
            break;
        }
        t += step;
    }
    println!(
        "\n   freshness feedback: {} fresh index rows, {} duplicates absorbed",
        report.counter("am_fresh_builds"),
        report.counter("am_dup_builds")
    );

    let expected = stems::catalog::reference::execute(&catalog, &query).len();
    assert_eq!(report.results.len(), expected);
    println!("   ({expected} rows, verified against the reference executor)");
    Ok(())
}
