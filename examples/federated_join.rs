//! Federated Facts & Figures scenario (paper §1.2): joining volatile web
//! sources with competing access methods.
//!
//! Three "web sources": a local `movies` table, a `reviews` service that
//! is *mirrored* by two scan endpoints (one fast but flaky, one slow but
//! steady), and a `box_office` service reachable only through an
//! asynchronous index keyed by movie id. The eddy races the mirrors,
//! absorbs their duplicates in the shared SteM, and completes index
//! lookups for whichever tuples need them.
//!
//! ```sh
//! cargo run --example federated_join
//! ```

use stems::prelude::*;
use stems::sim::{secs, secs_f, to_secs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_movies: i64 = 120;
    let mut catalog = Catalog::new();

    let movies = catalog.add_table(
        TableDef::new(
            "movies",
            Schema::of(&[("id", ColumnType::Int), ("year", ColumnType::Int)]),
        )
        .with_rows(
            (0..n_movies)
                .map(|i| vec![i.into(), (1970 + (i * 7) % 50).into()])
                .collect(),
        ),
    )?;
    let reviews = catalog.add_table(
        TableDef::new(
            "reviews",
            Schema::of(&[("movie_id", ColumnType::Int), ("stars", ColumnType::Int)]),
        )
        .with_rows(
            (0..n_movies)
                .map(|i| vec![i.into(), (1 + (i * 3) % 5).into()])
                .collect(),
        ),
    )?;
    let box_office = catalog.add_table(
        TableDef::new(
            "box_office",
            Schema::of(&[("movie_id", ColumnType::Int), ("gross", ColumnType::Int)]),
        )
        .with_rows(
            (0..n_movies)
                .map(|i| vec![i.into(), (1_000_000 * (1 + i % 90)).into()])
                .collect(),
        ),
    )?;

    // movies: fast local scan.
    catalog.add_scan(movies, ScanSpec::with_rate(500.0))?;
    // reviews: two mirrors — the fast one disappears between 1s and 20s.
    catalog.add_scan(
        reviews,
        ScanSpec {
            rate_tps: 80.0,
            start_delay_us: 0,
            stall_windows: vec![(secs(1), secs(20))],
            chunk: 1,
        },
    )?;
    catalog.add_scan(reviews, ScanSpec::with_rate(12.0))?;
    // box_office: asynchronous index on movie_id, 300 ms per lookup.
    catalog.add_index(box_office, IndexSpec::new(vec![0], secs_f(0.3)))?;

    let query = parse_query(
        &catalog,
        "SELECT m.id, m.year, r.stars, b.gross \
         FROM movies m, reviews r, box_office b \
         WHERE m.id = r.movie_id AND m.id = b.movie_id AND r.stars >= 4",
    )?;

    let config = ExecConfig {
        policy: RoutingPolicyKind::BenefitCost {
            epsilon: 0.05,
            drop_rate: 1.0,
        },
        ..ExecConfig::default()
    };
    let report = EddyExecutor::build(&catalog, &query, config)?.run();

    println!("-- federated join over 3 volatile sources");
    println!("   {}", report.summary());
    println!(
        "   mirrors raced: {} duplicate review rows absorbed by the shared SteM",
        report.counter("duplicates_absorbed")
    );
    println!(
        "   box_office index: {} lookups issued, {} coalesced onto in-flight ones",
        report.counter("index_probes"),
        report.counter("probes_coalesced"),
    );
    let series = report
        .metrics
        .series("results")
        .expect("results series exists");
    for t in [2, 5, 10, 20, 30] {
        println!("   results by {:>3}s: {:>4}", t, series.value_at(secs(t)));
    }
    println!(
        "   last result at {:.1}s despite the fast mirror stalling 1s–20s",
        to_secs(series.end_time().unwrap_or(0))
    );

    let expected = stems::catalog::reference::execute(&catalog, &query).len();
    assert_eq!(report.results.len(), expected);
    println!("   ({expected} rows, verified against the reference executor)");
    Ok(())
}
