//! Quickstart: build a catalog, write SQL, run it through the eddy.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use stems::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the data sources. The catalog holds each table's schema,
    //    contents (served through simulated access methods), and the
    //    access methods a query may use.
    let mut catalog = Catalog::new();
    let users = catalog.add_table(
        TableDef::new(
            "users",
            Schema::of(&[
                ("id", ColumnType::Int),
                ("name", ColumnType::Str),
                ("age", ColumnType::Int),
            ]),
        )
        .with_rows(vec![
            vec![1.into(), "ada".into(), 37.into()],
            vec![2.into(), "grace".into(), 45.into()],
            vec![3.into(), "edsger".into(), 41.into()],
            vec![4.into(), "barbara".into(), 29.into()],
        ]),
    )?;
    let orders = catalog.add_table(
        TableDef::new(
            "orders",
            Schema::of(&[
                ("user_id", ColumnType::Int),
                ("item", ColumnType::Str),
                ("qty", ColumnType::Int),
            ]),
        )
        .with_rows(vec![
            vec![1.into(), "punch cards".into(), 100.into()],
            vec![2.into(), "compiler".into(), 1.into()],
            vec![2.into(), "nanoseconds".into(), 30.into()],
            vec![3.into(), "semaphores".into(), 2.into()],
            vec![9.into(), "unmatched".into(), 1.into()],
        ]),
    )?;
    // Both tables are reachable by scans (1000 tuples/s of virtual time).
    catalog.add_scan(users, ScanSpec::default())?;
    catalog.add_scan(orders, ScanSpec::default())?;

    // 2. Write the query. The SQL front end handles conjunctive
    //    select-project-join — exactly the class the paper's architecture
    //    executes.
    let query = parse_query(
        &catalog,
        "SELECT u.name, o.item, o.qty \
         FROM users u, orders o \
         WHERE u.id = o.user_id AND u.age < 42",
    )?;

    // 3. Run it. No optimizer, no plan: the engine instantiates one SteM
    //    per table, one module per access method and predicate, and the
    //    eddy routes tuples under the paper's correctness constraints.
    let report = EddyExecutor::build(&catalog, &query, ExecConfig::default())?.run();

    println!("-- {}", report.summary());
    for row in report.canonical(&catalog, &query) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("   {}", cells.join(" | "));
    }

    // The reference executor (naive nested loops) agrees:
    let expected = stems::catalog::reference::execute(&catalog, &query).len();
    assert_eq!(report.results.len(), expected);
    println!("   ({expected} rows, verified against the reference executor)");
    Ok(())
}
