//! Sliding-window stream join with SteM eviction (paper §2.3 / §6).
//!
//! "Sliding-window queries and queries over unbounded data streams require
//! tuple eviction, and [CACQ, PSoup] both use SteMs with eviction."
//! Because each base-table row lives in exactly one SteM (no materialized
//! intermediates), eviction is a local decision: cap the SteM at W rows
//! and FIFO-evict.
//!
//! Two sensor streams are joined on a shared reading key. With unbounded
//! SteMs the join is exact; with a window of 64 rows per SteM, matches
//! farther apart than the window are (intentionally) lost and memory stays
//! flat — the streaming trade-off.
//!
//! ```sh
//! cargo run --example continuous_query
//! ```

use stems::core::plan::PlanOptions;
use stems::core::StemOptions;
use stems::prelude::*;
use stems::storage::StoreKind;

fn build(window: Option<usize>) -> Result<(Report, usize), Box<dyn std::error::Error>> {
    let n: i64 = 2000;
    let mut catalog = Catalog::new();
    let left = catalog.add_table(
        TableDef::new(
            "left_stream",
            Schema::of(&[("seq", ColumnType::Int), ("reading", ColumnType::Int)]),
        )
        .with_rows(
            (0..n)
                .map(|i| vec![i.into(), ((i * 37) % 500).into()])
                .collect(),
        ),
    )?;
    let right = catalog.add_table(
        TableDef::new(
            "right_stream",
            Schema::of(&[("seq", ColumnType::Int), ("reading", ColumnType::Int)]),
        )
        .with_rows(
            (0..n)
                .map(|i| vec![i.into(), ((i * 53) % 500).into()])
                .collect(),
        ),
    )?;
    catalog.add_scan(left, ScanSpec::with_rate(200.0))?;
    catalog.add_scan(right, ScanSpec::with_rate(200.0))?;
    let query = parse_query(
        &catalog,
        "SELECT l.seq, r.seq FROM left_stream l, right_stream r \
         WHERE l.reading = r.reading",
    )?;
    let exact = stems::catalog::reference::execute(&catalog, &query).len();

    let stem = StemOptions {
        store: StoreKind::Hash,
        eviction_window: window,
        ..StemOptions::default()
    };
    let config = ExecConfig {
        plan: PlanOptions {
            default_stem: stem,
            ..PlanOptions::default()
        },
        ..ExecConfig::default()
    };
    Ok((EddyExecutor::build(&catalog, &query, config)?.run(), exact))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (unbounded, exact) = build(None)?;
    let (windowed, _) = build(Some(64))?;

    let peak = |r: &Report| {
        r.metrics
            .series("stem_bytes_total")
            .map(|s| s.points().iter().map(|(_, v)| *v).fold(0.0f64, f64::max))
            .unwrap_or(0.0)
    };

    println!("-- continuous query: 2000×2000 stream join on `reading`");
    println!(
        "   unbounded SteMs: {} results (exact = {exact}), peak SteM memory {:.0} bytes",
        unbounded.results.len(),
        peak(&unbounded)
    );
    println!(
        "   64-row windows:  {} results ({}% of exact), peak SteM memory {:.0} bytes",
        windowed.results.len(),
        100 * windowed.results.len() / exact.max(1),
        peak(&windowed)
    );
    assert_eq!(unbounded.results.len(), exact);
    assert!(windowed.results.len() < exact);
    assert!(peak(&windowed) < peak(&unbounded) / 4.0);
    println!(
        "   windows keep memory flat at the cost of far-apart matches — the \
         CACQ/PSoup streaming trade-off (paper §2.3)"
    );
    Ok(())
}
