//! Access-method descriptors.

use stems_types::{Result, Schema, StemsError};

/// Identifier of an access method within the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AmId(pub u32);

/// Performance envelope of a scan access method.
///
/// Scans "only accept a special empty probe tuple we call a seed tuple, and
/// in return, output all tuples in their data source" (paper §2.1.3). In
/// the simulation they deliver rows at `rate_tps` starting after
/// `start_delay_us`, pausing inside stall windows. `chunk` controls the
/// arrival shape: rows accumulate source-side and land `chunk` at a time,
/// so the same average rate can model a smooth local scan (`chunk: 1`) or
/// bursty remote delivery (a page, a network buffer, a message batch).
#[derive(Debug, Clone, PartialEq)]
pub struct ScanSpec {
    /// Delivery rate in tuples per virtual second.
    pub rate_tps: f64,
    /// Delay before the first tuple (connection setup, queueing).
    pub start_delay_us: u64,
    /// `[start, end)` unavailability windows in virtual µs.
    pub stall_windows: Vec<(u64, u64)>,
    /// Rows delivered per emission event. The average rate is unchanged:
    /// a chunk of `n` rows arrives after `n` per-row gaps. `1` is the
    /// paper's row-at-a-time arrival.
    pub chunk: usize,
}

impl Default for ScanSpec {
    fn default() -> Self {
        ScanSpec {
            rate_tps: 1_000.0,
            start_delay_us: 0,
            stall_windows: Vec::new(),
            chunk: 1,
        }
    }
}

impl ScanSpec {
    /// A scan delivering `rate_tps` tuples per virtual second.
    pub fn with_rate(rate_tps: f64) -> ScanSpec {
        ScanSpec {
            rate_tps,
            ..ScanSpec::default()
        }
    }

    /// Deliver rows `chunk` at a time (bursty/remote arrival).
    pub fn with_chunk(mut self, chunk: usize) -> ScanSpec {
        self.chunk = chunk;
        self
    }

    /// Add a stall window (virtual µs).
    pub fn stalled_during(mut self, start: u64, end: u64) -> ScanSpec {
        self.stall_windows.push((start, end));
        self
    }
}

/// Performance envelope of an (asynchronous) index access method.
///
/// The paper's indexes are looked up by binding a set of columns to values
/// ("different sets of bind-fields", §1) and answer asynchronously (§2.1.3,
/// WSQ/DSQ-style). `concurrency` bounds outstanding lookups — the paper's
/// synthetic indexes serialize ("sleeps of identical duration"), i.e.
/// concurrency 1.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSpec {
    /// Columns that must be bound (by position) to perform a lookup.
    pub bind_cols: Vec<usize>,
    /// Latency of one lookup in virtual µs.
    pub latency_us: u64,
    /// Maximum lookups in flight; further probes queue.
    pub concurrency: usize,
    /// `[start, end)` unavailability windows in virtual µs.
    pub stall_windows: Vec<(u64, u64)>,
    /// Reply arrival shape: `0` (the default) delivers a lookup's whole
    /// answer as one burst at `latency_us`; `n > 0` streams it `n` tuples
    /// per wave — the scan `chunk` cadence applied to index replies,
    /// modeling a remote source that pages its answer back.
    pub reply_chunk: usize,
    /// Per-tuple gap of a chunked reply in virtual µs: a wave of `n`
    /// tuples lands `n` gaps after its predecessor. Ignored while
    /// `reply_chunk` is 0.
    pub reply_gap_us: u64,
}

impl IndexSpec {
    /// An index bound on `bind_cols` with the given lookup latency.
    pub fn new(bind_cols: Vec<usize>, latency_us: u64) -> IndexSpec {
        IndexSpec {
            bind_cols,
            latency_us,
            concurrency: 1,
            stall_windows: Vec::new(),
            reply_chunk: 0,
            reply_gap_us: 0,
        }
    }

    pub fn with_concurrency(mut self, c: usize) -> IndexSpec {
        self.concurrency = c.max(1);
        self
    }

    /// Stream each reply `chunk` tuples per wave, `gap_us` virtual µs per
    /// tuple (bursty/remote answer delivery; the first wave still lands
    /// at `latency_us`).
    pub fn with_reply_chunk(mut self, chunk: usize, gap_us: u64) -> IndexSpec {
        self.reply_chunk = chunk.max(1);
        self.reply_gap_us = gap_us.max(1);
        self
    }

    pub fn stalled_during(mut self, start: u64, end: u64) -> IndexSpec {
        self.stall_windows.push((start, end));
        self
    }
}

/// One access method on a source table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessMethodDef {
    Scan(ScanSpec),
    Index(IndexSpec),
}

impl AccessMethodDef {
    pub fn is_scan(&self) -> bool {
        matches!(self, AccessMethodDef::Scan(_))
    }

    pub fn is_index(&self) -> bool {
        matches!(self, AccessMethodDef::Index(_))
    }

    /// Bind columns required to probe this AM (empty for scans — they are
    /// probed with the seed tuple).
    pub fn bind_cols(&self) -> &[usize] {
        match self {
            AccessMethodDef::Scan(_) => &[],
            AccessMethodDef::Index(ix) => &ix.bind_cols,
        }
    }

    /// Validate against the owning table's schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            AccessMethodDef::Scan(s) => {
                if !(s.rate_tps.is_finite() && s.rate_tps > 0.0) {
                    return Err(StemsError::Schema(format!(
                        "scan rate must be positive, got {}",
                        s.rate_tps
                    )));
                }
                if s.chunk == 0 {
                    return Err(StemsError::Schema(
                        "scan chunk must be at least one row per emission".into(),
                    ));
                }
            }
            AccessMethodDef::Index(ix) => {
                if ix.bind_cols.is_empty() {
                    return Err(StemsError::Schema(
                        "index access method needs at least one bind column".into(),
                    ));
                }
                for &c in &ix.bind_cols {
                    if c >= schema.arity() {
                        return Err(StemsError::Schema(format!(
                            "index bind column {c} out of range for arity {}",
                            schema.arity()
                        )));
                    }
                }
                if ix.latency_us == 0 {
                    return Err(StemsError::Schema(
                        "index latency must be non-zero (the simulation needs a service time)"
                            .into(),
                    ));
                }
                if ix.reply_chunk > 0 && ix.reply_gap_us == 0 {
                    return Err(StemsError::Schema(
                        "chunked index replies need a non-zero per-tuple gap".into(),
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::ColumnType;

    fn schema() -> Schema {
        Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)])
    }

    #[test]
    fn scan_defaults_and_builders() {
        let s = ScanSpec::with_rate(50.0).stalled_during(10, 20);
        assert_eq!(s.rate_tps, 50.0);
        assert_eq!(s.stall_windows, vec![(10, 20)]);
        assert!(AccessMethodDef::Scan(s).validate(&schema()).is_ok());
    }

    #[test]
    fn scan_rejects_bad_rate() {
        for r in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let s = AccessMethodDef::Scan(ScanSpec::with_rate(r));
            assert!(s.validate(&schema()).is_err(), "rate {r}");
        }
    }

    #[test]
    fn scan_chunk_builder_and_validation() {
        assert_eq!(ScanSpec::default().chunk, 1);
        let s = ScanSpec::with_rate(50.0).with_chunk(64);
        assert_eq!(s.chunk, 64);
        assert!(AccessMethodDef::Scan(s).validate(&schema()).is_ok());
        let zero = AccessMethodDef::Scan(ScanSpec::default().with_chunk(0));
        assert!(zero.validate(&schema()).is_err());
    }

    #[test]
    fn index_validation() {
        let ok = AccessMethodDef::Index(IndexSpec::new(vec![0], 100));
        assert!(ok.validate(&schema()).is_ok());
        let no_bind = AccessMethodDef::Index(IndexSpec::new(vec![], 100));
        assert!(no_bind.validate(&schema()).is_err());
        let oob = AccessMethodDef::Index(IndexSpec::new(vec![5], 100));
        assert!(oob.validate(&schema()).is_err());
        let zero_lat = AccessMethodDef::Index(IndexSpec::new(vec![0], 0));
        assert!(zero_lat.validate(&schema()).is_err());
    }

    #[test]
    fn concurrency_floor_is_one() {
        let ix = IndexSpec::new(vec![0], 10).with_concurrency(0);
        assert_eq!(ix.concurrency, 1);
    }

    #[test]
    fn reply_chunk_builder_and_validation() {
        // Default: whole-reply burst, no gap — the classic behavior.
        let ix = IndexSpec::new(vec![0], 100);
        assert_eq!((ix.reply_chunk, ix.reply_gap_us), (0, 0));
        let chunked = IndexSpec::new(vec![0], 100).with_reply_chunk(4, 50);
        assert_eq!((chunked.reply_chunk, chunked.reply_gap_us), (4, 50));
        assert!(AccessMethodDef::Index(chunked).validate(&schema()).is_ok());
        // The builder floors both knobs; a hand-built zero gap is rejected.
        let floored = IndexSpec::new(vec![0], 100).with_reply_chunk(0, 0);
        assert_eq!((floored.reply_chunk, floored.reply_gap_us), (1, 1));
        let mut bad = IndexSpec::new(vec![0], 100);
        bad.reply_chunk = 2;
        assert!(AccessMethodDef::Index(bad).validate(&schema()).is_err());
    }

    #[test]
    fn bind_cols_accessor() {
        let scan = AccessMethodDef::Scan(ScanSpec::default());
        assert!(scan.bind_cols().is_empty());
        assert!(scan.is_scan() && !scan.is_index());
        let ix = AccessMethodDef::Index(IndexSpec::new(vec![1], 10));
        assert_eq!(ix.bind_cols(), &[1]);
        assert!(ix.is_index());
    }
}
