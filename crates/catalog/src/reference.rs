//! Oracle executor: exact expected results by brute force.
//!
//! The paper's Theorems 1–2 say constraint-respecting routing produces the
//! query result exactly — no duplicates, no misses. Our test suites verify
//! the engine against this module: a naive nested-loop join over the
//! materialized catalog data. It is deliberately the dumbest correct
//! implementation we can write.

use crate::{Catalog, QuerySpec};
use stems_types::{TableIdx, Tuple, Value};

/// Compute the full result set of `q` by nested loops.
pub fn execute(catalog: &Catalog, q: &QuerySpec) -> Vec<Tuple> {
    let mut acc: Vec<Tuple> = Vec::new();
    let mut first = true;
    for (i, ti) in q.tables.iter().enumerate() {
        let t = TableIdx(i as u8);
        let rows = catalog.table_expect(ti.source).rows();
        let mut next = Vec::new();
        if first {
            for r in rows {
                next.push(Tuple::singleton(t, r.clone()));
            }
            first = false;
        } else {
            for partial in &acc {
                for r in rows {
                    next.push(partial.concat(&Tuple::singleton(t, r.clone())));
                }
            }
        }
        // Prune with every predicate evaluable on the new span — keeps the
        // intermediate size manageable for tests.
        acc = next
            .into_iter()
            .filter(|tpl| q.predicates.iter().all(|p| p.eval(tpl).unwrap_or(true)))
            .collect();
    }
    acc
}

/// Project a result tuple per the query's SELECT list (`None` ⇒ all columns
/// of all instances, in instance order).
pub fn project(catalog: &Catalog, q: &QuerySpec, tuple: &Tuple) -> Vec<Value> {
    match &q.projection {
        Some(cols) => cols
            .iter()
            .map(|c| tuple.value(c.table, c.col).cloned().unwrap_or(Value::Null))
            .collect(),
        None => {
            let mut out = Vec::new();
            for (i, ti) in q.tables.iter().enumerate() {
                let t = TableIdx(i as u8);
                let arity = catalog.table_expect(ti.source).schema.arity();
                for col in 0..arity {
                    out.push(tuple.value(t, col).cloned().unwrap_or(Value::Null));
                }
            }
            out
        }
    }
}

/// Canonical, order-insensitive form of a result multiset: each tuple
/// flattened to its projected values, the whole list sorted. Two executors
/// agree iff their canonical forms are equal.
pub fn canonical(catalog: &Catalog, q: &QuerySpec, tuples: &[Tuple]) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = tuples.iter().map(|t| project(catalog, q, t)).collect();
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScanSpec, TableDef, TableInstance};
    use stems_types::{CmpOp, ColRef, ColumnType, PredId, Predicate, Schema};

    fn setup() -> (Catalog, QuerySpec) {
        let mut c = Catalog::new();
        let r = c
            .add_table(
                TableDef::new(
                    "R",
                    Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
                )
                .with_rows(vec![
                    vec![1.into(), 10.into()],
                    vec![2.into(), 20.into()],
                    vec![3.into(), 10.into()],
                ]),
            )
            .unwrap();
        let s = c
            .add_table(
                TableDef::new("S", Schema::of(&[("x", ColumnType::Int)]))
                    .with_rows(vec![vec![10.into()], vec![30.into()]]),
            )
            .unwrap();
        c.add_scan(r, ScanSpec::default()).unwrap();
        c.add_scan(s, ScanSpec::default()).unwrap();
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "r".into(),
                },
                TableInstance {
                    source: s,
                    alias: "s".into(),
                },
            ],
            vec![Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            )],
            None,
        )
        .unwrap();
        (c, q)
    }

    #[test]
    fn equijoin_results() {
        let (c, q) = setup();
        let res = execute(&c, &q);
        // R rows with a=10 are keys 1 and 3; each joins S.x=10.
        assert_eq!(res.len(), 2);
        let canon = canonical(&c, &q, &res);
        assert_eq!(
            canon,
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(10)],
                vec![Value::Int(3), Value::Int(10), Value::Int(10)],
            ]
        );
    }

    #[test]
    fn selection_prunes() {
        let (c, mut q) = setup();
        q.predicates.push(Predicate::selection(
            PredId(1),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Gt,
            Value::Int(1),
        ));
        let res = execute(&c, &q);
        assert_eq!(res.len(), 1); // only key=3 survives
    }

    #[test]
    fn projection_subset() {
        let (c, mut q) = setup();
        q.projection = Some(vec![ColRef::new(TableIdx(0), 0)]);
        let res = execute(&c, &q);
        let canon = canonical(&c, &q, &res);
        assert_eq!(canon, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    }

    #[test]
    fn cartesian_product_when_no_preds() {
        let (c, mut q) = setup();
        q.predicates.clear();
        let res = execute(&c, &q);
        assert_eq!(res.len(), 3 * 2);
    }

    #[test]
    fn canonical_is_order_insensitive() {
        let (c, q) = setup();
        let mut res = execute(&c, &q);
        let canon1 = canonical(&c, &q, &res);
        res.reverse();
        let canon2 = canonical(&c, &q, &res);
        assert_eq!(canon1, canon2);
    }

    #[test]
    fn cyclic_three_way_join() {
        // Triangle query where all three predicates must hold.
        let mut c = Catalog::new();
        let schema = Schema::of(&[("k", ColumnType::Int)]);
        let ids: Vec<_> = ["A", "B", "C"]
            .iter()
            .map(|n| {
                let id = c
                    .add_table(
                        TableDef::new(n, schema.clone())
                            .with_rows(vec![vec![1.into()], vec![2.into()]]),
                    )
                    .unwrap();
                c.add_scan(id, ScanSpec::default()).unwrap();
                id
            })
            .collect();
        let q = QuerySpec::new(
            &c,
            ids.iter()
                .zip(["a", "b", "cc"])
                .map(|(s, a)| TableInstance {
                    source: *s,
                    alias: a.into(),
                })
                .collect(),
            vec![
                Predicate::join(
                    PredId(0),
                    ColRef::new(TableIdx(0), 0),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(1), 0),
                ),
                Predicate::join(
                    PredId(1),
                    ColRef::new(TableIdx(1), 0),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(2), 0),
                ),
                Predicate::join(
                    PredId(2),
                    ColRef::new(TableIdx(0), 0),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(2), 0),
                ),
            ],
            None,
        )
        .unwrap();
        let res = execute(&c, &q);
        // k must agree across all three: (1,1,1) and (2,2,2).
        assert_eq!(res.len(), 2);
    }
}
