//! Catalog and query model for the stems adaptive query processor.
//!
//! This crate owns everything the engine needs to know *before* execution:
//!
//! * [`TableDef`] / [`Catalog`] — base tables (with their simulated data)
//!   and the access methods each source exports. Following the paper's
//!   federated setting, one table may have **several** access methods
//!   (multiple scans from mirror sources, indexes with different bind
//!   columns) — the eddy races them at run time (§3.2–3.3).
//! * [`ScanSpec`] / [`IndexSpec`] — performance envelopes of an access
//!   method: delivery rate, probe latency, concurrency, stall windows.
//!   These parameterize the simulation the way Table 3 parameterizes the
//!   paper's testbed.
//! * [`QuerySpec`] — a select-project-join query over table *instances*
//!   (self-joins get one instance per FROM occurrence but share a SteM,
//!   paper §2.2).
//! * [`JoinGraph`] — predicate adjacency between instances; cyclicity is
//!   what makes spanning-tree adaptation interesting (§3.4).
//! * [`feasible`] — the bind-field feasibility check of §2.2 step 1 ("we
//!   use the algorithm from Nail!"): can every table be reached given scans
//!   and index binding patterns?
//! * [`mod@reference`] — an oracle executor (nested loops over materialized
//!   data) producing the exact correct result multiset; every correctness
//!   test compares the eddy's output against it.

mod access;
mod cat;
pub mod feasible;
mod graph;
mod query;
pub mod reference;

pub use access::{AccessMethodDef, AmId, IndexSpec, ScanSpec};
pub use cat::{Catalog, SourceId, TableDef};
pub use graph::JoinGraph;
pub use query::{QuerySpec, TableInstance};
