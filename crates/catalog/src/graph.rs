//! The query join graph.

use crate::QuerySpec;
use stems_types::{PredId, TableIdx, TableSet};

/// Undirected multigraph whose vertices are table instances and whose edges
/// are join predicates.
///
/// Cyclicity matters to the paper (§3.4): traditional optimizers (and the
/// original eddies work) fix a *spanning tree* of this graph before
/// execution; SteM routing explores spanning trees dynamically, at the cost
/// of the ProbeCompletion constraint.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    n: usize,
    /// `(endpoints, predicate)` per join predicate.
    edges: Vec<(TableIdx, TableIdx, PredId)>,
}

impl JoinGraph {
    /// Build the graph of a query.
    pub fn of(q: &QuerySpec) -> JoinGraph {
        let edges = q
            .joins()
            .map(|p| {
                let ts: Vec<TableIdx> = p.tables().iter().collect();
                debug_assert_eq!(ts.len(), 2);
                (ts[0], ts[1], p.id)
            })
            .collect();
        JoinGraph {
            n: q.n_tables(),
            edges,
        }
    }

    pub fn n_vertices(&self) -> usize {
        self.n
    }

    pub fn edges(&self) -> &[(TableIdx, TableIdx, PredId)] {
        &self.edges
    }

    /// Tables adjacent to `t` via at least one join predicate.
    pub fn neighbors(&self, t: TableIdx) -> TableSet {
        let mut s = TableSet::EMPTY;
        for (a, b, _) in &self.edges {
            if *a == t {
                s.insert(*b);
            } else if *b == t {
                s.insert(*a);
            }
        }
        s
    }

    /// Tables adjacent to any member of `span`, excluding the span itself.
    pub fn frontier(&self, span: TableSet) -> TableSet {
        let mut s = TableSet::EMPTY;
        for t in span.iter() {
            s = s.union(self.neighbors(t));
        }
        s.minus(span)
    }

    /// Is the graph connected? (Cartesian-product queries are legal but the
    /// engine treats every table as adjacent when there is no predicate
    /// path; disconnected graphs are reported so the planner can insert
    /// cross-join edges explicitly.)
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut reach = TableSet::single(TableIdx(0));
        loop {
            let f = self.frontier(reach);
            if f.is_empty() {
                break;
            }
            reach = reach.union(f);
        }
        reach.len() == self.n
    }

    /// Is the *simple* graph (parallel predicate edges collapsed) cyclic?
    /// Cyclic queries trigger the ProbeCompletion constraint (paper §3.4).
    pub fn is_cyclic(&self) -> bool {
        // Union-find over ≤32 vertices.
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let mut simple: Vec<(usize, usize)> = self
            .edges
            .iter()
            .map(|(a, b, _)| {
                let (a, b) = (a.as_usize(), b.as_usize());
                (a.min(b), a.max(b))
            })
            .collect();
        simple.sort_unstable();
        simple.dedup();
        for (a, b) in simple {
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra == rb {
                return true;
            }
            parent[ra] = rb;
        }
        false
    }

    /// Predicate ids on the edge between `a` and `b` (may be several).
    pub fn preds_between(&self, a: TableIdx, b: TableIdx) -> Vec<PredId> {
        self.edges
            .iter()
            .filter(|(x, y, _)| (*x == a && *y == b) || (*x == b && *y == a))
            .map(|(_, _, p)| *p)
            .collect()
    }

    /// Enumerate all spanning trees as edge-index sets (small queries only —
    /// used by the spanning-tree experiment and tests). Each tree is a set
    /// of indices into `edges()` covering all vertices without cycles.
    pub fn spanning_trees(&self) -> Vec<Vec<usize>> {
        let need = self.n.saturating_sub(1);
        let mut out = Vec::new();
        if self.edges.len() < need {
            return out;
        }
        let idxs: Vec<usize> = (0..self.edges.len()).collect();
        let mut chosen = Vec::with_capacity(need);
        self.enumerate_trees(&idxs, 0, need, &mut chosen, &mut out);
        out
    }

    fn enumerate_trees(
        &self,
        idxs: &[usize],
        start: usize,
        need: usize,
        chosen: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if chosen.len() == need {
            if self.is_tree(chosen) {
                out.push(chosen.clone());
            }
            return;
        }
        for i in start..idxs.len() {
            chosen.push(idxs[i]);
            self.enumerate_trees(idxs, i + 1, need, chosen, out);
            chosen.pop();
        }
    }

    fn is_tree(&self, edge_idxs: &[usize]) -> bool {
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for &i in edge_idxs {
            let (a, b, _) = self.edges[i];
            let ra = find(&mut parent, a.as_usize());
            let rb = find(&mut parent, b.as_usize());
            if ra == rb {
                return false;
            }
            parent[ra] = rb;
        }
        // Connected iff exactly n-1 merges happened over n vertices.
        let root0 = find(&mut parent, 0);
        edge_idxs.len() == self.n - 1 && (0..self.n).all(|v| find(&mut parent, v) == root0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Catalog, ScanSpec, TableDef, TableInstance};
    use stems_types::{CmpOp, ColRef, ColumnType, Predicate, Schema};

    fn chain_query(n: usize, extra_cycle: bool) -> QuerySpec {
        let mut c = Catalog::new();
        let mut tables = Vec::new();
        for i in 0..n {
            let id = c
                .add_table(TableDef::new(
                    &format!("T{i}"),
                    Schema::of(&[("k", ColumnType::Int)]),
                ))
                .unwrap();
            c.add_scan(id, ScanSpec::default()).unwrap();
            tables.push(TableInstance {
                source: id,
                alias: format!("t{i}"),
            });
        }
        let mut preds = Vec::new();
        for i in 0..n - 1 {
            preds.push(Predicate::join(
                stems_types::PredId(preds.len() as u16),
                ColRef::new(TableIdx(i as u8), 0),
                CmpOp::Eq,
                ColRef::new(TableIdx(i as u8 + 1), 0),
            ));
        }
        if extra_cycle {
            preds.push(Predicate::join(
                stems_types::PredId(preds.len() as u16),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Eq,
                ColRef::new(TableIdx(n as u8 - 1), 0),
            ));
        }
        QuerySpec::new(&c, tables, preds, None).unwrap()
    }

    #[test]
    fn chain_is_connected_acyclic() {
        let g = chain_query(4, false).join_graph();
        assert!(g.is_connected());
        assert!(!g.is_cyclic());
        assert_eq!(g.neighbors(TableIdx(1)), {
            let mut s = TableSet::single(TableIdx(0));
            s.insert(TableIdx(2));
            s
        });
    }

    #[test]
    fn triangle_is_cyclic() {
        let g = chain_query(3, true).join_graph();
        assert!(g.is_connected());
        assert!(g.is_cyclic());
    }

    #[test]
    fn frontier_expands_from_span() {
        let g = chain_query(4, false).join_graph();
        let f = g.frontier(TableSet::single(TableIdx(0)));
        assert_eq!(f, TableSet::single(TableIdx(1)));
        let f2 = g.frontier(TableSet::all(2));
        assert_eq!(f2, TableSet::single(TableIdx(2)));
    }

    #[test]
    fn parallel_edges_not_a_cycle() {
        // Two predicates between the same pair of tables — still a tree.
        let mut c = Catalog::new();
        let mut tabs = Vec::new();
        for name in ["A", "B"] {
            let id = c
                .add_table(TableDef::new(
                    name,
                    Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
                ))
                .unwrap();
            c.add_scan(id, ScanSpec::default()).unwrap();
            tabs.push(TableInstance {
                source: id,
                alias: name.to_lowercase(),
            });
        }
        let q = QuerySpec::new(
            &c,
            tabs,
            vec![
                Predicate::join(
                    stems_types::PredId(0),
                    ColRef::new(TableIdx(0), 0),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(1), 0),
                ),
                Predicate::join(
                    stems_types::PredId(1),
                    ColRef::new(TableIdx(0), 1),
                    CmpOp::Lt,
                    ColRef::new(TableIdx(1), 1),
                ),
            ],
            None,
        )
        .unwrap();
        let g = q.join_graph();
        assert!(!g.is_cyclic());
        assert_eq!(g.preds_between(TableIdx(0), TableIdx(1)).len(), 2);
    }

    #[test]
    fn spanning_trees_of_triangle() {
        let g = chain_query(3, true).join_graph();
        // Triangle has exactly 3 spanning trees.
        assert_eq!(g.spanning_trees().len(), 3);
    }

    #[test]
    fn spanning_trees_of_chain_is_unique() {
        let g = chain_query(4, false).join_graph();
        assert_eq!(g.spanning_trees().len(), 1);
    }

    #[test]
    fn disconnected_graph_detected() {
        // Single predicate over 3 tables: t2 is isolated.
        let mut c = Catalog::new();
        let mut tabs = Vec::new();
        for name in ["A", "B", "C"] {
            let id = c
                .add_table(TableDef::new(name, Schema::of(&[("x", ColumnType::Int)])))
                .unwrap();
            c.add_scan(id, ScanSpec::default()).unwrap();
            tabs.push(TableInstance {
                source: id,
                alias: name.to_lowercase(),
            });
        }
        let q = QuerySpec::new(
            &c,
            tabs,
            vec![Predicate::join(
                stems_types::PredId(0),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            )],
            None,
        )
        .unwrap();
        assert!(!q.join_graph().is_connected());
    }
}
