//! Select-project-join query specification.

use crate::{Catalog, JoinGraph, SourceId};
use stems_types::{
    CmpOp, ColRef, Operand, PredId, PredSet, Predicate, Result, StemsError, TableIdx, TableSet,
    MAX_PREDS, MAX_TABLES,
};

/// One FROM-clause occurrence of a source table. Self-joins produce several
/// instances of the same source; the engine still creates just one SteM per
/// *source* (paper §2.2: the SteM "is shared ... among multiple instances
/// of the source in the FROM clause").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableInstance {
    pub source: SourceId,
    pub alias: String,
}

/// A select-project-join query.
///
/// `tables[i]` is the instance with `TableIdx(i)`; `predicates[j]` has
/// `PredId(j)`. Projection is applied above the eddy at the output sink
/// (the paper assumes projection/aggregation happen outside the dataflow,
/// §2.1 footnote 1).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    pub tables: Vec<TableInstance>,
    pub predicates: Vec<Predicate>,
    /// `None` ⇒ `SELECT *` (all columns of all instances in order).
    pub projection: Option<Vec<ColRef>>,
}

impl QuerySpec {
    /// Build and validate a query against a catalog.
    pub fn new(
        catalog: &Catalog,
        tables: Vec<TableInstance>,
        predicates: Vec<Predicate>,
        projection: Option<Vec<ColRef>>,
    ) -> Result<QuerySpec> {
        let q = QuerySpec {
            tables,
            predicates,
            projection,
        };
        q.validate(catalog)?;
        Ok(q)
    }

    /// Number of table instances.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// The span of a complete result tuple.
    pub fn full_span(&self) -> TableSet {
        TableSet::all(self.n_tables())
    }

    /// The set of all predicate ids.
    pub fn all_preds(&self) -> PredSet {
        PredSet::all(self.predicates.len())
    }

    /// Predicate by id.
    pub fn predicate(&self, id: PredId) -> &Predicate {
        &self.predicates[id.as_usize()]
    }

    /// Table instance by index.
    pub fn instance(&self, t: TableIdx) -> &TableInstance {
        &self.tables[t.as_usize()]
    }

    /// Resolve an alias (case-insensitive) to its instance index.
    pub fn instance_by_alias(&self, alias: &str) -> Option<TableIdx> {
        self.tables
            .iter()
            .position(|t| t.alias.eq_ignore_ascii_case(alias))
            .map(|i| TableIdx(i as u8))
    }

    /// All instances of `source` (≥2 for self-joins).
    pub fn instances_of(&self, source: SourceId) -> Vec<TableIdx> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, ti)| ti.source == source)
            .map(|(i, _)| TableIdx(i as u8))
            .collect()
    }

    /// Selection predicates (≤ 1 table), which become Selection Modules.
    pub fn selections(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(|p| p.is_selection())
    }

    /// Join predicates (2 tables), enforced at SteMs and index AMs.
    pub fn joins(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(|p| p.is_join())
    }

    /// The join graph over table instances.
    pub fn join_graph(&self) -> JoinGraph {
        JoinGraph::of(self)
    }

    /// Join predicates between a tuple spanning `span` and table `t`
    /// (these are what a probe into `t`'s SteM can evaluate).
    pub fn preds_linking(&self, span: TableSet, t: TableIdx) -> Vec<PredId> {
        self.predicates
            .iter()
            .filter(|p| {
                p.is_join()
                    && p.tables().contains(t)
                    && p.tables().minus(TableSet::single(t)).is_subset_of(span)
            })
            .map(|p| p.id)
            .collect()
    }

    /// The columns of instance `t` involved in equi-join predicates — the
    /// columns a SteM indexes (paper §2.1.4).
    pub fn join_cols_of(&self, t: TableIdx) -> Vec<usize> {
        let mut cols: Vec<usize> = self
            .predicates
            .iter()
            .filter_map(|p| p.equi_join_cols())
            .flat_map(|(l, r)| [l, r])
            .filter(|c| c.table == t)
            .map(|c| c.col)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn validate(&self, catalog: &Catalog) -> Result<()> {
        if self.tables.is_empty() {
            return Err(StemsError::Schema("query has no tables".into()));
        }
        if self.tables.len() > MAX_TABLES {
            return Err(StemsError::Schema(format!(
                "too many table instances ({} > {MAX_TABLES})",
                self.tables.len()
            )));
        }
        if self.predicates.len() > MAX_PREDS {
            return Err(StemsError::Schema(format!(
                "too many predicates ({} > {MAX_PREDS})",
                self.predicates.len()
            )));
        }
        for (i, ti) in self.tables.iter().enumerate() {
            if catalog.table(ti.source).is_none() {
                return Err(StemsError::UnknownName(format!(
                    "source #{} (instance {i})",
                    ti.source.0
                )));
            }
            for other in &self.tables[..i] {
                if other.alias.eq_ignore_ascii_case(&ti.alias) {
                    return Err(StemsError::Schema(format!(
                        "duplicate alias `{}`",
                        ti.alias
                    )));
                }
            }
        }
        let check_col = |c: &ColRef| -> Result<()> {
            let ti = self.tables.get(c.table.as_usize()).ok_or_else(|| {
                StemsError::Schema(format!("predicate references unknown instance {}", c.table))
            })?;
            let schema = &catalog.table_expect(ti.source).schema;
            if c.col >= schema.arity() {
                return Err(StemsError::Schema(format!(
                    "column {} out of range for `{}` (arity {})",
                    c.col,
                    ti.alias,
                    schema.arity()
                )));
            }
            Ok(())
        };
        for (j, p) in self.predicates.iter().enumerate() {
            if p.id != PredId(j as u16) {
                return Err(StemsError::Schema(format!(
                    "predicate at position {j} has id {}",
                    p.id.0
                )));
            }
            for side in [&p.left, &p.right] {
                if let Operand::Col(c) = side {
                    check_col(c)?;
                }
            }
            if p.tables().is_empty() {
                return Err(StemsError::Schema(format!(
                    "predicate {} references no table",
                    p.id.0
                )));
            }
            // UDF shape: a UDF-style predicate is a single-column
            // selection (the verdict function reads exactly one value);
            // the comparison fields are constructor-made placeholders.
            if let stems_types::ExprKind::Udf(spec) = &p.kind {
                if p.udf_input_col().is_none() || !p.is_selection() {
                    return Err(StemsError::Schema(format!(
                        "predicate {}: a UDF predicate takes a single column input",
                        p.id.0
                    )));
                }
                let stems_types::UdfKind::HashSieve { pass_per_mille } = spec.udf;
                if pass_per_mille > 1000 {
                    return Err(StemsError::Schema(format!(
                        "predicate {}: sieve selectivity {pass_per_mille} exceeds 1000 per mille",
                        p.id.0
                    )));
                }
                continue;
            }
            // IN-list shape: a constant list is only valid as the right
            // side of `col IN (...)`; IN itself also accepts a single
            // scalar constant (degenerate equality).
            if matches!(p.left, Operand::List(_)) {
                return Err(StemsError::Schema(format!(
                    "predicate {}: constant list must be the right operand of IN",
                    p.id.0
                )));
            }
            match (p.op, &p.left, &p.right) {
                // IN takes a column on the left and a list (or a single
                // scalar, the degenerate equality) on the right.
                (CmpOp::In, Operand::Col(_), Operand::List(_) | Operand::Const(_)) => {}
                (CmpOp::In, _, _) => {
                    return Err(StemsError::Schema(format!(
                        "predicate {}: IN requires a column on the left and a constant list on the right",
                        p.id.0
                    )));
                }
                (op, _, Operand::List(_)) => {
                    return Err(StemsError::Schema(format!(
                        "predicate {}: operator {op} cannot take a constant list",
                        p.id.0
                    )));
                }
                _ => {}
            }
        }
        if let Some(proj) = &self.projection {
            for c in proj {
                check_col(c)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScanSpec, TableDef};
    use stems_types::{CmpOp, ColumnType, Schema, Value};

    fn setup() -> (Catalog, SourceId, SourceId) {
        let mut c = Catalog::new();
        let r = c
            .add_table(TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            ))
            .unwrap();
        let s = c
            .add_table(TableDef::new(
                "S",
                Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
            ))
            .unwrap();
        c.add_scan(r, ScanSpec::default()).unwrap();
        c.add_scan(s, ScanSpec::default()).unwrap();
        (c, r, s)
    }

    fn rs_query(c: &Catalog, r: SourceId, s: SourceId) -> QuerySpec {
        QuerySpec::new(
            c,
            vec![
                TableInstance {
                    source: r,
                    alias: "R".into(),
                },
                TableInstance {
                    source: s,
                    alias: "S".into(),
                },
            ],
            vec![Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            )],
            None,
        )
        .unwrap()
    }

    #[test]
    fn in_list_shapes_validated() {
        let (c, r, _s) = setup();
        let inst = |src| {
            vec![TableInstance {
                source: src,
                alias: "R".into(),
            }]
        };
        let col = ColRef::new(TableIdx(0), 1);
        // Well-formed: col IN (list), col IN const.
        assert!(QuerySpec::new(
            &c,
            inst(r),
            vec![Predicate::in_list(PredId(0), col, vec![Value::Int(1)])],
            None
        )
        .is_ok());
        assert!(QuerySpec::new(
            &c,
            inst(r),
            vec![Predicate::selection(
                PredId(0),
                col,
                CmpOp::In,
                Value::Int(1)
            )],
            None
        )
        .is_ok());
        // Malformed: list on the left, non-column left, column right,
        // list with a non-IN operator.
        assert!(QuerySpec::new(
            &c,
            inst(r),
            vec![Predicate::new(
                PredId(0),
                Operand::List(vec![Value::Int(1)]),
                CmpOp::In,
                Operand::Col(col),
            )],
            None
        )
        .is_err());
        assert!(QuerySpec::new(
            &c,
            inst(r),
            vec![Predicate::new(
                PredId(0),
                Operand::Const(Value::Int(5)),
                CmpOp::In,
                Operand::Col(col),
            )],
            None
        )
        .is_err());
        assert!(QuerySpec::new(
            &c,
            inst(r),
            vec![Predicate::new(
                PredId(0),
                Operand::Col(col),
                CmpOp::In,
                Operand::Col(ColRef::new(TableIdx(0), 0)),
            )],
            None
        )
        .is_err());
        assert!(QuerySpec::new(
            &c,
            inst(r),
            vec![Predicate::new(
                PredId(0),
                Operand::Col(col),
                CmpOp::Lt,
                Operand::List(vec![Value::Int(1)]),
            )],
            None
        )
        .is_err());
    }

    #[test]
    fn udf_shapes_validated() {
        use stems_types::UdfSpec;
        let (c, r, _s) = setup();
        let inst = |src| {
            vec![TableInstance {
                source: src,
                alias: "R".into(),
            }]
        };
        let col = ColRef::new(TableIdx(0), 1);
        // Well-formed single-column UDF selection.
        let q = QuerySpec::new(
            &c,
            inst(r),
            vec![Predicate::udf(
                PredId(0),
                col,
                UdfSpec::hash_sieve(250, 500),
            )],
            None,
        )
        .unwrap();
        assert_eq!(q.selections().count(), 1);
        // Selectivity out of range.
        assert!(QuerySpec::new(
            &c,
            inst(r),
            vec![Predicate::udf(
                PredId(0),
                col,
                UdfSpec::hash_sieve(1001, 500)
            )],
            None
        )
        .is_err());
        // Column out of range still caught for UDF predicates.
        assert!(QuerySpec::new(
            &c,
            inst(r),
            vec![Predicate::udf(
                PredId(0),
                ColRef::new(TableIdx(0), 9),
                UdfSpec::hash_sieve(250, 500)
            )],
            None
        )
        .is_err());
        // A hand-built UDF predicate over a non-column input is rejected.
        let mut bad = Predicate::selection(PredId(0), col, CmpOp::Eq, Value::Int(1));
        bad.left = Operand::Const(Value::Int(1));
        bad.kind = stems_types::ExprKind::Udf(UdfSpec::hash_sieve(250, 500));
        assert!(QuerySpec::new(&c, inst(r), vec![bad], None).is_err());
    }

    #[test]
    fn basic_accessors() {
        let (c, r, s) = setup();
        let q = rs_query(&c, r, s);
        assert_eq!(q.n_tables(), 2);
        assert_eq!(q.full_span(), TableSet::all(2));
        assert_eq!(q.all_preds().len(), 1);
        assert_eq!(q.instance_by_alias("s"), Some(TableIdx(1)));
        assert_eq!(q.instance_by_alias("z"), None);
        assert_eq!(q.joins().count(), 1);
        assert_eq!(q.selections().count(), 0);
    }

    #[test]
    fn join_cols_and_linking() {
        let (c, r, s) = setup();
        let q = rs_query(&c, r, s);
        assert_eq!(q.join_cols_of(TableIdx(0)), vec![1]);
        assert_eq!(q.join_cols_of(TableIdx(1)), vec![0]);
        let linking = q.preds_linking(TableSet::single(TableIdx(0)), TableIdx(1));
        assert_eq!(linking, vec![PredId(0)]);
        // Nothing links an empty span to S.
        assert!(q.preds_linking(TableSet::EMPTY, TableIdx(1)).is_empty());
    }

    #[test]
    fn self_join_instances_share_source() {
        let (c, r, _) = setup();
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "r1".into(),
                },
                TableInstance {
                    source: r,
                    alias: "r2".into(),
                },
            ],
            vec![Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 1),
            )],
            None,
        )
        .unwrap();
        assert_eq!(q.instances_of(r), vec![TableIdx(0), TableIdx(1)]);
    }

    #[test]
    fn validation_rejects_bad_queries() {
        let (c, r, s) = setup();
        // duplicate alias
        assert!(QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "t".into()
                },
                TableInstance {
                    source: s,
                    alias: "T".into()
                },
            ],
            vec![],
            None,
        )
        .is_err());
        // column out of range
        assert!(QuerySpec::new(
            &c,
            vec![TableInstance {
                source: r,
                alias: "r".into()
            }],
            vec![Predicate::selection(
                PredId(0),
                ColRef::new(TableIdx(0), 9),
                CmpOp::Eq,
                Value::Int(1),
            )],
            None,
        )
        .is_err());
        // predicate id mismatch
        assert!(QuerySpec::new(
            &c,
            vec![TableInstance {
                source: r,
                alias: "r".into()
            }],
            vec![Predicate::selection(
                PredId(3),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Eq,
                Value::Int(1),
            )],
            None,
        )
        .is_err());
        // unknown instance in predicate
        assert!(QuerySpec::new(
            &c,
            vec![TableInstance {
                source: r,
                alias: "r".into()
            }],
            vec![Predicate::selection(
                PredId(0),
                ColRef::new(TableIdx(4), 0),
                CmpOp::Eq,
                Value::Int(1),
            )],
            None,
        )
        .is_err());
        // empty FROM
        assert!(QuerySpec::new(&c, vec![], vec![], None).is_err());
    }
}
