//! Bind-field feasibility: can every table in the query be accessed?
//!
//! Paper §2.2, step 1: "Check that the query is valid, i.e., it can be
//! executed given the bind-field constraints on the data sources (we use
//! the algorithm from Nail!)." A source with only index access methods can
//! be read only by *probing* — so some other table must be able to supply
//! values for every bind column, transitively. This module runs the
//! standard binding-pattern fixpoint:
//!
//! * an instance is accessible if its source has a scan AM, or
//! * it has an index AM each of whose bind columns is *boundable*: covered
//!   by an equality selection against a constant, or by an equi-join
//!   predicate with an already-accessible instance.
//!
//! The query is feasible iff the fixpoint reaches every instance.

use crate::{Catalog, QuerySpec};
use stems_types::{CmpOp, Operand, Result, StemsError, TableIdx, TableSet};

/// The result of the feasibility analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feasibility {
    /// Instances reachable at fixpoint.
    pub accessible: TableSet,
    /// One possible access order (instances in the order they became
    /// accessible — a witness, not a plan; the eddy orders dynamically).
    pub witness_order: Vec<TableIdx>,
}

/// Is bind column `col` of instance `t` boundable given `accessible`?
fn col_boundable(q: &QuerySpec, t: TableIdx, col: usize, accessible: TableSet) -> bool {
    q.predicates.iter().any(|p| {
        // An IN-list binds its column: a single member (or scalar IN) is
        // a degenerate equality, and a multi-member list fans the index
        // probe out across its members (one lookup per member, answered
        // through the multi-key flat path). The runtime binding side
        // (`probe_bindings` / `bind_value_sets` in stems-core) applies
        // the same rules, so feasibility and probe-time bindability
        // agree. At least one member must be equality-indexable
        // (non-NULL/EOT) — the others can never match a row and supply
        // no lookup key.
        if p.op == CmpOp::In {
            return match (&p.left, &p.right) {
                (Operand::Col(c), Operand::List(items)) => {
                    c.table == t && c.col == col && items.iter().any(|v| v.equality_key().is_some())
                }
                (Operand::Col(c), Operand::Const(_)) => c.table == t && c.col == col,
                _ => false,
            };
        }
        if p.op != CmpOp::Eq {
            return false;
        }
        match p.oriented_for(t) {
            Some((c, CmpOp::Eq, other)) if c.col == col => match other {
                // Constant selections bind the column directly.
                Operand::Const(_) => true,
                // Join predicates bind it from an accessible instance.
                Operand::Col(o) => accessible.contains(o.table),
                // Unreachable for Eq predicates; lists never bind here.
                Operand::List(_) => false,
            },
            _ => false,
        }
    })
}

/// Run the fixpoint and return the accessible set.
pub fn analyze(catalog: &Catalog, q: &QuerySpec) -> Feasibility {
    let n = q.n_tables();
    let mut accessible = TableSet::EMPTY;
    let mut order = Vec::new();
    loop {
        let mut changed = false;
        for i in 0..n {
            let t = TableIdx(i as u8);
            if accessible.contains(t) {
                continue;
            }
            let source = q.instance(t).source;
            let reachable = catalog.has_scan(source)
                || catalog.ams_of(source).iter().any(|(_, am)| {
                    am.is_index()
                        && am
                            .bind_cols()
                            .iter()
                            .all(|&c| col_boundable(q, t, c, accessible))
                });
            if reachable {
                accessible.insert(t);
                order.push(t);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Feasibility {
        accessible,
        witness_order: order,
    }
}

/// Check feasibility, returning `Err(Infeasible)` naming a stuck instance.
pub fn check(catalog: &Catalog, q: &QuerySpec) -> Result<Feasibility> {
    let f = analyze(catalog, q);
    if f.accessible.len() == q.n_tables() {
        Ok(f)
    } else {
        let stuck: Vec<String> = q
            .full_span()
            .minus(f.accessible)
            .iter()
            .map(|t| q.instance(t).alias.clone())
            .collect();
        Err(StemsError::Infeasible(format!(
            "no access path for table instance(s): {}",
            stuck.join(", ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndexSpec, ScanSpec, TableDef, TableInstance};
    use stems_types::{ColRef, ColumnType, PredId, Predicate, Schema, Value};

    struct Setup {
        catalog: Catalog,
        sources: Vec<crate::SourceId>,
    }

    /// Three tables; R gets a scan; S and T get whatever `s_ams`/`t_ams` say.
    fn setup(
        s_scan: bool,
        s_index_on: Option<usize>,
        t_scan: bool,
        t_index_on: Option<usize>,
    ) -> Setup {
        let mut c = Catalog::new();
        let schema = Schema::of(&[("k", ColumnType::Int), ("v", ColumnType::Int)]);
        let r = c.add_table(TableDef::new("R", schema.clone())).unwrap();
        let s = c.add_table(TableDef::new("S", schema.clone())).unwrap();
        let t = c.add_table(TableDef::new("T", schema)).unwrap();
        c.add_scan(r, ScanSpec::default()).unwrap();
        if s_scan {
            c.add_scan(s, ScanSpec::default()).unwrap();
        }
        if let Some(col) = s_index_on {
            c.add_index(s, IndexSpec::new(vec![col], 100)).unwrap();
        }
        if t_scan {
            c.add_scan(t, ScanSpec::default()).unwrap();
        }
        if let Some(col) = t_index_on {
            c.add_index(t, IndexSpec::new(vec![col], 100)).unwrap();
        }
        Setup {
            catalog: c,
            sources: vec![r, s, t],
        }
    }

    /// Chain query R ⋈ S ⋈ T on k columns.
    fn chain(setup: &Setup, preds: Vec<Predicate>) -> QuerySpec {
        QuerySpec::new(
            &setup.catalog,
            setup
                .sources
                .iter()
                .zip(["r", "s", "t"])
                .map(|(src, a)| TableInstance {
                    source: *src,
                    alias: a.into(),
                })
                .collect(),
            preds,
            None,
        )
        .unwrap()
    }

    fn chain_preds() -> Vec<Predicate> {
        vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            ),
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(1), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 0),
            ),
        ]
    }

    #[test]
    fn all_scans_trivially_feasible() {
        let s = setup(true, None, true, None);
        let q = chain(&s, chain_preds());
        let f = check(&s.catalog, &q).unwrap();
        assert_eq!(f.accessible.len(), 3);
    }

    #[test]
    fn index_chain_feasible_transitively() {
        // R scan → binds S.k via index → S binds T.k via index.
        let s = setup(false, Some(0), false, Some(0));
        let q = chain(&s, chain_preds());
        let f = check(&s.catalog, &q).unwrap();
        // R must come before S before T in the witness.
        let pos = |t: u8| {
            f.witness_order
                .iter()
                .position(|x| *x == TableIdx(t))
                .unwrap()
        };
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn unbound_index_is_infeasible() {
        // T's index binds column 1 (v) but the join reaches T on column 0.
        let s = setup(true, None, false, Some(1));
        let q = chain(&s, chain_preds());
        let err = check(&s.catalog, &q).unwrap_err();
        match err {
            StemsError::Infeasible(msg) => assert!(msg.contains('t'), "{msg}"),
            other => panic!("expected Infeasible, got {other}"),
        }
    }

    #[test]
    fn constant_selection_binds_index() {
        // S reachable only via index on k, bound by the constant predicate
        // `s.k = 7` — no join needed.
        let s = setup(false, Some(0), true, None);
        let mut preds = chain_preds();
        preds.push(Predicate::selection(
            PredId(2),
            ColRef::new(TableIdx(1), 0),
            CmpOp::Eq,
            Value::Int(7),
        ));
        let q = chain(&s, preds);
        assert!(check(&s.catalog, &q).is_ok());
    }

    /// Predicates that reach S only through its `v` column join, leaving
    /// the index bind column `k` to be bound (or not) by `in_items`.
    fn in_list_preds(in_items: Vec<Value>) -> Vec<Predicate> {
        vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(1), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 0),
            ),
            Predicate::in_list(PredId(1), ColRef::new(TableIdx(1), 0), in_items),
        ]
    }

    #[test]
    fn single_member_in_list_binds_index() {
        // S reachable only via its index on k, and no join reaches k:
        // `s.k IN (7)` is a degenerate equality and binds it.
        let s = setup(false, Some(0), true, None);
        let q = chain(&s, in_list_preds(vec![Value::Int(7)]));
        assert!(check(&s.catalog, &q).is_ok());
    }

    #[test]
    fn scalar_in_binds_like_single_member_list() {
        // `s.k IN 7` (the degenerate scalar form QuerySpec admits) must
        // plan exactly like `s.k IN (7)`.
        let s = setup(false, Some(0), true, None);
        let preds = vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(1), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 0),
            ),
            Predicate::selection(
                PredId(1),
                ColRef::new(TableIdx(1), 0),
                CmpOp::In,
                Value::Int(7),
            ),
        ];
        let q = chain(&s, preds);
        assert!(check(&s.catalog, &q).is_ok());
    }

    #[test]
    fn multi_member_in_list_binds_by_fanning_out() {
        // `s.k IN (7, 8)` binds S's index on k: the probe fans out to one
        // lookup per member. NULL members contribute no lookup key but do
        // not break the binding either.
        let s = setup(false, Some(0), true, None);
        let q = chain(&s, in_list_preds(vec![Value::Int(7), Value::Int(8)]));
        assert!(check(&s.catalog, &q).is_ok());
        let s = setup(false, Some(0), true, None);
        let q = chain(
            &s,
            in_list_preds(vec![Value::Int(7), Value::Null, Value::Int(8)]),
        );
        assert!(check(&s.catalog, &q).is_ok());
    }

    #[test]
    fn unindexable_only_in_list_does_not_bind() {
        // No member of `s.k IN (NULL)` can ever satisfy equality, so the
        // index probe has no key to supply: infeasible.
        let s = setup(false, Some(0), true, None);
        let q = chain(&s, in_list_preds(vec![Value::Null]));
        assert!(check(&s.catalog, &q).is_err());
        let s = setup(false, Some(0), true, None);
        let q = chain(&s, in_list_preds(vec![Value::Null, Value::Eot]));
        assert!(check(&s.catalog, &q).is_err());
    }

    #[test]
    fn inequality_does_not_bind() {
        // Only a `<` predicate reaches S's bind column: infeasible.
        let s = setup(false, Some(0), true, None);
        let preds = vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Lt,
                ColRef::new(TableIdx(1), 0),
            ),
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(1), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 0),
            ),
        ];
        let q = chain(&s, preds);
        assert!(check(&s.catalog, &q).is_err());
    }

    #[test]
    fn multi_bind_column_index_needs_all_columns() {
        let mut c = Catalog::new();
        let schema = Schema::of(&[("k", ColumnType::Int), ("v", ColumnType::Int)]);
        let r = c.add_table(TableDef::new("R", schema.clone())).unwrap();
        let s = c.add_table(TableDef::new("S", schema)).unwrap();
        c.add_scan(r, ScanSpec::default()).unwrap();
        c.add_index(s, IndexSpec::new(vec![0, 1], 100)).unwrap();
        let make = |preds: Vec<Predicate>| {
            QuerySpec::new(
                &c,
                vec![
                    TableInstance {
                        source: r,
                        alias: "r".into(),
                    },
                    TableInstance {
                        source: s,
                        alias: "s".into(),
                    },
                ],
                preds,
                None,
            )
            .unwrap()
        };
        // Only one of the two bind columns covered: infeasible.
        let q1 = make(vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 0),
        )]);
        assert!(check(&c, &q1).is_err());
        // Both covered: feasible.
        let q2 = make(vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            ),
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 1),
            ),
        ]);
        assert!(check(&c, &q2).is_ok());
    }
}
