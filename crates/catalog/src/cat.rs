//! The catalog: named tables, their simulated contents, and access methods.

use crate::{AccessMethodDef, AmId};
use std::sync::Arc;
use stems_types::{Result, Row, Schema, StemsError, Value};

/// Identifier of a source table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

/// A base table: name, schema, and (for the simulation) its full contents.
///
/// In the paper the contents live behind remote sources; here the rows are
/// materialized so access methods can serve them with simulated latencies
/// and the reference executor can compute exact expected results.
#[derive(Debug, Clone)]
pub struct TableDef {
    pub name: String,
    pub schema: Schema,
    rows: Vec<Arc<Row>>,
}

impl TableDef {
    pub fn new(name: &str, schema: Schema) -> TableDef {
        TableDef {
            name: name.to_string(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Attach row data (validated lazily by [`Catalog::add_table`]).
    pub fn with_rows(mut self, rows: Vec<Vec<Value>>) -> TableDef {
        self.rows = rows.into_iter().map(Row::shared).collect();
        self
    }

    /// Attach pre-shared rows (used by the data generators).
    pub fn with_shared_rows(mut self, rows: Vec<Arc<Row>>) -> TableDef {
        self.rows = rows;
        self
    }

    pub fn rows(&self) -> &[Arc<Row>] {
        &self.rows
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

/// The catalog maps source names to table definitions and access methods.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: Vec<TableDef>,
    /// `(owning source, descriptor)` — AmId indexes this vector.
    ams: Vec<(SourceId, AccessMethodDef)>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table. Validates rows against the schema and name
    /// uniqueness (case-insensitive).
    pub fn add_table(&mut self, def: TableDef) -> Result<SourceId> {
        if self
            .tables
            .iter()
            .any(|t| t.name.eq_ignore_ascii_case(&def.name))
        {
            return Err(StemsError::Schema(format!(
                "table `{}` already exists",
                def.name
            )));
        }
        for r in def.rows() {
            def.schema.check_row(r.values())?;
        }
        let id = SourceId(self.tables.len() as u32);
        self.tables.push(def);
        Ok(id)
    }

    /// Register a scan access method on `source`.
    pub fn add_scan(&mut self, source: SourceId, spec: crate::ScanSpec) -> Result<AmId> {
        self.add_am(source, AccessMethodDef::Scan(spec))
    }

    /// Register an index access method on `source`.
    pub fn add_index(&mut self, source: SourceId, spec: crate::IndexSpec) -> Result<AmId> {
        self.add_am(source, AccessMethodDef::Index(spec))
    }

    fn add_am(&mut self, source: SourceId, def: AccessMethodDef) -> Result<AmId> {
        let table = self
            .table(source)
            .ok_or_else(|| StemsError::UnknownName(format!("source #{}", source.0)))?;
        def.validate(&table.schema)?;
        let id = AmId(self.ams.len() as u32);
        self.ams.push((source, def));
        Ok(id)
    }

    pub fn table(&self, id: SourceId) -> Option<&TableDef> {
        self.tables.get(id.0 as usize)
    }

    /// Table definition by id, panicking variant for internal use after
    /// validation.
    pub fn table_expect(&self, id: SourceId) -> &TableDef {
        self.table(id).expect("validated source id")
    }

    pub fn source_by_name(&self, name: &str) -> Option<SourceId> {
        self.tables
            .iter()
            .position(|t| t.name.eq_ignore_ascii_case(name))
            .map(|i| SourceId(i as u32))
    }

    pub fn am(&self, id: AmId) -> Option<&(SourceId, AccessMethodDef)> {
        self.ams.get(id.0 as usize)
    }

    /// All access methods on a source.
    pub fn ams_of(&self, source: SourceId) -> Vec<(AmId, &AccessMethodDef)> {
        self.ams
            .iter()
            .enumerate()
            .filter(|(_, (s, _))| *s == source)
            .map(|(i, (_, d))| (AmId(i as u32), d))
            .collect()
    }

    /// Does the source expose at least one scan AM?
    pub fn has_scan(&self, source: SourceId) -> bool {
        self.ams_of(source).iter().any(|(_, d)| d.is_scan())
    }

    /// Does the source expose at least one index AM?
    pub fn has_index(&self, source: SourceId) -> bool {
        self.ams_of(source).iter().any(|(_, d)| d.is_index())
    }

    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    pub fn num_ams(&self) -> usize {
        self.ams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndexSpec, ScanSpec};
    use stems_types::ColumnType;

    fn catalog_with_r() -> (Catalog, SourceId) {
        let mut c = Catalog::new();
        let id = c
            .add_table(
                TableDef::new(
                    "R",
                    Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
                )
                .with_rows(vec![vec![1.into(), 10.into()], vec![2.into(), 20.into()]]),
            )
            .unwrap();
        (c, id)
    }

    #[test]
    fn add_and_resolve_table() {
        let (c, id) = catalog_with_r();
        assert_eq!(c.num_tables(), 1);
        assert_eq!(c.source_by_name("r"), Some(id));
        assert_eq!(c.source_by_name("R"), Some(id));
        assert_eq!(c.source_by_name("missing"), None);
        assert_eq!(c.table(id).unwrap().num_rows(), 2);
    }

    #[test]
    fn duplicate_table_name_rejected() {
        let (mut c, _) = catalog_with_r();
        let err = c
            .add_table(TableDef::new("r", Schema::of(&[("z", ColumnType::Int)])))
            .unwrap_err();
        assert!(matches!(err, StemsError::Schema(_)));
    }

    #[test]
    fn row_validation_on_add() {
        let mut c = Catalog::new();
        let err = c
            .add_table(
                TableDef::new("bad", Schema::of(&[("k", ColumnType::Int)]))
                    .with_rows(vec![vec!["oops".into()]]),
            )
            .unwrap_err();
        assert!(matches!(err, StemsError::Schema(_)));
    }

    #[test]
    fn access_method_registry() {
        let (mut c, r) = catalog_with_r();
        assert!(!c.has_scan(r) && !c.has_index(r));
        let scan = c.add_scan(r, ScanSpec::default()).unwrap();
        let idx = c.add_index(r, IndexSpec::new(vec![0], 100)).unwrap();
        assert_ne!(scan, idx);
        assert!(c.has_scan(r) && c.has_index(r));
        assert_eq!(c.ams_of(r).len(), 2);
        assert_eq!(c.num_ams(), 2);
        assert!(c.am(scan).unwrap().1.is_scan());
        assert!(c.am(idx).unwrap().1.is_index());
    }

    #[test]
    fn am_on_unknown_source_rejected() {
        let mut c = Catalog::new();
        let err = c.add_scan(SourceId(9), ScanSpec::default()).unwrap_err();
        assert!(matches!(err, StemsError::UnknownName(_)));
    }

    #[test]
    fn am_validation_runs() {
        let (mut c, r) = catalog_with_r();
        assert!(c.add_index(r, IndexSpec::new(vec![7], 100)).is_err());
    }
}
