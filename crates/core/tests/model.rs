//! Model-checked protocol tests for the parallel runtime.
//!
//! Compiled only under the `model` feature, where `stems_core::sync`
//! routes through the `stems-check` deterministic model checker — so the
//! types under test here are the *exact shipped protocol types*
//! ([`SleepGate`], [`CompletionLatch`], [`ScratchPool`]), not rewrites,
//! driven through every interleaving within a preemption bound:
//!
//! ```text
//! cargo test -p stems-core --features model --test model
//! ```
//!
//! Two kinds of test:
//!
//! * **Green**: the shipped protocol holds its invariant on *every*
//!   schedule ([`stems_check::Report::assert_ok`] also asserts the
//!   bounded state space was exhausted).
//! * **Seeded mutants**: a copy of the protocol with one realistic bug
//!   (the lost-wakeup and barrier-misorder classes from ISSUE 8) that
//!   the checker must *catch* — proving the green results mean
//!   something.

#![cfg(feature = "model")]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use stems_check::{model, FailureKind};
use stems_core::runtime::{CompletionLatch, SleepGate};
use stems_core::sync::atomic::{AtomicUsize, Ordering};
use stems_core::sync::{lock_ok, wait_ok, Arc, Condvar, Mutex, ScratchPool, WaveBarrier};

// ---------------------------------------------------------------------
// WorkerPool gate sleep/wake
// ---------------------------------------------------------------------

/// The worker_loop/push_job shape: a consumer that parks via the gate
/// when its queue scan comes up empty, and a producer that pushes and
/// wakes. The queue lives *outside* the gate (like the pool's per-worker
/// queue mutexes), which is exactly the shape where a carelessly placed
/// notify loses the wakeup.
#[test]
fn sleep_gate_never_loses_a_wakeup() {
    let report = model(|| {
        let gate = Arc::new(SleepGate::new());
        let queue = Arc::new(Mutex::new(VecDeque::new()));
        let (gate2, queue2) = (Arc::clone(&gate), Arc::clone(&queue));
        let producer = stems_check::thread::spawn(move || {
            lock_ok(&queue2).push_back(7u32);
            gate2.wake_one();
        });
        // Worker: scan, park-if-idle, rescan — must terminate with the
        // item on every schedule.
        let got = loop {
            if let Some(v) = lock_ok(&queue).pop_front() {
                break v;
            }
            gate.sleep_if(|| lock_ok(&queue).is_empty());
        };
        assert_eq!(got, 7);
        producer.join().unwrap();
    });
    report.assert_ok();
    assert!(
        report.executions > 1,
        "the race must have schedules to explore"
    );
}

/// SEEDED MUTANT: identical protocol, but the producer's wake is not
/// performed under the gate — the notify can land in the window between
/// the worker's empty-scan and its park, and the worker sleeps forever.
/// The checker must find that schedule (as a deadlock).
#[test]
fn mutant_gate_notify_outside_gate_is_caught() {
    struct MutantGate {
        gate: Mutex<()>,
        signal: Condvar,
    }
    impl MutantGate {
        // BUG (deliberate): no gate lock around the notify.
        fn wake_one(&self) {
            self.signal.notify_one();
        }
        // Sleep path identical to the real SleepGate.
        fn sleep_if(&self, idle: impl FnOnce() -> bool) {
            let gate = lock_ok(&self.gate);
            if idle() {
                drop(wait_ok(&self.signal, gate));
            }
        }
    }
    let report = model(|| {
        let gate = Arc::new(MutantGate {
            gate: Mutex::new(()),
            signal: Condvar::new(),
        });
        let queue = Arc::new(Mutex::new(VecDeque::new()));
        let (gate2, queue2) = (Arc::clone(&gate), Arc::clone(&queue));
        let producer = stems_check::thread::spawn(move || {
            lock_ok(&queue2).push_back(7u32);
            gate2.wake_one();
        });
        let got = loop {
            if let Some(v) = lock_ok(&queue).pop_front() {
                break v;
            }
            gate.sleep_if(|| lock_ok(&queue).is_empty());
        };
        assert_eq!(got, 7);
        producer.join().unwrap();
    });
    let failure = report.expect_failure();
    assert!(
        matches!(failure.kind, FailureKind::Deadlock(_)),
        "a lost wakeup must surface as a deadlock: {failure}"
    );
}

// ---------------------------------------------------------------------
// ScopeBarrier / CompletionLatch
// ---------------------------------------------------------------------

/// The invariant the runtime.rs scoped-job transmute rests on (see the
/// SAFETY comment at `PoolScope::spawn`): `wait` returns only after
/// every registered task ran to completion — so on every schedule, the
/// waiter must observe both workers' effects once `wait` returns.
#[test]
fn latch_barrier_is_sound_under_every_schedule() {
    let report = model(|| {
        let latch = Arc::new(CompletionLatch::new());
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        // register happens-before the task is visible to any worker —
        // same order as PoolScope::spawn.
        latch.register();
        latch.register();
        let (l1, a1) = (Arc::clone(&latch), Arc::clone(&a));
        let t1 = stems_check::thread::spawn(move || {
            a1.store(1, Ordering::SeqCst);
            l1.complete(None);
        });
        let (l2, b1) = (Arc::clone(&latch), Arc::clone(&b));
        let t2 = stems_check::thread::spawn(move || {
            b1.store(1, Ordering::SeqCst);
            l2.complete(None);
        });
        // Non-helping waiter: pure barrier.
        latch.wait(|| false);
        // Barrier soundness: every task's effects are complete.
        assert_eq!(a.load(Ordering::SeqCst), 1, "task 1 effect lost");
        assert_eq!(b.load(Ordering::SeqCst), 1, "task 2 effect lost");
        assert!(latch.take_panic().is_none());
        t1.join().unwrap();
        t2.join().unwrap();
    });
    report.assert_ok();
}

/// Panic path: a task that completes with a payload must hand it to the
/// waiter on every schedule (the payload store and the decrement share
/// one critical section).
#[test]
fn latch_replays_task_panic_to_the_waiter() {
    let report = model(|| {
        let latch = Arc::new(CompletionLatch::new());
        latch.register();
        let l1 = Arc::clone(&latch);
        let t = stems_check::thread::spawn(move || {
            l1.complete(Some(Box::new("task boom")));
        });
        latch.wait(|| false);
        let payload = latch
            .take_panic()
            .expect("panic payload must survive the barrier");
        assert_eq!(*payload.downcast_ref::<&str>().unwrap(), "task boom");
        t.join().unwrap();
    });
    report.assert_ok();
}

/// SEEDED MUTANT: `complete` without the wake — the classic removed
/// `notify_all`. A waiter that parked before the last completion sleeps
/// forever; the checker must find that schedule.
#[test]
fn mutant_latch_removed_notify_is_caught() {
    struct MutantLatch {
        sync: Mutex<usize>,
        cv: Condvar,
    }
    impl MutantLatch {
        fn register(&self) {
            *lock_ok(&self.sync) += 1;
        }
        // BUG (deliberate): decrements but never notifies.
        fn complete(&self) {
            let mut remaining = lock_ok(&self.sync);
            *remaining -= 1;
        }
        // Wait path identical to the real CompletionLatch.
        fn wait(&self) {
            loop {
                let remaining = lock_ok(&self.sync);
                if *remaining == 0 {
                    return;
                }
                drop(wait_ok(&self.cv, remaining));
            }
        }
    }
    let report = model(|| {
        let latch = Arc::new(MutantLatch {
            sync: Mutex::new(0),
            cv: Condvar::new(),
        });
        latch.register();
        let l1 = Arc::clone(&latch);
        let t = stems_check::thread::spawn(move || l1.complete());
        latch.wait();
        t.join().unwrap();
    });
    let failure = report.expect_failure();
    assert!(
        matches!(failure.kind, FailureKind::Deadlock(_)),
        "a removed notify must surface as a deadlock: {failure}"
    );
}

/// SEEDED MUTANT: the barrier decrement reordered before the task's
/// effect — the worker marks itself complete and *then* writes its
/// output slot. A waiter released by the early decrement reads the
/// unwritten slot; the checker must find that schedule (as the waiter's
/// assertion failure).
#[test]
fn mutant_latch_early_decrement_is_caught() {
    let report = model(|| {
        let latch = Arc::new(CompletionLatch::new());
        let out = Arc::new(AtomicUsize::new(0));
        latch.register();
        let (l1, out1) = (Arc::clone(&latch), Arc::clone(&out));
        let t = stems_check::thread::spawn(move || {
            // BUG (deliberate): completion before the task body's write —
            // the real PoolScope wrapper completes strictly after.
            l1.complete(None);
            out1.store(1, Ordering::SeqCst);
        });
        latch.wait(|| false);
        assert_eq!(
            out.load(Ordering::SeqCst),
            1,
            "barrier released before task effect"
        );
        t.join().unwrap();
    });
    let failure = report.expect_failure();
    assert!(
        matches!(&failure.kind, FailureKind::Panic(msg) if msg.contains("barrier released")),
        "early decrement must surface as the waiter's assertion: {failure}"
    );
}

// ---------------------------------------------------------------------
// Scratch free-list checkout / poison recovery
// ---------------------------------------------------------------------

/// The SteM scratch protocol: checked-out values are owned (no lock held
/// across an envelope), and a prober dying inside the free-list lock
/// poisons it; every later acquire/release must recover by discarding
/// the pooled caches — never deadlock, never propagate the panic —
/// under every interleaving of the panicking prober and a healthy one.
#[test]
fn scratch_pool_checkout_poison_recovery_under_every_schedule() {
    let report = model(|| {
        let pool = Arc::new(ScratchPool::<Vec<u8>>::new(2));
        let p2 = Arc::clone(&pool);
        let dying = stems_check::thread::spawn(move || {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                p2.with_slots(|_| panic!("prober died in the free-list"));
            }));
            assert!(caught.is_err());
        });
        // Healthy prober runs a full envelope concurrently: checkout →
        // (probe) → release. Must succeed before, during, or after the
        // sibling's poisoning.
        let scratch = pool.acquire();
        pool.release(scratch);
        dying.join().unwrap();
        // After the dust settles the pool serves cleanly and the poison
        // mark is gone.
        let _ = pool.acquire();
        assert!(!pool.is_poisoned(), "poison must not outlive recovery");
    });
    report.assert_ok();
}

// ---------------------------------------------------------------------
// WaveBarrier parallel step claims
// ---------------------------------------------------------------------

/// The server's parallel-step protocol ([`WaveBarrier`], the shipped
/// type): several runners drain one claim cursor over a wave of
/// executors, and the coordinator's wait releases only when every
/// claimed item finished. Two invariants on every schedule:
///
/// * **exactly-once** — no item is ever claimed by two runners (this is
///   what makes the per-item `&mut` executor access data-race free);
/// * **barrier soundness** — once `wait` returns, every item's effects
///   are visible to the coordinator.
#[test]
fn wave_barrier_claims_each_item_exactly_once_and_waits_for_all() {
    const ITEMS: usize = 3;
    let report = model(|| {
        let barrier = Arc::new(WaveBarrier::new(ITEMS));
        let slots: Arc<Vec<AtomicUsize>> =
            Arc::new((0..ITEMS).map(|_| AtomicUsize::new(0)).collect());
        let (b2, s2) = (Arc::clone(&barrier), Arc::clone(&slots));
        // One pool runner and the coordinator race over the cursor —
        // the server's `drain` shape, finish strictly after the effect.
        let runner = stems_check::thread::spawn(move || {
            while let Some(i) = b2.claim() {
                let prev = s2[i].fetch_add(1, Ordering::SeqCst);
                assert_eq!(prev, 0, "item {i} claimed twice");
                b2.finish_one();
            }
        });
        while let Some(i) = barrier.claim() {
            let prev = slots[i].fetch_add(1, Ordering::SeqCst);
            assert_eq!(prev, 0, "item {i} claimed twice");
            barrier.finish_one();
        }
        barrier.wait(|| false);
        // Barrier soundness: every item stepped exactly once, and the
        // coordinator observes it.
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(slot.load(Ordering::SeqCst), 1, "item {i} not finished");
        }
        runner.join().unwrap();
    });
    report.assert_ok();
    assert!(
        report.executions > 1,
        "the claim race must have schedules to explore"
    );
}

/// SEEDED MUTANT: the claim cursor advanced with a torn load/store
/// instead of one atomic fetch-add. Two runners can read the same index
/// before either stores the increment — both "claim" the same executor,
/// which in the real server would be two threads holding `&mut` to one
/// `EddyExecutor`. The checker must find that schedule (as the
/// exactly-once assertion's panic).
#[test]
fn mutant_wave_barrier_torn_claim_cursor_is_caught() {
    struct MutantBarrier {
        cursor: AtomicUsize,
        total: usize,
        done: Mutex<usize>,
        cv: Condvar,
    }
    impl MutantBarrier {
        // BUG (deliberate): load-then-store instead of fetch_add.
        fn claim(&self) -> Option<usize> {
            let i = self.cursor.load(Ordering::SeqCst);
            self.cursor.store(i + 1, Ordering::SeqCst);
            (i < self.total).then_some(i)
        }
        // Finish/wait paths identical to the real WaveBarrier.
        fn finish_one(&self) {
            let mut done = lock_ok(&self.done);
            *done += 1;
            if *done >= self.total {
                self.cv.notify_all();
            }
        }
        fn wait(&self) {
            loop {
                let done = lock_ok(&self.done);
                if *done >= self.total {
                    return;
                }
                drop(wait_ok(&self.cv, done));
            }
        }
    }
    const ITEMS: usize = 2;
    let report = model(|| {
        let barrier = Arc::new(MutantBarrier {
            cursor: AtomicUsize::new(0),
            total: ITEMS,
            done: Mutex::new(0),
            cv: Condvar::new(),
        });
        let slots: Arc<Vec<AtomicUsize>> =
            Arc::new((0..ITEMS).map(|_| AtomicUsize::new(0)).collect());
        let (b2, s2) = (Arc::clone(&barrier), Arc::clone(&slots));
        let runner = stems_check::thread::spawn(move || {
            while let Some(i) = b2.claim() {
                let prev = s2[i].fetch_add(1, Ordering::SeqCst);
                assert_eq!(prev, 0, "item {i} claimed twice");
                b2.finish_one();
            }
        });
        while let Some(i) = barrier.claim() {
            let prev = slots[i].fetch_add(1, Ordering::SeqCst);
            assert_eq!(prev, 0, "item {i} claimed twice");
            barrier.finish_one();
        }
        barrier.wait();
        runner.join().unwrap();
    });
    let failure = report.expect_failure();
    assert!(
        matches!(&failure.kind, FailureKind::Panic(msg) if msg.contains("claimed twice")),
        "a torn claim must surface as a duplicate-claim panic: {failure}"
    );
}

// ---------------------------------------------------------------------
// Server registry build-log replay handoff
// ---------------------------------------------------------------------

/// A closed-port of `server.rs`'s `SharedEntry` handoff: a building
/// query appends to the shared build log and releases prefixes in
/// delivery waves; a query folded onto the entry mid-build first replays
/// `log[..released]` (catch-up) and then rides subsequent waves from its
/// cursor. The invariant — every subscriber sees every released row
/// exactly once, in log order — must hold on every interleaving of the
/// builder and a late subscriber.
#[test]
fn registry_replay_handoff_delivers_exactly_once() {
    struct Entry {
        log: Vec<u32>,
        released: usize,
        done: bool,
    }
    let report = model(|| {
        let entry = Arc::new(Mutex::new(Entry {
            log: Vec::new(),
            released: 0,
            done: false,
        }));
        let cv = Arc::new(Condvar::new());
        let (e2, cv2) = (Arc::clone(&entry), Arc::clone(&cv));
        let builder = stems_check::thread::spawn(move || {
            // Wave 1: one row built and released.
            {
                let mut e = lock_ok(&e2);
                e.log.push(10);
                e.released = e.log.len();
                cv2.notify_all();
            }
            // Wave 2: two more rows, released together (the folded
            // delivery pattern of on_deliver_built).
            {
                let mut e = lock_ok(&e2);
                e.log.push(20);
                e.log.push(30);
                e.released = e.log.len();
                cv2.notify_all();
            }
            let mut e = lock_ok(&e2);
            e.done = true;
            cv2.notify_all();
        });
        // Late subscriber: replay the released prefix, then ride waves.
        let mut delivered = Vec::new();
        let mut cursor = {
            let e = lock_ok(&entry);
            delivered.extend_from_slice(&e.log[..e.released]);
            e.released
        };
        loop {
            let mut e = lock_ok(&entry);
            while e.released == cursor && !e.done {
                e = wait_ok(&cv, e);
            }
            delivered.extend_from_slice(&e.log[cursor..e.released]);
            cursor = e.released;
            if e.done && cursor == e.released {
                break;
            }
        }
        // Exactly-once, in order, no duplicate replay of the caught-up
        // prefix — regardless of where the subscription landed.
        assert_eq!(
            delivered,
            vec![10, 20, 30],
            "replay handoff broke exactly-once"
        );
        builder.join().unwrap();
    });
    report.assert_ok();
}
