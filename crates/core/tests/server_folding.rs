//! Folding invariance for the multi-query server: every query's
//! *observable* behaviour — ordered results, metrics, event counts, end
//! time — must be bit-identical whether it runs alone or alongside any
//! number of concurrent queries sharing its SteMs, swept across
//! concurrency levels and worker counts; with folding off the server
//! must be a pure merge of classic solo executors.

use stems_catalog::{reference, Catalog, QuerySpec, ScanSpec, SourceId, TableDef, TableInstance};
use stems_core::{
    EddyExecutor, ExecConfig, QueryServer, QueryStatus, Report, ServerStats, Submission,
};
use stems_types::{CmpOp, ColRef, ColumnType, PredId, Predicate, Schema, TableIdx, UdfSpec, Value};

/// R(key, a=key%10) x60, S(x, y=x%5) x10, T(z, w=z*100) x5 — all with
/// scan AMs at distinct rates so EOTs interleave across sources.
fn family_catalog() -> (Catalog, SourceId, SourceId, SourceId) {
    let mut c = Catalog::new();
    let r = c
        .add_table(
            TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            )
            .with_rows(
                (0..60)
                    .map(|k| vec![Value::Int(k), Value::Int(k % 10)])
                    .collect(),
            ),
        )
        .unwrap();
    let s = c
        .add_table(
            TableDef::new(
                "S",
                Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
            )
            .with_rows(
                (0..10)
                    .map(|x| vec![Value::Int(x), Value::Int(x % 5)])
                    .collect(),
            ),
        )
        .unwrap();
    let t = c
        .add_table(
            TableDef::new(
                "T",
                Schema::of(&[("z", ColumnType::Int), ("w", ColumnType::Int)]),
            )
            .with_rows(
                (0..5)
                    .map(|z| vec![Value::Int(z), Value::Int(z * 100)])
                    .collect(),
            ),
        )
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(2000.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(1000.0)).unwrap();
    c.add_scan(t, ScanSpec::with_rate(500.0)).unwrap();
    (c, r, s, t)
}

fn inst(source: SourceId, alias: &str) -> TableInstance {
    TableInstance {
        source,
        alias: alias.into(),
    }
}

/// A deterministic query family cycling three shapes (R⋈S⋈T, R⋈S, S⋈T)
/// with a selection constant that flips every full cycle, so
/// `query_for(i) == query_for(i % 6)`. R's SteM is shared between the
/// first two shapes, T's between the first and third; S's join columns
/// differ per shape, so its SteMs fold only between same-shape queries.
fn query_for(c: &Catalog, r: SourceId, s: SourceId, t: SourceId, i: usize) -> QuerySpec {
    let cut = Value::Int(if (i / 3).is_multiple_of(2) { 30 } else { 45 });
    let r_s = |id: u16| {
        Predicate::join(
            PredId(id),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 0),
        )
    };
    match i % 3 {
        0 => QuerySpec::new(
            c,
            vec![inst(r, "r"), inst(s, "s"), inst(t, "t")],
            vec![
                r_s(0),
                Predicate::join(
                    PredId(1),
                    ColRef::new(TableIdx(1), 1),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(2), 0),
                ),
                Predicate::selection(PredId(2), ColRef::new(TableIdx(0), 0), CmpOp::Lt, cut),
            ],
            None,
        )
        .unwrap(),
        1 => QuerySpec::new(
            c,
            vec![inst(r, "r"), inst(s, "s")],
            vec![
                r_s(0),
                Predicate::selection(PredId(1), ColRef::new(TableIdx(0), 0), CmpOp::Lt, cut),
            ],
            None,
        )
        .unwrap(),
        _ => QuerySpec::new(
            c,
            vec![inst(s, "s"), inst(t, "t")],
            vec![
                Predicate::join(
                    PredId(0),
                    ColRef::new(TableIdx(0), 1),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(1), 0),
                ),
                Predicate::selection(
                    PredId(1),
                    ColRef::new(TableIdx(0), 0),
                    CmpOp::Lt,
                    Value::Int(if (i / 3).is_multiple_of(2) { 6 } else { 8 }),
                ),
            ],
            None,
        )
        .unwrap(),
    }
}

fn server_config(workers: usize) -> ExecConfig {
    ExecConfig {
        check_constraints: true,
        workers,
        ..ExecConfig::default()
    }
}

fn run_server(
    c: &Catalog,
    queries: &[QuerySpec],
    workers: usize,
    fold: bool,
) -> (Vec<stems_core::ServerReport>, ServerStats) {
    let mut srv = QueryServer::builder(c)
        .config(server_config(workers))
        .fold(fold)
        .build()
        .unwrap();
    for q in queries {
        srv.submit(Submission::new(q.clone())).unwrap();
    }
    let (handles, stats) = srv.serve();
    let reports = handles
        .into_iter()
        .map(|h| {
            assert_eq!(h.status, QueryStatus::Completed);
            h.report.expect("completed query has a report")
        })
        .collect();
    (reports, stats)
}

fn assert_reports_identical(got: &Report, want: &Report, ctx: &str) {
    assert_eq!(got.results, want.results, "{ctx}: ordered results differ");
    assert_eq!(got.end_time, want.end_time, "{ctx}: end_time differs");
    assert_eq!(got.events, want.events, "{ctx}: event count differs");
    assert_eq!(got.metrics, want.metrics, "{ctx}: metrics differ");
    assert!(got.violations.is_empty(), "{ctx}: {:?}", got.violations);
}

fn assert_matches_reference(c: &Catalog, q: &QuerySpec, report: &Report, ctx: &str) {
    let expected = reference::canonical(c, q, &reference::execute(c, q));
    assert_eq!(report.canonical(c, q), expected, "{ctx}: wrong result set");
}

/// The tentpole invariant: under shared-SteM folding, each query's report
/// is bit-identical to the same query admitted alone, for every
/// concurrency level and worker count.
#[test]
fn folding_is_invariant_across_concurrency() {
    let (c, r, s, t) = family_catalog();
    for workers in [1usize, 4] {
        let solo: Vec<Report> = (0..6)
            .map(|i| {
                let q = query_for(&c, r, s, t, i);
                let (mut reports, _) = run_server(&c, std::slice::from_ref(&q), workers, true);
                let report = reports.remove(0).report;
                assert_matches_reference(&c, &q, &report, &format!("solo q{i} w{workers}"));
                report
            })
            .collect();
        for n in [1usize, 4, 16] {
            let queries: Vec<QuerySpec> = (0..n).map(|i| query_for(&c, r, s, t, i)).collect();
            let (reports, _) = run_server(&c, &queries, workers, true);
            assert_eq!(reports.len(), n);
            for (i, sr) in reports.iter().enumerate() {
                assert_eq!(sr.query, i);
                assert_eq!(sr.admitted_at, 0);
                assert_reports_identical(
                    &sr.report,
                    &solo[i % 6],
                    &format!("q{i} of N={n} w{workers}"),
                );
            }
        }
    }
}

/// Admitting more queries must create no additional shared state: the
/// registry folds every compatible instance onto one entry, and rows are
/// built once per entry no matter how many queries subscribe.
#[test]
fn folding_shares_stems_across_queries() {
    let (c, r, s, t) = family_catalog();
    let six: Vec<QuerySpec> = (0..6).map(|i| query_for(&c, r, s, t, i)).collect();
    let twelve: Vec<QuerySpec> = (0..12).map(|i| query_for(&c, r, s, t, i)).collect();
    let (_, stats6) = run_server(&c, &six, 2, true);
    let (_, stats12) = run_server(&c, &twelve, 2, true);
    // Entries: R[a] (shapes 0+1), S[x,y] (shape 0), S[x] (shape 1),
    // S[y] (shape 2), T[z] (shapes 0+2).
    assert_eq!(stats6.shared_stems, 5, "registry entries");
    assert_eq!(stats6.scan_streams, 3, "one stream per source");
    assert_eq!(stats6.shared_builds, 60 + 10 + 10 + 10 + 5);
    assert_eq!(stats6, stats12, "doubling queries must add zero build work");
}

/// With folding off the server is a pure merge: every query's report is
/// identical to a classic solo `EddyExecutor::run`, and nothing shares.
#[test]
fn fold_off_is_a_pure_merge_of_classic_executors() {
    let (c, r, s, t) = family_catalog();
    let queries: Vec<QuerySpec> = (0..4).map(|i| query_for(&c, r, s, t, i)).collect();
    let (reports, stats) = run_server(&c, &queries, 2, false);
    assert_eq!(stats.shared_stems, 0);
    assert_eq!(stats.scan_streams, 0);
    for (i, sr) in reports.iter().enumerate() {
        let classic = EddyExecutor::build(&c, &queries[i], server_config(2))
            .unwrap()
            .run();
        assert_reports_identical(&sr.report, &classic, &format!("fold-off q{i}"));
    }
}

/// Interleaved admissions: one query admitted mid-build of every scan,
/// one as EOTs start landing while earlier queries are still probing, and
/// one long after every stream closed (pure catch-up replay). Each must
/// still produce exactly the reference answer, and the whole schedule
/// must be deterministic run-to-run.
#[test]
fn late_admission_catches_up_and_stays_deterministic() {
    let (c, r, s, t) = family_catalog();
    // Scan spans: R 60 rows @2000tps ≈ 30ms, S 10 @1000 ≈ 10ms, T 5 @500 ≈ 10ms.
    let schedule = [(0u64, 0usize), (5_000, 1), (11_000, 2), (60_000, 3)];
    let run = || {
        let mut srv = QueryServer::builder(&c)
            .config(server_config(2))
            .build()
            .unwrap();
        for &(at, i) in &schedule {
            srv.submit(Submission::new(query_for(&c, r, s, t, i)).at(at))
                .unwrap();
        }
        let (handles, stats) = srv.serve();
        let reports: Vec<_> = handles
            .into_iter()
            .map(|h| h.report.expect("completed query has a report"))
            .collect();
        (reports, stats)
    };
    let (a, stats_a) = run();
    let (b, stats_b) = run();
    assert_eq!(stats_a, stats_b, "stats must be deterministic");
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.admitted_at, schedule[i].0);
        assert_eq!(x.admitted_at, y.admitted_at);
        assert_eq!(x.completed_at, y.completed_at);
        assert_reports_identical(&x.report, &y.report, &format!("rerun q{i}"));
        let q = query_for(&c, r, s, t, schedule[i].1);
        assert_matches_reference(&c, &q, &x.report, &format!("late-admit q{i}"));
        assert!(
            x.completed_at >= x.admitted_at,
            "q{i} completed before admission"
        );
    }
    // The late queries joined existing streams: still only one stream
    // per source and one registry entry per distinct key.
    assert_eq!(stats_a.scan_streams, 3);
    assert_eq!(stats_a.shared_stems, 5);
}

/// The deprecated PR 7 surface (`new` / `admit` / `admit_at` /
/// `run_with_stats`) must remain an exact shim over the builder/handle
/// API: identical reports, identical stats, for simultaneous and
/// staggered admissions alike.
#[test]
#[allow(deprecated)]
fn deprecated_surface_is_equivalent_to_builder_api() {
    let (c, r, s, t) = family_catalog();
    let schedule = [(0u64, 0usize), (0, 1), (5_000, 2), (11_000, 3)];
    let mut old = QueryServer::new(&c, server_config(2), true).unwrap();
    for &(at, i) in &schedule {
        old.admit_at(at, query_for(&c, r, s, t, i)).unwrap();
    }
    let (old_reports, old_stats) = old.run_with_stats();
    let mut new = QueryServer::builder(&c)
        .config(server_config(2))
        .build()
        .unwrap();
    for &(at, i) in &schedule {
        new.submit(Submission::new(query_for(&c, r, s, t, i)).at(at))
            .unwrap();
    }
    let (handles, new_stats) = new.serve();
    assert_eq!(old_stats, new_stats, "shim stats diverged");
    assert_eq!(old_reports.len(), handles.len());
    for (i, (o, h)) in old_reports.iter().zip(&handles).enumerate() {
        assert_eq!(h.id.0, i);
        assert_eq!(h.status, QueryStatus::Completed);
        let n = h.report.as_ref().expect("completed query has a report");
        assert_eq!(o.admitted_at, n.admitted_at, "q{i} admitted_at");
        assert_eq!(o.completed_at, n.completed_at, "q{i} completed_at");
        assert_reports_identical(&o.report, &n.report, &format!("shim q{i}"));
    }
}

/// The 1000-query point: every report still bit-identical to its solo
/// run under parallel stepping. Debug builds skip it (the full sweep
/// belongs to the release CI leg) unless `STEMS_SMOKE_1000` forces it.
#[test]
fn thousand_query_smoke_stays_bit_identical_to_solo() {
    if cfg!(debug_assertions) && std::env::var("STEMS_SMOKE_1000").is_err() {
        return;
    }
    let (c, r, s, t) = family_catalog();
    let workers = 4;
    let solo: Vec<Report> = (0..6)
        .map(|i| {
            let q = query_for(&c, r, s, t, i);
            run_server(&c, std::slice::from_ref(&q), workers, true)
                .0
                .remove(0)
                .report
        })
        .collect();
    let queries: Vec<QuerySpec> = (0..1000).map(|i| query_for(&c, r, s, t, i)).collect();
    let (reports, stats) = run_server(&c, &queries, workers, true);
    assert_eq!(reports.len(), 1000);
    assert_eq!(stats.shared_stems, 5, "1000 queries, still 5 entries");
    assert_eq!(stats.scan_streams, 3);
    for (i, sr) in reports.iter().enumerate() {
        assert_reports_identical(&sr.report, &solo[i % 6], &format!("q{i} of N=1000"));
    }
}

/// R filtered by an expensive hash sieve on `a` (10 distinct keys over
/// 60 rows): the canonical testbed for shared verdict memos.
fn udf_query(c: &Catalog, r: SourceId) -> QuerySpec {
    QuerySpec::new(
        c,
        vec![inst(r, "r")],
        vec![Predicate::udf(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            UdfSpec::hash_sieve(500, 5_000),
        )],
        None,
    )
    .unwrap()
}

/// Memo folding: compatible queries share one verdict cache per predicate
/// identity. A late second query finds every key already cached — it pays
/// zero UDF calls — and `shared_memos` records the subscription. The
/// canonical answer is invariant across fold on/off and worker counts,
/// and the whole schedule is deterministic.
#[test]
fn memo_folding_shares_verdict_caches() {
    let (c, r, _s, _t) = family_catalog();
    let q = udf_query(&c, r);
    let run = |workers: usize, fold: bool| {
        let mut srv = QueryServer::builder(&c)
            .config(server_config(workers))
            .fold(fold)
            .build()
            .unwrap();
        srv.submit(Submission::new(q.clone())).unwrap();
        // Late enough that R's scan (60 rows @2000tps ≈ 30ms) is done:
        // the second query replays the raw table against a warm memo.
        srv.submit(Submission::new(q.clone()).at(60_000)).unwrap();
        let (handles, stats) = srv.serve();
        let reports: Vec<Report> = handles
            .into_iter()
            .map(|h| h.report.expect("completed query has a report"))
            .map(|sr| sr.report)
            .collect();
        (reports, stats)
    };
    let expected = reference::canonical(&c, &q, &reference::execute(&c, &q));
    for workers in [1usize, 4] {
        let (folded, stats) = run(workers, true);
        assert_eq!(
            stats.shared_memos, 1,
            "second query must subscribe to the first query's memo"
        );
        let first = &folded[0];
        let second = &folded[1];
        assert_eq!(
            first.counter("udf_calls"),
            10,
            "first query pays once per distinct key"
        );
        assert_eq!(
            second.counter("udf_calls"),
            0,
            "second query must be served entirely from the shared memo"
        );
        assert!(second.counter("memo_hits") >= 10, "warm memo never hit");
        for (i, rep) in folded.iter().enumerate() {
            assert!(rep.violations.is_empty(), "q{i} w{workers}");
            assert_eq!(
                rep.canonical(&c, &q),
                expected,
                "memo-folded q{i} w{workers}: wrong result set"
            );
        }
        // Unfolded server: private memos, no sharing, same answer.
        let (private, lone_stats) = run(workers, false);
        assert_eq!(lone_stats.shared_memos, 0);
        for (i, rep) in private.iter().enumerate() {
            assert_eq!(rep.counter("udf_calls"), 10, "private memo q{i}");
            assert_eq!(
                rep.canonical(&c, &q),
                expected,
                "fold-off q{i} w{workers}: wrong result set"
            );
        }
        // Determinism: the exact same schedule twice, stats and all.
        let (again, stats_again) = run(workers, true);
        assert_eq!(stats, stats_again, "stats must be deterministic");
        for (x, y) in folded.iter().zip(&again) {
            assert_reports_identical(x, y, &format!("memo rerun w{workers}"));
        }
    }
}

/// Memo folding keys on predicate identity *and* byte budget: a query
/// with a different sieve or a different `memo_bytes` must get its own
/// cell, never a false share.
#[test]
fn memo_folding_respects_predicate_identity_and_budget() {
    let (c, r, _s, _t) = family_catalog();
    let q = udf_query(&c, r);
    let other = QuerySpec::new(
        &c,
        vec![inst(r, "r")],
        vec![Predicate::udf(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            UdfSpec::hash_sieve(250, 5_000),
        )],
        None,
    )
    .unwrap();
    let mut srv = QueryServer::builder(&c)
        .config(server_config(1))
        .build()
        .unwrap();
    srv.submit(Submission::new(q.clone())).unwrap();
    srv.submit(Submission::new(other.clone())).unwrap();
    let (handles, stats) = srv.serve();
    assert_eq!(
        stats.shared_memos, 0,
        "different sieves must not share a verdict cache"
    );
    for (spec, h) in [&q, &other].into_iter().zip(&handles) {
        let rep = &h.report.as_ref().expect("completed").report;
        let expected = reference::canonical(&c, spec, &reference::execute(&c, spec));
        assert_eq!(rep.canonical(&c, spec), expected);
    }
}

/// A self-join claims its shared entry once: the first instance folds,
/// the second stays private (two dictionaries), and a second identical
/// query still folds onto the same single entry.
#[test]
fn self_join_keeps_second_instance_private() {
    let (c, r, _s, _t) = family_catalog();
    let q = QuerySpec::new(
        &c,
        vec![inst(r, "r1"), inst(r, "r2")],
        vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 1),
            ),
            Predicate::selection(
                PredId(1),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Lt,
                Value::Int(5),
            ),
        ],
        None,
    )
    .unwrap();
    let (reports, stats) = run_server(&c, &[q.clone(), q.clone()], 2, true);
    assert_eq!(
        stats.shared_stems, 1,
        "self-join must not share both instances"
    );
    let solo = run_server(&c, std::slice::from_ref(&q), 2, true)
        .0
        .remove(0)
        .report;
    for (i, sr) in reports.iter().enumerate() {
        assert_matches_reference(&c, &q, &sr.report, &format!("self-join q{i}"));
        assert_reports_identical(&sr.report, &solo, &format!("self-join q{i} vs solo"));
    }
}
