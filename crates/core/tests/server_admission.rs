//! Admission control, deadlines and cancellation for the multi-query
//! server: budget boundaries (inclusive), the queue-vs-shed policy flip,
//! eviction under byte pressure, forced progress when a budget can never
//! free, cancellation racing a late-admission replay, the `max_time`
//! reaper (the PR 7 dead knob), and the typed [`ServerError`] surface.

use stems_catalog::{reference, Catalog, QuerySpec, ScanSpec, SourceId, TableDef, TableInstance};
use stems_core::{
    AdmissionPolicy, ExecConfig, QueryServer, QueryStatus, Report, ServerError, Submission,
};
use stems_core::{QueryHandle, QueryId, ServerStats};
use stems_types::{CmpOp, ColRef, ColumnType, PredId, Predicate, Schema, TableIdx, Value};

/// R(key, a=key%10) x60 @2000tps, S(x, y=x%5) x10 @1000, T(z, w=z*100)
/// x5 @500 — the `server_folding.rs` family. A shape-0 query (R⋈S⋈T)
/// builds exactly 60 + 10 + 5 = 75 shared rows across 3 registry
/// entries, and its scans span ≈30ms of virtual time.
fn family_catalog() -> (Catalog, SourceId, SourceId, SourceId) {
    let mut c = Catalog::new();
    let r = c
        .add_table(
            TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            )
            .with_rows(
                (0..60)
                    .map(|k| vec![Value::Int(k), Value::Int(k % 10)])
                    .collect(),
            ),
        )
        .unwrap();
    let s = c
        .add_table(
            TableDef::new(
                "S",
                Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
            )
            .with_rows(
                (0..10)
                    .map(|x| vec![Value::Int(x), Value::Int(x % 5)])
                    .collect(),
            ),
        )
        .unwrap();
    let t = c
        .add_table(
            TableDef::new(
                "T",
                Schema::of(&[("z", ColumnType::Int), ("w", ColumnType::Int)]),
            )
            .with_rows(
                (0..5)
                    .map(|z| vec![Value::Int(z), Value::Int(z * 100)])
                    .collect(),
            ),
        )
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(2000.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(1000.0)).unwrap();
    c.add_scan(t, ScanSpec::with_rate(500.0)).unwrap();
    (c, r, s, t)
}

fn inst(source: SourceId, alias: &str) -> TableInstance {
    TableInstance {
        source,
        alias: alias.into(),
    }
}

/// The shape-0 three-way join: R⋈S on a=x, S⋈T on y=z, R.key < 30.
fn three_way(c: &Catalog, r: SourceId, s: SourceId, t: SourceId) -> QuerySpec {
    QuerySpec::new(
        c,
        vec![inst(r, "r"), inst(s, "s"), inst(t, "t")],
        vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            ),
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(1), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 0),
            ),
            Predicate::selection(
                PredId(2),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Lt,
                Value::Int(30),
            ),
        ],
        None,
    )
    .unwrap()
}

fn config() -> ExecConfig {
    ExecConfig {
        check_constraints: true,
        workers: 2,
        ..ExecConfig::default()
    }
}

/// Virtual instant comfortably after every scan closed and every build
/// wave was delivered (the `server_folding.rs` late-admission margin).
const AFTER_ALL_STREAMS: u64 = 60_000;

fn assert_reports_identical(got: &Report, want: &Report, ctx: &str) {
    assert_eq!(got.results, want.results, "{ctx}: ordered results differ");
    assert_eq!(got.end_time, want.end_time, "{ctx}: end_time differs");
    assert_eq!(got.events, want.events, "{ctx}: event count differs");
    assert_eq!(got.metrics, want.metrics, "{ctx}: metrics differ");
}

fn assert_matches_reference(c: &Catalog, q: &QuerySpec, report: &Report, ctx: &str) {
    let expected = reference::canonical(c, q, &reference::execute(c, q));
    assert_eq!(report.canonical(c, q), expected, "{ctx}: wrong result set");
}

fn solo_report(c: &Catalog, q: &QuerySpec) -> Report {
    let mut srv = QueryServer::builder(c).config(config()).build().unwrap();
    srv.submit(Submission::new(q.clone())).unwrap();
    let (handles, _) = srv.serve();
    handles
        .into_iter()
        .next()
        .unwrap()
        .report
        .expect("solo query completes")
        .report
}

fn serve_two(
    c: &Catalog,
    q: &QuerySpec,
    build: impl FnOnce(stems_core::ServerBuilder<'_>) -> stems_core::ServerBuilder<'_>,
) -> (Vec<QueryHandle>, ServerStats) {
    let mut srv = build(QueryServer::builder(c).config(config()))
        .build()
        .unwrap();
    srv.submit(Submission::new(q.clone())).unwrap();
    srv.submit(Submission::new(q.clone()).at(AFTER_ALL_STREAMS))
        .unwrap();
    srv.serve()
}

/// The budget boundary is inclusive: a late admission that finds usage
/// *exactly at* the build budget still admits without queueing; one
/// build under the budget queues it.
#[test]
fn builds_budget_boundary_is_inclusive() {
    let (c, r, s, t) = family_catalog();
    let q = three_way(&c, r, s, t);
    // Exactly at: the first query built 75 rows; budget 75 admits.
    let (handles, stats) = serve_two(&c, &q, |b| b.shared_builds_budget(75));
    assert_eq!(stats.shared_builds, 75);
    assert_eq!(stats.queued, 0, "usage == budget must not queue");
    for h in &handles {
        assert_eq!(h.status, QueryStatus::Completed);
    }
    assert_matches_reference(
        &c,
        &q,
        &handles[1].report.as_ref().unwrap().report,
        "boundary late admit",
    );
    // One under: budget 74 queues the late query. A cumulative build
    // budget can never free, so once the server idles the head is
    // force-admitted (fresh private entries — more builds) rather than
    // stranded.
    let (handles, stats) = serve_two(&c, &q, |b| b.shared_builds_budget(74));
    assert_eq!(stats.queued, 1, "usage > budget must queue");
    for h in &handles {
        assert_eq!(h.status, QueryStatus::Completed, "forced progress");
    }
    assert_matches_reference(
        &c,
        &q,
        &handles[1].report.as_ref().unwrap().report,
        "queued late admit",
    );
}

/// Flipping the policy to shed turns the same over-budget admission into
/// a terminal [`QueryStatus::Shed`] with no execution and no report.
#[test]
fn shed_policy_rejects_what_queue_defers() {
    let (c, r, s, t) = family_catalog();
    let q = three_way(&c, r, s, t);
    let (handles, stats) = serve_two(&c, &q, |b| {
        b.shared_builds_budget(74).admission(AdmissionPolicy::Shed)
    });
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.queued, 0);
    assert_eq!(handles[0].status, QueryStatus::Completed);
    assert_eq!(handles[1].status, QueryStatus::Shed);
    assert!(handles[1].report.is_none(), "shed queries never run");
    // Shedding the newcomer must not perturb the survivor.
    let solo = solo_report(&c, &q);
    assert_reports_identical(
        &handles[0].report.as_ref().unwrap().report,
        &solo,
        "survivor of a shed",
    );
}

/// Byte pressure: a zero-byte budget admits the first query (usage is
/// observed, and zero, at its admission instant), queues the second, and
/// frees room by evicting the first query's now-idle entries — the
/// registry shrinks instead of the queue stranding.
#[test]
fn byte_budget_queues_then_evicts_idle_entries() {
    let (c, r, s, t) = family_catalog();
    let q = three_way(&c, r, s, t);
    let (handles, stats) = serve_two(&c, &q, |b| b.stem_bytes_budget(0));
    assert_eq!(stats.queued, 1);
    assert_eq!(stats.evicted_stems, 3, "all three idle entries evicted");
    assert_eq!(
        stats.shared_stems, 6,
        "the late query rebuilt the three evicted entries"
    );
    assert!(stats.stem_bytes_peak > 0);
    for h in &handles {
        assert_eq!(h.status, QueryStatus::Completed);
    }
    assert_matches_reference(
        &c,
        &q,
        &handles[1].report.as_ref().unwrap().report,
        "post-eviction admit",
    );
}

/// Cancellation racing a late-admission replay, both orders. A query
/// cancelled at its own admission instant activates (catch-up replay),
/// then retires Cancelled with its partial report; one cancelled before
/// its admission never runs. Either way the cancellation is invisible to
/// the surviving query — bit-identical to its solo run.
#[test]
fn cancellation_races_late_admission_replay() {
    let (c, r, s, t) = family_catalog();
    let q = three_way(&c, r, s, t);
    let mut srv = QueryServer::builder(&c).config(config()).build().unwrap();
    srv.submit(Submission::new(q.clone())).unwrap();
    // Admit and Cancel land on the same instant, FIFO: the replay wins
    // the race, the cancellation reaps it one event later.
    srv.submit(Submission::new(q.clone()).at(5_000).cancel_at(5_000))
        .unwrap();
    // Cancel lands first: the admission finds the query already
    // terminal and is a no-op.
    srv.submit(Submission::new(q.clone()).at(5_000).cancel_at(4_000))
        .unwrap();
    let (handles, stats) = srv.serve();
    assert_eq!(stats.cancelled, 2);
    assert_eq!(handles[1].status, QueryStatus::Cancelled);
    assert!(
        handles[1].report.is_some(),
        "cancelled-while-running keeps its partial report"
    );
    assert_eq!(handles[2].status, QueryStatus::Cancelled);
    assert!(
        handles[2].report.is_none(),
        "cancelled-before-admission never ran"
    );
    let solo = solo_report(&c, &q);
    assert_eq!(handles[0].status, QueryStatus::Completed);
    assert_reports_identical(
        &handles[0].report.as_ref().unwrap().report,
        &solo,
        "survivor of two cancellations",
    );
}

/// The PR 7 dead knob: an executor-level `max_time` admitted through the
/// legacy `admit_with_config` was never enforced by the server loop.
/// Both surfaces must now reap it — same partial report, terminal
/// [`QueryStatus::TimedOut`] — and a relative [`Submission::deadline`]
/// resolves against the admission instant.
#[test]
fn max_time_is_reaped_on_both_surfaces() {
    let (c, r, s, t) = family_catalog();
    let q = three_way(&c, r, s, t);
    let solo = solo_report(&c, &q);
    let capped = ExecConfig {
        max_time: Some(10_000),
        ..config()
    };
    let mut srv = QueryServer::builder(&c).config(config()).build().unwrap();
    srv.submit(Submission::new(q.clone()).config(capped.clone()))
        .unwrap();
    let (handles, stats) = srv.serve();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(handles[0].status, QueryStatus::TimedOut);
    let reaped = handles[0].report.as_ref().expect("partial report");
    assert!(
        reaped.report.end_time < solo.end_time,
        "deadline must cut the run short ({} vs {})",
        reaped.report.end_time,
        solo.end_time
    );
    // Legacy surface, same config: identical reaped report.
    #[allow(deprecated)]
    let legacy = {
        let mut srv = QueryServer::new(&c, config(), true).unwrap();
        srv.admit_with_config(0, q.clone(), capped).unwrap();
        srv.run_with_stats().0.remove(0)
    };
    assert_reports_identical(&legacy.report, &reaped.report, "legacy max_time");
    // Relative deadline: admitted at 5_000 with a 7_000µs lifetime —
    // reaped around virtual 12_000, long before the solo end.
    let mut srv = QueryServer::builder(&c).config(config()).build().unwrap();
    srv.submit(Submission::new(q.clone()).at(5_000).deadline(7_000))
        .unwrap();
    let (handles, stats) = srv.serve();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(handles[0].status, QueryStatus::TimedOut);
    let h = handles[0].report.as_ref().expect("partial report");
    assert_eq!(h.admitted_at, 5_000);
    assert!(h.completed_at >= 5_000 && h.completed_at < solo.end_time);
}

/// Every rejection is a typed [`ServerError`], not a stringly one:
/// zero deadlines (builder and submission), the submission cap, and
/// cancelling an id the server never issued.
#[test]
fn server_errors_are_typed() {
    let (c, r, s, t) = family_catalog();
    let q = three_way(&c, r, s, t);
    let err = QueryServer::builder(&c)
        .config(config())
        .default_deadline(0)
        .build()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, ServerError::InvalidDeadline { deadline: 0 }));
    let mut srv = QueryServer::builder(&c)
        .config(config())
        .max_queries(1)
        .build()
        .unwrap();
    let err = srv
        .submit(Submission::new(q.clone()).deadline(0))
        .unwrap_err();
    assert!(matches!(err, ServerError::InvalidDeadline { deadline: 0 }));
    srv.submit(Submission::new(q.clone())).unwrap();
    let err = srv.submit(Submission::new(q.clone())).unwrap_err();
    assert!(matches!(
        err,
        ServerError::BudgetExhausted {
            admitted: 1,
            max_queries: 1
        }
    ));
    let err = srv.cancel(QueryId(7), 0).unwrap_err();
    assert!(matches!(err, ServerError::UnknownQuery { id: 7 }));
    // The messages carry the context (Display is part of the surface).
    assert!(err.to_string().contains("unknown query id 7"));
}
