//! End-to-end tests of the eddy executor on small catalogs: every result
//! must match the reference nested-loop executor exactly, with no
//! constraint violations, across module configurations that exercise each
//! paper mechanism (scans, async indexes, selections, cyclic queries,
//! competitive AMs, relaxed BuildFirst).

use stems_catalog::{
    reference, Catalog, IndexSpec, QuerySpec, ScanSpec, SourceId, TableDef, TableInstance,
};
use stems_core::{EddyExecutor, ExecConfig, RoutingPolicyKind};
use stems_types::{
    CmpOp, ColRef, ColumnType, PredId, Predicate, Schema, TableIdx, TableSet, UdfSpec, Value,
};

fn int_rows(rows: &[(i64, i64)]) -> Vec<Vec<Value>> {
    rows.iter()
        .map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)])
        .collect()
}

/// R(key, a) with `n` rows, a = key % distinct.
fn r_rows(n: i64, distinct: i64) -> Vec<Vec<Value>> {
    (0..n)
        .map(|k| vec![Value::Int(k), Value::Int(k % distinct)])
        .collect()
}

fn two_table_catalog(
    r_data: Vec<Vec<Value>>,
    s_data: Vec<Vec<Value>>,
) -> (Catalog, SourceId, SourceId) {
    let mut c = Catalog::new();
    let r = c
        .add_table(
            TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            )
            .with_rows(r_data),
        )
        .unwrap();
    let s = c
        .add_table(
            TableDef::new(
                "S",
                Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
            )
            .with_rows(s_data),
        )
        .unwrap();
    (c, r, s)
}

fn rs_query(c: &Catalog, r: SourceId, s: SourceId, extra: Vec<Predicate>) -> QuerySpec {
    let mut preds = vec![Predicate::join(
        PredId(0),
        ColRef::new(TableIdx(0), 1),
        CmpOp::Eq,
        ColRef::new(TableIdx(1), 0),
    )];
    preds.extend(extra);
    QuerySpec::new(
        c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        preds,
        None,
    )
    .unwrap()
}

fn checked_config() -> ExecConfig {
    ExecConfig {
        check_constraints: true,
        ..ExecConfig::default()
    }
}

fn assert_matches_reference(c: &Catalog, q: &QuerySpec, config: ExecConfig) -> stems_core::Report {
    let report = EddyExecutor::build(c, q, config).unwrap().run();
    assert!(
        report.violations.is_empty(),
        "violations: {:?}",
        report.violations
    );
    let expected = reference::canonical(c, q, &reference::execute(c, q));
    let got = report.canonical(c, q);
    assert_eq!(
        got.len(),
        expected.len(),
        "result count mismatch: got {} want {} ({})",
        got.len(),
        expected.len(),
        report.summary()
    );
    assert_eq!(got, expected, "result contents mismatch");
    report
}

#[test]
fn shj_two_scans_matches_reference() {
    let (mut c, r, s) = two_table_catalog(
        r_rows(40, 10),
        int_rows(&[(0, 100), (1, 101), (5, 105), (9, 109), (42, 142)]),
    );
    c.add_scan(r, ScanSpec::with_rate(2000.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(1500.0)).unwrap();
    let q = rs_query(&c, r, s, vec![]);
    let report = assert_matches_reference(&c, &q, checked_config());
    // 40 R rows over 10 distinct values ⇒ 4 rows per matching S key.
    assert_eq!(report.results.len(), 16);
}

#[test]
fn index_join_flow_matches_reference() {
    // S reachable only through an index on x (fig-7 topology).
    let (mut c, r, s) = two_table_catalog(
        r_rows(30, 6),
        int_rows(&[(0, 100), (2, 102), (4, 104), (5, 105)]),
    );
    c.add_scan(r, ScanSpec::with_rate(2000.0)).unwrap();
    c.add_index(s, IndexSpec::new(vec![0], 50_000)).unwrap();
    let q = rs_query(&c, r, s, vec![]);
    let report = assert_matches_reference(&c, &q, checked_config());
    // 30 rows over 6 distinct values, matching x ∈ {0,2,4,5}: 5 each.
    assert_eq!(report.results.len(), 20);
    // Coalescing holds probe count at the number of distinct R.a values.
    assert_eq!(report.counter("index_probes"), 6);
}

#[test]
fn hybrid_scan_plus_index_matches_reference() {
    // Both access methods on S (fig-8 topology).
    let (mut c, r, s) = two_table_catalog(r_rows(50, 25), r_rows(25, 25));
    c.add_scan(r, ScanSpec::with_rate(500.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(100.0)).unwrap();
    c.add_index(s, IndexSpec::new(vec![0], 20_000)).unwrap();
    let q = rs_query(&c, r, s, vec![]);
    for policy in [
        RoutingPolicyKind::Fixed { probe_order: None },
        RoutingPolicyKind::BenefitCost {
            epsilon: 0.05,
            drop_rate: 2.0,
        },
        RoutingPolicyKind::Lottery,
    ] {
        let config = ExecConfig {
            policy,
            ..checked_config()
        };
        assert_matches_reference(&c, &q, config);
    }
}

#[test]
fn selections_prune_and_match() {
    let (mut c, r, s) = two_table_catalog(r_rows(60, 12), r_rows(12, 12));
    c.add_scan(r, ScanSpec::with_rate(2000.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(2000.0)).unwrap();
    let q = rs_query(
        &c,
        r,
        s,
        vec![
            Predicate::selection(
                PredId(1),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Gt,
                Value::Int(10),
            ),
            Predicate::selection(
                PredId(2),
                ColRef::new(TableIdx(1), 1),
                CmpOp::Lt,
                Value::Int(8),
            ),
        ],
    );
    let report = assert_matches_reference(&c, &q, checked_config());
    assert!(report.counter("filtered") > 0, "selections never fired");
}

#[test]
fn three_way_chain_all_scans() {
    let mut c = Catalog::new();
    let schema = Schema::of(&[("k", ColumnType::Int), ("v", ColumnType::Int)]);
    let a = c
        .add_table(TableDef::new("A", schema.clone()).with_rows(r_rows(12, 4)))
        .unwrap();
    let b = c
        .add_table(TableDef::new("B", schema.clone()).with_rows(r_rows(8, 4)))
        .unwrap();
    let d = c
        .add_table(TableDef::new("D", schema.clone()).with_rows(r_rows(6, 3)))
        .unwrap();
    for (src, rate) in [(a, 900.0), (b, 700.0), (d, 1100.0)] {
        c.add_scan(src, ScanSpec::with_rate(rate)).unwrap();
    }
    // A.v = B.v AND B.k = D.k
    let q = QuerySpec::new(
        &c,
        [("a", a), ("b", b), ("d", d)]
            .iter()
            .map(|(al, src)| TableInstance {
                source: *src,
                alias: al.to_string(),
            })
            .collect(),
        vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 1),
            ),
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(1), 0),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 0),
            ),
        ],
        None,
    )
    .unwrap();
    for policy in [
        RoutingPolicyKind::Fixed { probe_order: None },
        RoutingPolicyKind::Lottery,
    ] {
        assert_matches_reference(
            &c,
            &q,
            ExecConfig {
                policy,
                ..checked_config()
            },
        );
    }
}

#[test]
fn cyclic_triangle_query() {
    let mut c = Catalog::new();
    let schema = Schema::of(&[("k", ColumnType::Int), ("v", ColumnType::Int)]);
    let names = ["A", "B", "D"];
    let ids: Vec<SourceId> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let id = c
                .add_table(TableDef::new(n, schema.clone()).with_rows(r_rows(10, 5 - i as i64)))
                .unwrap();
            c.add_scan(id, ScanSpec::with_rate(800.0 + 100.0 * i as f64))
                .unwrap();
            id
        })
        .collect();
    // Triangle: A.v=B.v, B.v=D.v, A.v=D.v — duplicates would appear
    // without ProbeCompletion (paper §3.4's example).
    let q = QuerySpec::new(
        &c,
        ids.iter()
            .zip(["a", "b", "d"])
            .map(|(s, al)| TableInstance {
                source: *s,
                alias: al.into(),
            })
            .collect(),
        vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 1),
            ),
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(1), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 1),
            ),
            Predicate::join(
                PredId(2),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 1),
            ),
        ],
        None,
    )
    .unwrap();
    for policy in [
        RoutingPolicyKind::Fixed { probe_order: None },
        RoutingPolicyKind::Lottery,
        RoutingPolicyKind::BenefitCost {
            epsilon: 0.1,
            drop_rate: 1.0,
        },
    ] {
        assert_matches_reference(
            &c,
            &q,
            ExecConfig {
                policy,
                ..checked_config()
            },
        );
    }
}

#[test]
fn competitive_scans_dedup() {
    // Two scan AMs on S: every row arrives twice; SteM dedup absorbs the
    // copies (paper §3.2).
    let (mut c, r, s) = two_table_catalog(r_rows(20, 5), r_rows(5, 5));
    c.add_scan(r, ScanSpec::with_rate(2000.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(300.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(80.0)).unwrap();
    let q = rs_query(&c, r, s, vec![]);
    let report = assert_matches_reference(&c, &q, checked_config());
    assert!(
        report.counter("duplicates_absorbed") > 0,
        "competition produced no duplicates to absorb?"
    );
}

#[test]
fn relaxed_buildfirst_still_correct() {
    // R skips its SteM entirely (§3.5): R tuples re-probe SteM_S under
    // LastMatchTimeStamp until the S scan completes.
    let (mut c, r, s) = two_table_catalog(r_rows(25, 5), r_rows(5, 5));
    c.add_scan(r, ScanSpec::with_rate(2000.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(100.0)).unwrap();
    let q = rs_query(&c, r, s, vec![]);
    let mut config = checked_config();
    config.plan.no_stem = TableSet::single(TableIdx(0));
    let report = assert_matches_reference(&c, &q, config);
    assert!(report.counter("unparked") > 0, "no §3.5 re-probes happened");
}

#[test]
fn single_table_selection_query() {
    let mut c = Catalog::new();
    let r = c
        .add_table(
            TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            )
            .with_rows(r_rows(30, 30)),
        )
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(1000.0)).unwrap();
    let q = QuerySpec::new(
        &c,
        vec![TableInstance {
            source: r,
            alias: "r".into(),
        }],
        vec![Predicate::selection(
            PredId(0),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Ge,
            Value::Int(25),
        )],
        None,
    )
    .unwrap();
    let report = assert_matches_reference(&c, &q, checked_config());
    assert_eq!(report.results.len(), 5);
}

#[test]
fn self_join_shares_rows() {
    let mut c = Catalog::new();
    let r = c
        .add_table(
            TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            )
            .with_rows(r_rows(12, 3)),
        )
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(1000.0)).unwrap();
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r1".into(),
            },
            TableInstance {
                source: r,
                alias: "r2".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 1),
        )],
        None,
    )
    .unwrap();
    let report = assert_matches_reference(&c, &q, checked_config());
    // 12 rows, 3 groups of 4: each group contributes 4×4 pairs.
    assert_eq!(report.results.len(), 48);
}

#[test]
fn deterministic_across_runs() {
    let (mut c, r, s) = two_table_catalog(r_rows(30, 6), r_rows(6, 6));
    c.add_scan(r, ScanSpec::with_rate(500.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(400.0)).unwrap();
    c.add_index(s, IndexSpec::new(vec![0], 30_000)).unwrap();
    let q = rs_query(&c, r, s, vec![]);
    let run = |seed: u64| {
        let config = ExecConfig {
            policy: RoutingPolicyKind::BenefitCost {
                epsilon: 0.2,
                drop_rate: 1.0,
            },
            seed,
            ..ExecConfig::default()
        };
        let rep = EddyExecutor::build(&c, &q, config).unwrap().run();
        (rep.end_time, rep.events, rep.canonical(&c, &q))
    };
    let (t1, e1, r1) = run(7);
    let (t2, e2, r2) = run(7);
    assert_eq!(t1, t2);
    assert_eq!(e1, e2);
    assert_eq!(r1, r2);
    // A different seed may take a different path but must agree on results.
    let (_t3, _e3, r3) = run(8);
    assert_eq!(r1, r3);
}

#[test]
fn empty_tables_terminate_cleanly() {
    let (mut c, r, s) = two_table_catalog(vec![], r_rows(5, 5));
    c.add_scan(r, ScanSpec::with_rate(100.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(100.0)).unwrap();
    let q = rs_query(&c, r, s, vec![]);
    let report = assert_matches_reference(&c, &q, checked_config());
    assert_eq!(report.results.len(), 0);
}

#[test]
fn udf_selection_memo_and_dedup_are_observably_invisible() {
    // A duplicate-heavy scan through an expensive sieve: 60 rows over 6
    // distinct sieve inputs, 5ms per computed verdict. Memoization and
    // dedup may only change *time*, never results.
    let mut c = Catalog::new();
    let r = c
        .add_table(
            TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            )
            .with_rows(r_rows(60, 6)),
        )
        .unwrap();
    c.add_scan(r, ScanSpec::with_rate(2000.0)).unwrap();
    let q = QuerySpec::new(
        &c,
        vec![TableInstance {
            source: r,
            alias: "r".into(),
        }],
        vec![Predicate::udf(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            UdfSpec::hash_sieve(500, 5_000),
        )],
        None,
    )
    .unwrap();
    let mut cells = Vec::new();
    for (memo, dedup) in [(false, false), (false, true), (true, false), (true, true)] {
        let config = ExecConfig {
            memo,
            udf_dedup: dedup,
            batch_size: 16,
            ..checked_config()
        };
        let report = assert_matches_reference(&c, &q, config);
        cells.push((memo, dedup, report));
    }
    let baseline = cells[0].2.canonical(&c, &q);
    for (memo, dedup, report) in &cells {
        assert_eq!(
            report.canonical(&c, &q),
            baseline,
            "results diverged at memo={memo} dedup={dedup}"
        );
        // Every cell applies the predicate to every routed row…
        assert_eq!(report.counter("sm_applied"), 60);
    }
    // …but only the plain cell computes a verdict per row.
    let plain = &cells[0].2;
    let memo_only = &cells[2].2;
    let both = &cells[3].2;
    assert_eq!(plain.counter("udf_calls"), 60);
    assert_eq!(plain.counter("memo_hits"), 0);
    assert_eq!(
        memo_only.counter("udf_calls"),
        6,
        "memo should pay once per key"
    );
    assert_eq!(
        memo_only.counter("memo_hits") + memo_only.counter("memo_misses"),
        60
    );
    assert_eq!(both.counter("udf_calls"), 6);
    // Skipped verdicts are skipped virtual time: the fast path finishes
    // strictly earlier on a duplicate-heavy input.
    assert!(
        both.end_time < plain.end_time,
        "memo+dedup {} !< plain {}",
        both.end_time,
        plain.end_time
    );
}

#[test]
fn chunked_index_replies_match_reference() {
    // The fig-7 index topology, but the index streams each answer back 2
    // tuples per wave instead of one burst — arrival shape changes,
    // results must not.
    let (mut c, r, s) = two_table_catalog(
        r_rows(30, 6),
        int_rows(&[
            (0, 100),
            (0, 101),
            (0, 102),
            (2, 102),
            (2, 103),
            (4, 104),
            (5, 105),
        ]),
    );
    c.add_scan(r, ScanSpec::with_rate(2000.0)).unwrap();
    c.add_index(s, IndexSpec::new(vec![0], 50_000)).unwrap();
    let q = rs_query(&c, r, s, vec![]);
    let burst = assert_matches_reference(&c, &q, checked_config());

    let (mut c2, r2, s2) = two_table_catalog(
        r_rows(30, 6),
        int_rows(&[
            (0, 100),
            (0, 101),
            (0, 102),
            (2, 102),
            (2, 103),
            (4, 104),
            (5, 105),
        ]),
    );
    c2.add_scan(r2, ScanSpec::with_rate(2000.0)).unwrap();
    c2.add_index(s2, IndexSpec::new(vec![0], 50_000).with_reply_chunk(2, 100))
        .unwrap();
    let q2 = rs_query(&c2, r2, s2, vec![]);
    let chunked = assert_matches_reference(&c2, &q2, checked_config());
    assert_eq!(chunked.canonical(&c2, &q2), burst.canonical(&c, &q));
    // The trailing waves land strictly after the lookup completion, so
    // the chunked run cannot finish earlier.
    assert!(chunked.end_time >= burst.end_time);
    assert_eq!(
        chunked.counter("am_responses"),
        burst.counter("am_responses")
    );
}

#[test]
fn null_join_keys_match_nothing() {
    let (mut c, r, s) = two_table_catalog(
        vec![
            vec![Value::Int(0), Value::Null],
            vec![Value::Int(1), Value::Int(3)],
        ],
        vec![
            vec![Value::Null, Value::Int(9)],
            vec![Value::Int(3), Value::Int(7)],
        ],
    );
    c.add_scan(r, ScanSpec::with_rate(100.0)).unwrap();
    c.add_scan(s, ScanSpec::with_rate(100.0)).unwrap();
    let q = rs_query(&c, r, s, vec![]);
    let report = assert_matches_reference(&c, &q, checked_config());
    assert_eq!(report.results.len(), 1);
}
