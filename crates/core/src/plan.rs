//! Query instantiation (paper §2.2).
//!
//! "The use of an eddy and SteMs obviates the need for query optimization
//! because there are no a priori decisions to be made." Instantiation is:
//!
//! 1. check bind-field feasibility (Nail!-style fixpoint);
//! 2. create an AM on *each* access method that could be used;
//! 3. create an SM on each selection predicate;
//! 4. create a SteM on each table;
//! 5. seed the scans.
//!
//! This module performs steps 1–4, producing the module vector and a
//! [`PlanLayout`] index the router uses; the engine performs step 5.

use crate::am::{IndexAm, ScanAm};
use crate::sharded::ShardedStem;
use crate::sm::Sm;
pub use crate::stem::StemOptions;
use crate::sync::{lock_recover, Arc, Mutex, MutexGuard, PoisonError};
use stems_catalog::{feasible, AccessMethodDef, Catalog, QuerySpec};
use stems_types::{PredId, Result, TableIdx, TableSet};

/// A shareable handle on one [`ShardedStem`]. Every plan wraps its SteMs
/// in cells; a solo query holds the only reference and the mutex is
/// uncontended, while the query server clones cells across queries so
/// query B probes the SteM query A built (the paper's "one build, N
/// probers" sharing argument, §2/§5). The engine locks a cell only for
/// the duration of one envelope.
#[derive(Clone)]
pub struct StemCell(Arc<Mutex<ShardedStem>>);

impl StemCell {
    pub fn new(stem: ShardedStem) -> StemCell {
        StemCell(Arc::new(Mutex::new(stem)))
    }

    /// Lock the SteM, recovering from poison: SteM state is updated
    /// envelope-atomically (a panicking prober mutates nothing persistent
    /// mid-flight — probes run through `&self`, and build envelopes
    /// complete their dictionary insert before returning), so the stored
    /// state behind a poisoned lock is still valid and other queries
    /// sharing the cell keep running.
    pub fn lock(&self) -> MutexGuard<'_, ShardedStem> {
        // Clear the mark but keep the data untouched — envelope-atomic
        // updates mean it is still valid (see above).
        lock_recover(&self.0, |_| {})
    }

    /// A second handle on the same SteM (what the server hands to each
    /// folded query).
    pub fn share(&self) -> StemCell {
        StemCell(Arc::clone(&self.0))
    }
}

impl std::fmt::Debug for StemCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.lock().map_err(PoisonError::into_inner) {
            Ok(stem) | Err(stem) => stem.fmt(f),
        }
    }
}

/// One instantiated module.
pub enum Module {
    /// A (possibly hash-partitioned) State Module; `num_shards: 1` in its
    /// [`StemOptions`] is the plain scalar SteM. Held through a
    /// [`StemCell`] so the query server can share one SteM across
    /// queries; a solo executor owns the only handle.
    Stem(StemCell),
    ScanAm(ScanAm),
    IndexAm(IndexAm),
    Sm(Sm),
    /// Placeholder left behind while the engine temporarily moves a module
    /// out of the vector to process an envelope (never routed to).
    Hole,
}

impl Module {
    /// Short kind tag for metrics/tracing.
    pub fn kind(&self) -> &'static str {
        match self {
            Module::Stem(_) => "stem",
            Module::ScanAm(_) => "scan",
            Module::IndexAm(_) => "index",
            Module::Sm(_) => "sm",
            Module::Hole => "hole",
        }
    }
}

/// Index over the instantiated modules, consulted by the router on every
/// routing decision.
#[derive(Debug, Clone, Default)]
pub struct PlanLayout {
    pub n_tables: usize,
    /// Module id of the SteM on each table instance (`None` under the §3.5
    /// relaxation).
    pub stem_mid: Vec<Option<usize>>,
    /// `(selection predicate, module id)` pairs.
    pub sm_mids: Vec<(PredId, usize)>,
    /// Scan AM module ids.
    pub scan_mids: Vec<usize>,
    /// Index AM module ids per table instance.
    pub index_mids: Vec<Vec<usize>>,
    /// BuildFirst requirement per instance: true whenever the instance has
    /// a SteM (see [`PlanOptions`] for how this maps onto paper Table 2).
    pub build_required: Vec<bool>,
    /// Whether each instance's source has a scan AM.
    pub has_scan: Vec<bool>,
}

/// Per-table configuration overrides used at instantiation time.
///
/// BuildFirst note: paper Table 2 *requires* building first only for
/// tables with multiple AMs or an index AM; §3.5 then relaxes further by
/// dropping the SteM on single-scan tables altogether. Like the paper's
/// own implementation (§4.1: "singleton tuples are always first built into
/// their corresponding SteMs ... this simplifies our implementation"),
/// every instance that *has* a SteM builds first; `no_stem` realizes the
/// §3.5 relaxation, and its validity condition is exactly the complement
/// of Table 2's BuildFirst condition.
#[derive(Debug, Clone, Default)]
pub struct PlanOptions {
    /// Default SteM options.
    pub default_stem: StemOptions,
    /// Per-instance SteM overrides.
    pub stem_overrides: Vec<(TableIdx, StemOptions)>,
    /// Instances exempt from SteM creation and building (§3.5 relaxation).
    /// Only legal for instances whose source has exactly one scan AM.
    pub no_stem: TableSet,
}

impl PlanOptions {
    /// Resolve the SteM options for instance `t` (override or default).
    /// `pub(crate)` because the query server re-derives the options a
    /// plan will use when deciding SteM-sharing compatibility.
    pub(crate) fn stem_opts_for(&self, t: TableIdx) -> StemOptions {
        self.stem_overrides
            .iter()
            .find(|(i, _)| *i == t)
            .map(|(_, o)| o.clone())
            .unwrap_or_else(|| self.default_stem.clone())
    }
}

/// Instantiate the modules for a query (§2.2 steps 1–4).
pub fn instantiate(
    catalog: &Catalog,
    query: &QuerySpec,
    opts: &PlanOptions,
) -> Result<(Vec<Module>, PlanLayout)> {
    feasible::check(catalog, query)?;
    let n = query.n_tables();
    let mut modules: Vec<Module> = Vec::new();
    let mut layout = PlanLayout {
        n_tables: n,
        stem_mid: vec![None; n],
        sm_mids: Vec::new(),
        scan_mids: Vec::new(),
        index_mids: vec![Vec::new(); n],
        build_required: vec![false; n],
        has_scan: vec![false; n],
    };

    // Step 2: one AM module per catalog access method that the query uses.
    let mut seen_sources = Vec::new();
    for (i, ti) in query.tables.iter().enumerate() {
        let t = TableIdx(i as u8);
        let table = catalog.table_expect(ti.source);
        let instances = query.instances_of(ti.source);
        layout.has_scan[i] = catalog.has_scan(ti.source);

        layout.build_required[i] = if opts.no_stem.contains(t) {
            validate_no_stem(catalog, query, t)?;
            false
        } else {
            true
        };

        // AMs are created once per source (they serve every instance; the
        // creation loop below links them to all instances at once).
        if seen_sources.contains(&ti.source) {
            continue;
        }
        seen_sources.push(ti.source);

        for (_am_id, def) in catalog.ams_of(ti.source) {
            match def {
                AccessMethodDef::Scan(spec) => {
                    let mid = modules.len();
                    modules.push(Module::ScanAm(ScanAm::new(
                        ti.source,
                        instances.clone(),
                        table.rows().to_vec(),
                        table.schema.arity(),
                        spec,
                    )));
                    layout.scan_mids.push(mid);
                }
                AccessMethodDef::Index(spec) => {
                    let mid = modules.len();
                    modules.push(Module::IndexAm(IndexAm::new(
                        ti.source,
                        instances.clone(),
                        table.rows(),
                        table.schema.arity(),
                        spec.clone(),
                    )));
                    for inst in &instances {
                        layout.index_mids[inst.as_usize()].push(mid);
                    }
                }
            }
        }
    }

    // Step 3: SMs on selection predicates.
    for p in query.selections() {
        let mid = modules.len();
        modules.push(Module::Sm(Sm::new(p.clone())));
        layout.sm_mids.push((p.id, mid));
    }

    // Step 4: SteMs on each instance (unless §3.5-relaxed).
    for (i, ti) in query.tables.iter().enumerate() {
        let t = TableIdx(i as u8);
        if opts.no_stem.contains(t) {
            continue;
        }
        let mid = modules.len();
        modules.push(Module::Stem(StemCell::new(ShardedStem::new(
            t,
            ti.source,
            &query.join_cols_of(t),
            catalog.has_scan(ti.source),
            catalog.has_index(ti.source),
            opts.stem_opts_for(t),
        ))));
        layout.stem_mid[i] = Some(mid);
    }

    Ok((modules, layout))
}

/// The §3.5 relaxation is sound only for tables with a single scan AM
/// ("as long as there is only one access method on R and that access
/// method is scan").
fn validate_no_stem(catalog: &Catalog, query: &QuerySpec, t: TableIdx) -> Result<()> {
    let source = query.instance(t).source;
    let ams = catalog.ams_of(source);
    let ok = ams.len() == 1 && ams[0].1.is_scan() && query.instances_of(source).len() == 1;
    if ok {
        Ok(())
    } else {
        Err(stems_types::StemsError::Schema(format!(
            "table instance {t} cannot skip its SteM: the §3.5 relaxation \
             requires exactly one scan access method and no self-join",
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_catalog::{IndexSpec, ScanSpec, SourceId, TableDef, TableInstance};
    use stems_types::{CmpOp, ColRef, ColumnType, Predicate, Schema, Value};

    fn setup(index_on_s: bool) -> (Catalog, QuerySpec) {
        let mut c = Catalog::new();
        let r = c
            .add_table(TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            ))
            .unwrap();
        let s = c
            .add_table(TableDef::new(
                "S",
                Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
            ))
            .unwrap();
        c.add_scan(r, ScanSpec::default()).unwrap();
        c.add_scan(s, ScanSpec::default()).unwrap();
        if index_on_s {
            c.add_index(s, IndexSpec::new(vec![0], 1000)).unwrap();
        }
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "r".into(),
                },
                TableInstance {
                    source: s,
                    alias: "s".into(),
                },
            ],
            vec![
                Predicate::join(
                    PredId(0),
                    ColRef::new(TableIdx(0), 1),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(1), 0),
                ),
                Predicate::selection(
                    PredId(1),
                    ColRef::new(TableIdx(0), 0),
                    CmpOp::Gt,
                    Value::Int(0),
                ),
            ],
            None,
        )
        .unwrap();
        (c, q)
    }

    #[test]
    fn module_census_matches_paper_recipe() {
        let (c, q) = setup(true);
        let opts = PlanOptions::default();
        let (modules, layout) = instantiate(&c, &q, &opts).unwrap();
        // 2 scans + 1 index + 1 SM + 2 SteMs.
        assert_eq!(modules.len(), 6);
        assert_eq!(layout.scan_mids.len(), 2);
        assert_eq!(layout.index_mids[1].len(), 1);
        assert_eq!(layout.index_mids[0].len(), 0);
        assert_eq!(layout.sm_mids.len(), 1);
        assert!(layout.stem_mid[0].is_some() && layout.stem_mid[1].is_some());
        assert!(layout.build_required[0] && layout.build_required[1]);
        assert!(layout.has_scan[0] && layout.has_scan[1]);
    }

    #[test]
    fn build_required_unless_relaxed() {
        let (c, q) = setup(true);
        // Default: every SteM'd instance builds first (paper §4.1).
        let (_m, layout) = instantiate(&c, &q, &PlanOptions::default()).unwrap();
        assert!(layout.build_required[0] && layout.build_required[1]);
        // §3.5 relaxation: exempted instance neither builds nor has a SteM.
        let opts = PlanOptions {
            no_stem: TableSet::single(TableIdx(0)),
            ..Default::default()
        };
        let (_m, layout) = instantiate(&c, &q, &opts).unwrap();
        assert!(!layout.build_required[0]);
        assert!(layout.build_required[1]);
    }

    #[test]
    fn no_stem_relaxation_validated() {
        let (c, q) = setup(true);
        // Relaxing R (single scan AM) is fine.
        let opts = PlanOptions {
            no_stem: TableSet::single(TableIdx(0)),
            ..Default::default()
        };
        let (_m, layout) = instantiate(&c, &q, &opts).unwrap();
        assert!(layout.stem_mid[0].is_none());
        assert!(layout.stem_mid[1].is_some());
        // Relaxing S (scan + index) must fail.
        let opts = PlanOptions {
            no_stem: TableSet::single(TableIdx(1)),
            ..Default::default()
        };
        assert!(instantiate(&c, &q, &opts).is_err());
    }

    #[test]
    fn infeasible_query_rejected_at_instantiation() {
        let mut c = Catalog::new();
        let r = c
            .add_table(TableDef::new("R", Schema::of(&[("k", ColumnType::Int)])))
            .unwrap();
        // R has NO access method at all.
        let q = QuerySpec::new(
            &c,
            vec![TableInstance {
                source: r,
                alias: "r".into(),
            }],
            vec![],
            None,
        )
        .unwrap();
        assert!(instantiate(&c, &q, &PlanOptions::default()).is_err());
        let _ = SourceId(0);
    }

    #[test]
    fn self_join_shares_ams_not_stems() {
        let mut c = Catalog::new();
        let r = c
            .add_table(TableDef::new(
                "R",
                Schema::of(&[("k", ColumnType::Int), ("v", ColumnType::Int)]),
            ))
            .unwrap();
        c.add_scan(r, ScanSpec::default()).unwrap();
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "r1".into(),
                },
                TableInstance {
                    source: r,
                    alias: "r2".into(),
                },
            ],
            vec![Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 1),
            )],
            None,
        )
        .unwrap();
        let (modules, layout) = instantiate(&c, &q, &PlanOptions::default()).unwrap();
        // One scan AM serving both instances + two SteMs.
        assert_eq!(layout.scan_mids.len(), 1);
        match &modules[layout.scan_mids[0]] {
            Module::ScanAm(s) => assert_eq!(s.instances.len(), 2),
            _ => panic!("expected scan"),
        }
        assert!(layout.stem_mid[0].is_some() && layout.stem_mid[1].is_some());
        assert_ne!(layout.stem_mid[0], layout.stem_mid[1]);
    }
}
