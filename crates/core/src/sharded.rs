//! Hash-partitioned SteMs: the sharding layer over [`Stem`].
//!
//! A single [`Stem`] serializes every build and probe for its table
//! through one dictionary — fine for the paper's tuple-at-a-time eddy,
//! but a hard throughput cap once envelopes carry thousands of rows.
//! [`ShardedStem`] splits SteM *storage* by join-key hash into
//! `num_shards` independent shards (each a full [`Stem`]) plus a
//! dedicated **overflow shard** for rows whose key is un-hashable
//! (NULL/EOT — the same lane discipline as
//! `stems_storage::PartitionedStore`), and fans `build_batch` /
//! `probe_batch_into` envelopes out across the shards on the persistent
//! work-stealing worker pool ([`crate::runtime::WorkerPool`] — long-lived
//! workers, per-shard affinity, no per-envelope thread spawn/join). The
//! batched envelopes introduced in PR 1 are the natural unit of
//! distribution: the eddy stays single-threaded and deterministic, and
//! parallelism lives entirely inside one module service call.
//!
//! Probe fan-outs are additionally **skew-aware**: the routing pass
//! counts the rows landing in each lane, and every lane is cut into
//! chunks of at most `ceil(total / workers)` rows before dispatch — a
//! hot shard (every probe keyed to one value, say) is split across idle
//! workers instead of serializing the envelope behind one lane. Chunking
//! is deterministic and read-only (probes never mutate the dictionary),
//! so replies are bit-identical at every worker count. Build lanes are
//! *not* split: per-shard dedup is order-dependent, so a build lane is
//! one worker's unit of work by construction.
//!
//! # Semantics: bit-identical to the unsharded engine
//!
//! Sharding must be invisible to every observable of the engine
//! (`tests/prop_batch_equivalence.rs` locks shard counts {1, 2, 4, 7}
//! verdict-for-verdict to the single-shard engine):
//!
//! * **Routing** — a row lands in shard `stable_key_hash(key) %
//!   num_shards` of its first join column (the same column the deferred
//!   bounce-back partitioner uses). [`stems_types::Value::stable_key_hash`]
//!   agrees with equality-key normalization, so every row a probe key can
//!   `sql_eq` lives in the probe key's shard and partitioned equality
//!   lookups stay complete. Un-hashable keys go to the overflow shard,
//!   which equality probes on the key column never need to visit.
//! * **Timestamps** — dictionary work (dedup + insert) runs per shard in
//!   parallel; global build-timestamp assignment stays serial, in batch
//!   order, exactly like the scalar engine ([`Stem::ingest_batch`] /
//!   [`Stem::stamp_fresh`]). Duplicates co-locate with their original
//!   (same row ⇒ same key ⇒ same shard), so per-shard dedup is exact.
//! * **EOT-versioning** — EOT tuples are broadcast into every shard's EOT
//!   index, so each shard answers coverage/bounce questions exactly like
//!   the unsharded SteM and [`ShardedStem::eot_version`] can read any one
//!   shard.
//! * **Probe merge** — a probe bound on the shard key column is answered
//!   by its one shard (plus nothing else: overflow rows cannot match).
//!   Any other probe fans out to all shards and the per-shard results are
//!   merged by ascending build timestamp — which *is* global insertion
//!   order, so the merged [`ProbeReply`] is bit-identical to the
//!   single-shard reply for insertion-ordered backends (List/Hash/
//!   Adaptive/Partitioned; the Sorted backend orders by value and is
//!   multiset-equal only).
//! * **Deferred release** — per-shard deferred queues are merged and
//!   clustered by `(bounce partition, build timestamp)`; since the scalar
//!   release is a stable partition sort over build order, the merged
//!   order is identical.
//! * **Window sweeps** — a FIFO window is enforced *globally*: the victim
//!   is always the shard holding the minimum oldest build timestamp.
//!   Windowed builds take a serial per-tuple path (eviction must
//!   interleave with inserts exactly as the scalar engine's does).
//!
//! `num_shards: 1` skips the layer entirely — one inner [`Stem`], every
//! call delegated 1:1, zero merge arithmetic — so the default engine is
//! the PR-3 engine, bit for bit.

use crate::runtime::{default_parallel_min_rows, default_workers, WorkerPool};
use crate::stem::{
    equi_binding, linking_for, BuildResult, ProbeBinding, ProbeReply, ProbeReplySet, ReplyMeta,
    Stem, StemOptions,
};
use crate::sync::{lock_recover, Arc, Mutex, MutexGuard};
use crate::tuple_state::TupleState;
use stems_catalog::{QuerySpec, SourceId};
use stems_types::{
    HashedKey, Predicate, Row, TableIdx, TableSet, Timestamp, Tuple, TupleBatch, Value, UNBUILT_TS,
};

/// One probe lane's reusable envelope buffers: the sub-batch routed to a
/// shard, its states, and the per-tuple bindings resolved (and hashed)
/// once by the routing pass — the shard's dictionary descent reuses them
/// verbatim, so no layer below the envelope boundary ever re-hashes.
#[derive(Debug, Default)]
struct LaneScratch {
    batch: TupleBatch,
    states: Vec<TupleState>,
    bindings: Vec<ProbeBinding>,
}

impl LaneScratch {
    fn clear(&mut self) {
        self.batch.clear();
        self.states.clear();
        self.bindings.clear();
    }

    fn push(&mut self, tuple: &Tuple, state: &TupleState, binding: &ProbeBinding) {
        self.batch.push(tuple.clone());
        self.states.push(state.clone());
        self.bindings.push(binding.clone());
    }
}

/// Pooled probe fan-out buffers, reused across envelopes (capacity
/// survives; contents are per envelope). Behind a [`Mutex`] because
/// probes run through `&self`; the lock is taken once per envelope.
#[derive(Debug, Default)]
struct ProbePool {
    lanes: Vec<LaneScratch>,
    lane_of: Vec<Option<usize>>,
    /// Dispatch units of the current envelope: `(lane, start, end)`
    /// sub-ranges of each lane's sub-batch, lane-major — the skew-aware
    /// chunking of hot lanes (see the module docs).
    tasks: Vec<(usize, usize, usize)>,
    /// One reply arena per dispatch unit (capacity reused).
    chunk_sets: Vec<ProbeReplySet>,
    /// Per lane: index of the task the merge is currently consuming.
    cursors: Vec<usize>,
}

/// A State Module whose dictionary is hash-partitioned across
/// `num_shards` independent [`Stem`] shards plus one overflow shard.
///
/// This is the type the engine instantiates per table instance
/// ([`crate::plan::Module::Stem`]); its public surface mirrors [`Stem`]'s
/// with aggregate accessors summing (or maxing) across shards.
pub struct ShardedStem {
    pub instance: TableIdx,
    pub source: SourceId,
    pub has_scan_am: bool,
    pub has_index_am: bool,
    /// `num_shards == 1`: exactly one inner Stem (no overflow shard, no
    /// routing). Otherwise `num_shards` keyed shards followed by the
    /// overflow shard at index `num_shards`.
    shards: Vec<Stem>,
    num_shards: usize,
    /// First join column — the shard key (also the deferred-bounce
    /// partition column inside each shard).
    key_col: usize,
    /// Global FIFO window when sharded (inner shards run unbounded and
    /// this layer evicts across them); `None` when unbounded or when
    /// `num_shards == 1` (the inner Stem owns its window).
    window: Option<usize>,
    /// Worker-pool budget for this SteM's envelope fan-outs (resolved
    /// from [`StemOptions::workers`] at construction).
    workers: usize,
    /// Minimum routed rows before an envelope dispatches to the pool
    /// (resolved from [`StemOptions::parallel_min_rows`]).
    parallel_min_rows: usize,
    /// Pooled probe fan-out buffers (see [`ProbePool`]).
    probe_pool: Mutex<ProbePool>,
}

impl std::fmt::Debug for ShardedStem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStem")
            .field("instance", &self.instance)
            .field("num_shards", &self.num_shards)
            .field("len", &self.len())
            .field("backend", &self.backend())
            .field("max_ts", &self.max_ts())
            .finish()
    }
}

impl ShardedStem {
    /// Create the sharded SteM for `instance` of `source`. `opts.num_shards`
    /// decides the fan-out; all other options apply to every shard.
    pub fn new(
        instance: TableIdx,
        source: SourceId,
        join_cols: &[usize],
        has_scan_am: bool,
        has_index_am: bool,
        opts: StemOptions,
    ) -> ShardedStem {
        let num_shards = opts.num_shards.max(1);
        let window = opts.eviction_window;
        let workers = opts.workers.unwrap_or_else(default_workers).max(1);
        let parallel_min_rows = opts
            .parallel_min_rows
            .unwrap_or_else(default_parallel_min_rows)
            .max(1);
        let shards: Vec<Stem> = if num_shards == 1 {
            vec![Stem::new(
                instance,
                source,
                join_cols,
                has_scan_am,
                has_index_am,
                opts,
            )]
        } else {
            // Inner shards run unbounded; the FIFO window is enforced
            // globally by this layer so eviction order matches the
            // unsharded SteM's.
            (0..=num_shards)
                .map(|_| {
                    Stem::new(
                        instance,
                        source,
                        join_cols,
                        has_scan_am,
                        has_index_am,
                        StemOptions {
                            eviction_window: None,
                            ..opts.clone()
                        },
                    )
                })
                .collect()
        };
        ShardedStem {
            instance,
            source,
            has_scan_am,
            has_index_am,
            shards,
            num_shards,
            key_col: join_cols.first().copied().unwrap_or(0),
            window: if num_shards == 1 { None } else { window },
            workers,
            parallel_min_rows,
            probe_pool: Mutex::new(ProbePool::default()),
        }
    }

    /// Re-point this SteM at a different table instance. All stored state
    /// (rows, timestamps, dedup, EOT marks) is instance-agnostic — the
    /// instance index only tags tuples routed in and out — so a SteM
    /// built under one query can serve another whose instance numbering
    /// differs. The query server uses this to fold N queries' probes onto
    /// one shared SteM; callers must retarget *before* building or
    /// probing on behalf of the new instance.
    pub fn retarget(&mut self, instance: TableIdx) {
        self.instance = instance;
        for shard in &mut self.shards {
            shard.instance = instance;
        }
    }

    /// Lock the probe fan-out pool, recovering from poison: the pool
    /// holds only envelope-lifetime scratch (lanes, tasks, reply arenas),
    /// so after a prober panics mid-envelope the cheapest safe recovery
    /// is a fresh pool — shared-SteM queries behind the panicking one
    /// keep running.
    fn lock_probe_pool(&self) -> MutexGuard<'_, ProbePool> {
        lock_recover(&self.probe_pool, |pool| *pool = ProbePool::default())
    }

    // ------------------------------------------------------------------
    // Aggregate accessors (sum / max / any-shard across the fan-out)
    // ------------------------------------------------------------------

    /// Keyed shard fan-out (1 = unsharded).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Stored (non-EOT) tuples across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Stem::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard row counts (keyed shards first, overflow last when
    /// sharded) — balance diagnostics for benches and tests.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(Stem::len).collect()
    }

    /// Per-shard approximate memory (same order as [`Self::shard_lens`]).
    pub fn shard_bytes(&self) -> Vec<usize> {
        self.shards.iter().map(Stem::approx_bytes).collect()
    }

    /// Has the full relation arrived? (EOTs are broadcast, any shard
    /// answers.)
    pub fn scan_complete(&self) -> bool {
        self.shards[0].scan_complete()
    }

    /// EOT change counter — broadcast keeps every shard's count equal to
    /// the unsharded SteM's.
    pub fn eot_version(&self) -> u64 {
        self.shards[0].eot_version()
    }

    /// Max build timestamp across shards (timestamps are global, so this
    /// equals the unsharded SteM's `max_ts`).
    pub fn max_ts(&self) -> Timestamp {
        self.shards.iter().map(|s| s.max_ts).max().unwrap_or(0)
    }

    /// Fresh (non-EOT) builds accepted, across shards.
    pub fn build_count(&self) -> u64 {
        self.shards.iter().map(|s| s.build_count).sum()
    }

    /// Set-semantics duplicates absorbed, across shards.
    pub fn duplicates_absorbed(&self) -> u64 {
        self.shards.iter().map(|s| s.duplicates_absorbed).sum()
    }

    /// FIFO evictions performed, across shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.evictions).sum()
    }

    /// Approximate memory footprint: the sum over every keyed shard's
    /// store plus the overflow lane's.
    pub fn approx_bytes(&self) -> usize {
        self.shards.iter().map(Stem::approx_bytes).sum()
    }

    /// Dictionary backend in use (identical across shards).
    pub fn backend(&self) -> &'static str {
        self.shards[0].backend()
    }

    /// Withheld bounce-backs across all shards.
    pub fn deferred_len(&self) -> usize {
        self.shards.iter().map(Stem::deferred_len).sum()
    }

    /// Virtual service units for one envelope under the parallel-server
    /// cost model (`CostModel::shard_parallel_service`): each shard is an
    /// independent server, so the envelope completes when the *busiest*
    /// shard does — the unit count is the max per-shard load, computed
    /// with the same routing the envelope will actually take (keyed
    /// probes hit one shard; fan-out probes and EOT broadcasts load every
    /// shard). Unsharded SteMs are serial servers: units = batch length.
    pub fn parallel_service_units(
        &self,
        batch: &TupleBatch,
        query: &QuerySpec,
        probe: bool,
    ) -> u64 {
        if self.num_shards == 1 || batch.is_empty() {
            return batch.len() as u64;
        }
        let mut loads = vec![0u64; self.shards.len()];
        if probe {
            let mut spans: Vec<(TableSet, Vec<&Predicate>)> = Vec::new();
            for tuple in batch.iter() {
                match self.probe_lane(&mut spans, tuple, query) {
                    Some(lane) => loads[lane] += 1,
                    None => {
                        for l in loads.iter_mut() {
                            *l += 1;
                        }
                    }
                }
            }
        } else {
            for tuple in batch.iter() {
                let row = &tuple.components()[0].row;
                if row.is_eot() {
                    for l in loads.iter_mut() {
                        *l += 1;
                    }
                } else {
                    loads[self.shard_of_row(row)] += 1;
                }
            }
        }
        loads.into_iter().max().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// The shard a hashable key belongs to; un-hashable keys (NULL/EOT)
    /// route to the overflow shard at index `num_shards`.
    fn shard_of_key(&self, key: &Value) -> usize {
        match key.stable_key_hash() {
            Some(h) => (h % self.num_shards as u64) as usize,
            None => self.num_shards,
        }
    }

    fn shard_of_row(&self, row: &Row) -> usize {
        match row.get(self.key_col) {
            Some(v) => self.shard_of_key(v),
            None => self.num_shards,
        }
    }

    /// Lane decision for one probe — the single source of truth shared by
    /// [`ShardedStem::probe_batch`] and the parallel-server cost model
    /// ([`ShardedStem::parallel_service_units`]), so the virtual speedup
    /// series can never drift from the routing the engine performs.
    ///
    /// `Some(shard)`: an equi binding on the shard key column pins the
    /// probe to one shard (equal keys co-locate, and overflow rows can
    /// never equal a probe key — that shard answers completely).
    /// `None`: bound on a non-key column, or no binding at all — the
    /// matching rows are spread across every lane, so the probe fans out.
    /// `spans` is the caller's per-span linking-predicate cache (probe
    /// batches are usually span-uniform, so it stays one entry).
    fn probe_lane<'q>(
        &self,
        spans: &mut Vec<(TableSet, Vec<&'q Predicate>)>,
        tuple: &Tuple,
        query: &'q QuerySpec,
    ) -> Option<usize> {
        let t = self.instance;
        let li = linking_for(spans, query, tuple.span(), t);
        match equi_binding(&spans[li].1, tuple, t) {
            Some((col, val)) if col == self.key_col => Some(self.shard_of_key(&val)),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Build
    // ------------------------------------------------------------------

    /// Build one tuple; mirrors [`Stem::build`] (`ts` is the next global
    /// timestamp, consumed only on a fresh insert).
    pub fn build(&mut self, tuple: &Tuple, state: &TupleState, ts: Timestamp) -> BuildResult {
        if self.num_shards == 1 {
            return self.shards[0].build(tuple, state, ts);
        }
        let mut counter = ts.saturating_sub(1);
        self.build_one(tuple, state, &mut counter)
    }

    fn build_one(
        &mut self,
        tuple: &Tuple,
        state: &TupleState,
        ts_counter: &mut Timestamp,
    ) -> BuildResult {
        let row = tuple.components()[0].row.clone();
        if row.is_eot() {
            return self.build_eot(tuple, state);
        }
        let s = self.shard_of_row(&row);
        let result = self.shards[s].build(tuple, state, *ts_counter + 1);
        if matches!(result, BuildResult::Fresh(_) | BuildResult::Deferred) {
            *ts_counter += 1;
        }
        self.enforce_window();
        result
    }

    /// Broadcast an EOT tuple into every shard's EOT index (EOTs consume
    /// no timestamp and are not stored as data, so the broadcast is pure
    /// bookkeeping — it keeps per-shard coverage/bounce decisions equal
    /// to the unsharded SteM's).
    fn build_eot(&mut self, tuple: &Tuple, state: &TupleState) -> BuildResult {
        for shard in &mut self.shards {
            let r = shard.build(tuple, state, 0);
            debug_assert_eq!(r, BuildResult::Eot);
        }
        BuildResult::Eot
    }

    /// Build a whole envelope; mirrors [`Stem::build_batch`]. Dictionary
    /// work (dedup + insert) is fanned out across shards — on the
    /// persistent worker pool once the envelope is large enough — while
    /// timestamp assignment stays serial in batch order, so results are
    /// identical to the unsharded engine's at any shard and worker count.
    /// Build lanes are never chunked: per-shard dedup is order-dependent
    /// within a lane, so one lane is one task (affinity = shard index).
    pub fn build_batch(
        &mut self,
        batch: &TupleBatch,
        states: &[TupleState],
        ts_counter: &mut Timestamp,
    ) -> Vec<BuildResult> {
        debug_assert_eq!(batch.len(), states.len());
        if self.num_shards == 1 {
            return self.shards[0].build_batch(batch, states, ts_counter);
        }
        if self.window.is_some() {
            // Windowed: the scalar engine inserts and sweeps per tuple;
            // a batch-deferred insert would mis-handle intra-batch
            // re-arrivals of evicted rows (see the windowed Stem tests).
            return batch
                .iter()
                .zip(states)
                .map(|(tuple, state)| self.build_one(tuple, state, ts_counter))
                .collect();
        }

        let n = batch.len();
        let n_lanes = self.shards.len();
        // Pass 1 (serial): route rows to shards; apply EOTs immediately
        // (they interact with no dictionary state, so position within the
        // batch is irrelevant — exactly as in the scalar engine).
        let mut results: Vec<Option<BuildResult>> = (0..n).map(|_| None).collect();
        let mut route: Vec<usize> = Vec::with_capacity(n);
        let mut lane_rows: Vec<Vec<Arc<Row>>> = vec![Vec::new(); n_lanes];
        let mut lane_idx: Vec<Vec<usize>> = vec![Vec::new(); n_lanes];
        for (i, (tuple, state)) in batch.iter().zip(states).enumerate() {
            let row = tuple.components()[0].row.clone();
            if row.is_eot() {
                results[i] = Some(self.build_eot(tuple, state));
                route.push(usize::MAX);
            } else {
                let s = self.shard_of_row(&row);
                lane_rows[s].push(row);
                lane_idx[s].push(i);
                route.push(s);
            }
        }

        // Pass 2 (parallel): per-shard dedup + dictionary insert, one
        // pool task per busy lane with the lane index as worker affinity
        // (the worker that last built a shard re-runs it, caches warm).
        let routed: usize = lane_rows.iter().map(Vec::len).sum();
        let busy_lanes = lane_rows.iter().filter(|l| !l.is_empty()).count();
        let mut fresh_lists: Vec<Vec<bool>> = vec![Vec::new(); n_lanes];
        if routed >= self.parallel_min_rows && busy_lanes > 1 && self.workers > 1 {
            WorkerPool::global().scope(self.workers, |scope| {
                for (lane_i, ((shard, rows), out)) in self
                    .shards
                    .iter_mut()
                    .zip(&lane_rows)
                    .zip(fresh_lists.iter_mut())
                    .enumerate()
                {
                    if rows.is_empty() {
                        continue;
                    }
                    scope.spawn(lane_i, move || {
                        *out = shard.ingest_batch(rows);
                    });
                }
            });
        } else {
            for ((shard, rows), out) in self
                .shards
                .iter_mut()
                .zip(&lane_rows)
                .zip(fresh_lists.iter_mut())
            {
                if !rows.is_empty() {
                    *out = shard.ingest_batch(rows);
                }
            }
        }
        let mut fresh = vec![false; n];
        for (lane, idxs) in lane_idx.iter().enumerate() {
            for (j, &i) in idxs.iter().enumerate() {
                fresh[i] = fresh_lists[lane][j];
            }
        }

        // Pass 3 (serial): global timestamps in batch order — the exact
        // sequence the unsharded `build_batch` would assign.
        for (i, (tuple, state)) in batch.iter().zip(states).enumerate() {
            if route[i] == usize::MAX {
                continue;
            }
            results[i] = Some(if fresh[i] {
                *ts_counter += 1;
                self.shards[route[i]].stamp_fresh(tuple, state, *ts_counter)
            } else {
                BuildResult::Duplicate
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch member resolved"))
            .collect()
    }

    /// Enforce the global FIFO window: evict from whichever shard holds
    /// the globally oldest row (minimum build timestamp) until the total
    /// population fits — the same victim sequence as the unsharded SteM.
    fn enforce_window(&mut self) {
        let Some(window) = self.window else {
            return;
        };
        while self.len() > window {
            let victim = self
                .shards
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.oldest_ts().map(|ts| (ts, i)))
                .min();
            match victim {
                Some((_, i)) => {
                    self.shards[i].evict_oldest();
                }
                None => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // Probe
    // ------------------------------------------------------------------

    /// Probe with a single tuple; mirrors [`Stem::probe`].
    pub fn probe(&self, tuple: &Tuple, state: &TupleState, query: &QuerySpec) -> ProbeReply {
        if self.num_shards == 1 {
            return self.shards[0].probe(tuple, state, query);
        }
        let batch = [tuple.clone()];
        let mut set = ProbeReplySet::new();
        self.probe_batch_into(&batch, std::slice::from_ref(state), query, &mut set);
        set.into_single_reply()
    }

    /// Probe a whole envelope into the caller-owned reply arena; mirrors
    /// [`Stem::probe_batch_into`]. Probes bound on the shard key column
    /// go to exactly their key's shard; all other probes fan out to every
    /// shard (overflow included) and the partial replies are merged by
    /// ascending build timestamp — global insertion order, i.e. the
    /// single-shard candidate order.
    ///
    /// Hash-once: the routing pass resolves and hashes every binding key
    /// exactly one time ([`HashedKey`]); the shard index `h % num_shards`
    /// and the shard dictionary's index descent read that same
    /// annotation. Lane sub-batches, dispatch chunks and per-chunk reply
    /// arenas live in a pool reused across fan-outs ([`ProbePool`]), so a
    /// steady probe stream allocates no envelope buffers.
    ///
    /// Skew rebalancing: each lane is cut into chunks of at most
    /// `ceil(routed / workers)` rows, so one hot lane spreads across the
    /// worker budget; probes are read-only, so chunking cannot change any
    /// reply. The serial path (small envelope / one busy lane / one
    /// worker) runs the same code with one chunk per lane.
    pub fn probe_batch_into(
        &self,
        batch: &[Tuple],
        states: &[TupleState],
        query: &QuerySpec,
        out: &mut ProbeReplySet,
    ) {
        debug_assert_eq!(batch.len(), states.len());
        if self.num_shards == 1 {
            return self.shards[0].probe_batch_into(batch, states, query, out);
        }
        let t = self.instance;
        let n_lanes = self.shards.len();
        let mut pool = self.lock_probe_pool();
        let ProbePool {
            lanes,
            lane_of,
            tasks,
            chunk_sets,
            cursors,
        } = &mut *pool;
        lanes.resize_with(n_lanes, LaneScratch::default);
        for lane in lanes.iter_mut() {
            lane.clear();
        }
        lane_of.clear();

        // Pass 1 (serial): binding resolution + hash + routing decision
        // per probe, all from one computation. Linking predicates are
        // resolved once per distinct span, as in `Stem::probe_batch`.
        let mut spans: Vec<(TableSet, Vec<&Predicate>)> = Vec::new();
        for (tuple, state) in batch.iter().zip(states) {
            let li = linking_for(&mut spans, query, tuple.span(), t);
            let binding: ProbeBinding =
                equi_binding(&spans[li].1, tuple, t).map(|(col, val)| (col, HashedKey::new(val)));
            let lane = match &binding {
                // A binding on the shard key column pins the probe to one
                // shard (un-hashable keys ride the overflow lane).
                Some((col, key)) if *col == self.key_col => Some(match key.hash() {
                    Some(h) => h.shard(self.num_shards),
                    None => self.num_shards,
                }),
                // Bound on a non-key column, or no binding: fan out (each
                // shard still gets the binding for its own index descent).
                _ => None,
            };
            match lane {
                Some(l) => lanes[l].push(tuple, state, &binding),
                None => {
                    for lane in lanes.iter_mut() {
                        lane.push(tuple, state, &binding);
                    }
                }
            }
            lane_of.push(lane);
        }

        // Pass 2 (parallel): cut lanes into dispatch chunks and run them
        // on the pool. A keyed-skewed envelope (every probe hashing to
        // one shard) yields chunks that spread across the worker budget
        // instead of serializing behind one lane.
        let work: usize = lanes.iter().map(|l| l.batch.len()).sum();
        // Unlike the build fan-out, probe parallelism does not require
        // more than one busy lane: chunking splits even a single hot
        // lane (every probe keyed to one value) across the budget.
        let parallel = work >= self.parallel_min_rows && self.workers > 1 && work > 1;
        let chunk_target = if parallel {
            work.div_ceil(self.workers).max(1)
        } else {
            usize::MAX
        };
        tasks.clear();
        cursors.clear();
        for (lane_i, lane) in lanes.iter().enumerate() {
            // The merge pass starts each lane at its first chunk.
            cursors.push(tasks.len());
            let n = lane.batch.len();
            let mut start = 0;
            while start < n {
                let end = (start + chunk_target).min(n);
                tasks.push((lane_i, start, end));
                start = end;
            }
        }
        chunk_sets.resize_with(tasks.len().max(chunk_sets.len()), ProbeReplySet::new);
        for set in chunk_sets.iter_mut() {
            set.clear();
        }
        if parallel {
            let shards = &self.shards;
            WorkerPool::global().scope(self.workers, |scope| {
                for (&(lane_i, start, end), set) in tasks.iter().zip(chunk_sets.iter_mut()) {
                    let lane = &lanes[lane_i];
                    let shard = &shards[lane_i];
                    scope.spawn(lane_i, move || {
                        shard.probe_batch_prehashed_into(
                            &lane.batch.as_slice()[start..end],
                            &lane.states[start..end],
                            query,
                            &lane.bindings[start..end],
                            set,
                        );
                    });
                }
            });
        } else {
            for (&(lane_i, start, end), set) in tasks.iter().zip(chunk_sets.iter_mut()) {
                let lane = &lanes[lane_i];
                self.shards[lane_i].probe_batch_prehashed_into(
                    &lane.batch.as_slice()[start..end],
                    &lane.states[start..end],
                    query,
                    &lane.bindings[start..end],
                    set,
                );
            }
        }

        // Pass 3 (serial): merge back into batch order. Each lane's
        // chunks hold its probes in batch order, so one task cursor per
        // lane suffices; replies move between arenas without
        // reallocating.
        let observed_ts = self.max_ts();
        for &lane_opt in lane_of.iter() {
            match lane_opt {
                Some(lane) => {
                    let meta = pull_reply(lane, tasks, cursors, chunk_sets, out);
                    // The prober records the whole SteM's max timestamp,
                    // not the one shard's.
                    out.push_meta(ReplyMeta {
                        observed_ts,
                        ..meta
                    });
                }
                None => {
                    let start = out.total_results();
                    let mut raw_matches = 0usize;
                    let mut outcome = None;
                    for lane in 0..n_lanes {
                        let meta = pull_reply(lane, tasks, cursors, chunk_sets, out);
                        raw_matches += meta.raw_matches;
                        match outcome {
                            None => outcome = Some(meta.outcome),
                            // Bounce decisions depend only on broadcast
                            // EOT state and AM flags — equal everywhere.
                            Some(o) => debug_assert_eq!(o, meta.outcome),
                        }
                    }
                    // Ascending build timestamp = global insertion order,
                    // the single-shard candidate order (stable sort keeps
                    // per-shard order for ties, though stored timestamps
                    // are unique).
                    out.results_tail_mut(start).sort_by_key(|(tup, _)| {
                        tup.component(t).map(|c| c.ts).unwrap_or(UNBUILT_TS)
                    });
                    out.push_meta(ReplyMeta {
                        outcome: outcome.expect("at least one lane"),
                        observed_ts,
                        raw_matches,
                        len: out.total_results() - start,
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Deferred release (Grace mode)
    // ------------------------------------------------------------------

    /// Release withheld bounce-backs, clustered by hash partition;
    /// mirrors [`Stem::release_deferred`]. The per-shard queues are
    /// merged and sorted by `(bounce partition, build timestamp)` — the
    /// scalar release is a *stable* partition sort over build order, so
    /// the merged order is identical to the unsharded engine's.
    pub fn release_deferred(&mut self) -> Vec<(Tuple, TupleState)> {
        if self.num_shards == 1 {
            return self.shards[0].release_deferred();
        }
        let mut all: Vec<(Tuple, TupleState)> = Vec::with_capacity(self.deferred_len());
        for shard in &mut self.shards {
            all.append(&mut shard.take_deferred());
        }
        let partitioner = &self.shards[0];
        all.sort_by_key(|(tuple, _)| {
            let row = &tuple.components()[0].row;
            (partitioner.partition_of(row), tuple.timestamp())
        });
        all
    }
}

/// Take the next unconsumed reply of `lane` out of its chunk arenas,
/// moving its results into `out` and returning its header. Chunks are
/// lane-major and each holds its probes in batch order, so advancing the
/// lane's task cursor past drained chunks walks the lane's replies in
/// exactly the order the routing pass pushed its probes.
fn pull_reply(
    lane: usize,
    tasks: &[(usize, usize, usize)],
    cursors: &mut [usize],
    chunk_sets: &mut [ProbeReplySet],
    out: &mut ProbeReplySet,
) -> ReplyMeta {
    let mut ti = cursors[lane];
    loop {
        debug_assert!(
            ti < tasks.len() && tasks[ti].0 == lane,
            "lane {lane} reply underflow"
        );
        if chunk_sets[ti].remaining() > 0 {
            cursors[lane] = ti;
            return chunk_sets[ti].take_results_into(out);
        }
        ti += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stem::{make_eot_row, make_scan_eot_row, ProbeOutcome};
    use stems_catalog::{Catalog, ScanSpec, TableDef, TableInstance};
    use stems_storage::StoreKind;
    use stems_types::{CmpOp, ColRef, ColumnType, PredId, Schema};

    /// R(key, a) ⋈ S(x, y) on R.a = S.x — S's SteM key column is 0.
    fn setup() -> (Catalog, QuerySpec) {
        let mut c = Catalog::new();
        let r = c
            .add_table(TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            ))
            .unwrap();
        let s = c
            .add_table(TableDef::new(
                "S",
                Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
            ))
            .unwrap();
        c.add_scan(r, ScanSpec::default()).unwrap();
        c.add_scan(s, ScanSpec::default()).unwrap();
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "r".into(),
                },
                TableInstance {
                    source: s,
                    alias: "s".into(),
                },
            ],
            vec![Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            )],
            None,
        )
        .unwrap();
        (c, q)
    }

    fn sharded(num_shards: usize, opts: StemOptions) -> ShardedStem {
        ShardedStem::new(
            TableIdx(1),
            SourceId(1),
            &[0],
            true,
            false,
            StemOptions { num_shards, ..opts },
        )
    }

    fn s_tuple(x: i64, y: i64) -> Tuple {
        Tuple::singleton_of(TableIdx(1), vec![Value::Int(x), Value::Int(y)])
    }

    fn s_null_key(y: i64) -> Tuple {
        Tuple::singleton_of(TableIdx(1), vec![Value::Null, Value::Int(y)])
    }

    fn r_tuple(key: i64, a: i64) -> Tuple {
        Tuple::singleton_of(TableIdx(0), vec![Value::Int(key), Value::Int(a)])
    }

    /// Build the same mixed workload (dups, NULL keys, keyed + scan EOTs)
    /// into stems at every shard count; every observable must agree.
    fn build_workload(stem: &mut ShardedStem) -> (Vec<BuildResult>, Timestamp) {
        let mut tuples: Vec<Tuple> = Vec::new();
        for i in 0..40 {
            tuples.push(s_tuple(i % 13, i));
        }
        tuples.push(s_null_key(1));
        tuples.push(s_tuple(3, 3)); // duplicate of i=3? (3 % 13 == 3, y=3) yes
        tuples.push(s_null_key(1)); // duplicate in the overflow shard
        tuples.push(Tuple::singleton(
            TableIdx(1),
            make_eot_row(2, &[(0, Value::Int(5))]),
        ));
        let batch: TupleBatch = tuples.into_iter().collect();
        let states = vec![TupleState::new(); batch.len()];
        let mut ts = 0;
        let results = stem.build_batch(&batch, &states, &mut ts);
        (results, ts)
    }

    /// Tuple equality ignores timestamps (execution metadata), so pull
    /// the stamped build timestamps out explicitly for bit-identity
    /// comparisons.
    fn stamped_ts(results: &[BuildResult]) -> Vec<Option<Timestamp>> {
        results
            .iter()
            .map(|r| match r {
                BuildResult::Fresh(t) => Some(t.timestamp()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn build_results_match_single_shard_bit_for_bit() {
        let mut one = sharded(1, StemOptions::default());
        let (r1, ts1) = build_workload(&mut one);
        for shards in [2usize, 4, 7] {
            let mut many = sharded(shards, StemOptions::default());
            let (rn, tsn) = build_workload(&mut many);
            assert_eq!(r1, rn, "{shards} shards: BuildResults diverged");
            assert_eq!(
                stamped_ts(&r1),
                stamped_ts(&rn),
                "{shards} shards: timestamp assignment diverged"
            );
            assert_eq!(ts1, tsn, "{shards} shards: timestamp counter diverged");
            assert_eq!(one.len(), many.len());
            assert_eq!(one.max_ts(), many.max_ts());
            assert_eq!(one.build_count(), many.build_count());
            assert_eq!(one.duplicates_absorbed(), many.duplicates_absorbed());
            assert_eq!(one.eot_version(), many.eot_version());
        }
    }

    #[test]
    fn probe_replies_match_single_shard_bit_for_bit() {
        let (_c, q) = setup();
        let mut one = sharded(1, StemOptions::default());
        let mut four = sharded(4, StemOptions::default());
        build_workload(&mut one);
        build_workload(&mut four);
        // Keyed probes (single-lane fast path), incl. a missing key and a
        // NULL key; probe after all builds so the TimeStamp rule passes.
        for probe_key in [0i64, 3, 5, 12, 99] {
            let r = r_tuple(1, probe_key).with_timestamp(TableIdx(0), 1_000);
            let p1 = one.probe(&r, &TupleState::new(), &q);
            let p4 = four.probe(&r, &TupleState::new(), &q);
            assert_eq!(p1.results, p4.results, "key {probe_key}");
            let match_ts = |p: &ProbeReply| -> Vec<Timestamp> {
                p.results
                    .iter()
                    .map(|(t, _)| t.component(TableIdx(1)).unwrap().ts)
                    .collect()
            };
            assert_eq!(match_ts(&p1), match_ts(&p4), "key {probe_key}");
            assert_eq!(p1.outcome, p4.outcome, "key {probe_key}");
            assert_eq!(p1.observed_ts, p4.observed_ts, "key {probe_key}");
            assert_eq!(p1.raw_matches, p4.raw_matches, "key {probe_key}");
        }
        // NULL probe key: routed to the overflow lane, matches nothing
        // (SQL equality), same bounce as unsharded.
        let rn = Tuple::singleton_of(TableIdx(0), vec![Value::Int(1), Value::Null])
            .with_timestamp(TableIdx(0), 1_000);
        let p1 = one.probe(&rn, &TupleState::new(), &q);
        let p4 = four.probe(&rn, &TupleState::new(), &q);
        assert!(p4.results.is_empty());
        assert_eq!(p1.outcome, p4.outcome);
    }

    #[test]
    fn cartesian_probe_merges_in_global_insertion_order() {
        let (c, q) = setup();
        let q = QuerySpec::new(&c, q.tables, vec![], None).unwrap();
        let mut one = sharded(1, StemOptions::default());
        let mut four = sharded(4, StemOptions::default());
        build_workload(&mut one);
        build_workload(&mut four);
        let r = r_tuple(1, 999).with_timestamp(TableIdx(0), 1_000);
        let p1 = one.probe(&r, &TupleState::new(), &q);
        let p4 = four.probe(&r, &TupleState::new(), &q);
        assert!(!p4.results.is_empty());
        // Bit-identical: same results in the same (insertion) order.
        assert_eq!(p1.results, p4.results);
        assert_eq!(p1.raw_matches, p4.raw_matches);
        // And the order really is ascending build timestamp.
        let ts: Vec<Timestamp> = p4
            .results
            .iter()
            .map(|(t, _)| t.component(TableIdx(1)).unwrap().ts)
            .collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
    }

    /// Satellite fix: reported memory must equal the sum of the shard
    /// stores plus the overflow lane — not one shard's view.
    #[test]
    fn approx_bytes_and_deferred_len_aggregate_across_shards() {
        let mut stem = sharded(4, StemOptions::default());
        build_workload(&mut stem);
        let per_shard = stem.shard_bytes();
        assert_eq!(per_shard.len(), 5, "4 keyed shards + overflow lane");
        assert!(
            per_shard.iter().filter(|b| **b > 0).count() >= 2,
            "workload must actually spread across shards: {per_shard:?}"
        );
        assert_eq!(
            stem.approx_bytes(),
            per_shard.iter().sum::<usize>(),
            "approx_bytes must be the sum of shard stores + overflow lane"
        );
        // The overflow lane holds the NULL-keyed row and is counted.
        assert_eq!(*stem.shard_lens().last().unwrap(), 1);

        // Deferred queues aggregate the same way.
        let opts = StemOptions {
            deferred_bounce: true,
            partitions: 4,
            ..StemOptions::default()
        };
        let mut one = sharded(1, opts.clone());
        let mut four = sharded(4, opts);
        let batch: TupleBatch = (0..20).map(|i| s_tuple(i, i)).collect();
        let states = vec![TupleState::new(); batch.len()];
        let (mut t1, mut t4) = (0, 0);
        one.build_batch(&batch, &states, &mut t1);
        four.build_batch(&batch, &states, &mut t4);
        assert_eq!(one.deferred_len(), 20);
        assert_eq!(four.deferred_len(), 20, "deferred_len must sum shards");
        // Clustered release order is identical to the unsharded engine's.
        let r1: Vec<Tuple> = one.release_deferred().into_iter().map(|(t, _)| t).collect();
        let r4: Vec<Tuple> = four
            .release_deferred()
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(r1, r4);
        assert_eq!(four.deferred_len(), 0);
    }

    #[test]
    fn eot_broadcast_keeps_coverage_and_versioning_global() {
        let (_c, q) = setup();
        let mut stem = ShardedStem::new(
            TableIdx(1),
            SourceId(1),
            &[0],
            false,
            true,
            StemOptions {
                num_shards: 4,
                ..StemOptions::default()
            },
        );
        // Keyed EOT for x=10 covers only matching probes.
        stem.build(
            &Tuple::singleton(TableIdx(1), make_eot_row(2, &[(0, Value::Int(10))])),
            &TupleState::new(),
            0,
        );
        assert_eq!(stem.eot_version(), 1);
        let covered = r_tuple(1, 10).with_timestamp(TableIdx(0), 1);
        assert_eq!(
            stem.probe(&covered, &TupleState::new(), &q).outcome,
            ProbeOutcome::Consumed
        );
        let uncovered = r_tuple(2, 20).with_timestamp(TableIdx(0), 2);
        assert!(matches!(
            stem.probe(&uncovered, &TupleState::new(), &q).outcome,
            ProbeOutcome::Bounced(_)
        ));
        // Scan EOT covers everything, from any shard's perspective.
        stem.build(
            &Tuple::singleton(TableIdx(1), make_scan_eot_row(2)),
            &TupleState::new(),
            0,
        );
        assert!(stem.scan_complete());
        assert_eq!(stem.eot_version(), 2);
        assert_eq!(
            stem.probe(&uncovered, &TupleState::new(), &q).outcome,
            ProbeOutcome::Consumed
        );
    }

    #[test]
    fn windowed_sharded_stem_sweeps_global_fifo() {
        let opts = StemOptions {
            eviction_window: Some(3),
            ..StemOptions::default()
        };
        let mut one = sharded(1, opts.clone());
        let mut four = sharded(4, opts);
        let mut ts1 = 0;
        let mut ts4 = 0;
        // Interleave duplicates and evicted re-arrivals; both engines must
        // agree on every BuildResult and every aggregate, batch by batch.
        for round in 0..6i64 {
            let batch: TupleBatch = (0..7)
                .map(|i| {
                    let k = (round * 3 + i) % 10;
                    s_tuple(k, k)
                })
                .collect();
            let states = vec![TupleState::new(); batch.len()];
            let r1 = one.build_batch(&batch, &states, &mut ts1);
            let r4 = four.build_batch(&batch, &states, &mut ts4);
            assert_eq!(r1, r4, "round {round}");
            assert_eq!(ts1, ts4, "round {round}");
            assert_eq!(one.len(), four.len(), "round {round}");
            assert!(four.len() <= 3, "window overrun");
            assert_eq!(one.evictions(), four.evictions(), "round {round}");
        }
        assert!(four.evictions() > 0);
    }

    /// Probe a batch into a fresh arena and flatten it into comparable
    /// per-reply views.
    #[allow(clippy::type_complexity)]
    fn probe_flat(
        stem: &ShardedStem,
        probes: &TupleBatch,
        states: &[TupleState],
        q: &QuerySpec,
    ) -> Vec<(ReplyMeta, Vec<(Tuple, stems_types::PredSet)>)> {
        let mut set = ProbeReplySet::new();
        stem.probe_batch_into(probes.as_slice(), states, q, &mut set);
        set.iter().map(|(m, r)| (*m, r.to_vec())).collect()
    }

    #[test]
    fn parallel_threshold_path_matches_serial_path() {
        // A batch big enough to cross the dispatch threshold: the pooled
        // fan-out must produce exactly what the serial fan-out produces.
        let (_c, q) = setup();
        let rows = crate::runtime::DEFAULT_PARALLEL_MIN_ROWS * 2;
        let batch: TupleBatch = (0..rows as i64).map(|i| s_tuple(i % 101, i)).collect();
        let states = vec![TupleState::new(); batch.len()];
        let mut one = sharded(1, StemOptions::default());
        let mut four = sharded(4, StemOptions::default());
        let (mut t1, mut t4) = (0, 0);
        let r1 = one.build_batch(&batch, &states, &mut t1);
        let r4 = four.build_batch(&batch, &states, &mut t4);
        assert_eq!(r1, r4);
        assert!(
            four.shard_lens()[..4].iter().all(|l| *l > 0),
            "a large keyed workload must populate every shard: {:?}",
            four.shard_lens()
        );
        // Large probe envelope (keyed): parallel path, identical replies.
        let probes: TupleBatch = (0..rows as i64)
            .map(|i| r_tuple(i, i % 101).with_timestamp(TableIdx(0), 1_000_000))
            .collect();
        let pstates = vec![TupleState::new(); probes.len()];
        let p1 = probe_flat(&one, &probes, &pstates, &q);
        let p4 = probe_flat(&four, &probes, &pstates, &q);
        assert_eq!(p1, p4);
    }

    #[test]
    fn worker_count_is_invariant_for_pooled_fanouts() {
        // Same workload at worker budgets {1, 2, 4, 8} (threshold forced
        // to 1 so every envelope dispatches): builds and probe replies
        // must be bit-identical — the pool decides the schedule, never
        // the result.
        let (_c, q) = setup();
        let rows = 600i64;
        let batch: TupleBatch = (0..rows).map(|i| s_tuple(i % 37, i)).collect();
        let states = vec![TupleState::new(); batch.len()];
        let probes: TupleBatch = (0..rows)
            .map(|i| r_tuple(i, i % 37).with_timestamp(TableIdx(0), 1_000_000))
            .collect();
        let pstates = vec![TupleState::new(); probes.len()];
        let at_workers = |w: usize| {
            let mut stem = sharded(
                4,
                StemOptions {
                    workers: Some(w),
                    parallel_min_rows: Some(1),
                    ..StemOptions::default()
                },
            );
            let mut ts = 0;
            let builds = stem.build_batch(&batch, &states, &mut ts);
            let replies = probe_flat(&stem, &probes, &pstates, &q);
            let stamps = stamped_ts(&builds);
            (builds, stamps, ts, replies)
        };
        let base = at_workers(1);
        for w in [2usize, 4, 8] {
            assert_eq!(base, at_workers(w), "workers={w} diverged");
        }
    }

    #[test]
    fn skewed_single_lane_chunks_match_serial() {
        // Every probe keyed to ONE value: a single hot lane. The chunked
        // dispatch must split it across workers and still merge replies
        // bit-identically to the serial single-chunk path.
        let (_c, q) = setup();
        let mut stem = sharded(
            4,
            StemOptions {
                workers: Some(4),
                parallel_min_rows: Some(1),
                ..StemOptions::default()
            },
        );
        let mut serial = sharded(
            4,
            StemOptions {
                workers: Some(1),
                ..StemOptions::default()
            },
        );
        let batch: TupleBatch = (0..200i64).map(|i| s_tuple(7, i)).collect();
        let states = vec![TupleState::new(); batch.len()];
        let (mut t1, mut t2) = (0, 0);
        stem.build_batch(&batch, &states, &mut t1);
        serial.build_batch(&batch, &states, &mut t2);
        let probes: TupleBatch = (0..300i64)
            .map(|i| r_tuple(i, 7).with_timestamp(TableIdx(0), 1_000_000))
            .collect();
        let pstates = vec![TupleState::new(); probes.len()];
        let chunked = probe_flat(&stem, &probes, &pstates, &q);
        let unchunked = probe_flat(&serial, &probes, &pstates, &q);
        assert_eq!(chunked, unchunked);
        // Every probe really matched the whole hot lane.
        assert!(chunked
            .iter()
            .all(|(m, r)| m.raw_matches == 200 && r.len() == 200));
    }

    #[test]
    fn parallel_service_units_take_the_busiest_shard() {
        let (c, q) = setup();
        let mut one = sharded(1, StemOptions::default());
        let mut four = sharded(4, StemOptions::default());
        let batch: TupleBatch = (0..40).map(|i| s_tuple(i, i)).collect();
        let states = vec![TupleState::new(); batch.len()];

        // Unsharded: a serial server — units are the whole envelope.
        assert_eq!(one.parallel_service_units(&batch, &q, false), 40);

        // Sharded build: units equal the busiest shard's load.
        let build_units = four.parallel_service_units(&batch, &q, false);
        let (mut t1, mut t4) = (0, 0);
        one.build_batch(&batch, &states, &mut t1);
        four.build_batch(&batch, &states, &mut t4);
        let max_lane = *four.shard_lens().iter().max().unwrap() as u64;
        assert_eq!(build_units, max_lane);
        assert!(build_units < 40, "distinct keys must spread across shards");

        // Keyed probes spread the same way …
        let probes: TupleBatch = (0..40)
            .map(|i| r_tuple(i, i).with_timestamp(TableIdx(0), 1_000))
            .collect();
        let probe_units = four.parallel_service_units(&probes, &q, true);
        assert!(probe_units < 40);
        assert_eq!(one.parallel_service_units(&probes, &q, true), 40);

        // … but fan-out probes (no equi binding) load every shard fully.
        let qx = QuerySpec::new(&c, q.tables.clone(), vec![], None).unwrap();
        assert_eq!(four.parallel_service_units(&probes, &qx, true), 40);
    }

    #[test]
    fn store_kinds_shard_consistently() {
        // The sharding layer composes with every insertion-ordered
        // backend; result multisets (and for these backends, order) match
        // the single shard.
        let (_c, q) = setup();
        for store in [
            StoreKind::List,
            StoreKind::Hash,
            StoreKind::Adaptive { threshold: 4 },
        ] {
            let opts = StemOptions {
                store: store.clone(),
                ..StemOptions::default()
            };
            let mut one = sharded(1, opts.clone());
            let mut four = sharded(4, opts);
            build_workload(&mut one);
            build_workload(&mut four);
            let r = r_tuple(1, 3).with_timestamp(TableIdx(0), 1_000);
            let p1 = one.probe(&r, &TupleState::new(), &q);
            let p4 = four.probe(&r, &TupleState::new(), &q);
            assert_eq!(p1.results, p4.results, "{store:?}");
        }
    }
}
