//! State Modules (SteMs), eddy routing, and the routing-constraint layer —
//! the contribution of *"Using State Modules for Adaptive Query Processing"*
//! (Raman, Deshpande & Hellerstein, ICDE 2003).
//!
//! # Architecture (paper §2)
//!
//! Four module kinds run "concurrently" (here: interleaved on a
//! deterministic discrete-event simulation, which the paper notes is an
//! equivalent single-threaded realization):
//!
//! * **Selection Modules** ([`sm::Sm`]) — one per selection predicate.
//! * **Access Modules** ([`am::ScanAm`], [`am::IndexAm`]) — one per access
//!   method; scans push rows at a rate, indexes answer bound probes
//!   asynchronously and emit End-Of-Transmission tuples.
//! * **State Modules** ([`stem::Stem`]) — "half joins": a dictionary per
//!   table instance handling build/probe, duplicate elimination, EOT
//!   bookkeeping, timestamp filtering and bounce-back decisions. The
//!   engine instantiates them behind [`sharded::ShardedStem`], which
//!   hash-partitions SteM storage by join key ([`ExecConfig::num_shards`]
//!   / `STEMS_NUM_SHARDS`) and fans build/probe envelopes out across
//!   shards on the persistent work-stealing worker pool
//!   ([`runtime::WorkerPool`], sized by [`ExecConfig::workers`] /
//!   `STEMS_WORKERS`) — observably identical to the unsharded SteM at
//!   every shard and worker count.
//! * the **eddy** ([`EddyExecutor`]) — routes every tuple between the other
//!   modules according to a [`policy::RoutingPolicy`], under the
//!   correctness constraints of paper Table 2 enforced by [`router`].
//!
//! Join algorithms are not programmed anywhere: they *emerge* from routing.
//! Hash-backed SteMs + build-then-probe routing is an n-ary symmetric hash
//! join (§2.3); probing an index AM after a SteM miss is an index join with
//! a shared lookup cache (§3.3); and a benefit/cost policy that splits
//! bounced probes between "probe the index" and "wait for the scan"
//! hybridizes index and hash joins mid-flight (§4.3).
//!
//! # Correctness
//!
//! The router enforces, per paper Table 2:
//! * **BuildFirst** — singletons build into their SteM before probing
//!   (always, like the paper's implementation §4.1, unless a table is
//!   explicitly exempted per the §3.5 relaxation);
//! * **BoundedRepetition** — no unbounded re-routing; re-probes happen only
//!   under the §3.5 LastMatchTimeStamp discipline and only when the target
//!   SteM has changed;
//! * **ProbeCompletion** — a tuple bounced back from a SteM probe becomes a
//!   *prior prober* (Definition 3): it may not probe other SteMs and stays
//!   routable only to its probe-completion table's SteM/AMs;
//!
//! while the SteMs enforce **SteM BounceBack** (including §3.2 duplicate
//! absorption and the §3.3/§4.1 index-AM rules) and **TimeStamp** (§3.1)
//! internally — invisible to the routing policy, exactly as the paper
//! prescribes.
//!
//! # Workspace layout
//!
//! This crate sits at the top of the `stems` cargo workspace:
//!
//! ```text
//! stems-types    values, rows, tuples, TupleBatch, predicates
//!    ↑
//! stems-storage  SteM dictionary backends (batch insert/probe)
//! stems-sim      discrete-event kernel, seeded RNG, metrics
//! stems-catalog  tables, access methods, queries, reference executor
//!    ↑
//! stems-core     ← this crate: SteMs, AMs, SMs, eddy, router, policies
//!    ↑
//! stems-sql      SQL front end      stems-baseline  classical operators
//! stems-datagen  synthetic sources  stems-bench     figures & benches
//! ```
//!
//! The root `stems` package re-exports everything (`stems::prelude`).
//!
//! # Batched routing (the default engine path)
//!
//! The paper routes tuples one at a time; every hop pays a routing-policy
//! decision, a constraint check and a scheduler event — the per-tuple
//! adaptivity overhead that makes tuple-at-a-time eddies expensive at
//! high rates. The engine here amortizes that cost over
//! [`stems_types::TupleBatch`]es:
//!
//! 1. Tuples re-entering the eddy together (a probe's concatenations, an
//!    index AM's response wave, a Grace clustered release, an unpark
//!    wave) have their legal candidate sets computed **per tuple** by
//!    [`router::candidates`] — the Table 2 constraints are never relaxed.
//! 2. Tuples whose candidate sets are *identical* are grouped, up to
//!    [`ExecConfig::batch_size`] per group.
//! 3. Each group is routed by **one**
//!    [`policy::RoutingPolicy::choose_batch`] call (default: delegate to
//!    the scalar `choose` on a representative member) into **one**
//!    envelope, serviced by the destination module in bulk:
//!    [`stem::Stem::build_batch`] / [`stem::Stem::probe_batch`] amortize
//!    dictionary maintenance through the storage layer's
//!    `insert_batch` / `lookup_eq_batch`, and [`sm::Sm::apply_batch`]
//!    filters whole batches.
//!
//! `batch_size: 1` degenerates to exactly the scalar engine (same
//! decisions, same event counts); `tests/prop_batch_equivalence.rs`
//! asserts result-multiset equality between the two paths on randomized
//! SPJ workloads, and `bench_batch` records the throughput win in
//! `BENCH_1.json`.
//!
//! # Correctness tooling
//!
//! All synchronization goes through [`sync`], a shim that re-exports
//! `std::sync` normally but routes through the `stems-check` model
//! checker under the `model` feature — `tests/model.rs` explores every
//! bounded interleaving of the runtime's protocols. `stems-lint`
//! (`cargo run -p stems-lint`) enforces the shim funnel, SAFETY
//! comments on `unsafe`, and the virtual-time discipline.

// Every `unsafe` operation must be visibly scoped and argued even
// inside unsafe fns; the lone transmute in `runtime.rs` carries the
// model-checked soundness argument.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod am;
pub mod engine;
pub mod memo;
pub mod plan;
pub mod policy;
pub mod report;
pub mod router;
pub mod runtime;
pub mod server;
pub mod sharded;
pub mod sm;
pub mod stem;
pub mod sync;
pub mod tuple_state;

pub use engine::{ConfigError, EddyExecutor, ExecConfig};
pub use memo::{MemoCache, MemoCell, MemoCounters};
pub use plan::{PlanLayout, StemCell, StemOptions};
pub use policy::{
    BenefitCostPolicy, FixedOrderPolicy, LotteryPolicy, RoutingPolicy, RoutingPolicyKind,
};
pub use report::{Report, ServerReport, TraceEvent, TraceKind};
pub use runtime::WorkerPool;
pub use server::{
    AdmissionPolicy, QueryHandle, QueryId, QueryServer, QueryStatus, ServerBuilder, ServerError,
    ServerStats, Submission,
};
pub use sharded::ShardedStem;
pub use sm::{FusedVerdict, Sm};
pub use tuple_state::TupleState;
