//! The crate's single doorway to synchronization primitives.
//!
//! Normally this module is a zero-cost re-export of `std::sync`. Under
//! the `model` cargo feature the same names resolve to `stems_check`'s
//! model-aware wrappers instead, so the very protocol types the runtime
//! ships ([`crate::runtime::SleepGate`], [`crate::runtime::CompletionLatch`],
//! [`ScratchPool`]) can be driven through the deterministic model checker
//! (`tests/model.rs`) — every interleaving within a preemption bound,
//! not just the ones the OS scheduler happens to produce.
//!
//! `stems-lint` enforces the funnel: no `std::sync` primitive imports
//! outside this module, and no `.lock().unwrap()` outside the poison
//! helpers below. The poison policy is uniform across the crate:
//!
//! * [`lock_ok`] — shrug the poison off and keep the data. For state
//!   that is updated atomically with respect to panics (queue/counter
//!   updates, envelope-atomic SteM state): the value behind the lock is
//!   still structurally valid, and propagating poison would take down
//!   every later query sharing the process-global runtime for no safety
//!   gain.
//! * [`lock_recover`] — clear the poison mark and run a caller-supplied
//!   repair first. For state that may be mid-mutation when a prober
//!   dies (scratch pools, reply arenas): the repair discards the
//!   half-written caches, which are pure performance state.

#[cfg(not(feature = "model"))]
pub use std::sync::atomic;
#[cfg(not(feature = "model"))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(feature = "model")]
pub use stems_check::sync::atomic;
#[cfg(feature = "model")]
pub use stems_check::sync::{Condvar, Mutex, MutexGuard};

// Pure data-sharing / one-shot types with no scheduling behaviour worth
// modelling; always `std`.
pub use std::sync::{Arc, LockResult, OnceLock, PoisonError};

/// Lock `mutex`, shrugging off poison and keeping the data as-is. See
/// the module docs for when this is the right recovery.
pub fn lock_ok<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lock `mutex`; on poison, clear the mark, run `repair` on the data,
/// and hand back the repaired guard. `repair` is not called on the
/// clean path.
pub fn lock_recover<'a, T: ?Sized>(
    mutex: &'a Mutex<T>,
    repair: impl FnOnce(&mut T),
) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            mutex.clear_poison();
            let mut guard = poisoned.into_inner();
            repair(&mut guard);
            guard
        }
    }
}

/// Wait on `cv`, shrugging off poison on re-acquisition (the poison was
/// already handled — or deliberately shrugged — by whoever held the
/// lock last).
pub fn wait_ok<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// The parallel step barrier for one wave of independent work items —
/// the cross-thread protocol under the query server's parallel executor
/// stepping ([`crate::server::QueryServer`]).
///
/// Between two shared-scan waves the server has `total` executors that
/// may each be stepped by *any* thread, but each by **exactly one**
/// thread, and the wave may not merge back into the serial timeline
/// until **every** executor finished stepping. Rather than queueing one
/// pool job per executor (1000 queue pushes per wave at the 1000-query
/// point), a handful of runner jobs each drain a shared claim cursor:
///
/// * [`claim`](WaveBarrier::claim) hands out item indices exactly once
///   (an atomic fetch-add — two runners can never claim the same
///   executor, so disjoint `&mut` access per item is data-race free);
/// * [`finish_one`](WaveBarrier::finish_one) is called strictly *after*
///   the item's effects (the decrement shares a critical section with
///   the completion count, so a waiter that observes `done == total`
///   also observes every item's writes via the mutex);
/// * [`wait`](WaveBarrier::wait) blocks — helping with other work while
///   it can — until every claimed item has finished.
///
/// The protocol is model-checked in `stems-core/tests/model.rs` across
/// every bounded schedule (exactly-once claims, no early release), and
/// the seeded mutant with a torn load/store claim cursor is provably
/// caught there.
#[derive(Debug)]
pub struct WaveBarrier {
    cursor: atomic::AtomicUsize,
    total: usize,
    done: Mutex<usize>,
    cv: Condvar,
}

impl WaveBarrier {
    /// A barrier over `total` work items, none yet claimed.
    pub fn new(total: usize) -> WaveBarrier {
        WaveBarrier {
            cursor: atomic::AtomicUsize::new(0),
            total,
            done: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Claim the next unclaimed item index; `None` once all `total`
    /// items are claimed. Each index is returned exactly once across
    /// all claiming threads.
    pub fn claim(&self) -> Option<usize> {
        let i = self.cursor.fetch_add(1, atomic::Ordering::Relaxed);
        (i < self.total).then_some(i)
    }

    /// Mark one claimed item finished. Must be called strictly after the
    /// item's effects, exactly once per claimed index.
    pub fn finish_one(&self) {
        let mut done = lock_ok(&self.done);
        *done += 1;
        if *done == self.total {
            self.cv.notify_all();
        }
    }

    /// Block until every item finished. While items are outstanding,
    /// `help` is invited to make progress (run a queued job); it returns
    /// whether it did. Only when it cannot does the caller park —
    /// re-checking the count under the mutex first, so a completion
    /// between the check and the wait cannot be lost (the
    /// [`crate::runtime::CompletionLatch`] wait shape).
    pub fn wait(&self, mut help: impl FnMut() -> bool) {
        loop {
            if *lock_ok(&self.done) == self.total {
                return;
            }
            if help() {
                continue;
            }
            let done = lock_ok(&self.done);
            if *done != self.total {
                drop(wait_ok(&self.cv, done));
            }
        }
    }
}

/// A capped free-list of reusable scratch values (envelope-lifetime
/// probe buffers and the like) shared by concurrent probers.
///
/// Checked-out values are plain owned `T`s — no lock is held across an
/// envelope — and [`release`](ScratchPool::release) drops values beyond
/// `cap` so a one-off burst of probers cannot pin its high-water-mark
/// capacity forever. Poison recovery discards the pooled values: they
/// are pure caches, so an empty pool is always a correct pool. The
/// checkout/poison-recovery protocol is model-checked in
/// `stems-core/tests/model.rs`.
#[derive(Debug)]
pub struct ScratchPool<T> {
    slots: Mutex<Vec<T>>,
    cap: usize,
}

impl<T: Default> ScratchPool<T> {
    pub fn new(cap: usize) -> ScratchPool<T> {
        ScratchPool {
            slots: Mutex::new(Vec::new()),
            cap,
        }
    }

    /// Check a value out of the pool (or make a fresh one).
    pub fn acquire(&self) -> T {
        self.lock_slots().pop().unwrap_or_default()
    }

    /// Return a value; dropped silently when the pool is at `cap`.
    pub fn release(&self, value: T) {
        let mut slots = self.lock_slots();
        if slots.len() < self.cap {
            slots.push(value);
        }
    }

    /// Values currently pooled.
    pub fn pooled(&self) -> usize {
        self.lock_slots().len()
    }

    pub fn is_poisoned(&self) -> bool {
        self.slots.is_poisoned()
    }

    /// Run `f` with the free-list locked. Exists for tests that need to
    /// poison the pool deliberately (panic inside `f`); production code
    /// goes through [`acquire`](ScratchPool::acquire) /
    /// [`release`](ScratchPool::release).
    #[doc(hidden)]
    pub fn with_slots<R>(&self, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        f(&mut self.lock_slots())
    }

    fn lock_slots(&self) -> MutexGuard<'_, Vec<T>> {
        lock_recover(&self.slots, Vec::clear)
    }
}
