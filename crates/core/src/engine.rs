//! The eddy executor: a discrete-event loop that routes tuples between
//! modules (paper §2.1.1).
//!
//! "The eddy's role is to continuously route tuples among the rest of the
//! modules, according to a routing policy. ... A tuple is removed from the
//! eddy's dataflow and sent to the output if it spans all base tables and
//! is verified to pass all predicates. The eddy terminates the query when
//! there are no tuples in the dataflow, and each module has finished
//! processing all the tuples sent to it."
//!
//! Every module runs as a serial server with its own input queue and
//! per-operation virtual service times; index AMs additionally answer
//! probes asynchronously with their configured latency. Termination is the
//! natural emptiness of the event agenda — exactly the paper's condition.
//!
//! # Batched routing
//!
//! The default engine path routes [`TupleBatch`]es, not single tuples.
//! Whenever a set of tuples re-enters the eddy together (a probe's
//! concatenations, an index AM's response, a Grace release, an unpark
//! wave), the eddy computes each tuple's legal candidate set — the Table 2
//! constraint checks stay **per tuple** — and then groups tuples whose
//! candidate sets are identical. Each group of up to
//! [`ExecConfig::batch_size`] tuples pays *one* routing-policy decision,
//! one envelope, and one pair of start/complete events, amortizing the
//! per-tuple adaptivity overhead that tuple-at-a-time eddies suffer.
//! `batch_size: 1` reproduces the scalar tuple-at-a-time engine exactly.

use crate::am::IndexProbeOutcome;
use crate::plan::{instantiate, Module, PlanLayout, PlanOptions};
use crate::policy::{Feedback, Hint, RoutingPolicy, RoutingPolicyKind};
use crate::report::Report;
use crate::router::{self, Action, NoCandidates};
use crate::stem::{eot_bindings, BuildResult, ProbeOutcome, ProbeReplySet};
use crate::tuple_state::{CompletionNeed, PriorProber, TupleState};
use std::collections::VecDeque;
use stems_catalog::{Catalog, QuerySpec};
use stems_sim::{EventQueue, Metrics, SimRng, Time};
use stems_storage::fxhash::FxHashSet;
use stems_types::{Predicate, Result, StemsError, TableIdx, Timestamp, Tuple, TupleBatch, Value};

/// Virtual service times of local (in-process) operations, in µs. These
/// stand in for the CPU costs of the paper's Java modules; remote costs
/// (scan rates, index latencies) come from the access-method specs.
#[derive(Debug, Clone)]
pub struct CostModel {
    pub stem_build_us: u64,
    pub stem_probe_us: u64,
    pub per_match_us: u64,
    pub sm_us: u64,
    pub am_accept_us: u64,
    /// Probe-cost multiplier for Grace-mode clustered releases (< 1.0
    /// models the I/O locality of partition-clustered probing, §3.1).
    pub clustered_probe_discount: f64,
    /// Model each SteM shard as an independent server: an envelope's
    /// build/probe service time scales with the *busiest* shard's load
    /// (max over shards) instead of the total —
    /// [`crate::sharded::ShardedStem::parallel_service_units`]. This is
    /// the simulation-native expression of the wall-clock parallelism
    /// sharding provides on multi-core hosts (`bench_shards` uses it for
    /// its deterministic, hardware-independent speedup series). Off by
    /// default so the virtual timeline is identical at every shard count
    /// — the shard-invariance equivalence suites rely on that.
    pub shard_parallel_service: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            stem_build_us: 20,
            stem_probe_us: 30,
            per_match_us: 5,
            sm_us: 10,
            am_accept_us: 10,
            clustered_probe_discount: 1.0,
            shard_parallel_service: false,
        }
    }
}

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    pub policy: RoutingPolicyKind,
    pub seed: u64,
    pub costs: CostModel,
    /// Instantiation options (SteM backends, BuildFirst mode, §3.5
    /// exemptions).
    pub plan: PlanOptions,
    /// Restrict SteM probes to these join-graph edges (static spanning
    /// tree emulation, §3.4). `None` = fully dynamic.
    pub probe_edges: Option<Vec<(TableIdx, TableIdx)>>,
    /// User-interest predicate (§4.1): matching tuples jump module queues
    /// and their results are counted separately.
    pub priority_pred: Option<Predicate>,
    /// Maximum tuples routed per policy decision / module envelope, and
    /// the cap on rows a scan may emit per event (chunked ingestion). `1`
    /// reproduces the scalar tuple-at-a-time engine; larger values
    /// amortize routing overhead over same-destination tuples. The
    /// default (64) can be overridden with the `STEMS_BATCH_SIZE`
    /// environment variable — CI runs the whole suite at 1 and 64 so
    /// scalar-engine equivalence is enforced on every push.
    pub batch_size: usize,
    /// SteM shard fan-out: every SteM's dictionary is hash-partitioned by
    /// join key into this many shards (plus an overflow shard for
    /// un-hashable keys) and build/probe envelopes fan out across them —
    /// see [`crate::sharded::ShardedStem`]. `1` (the default) is the
    /// unsharded engine. Overridable with the `STEMS_NUM_SHARDS`
    /// environment variable; CI crosses it with the batch-size matrix so
    /// shard-count invariance is enforced on every push. Folded into the
    /// plan's *default* SteM options at build time, unless the plan
    /// already sets a non-default fan-out there (explicit plan settings
    /// win); per-instance `stem_overrides` always keep their own
    /// `num_shards`.
    pub num_shards: usize,
    /// Worker budget for the persistent worker pool
    /// ([`crate::runtime::WorkerPool`]) that services sharded SteM
    /// build/probe fan-outs. Defaults to the host's available
    /// parallelism, overridable with the `STEMS_WORKERS` environment
    /// variable; CI crosses it with the shard matrix so worker-count
    /// invariance is enforced on every push. Folded into the plan's
    /// default SteM options at build time exactly like `num_shards`
    /// (explicit plan settings win). `1` keeps every fan-out serial on
    /// the calling thread.
    pub workers: usize,
    /// Minimum rows routed in one envelope before a sharded SteM
    /// dispatches its per-shard lanes to the worker pool; smaller
    /// envelopes run serially (pool hand-off costs ~1–2µs per task, so
    /// tiny envelopes lose). Defaults to
    /// [`crate::runtime::DEFAULT_PARALLEL_MIN_ROWS`], overridable with
    /// the `STEMS_PARALLEL_MIN_ROWS` environment variable. Folded into
    /// the plan's default SteM options like `num_shards`.
    pub parallel_min_rows: usize,
    /// Conjunction fusion: when a batch is routed to a Selection Module,
    /// also apply every *sibling* selection over the same table instance
    /// that all batch members are still eligible for, in one pass with
    /// short-circuit verdict merging ([`crate::sm::Sm::apply_batch_fused`]).
    /// Per-predicate feedback and virtual cost are charged exactly as the
    /// sequential cascade would have been; the saving is the dropped
    /// routing hops and envelopes. `false` reproduces the strict
    /// one-SM-per-hop cascade.
    pub fuse_selections: bool,
    /// Verdict memoization for expensive UDF predicates: when `true`
    /// (the default), every UDF predicate gets a [`crate::memo::MemoCache`]
    /// so its verdict is computed — and its virtual latency paid — once
    /// per distinct input key; the query server additionally folds one
    /// cache across queries sharing a predicate identity. Overridable
    /// with `STEMS_MEMO` (`0`/`1`). Verdicts are bit-identical either
    /// way; only computed-call counts and virtual time change.
    pub memo: bool,
    /// Byte budget per memo cache, enforced shard-locally with
    /// clock/second-chance eviction over `Value::approx_bytes`
    /// accounting. Overridable with `STEMS_MEMO_BYTES`.
    pub memo_bytes: usize,
    /// Envelope-level dedup for UDF predicates: group an envelope's rows
    /// by input key and evaluate one representative per distinct key
    /// ([`crate::sm::Sm::apply_batch_udf`]). Independent of `memo` (the
    /// four on/off combinations are swept by `bench_pred`). Overridable
    /// with `STEMS_UDF_DEDUP` (`0`/`1`).
    pub udf_dedup: bool,
    /// BoundedRepetition backstop.
    pub max_hops: u32,
    /// Simulation guards.
    pub max_events: u64,
    pub max_time: Option<Time>,
    /// Verify invariants while running (tests); violations are collected
    /// in the report instead of panicking.
    pub check_constraints: bool,
    /// Record a routing trace (capped at `trace_limit` events) — the
    /// observability hook for debugging policies and demos.
    pub trace: bool,
    pub trace_limit: usize,
}

/// A rejected engine configuration — a malformed environment knob or an
/// invalid field value. Long-lived callers (the query server, binaries
/// that want a clean exit) handle this as a startup error; the
/// [`Default`] impl below remains a thin panicking shim for tests and
/// one-shot binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Read a positive-integer environment knob. Not present falls back to
/// `default`; a set-but-invalid value is an error — a misconfigured CI
/// leg (or server deployment) must fail loudly, not silently re-test the
/// default engine while claiming coverage.
pub(crate) fn env_knob(var: &str, default: usize) -> std::result::Result<usize, ConfigError> {
    match std::env::var(var) {
        Err(std::env::VarError::NotPresent) => Ok(default),
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(ConfigError(format!(
                "{var} must be a positive integer, got {s:?}"
            ))),
        },
        Err(e) => Err(ConfigError(format!("{var} is not valid unicode: {e}"))),
    }
}

/// Read a boolean (`0`/`1`) environment knob. Same failure discipline as
/// [`env_knob`]: absent falls back, set-but-invalid fails loudly.
pub(crate) fn env_flag(var: &str, default: bool) -> std::result::Result<bool, ConfigError> {
    match std::env::var(var) {
        Err(std::env::VarError::NotPresent) => Ok(default),
        Ok(s) => match s.trim() {
            "0" => Ok(false),
            "1" => Ok(true),
            _ => Err(ConfigError(format!("{var} must be 0 or 1, got {s:?}"))),
        },
        Err(e) => Err(ConfigError(format!("{var} is not valid unicode: {e}"))),
    }
}

impl ExecConfig {
    /// Build the default configuration from the environment, failing on
    /// malformed knobs instead of panicking. This is what a server uses
    /// at startup; `ExecConfig::default()` is the panicking shim over it.
    pub fn from_env() -> std::result::Result<ExecConfig, ConfigError> {
        let config = ExecConfig {
            policy: RoutingPolicyKind::default(),
            seed: 42,
            costs: CostModel::default(),
            plan: PlanOptions::default(),
            probe_edges: None,
            priority_pred: None,
            batch_size: env_knob("STEMS_BATCH_SIZE", 64)?,
            num_shards: env_knob("STEMS_NUM_SHARDS", 1)?,
            workers: crate::runtime::try_default_workers()?,
            parallel_min_rows: crate::runtime::try_default_parallel_min_rows()?,
            fuse_selections: true,
            memo: env_flag("STEMS_MEMO", true)?,
            memo_bytes: env_knob("STEMS_MEMO_BYTES", crate::memo::DEFAULT_MEMO_BYTES)?,
            udf_dedup: env_flag("STEMS_UDF_DEDUP", true)?,
            max_hops: 1_000_000,
            max_events: 200_000_000,
            max_time: None,
            check_constraints: false,
            trace: false,
            trace_limit: 100_000,
        };
        config.validate()?;
        Ok(config)
    }

    /// Reject field values no engine layer can run with. Called by
    /// [`EddyExecutor::build`] (and thus the server at admission) so a
    /// zero smuggled in programmatically fails as loudly as a zero from
    /// the environment.
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        for (name, value) in [
            ("batch_size", self.batch_size),
            ("num_shards", self.num_shards),
            ("workers", self.workers),
            ("parallel_min_rows", self.parallel_min_rows),
            ("memo_bytes", self.memo_bytes),
        ] {
            if value == 0 {
                return Err(ConfigError(format!("ExecConfig.{name} must be >= 1")));
            }
        }
        Ok(())
    }

    /// Fold the engine-level SteM knobs into the plan options, producing
    /// what [`crate::plan::instantiate`] will actually see. The shard
    /// knob overrides only the untouched default (1); the pool knobs fill
    /// only a `None` — explicit plan settings always win, so neither
    /// configuration surface silently clobbers the other. The query
    /// server calls this too, to derive the SteM options a query's plan
    /// will use when matching SteMs for sharing.
    pub(crate) fn resolved_plan_opts(&self) -> PlanOptions {
        let mut plan_opts = self.plan.clone();
        if plan_opts.default_stem.num_shards == 1 {
            plan_opts.default_stem.num_shards = self.num_shards;
        }
        if plan_opts.default_stem.workers.is_none() {
            plan_opts.default_stem.workers = Some(self.workers);
        }
        if plan_opts.default_stem.parallel_min_rows.is_none() {
            plan_opts.default_stem.parallel_min_rows = Some(self.parallel_min_rows);
        }
        plan_opts
    }
}

impl Default for ExecConfig {
    /// The panicking shim over [`ExecConfig::from_env`] — convenient for
    /// tests and one-shot binaries; servers call `from_env` directly.
    fn default() -> Self {
        ExecConfig::from_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A batch of same-destination tuples handed to a module's input queue.
/// `states` runs parallel to `batch`; all members were routed by one
/// policy decision and are processed under one service envelope.
#[derive(Debug)]
struct Envelope {
    batch: TupleBatch,
    states: Vec<TupleState>,
    purpose: Purpose,
    clustered: bool,
    prioritized: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Purpose {
    Build,
    Probe,
    Select,
    /// Probe an index AM *for* the given table instance.
    AmProbe(TableIdx),
}

/// A tuple re-entering the eddy after a module finished with it.
struct Delivery {
    tuple: Tuple,
    state: TupleState,
    clustered: bool,
}

/// Signal attached to a completed build, used to wake parked tuples.
enum UnparkSignal {
    AnyBuild(TableIdx),
    Eot {
        table: TableIdx,
        /// `None` = full-relation (scan) EOT.
        bindings: Option<Vec<(usize, Value)>>,
    },
}

enum Event {
    /// A module may begin its next queued envelope.
    Start(usize),
    /// A module finished an envelope: deliver its emissions.
    Complete(usize, Vec<Delivery>, Vec<UnparkSignal>),
    /// A scan emits its next row (or EOT).
    ScanEmit(usize),
    /// An index lookup entered service (fig-7(ii)'s probe counter).
    AmIssue(usize),
    /// An index lookup finished; deliver matches + EOT.
    AmResponse(usize, Vec<Value>),
    /// A later wave of a chunked index reply ([`IndexSpec::reply_chunk`]):
    /// tuples already produced by the lookup, arriving on the burst-gap
    /// cadence. The response event carved the reply and scheduled these;
    /// the AM itself is not consulted again.
    AmReplyWave(usize, Vec<Tuple>),
}

enum ParkKind {
    /// Unbuilt re-prober (§3.5): any build to the table may help.
    AnyBuild,
    /// Built prior prober awaiting coverage: only a matching EOT helps.
    Coverage(Vec<(usize, Value)>),
}

struct ParkedTuple {
    tuple: Tuple,
    state: TupleState,
    table: TableIdx,
    kind: ParkKind,
}

struct ModuleRt {
    queue: VecDeque<Envelope>,
    busy: bool,
}

/// A routing group: tuples sharing one legal candidate set, awaiting a
/// single policy decision. While the group is open it accumulates members;
/// once it flushes (fills up, or the wave ends) it becomes a *deferred
/// wave*. Queue-backlog hints are **not** captured at flush time: earlier
/// waves of the same delivery burst shift module backlogs between flush
/// and dispatch, so any snapshot taken here would go stale (ROADMAP
/// "hint freshness"). `Hint::est_cost_us` is computed only when the wave
/// is actually dequeued, in [`EddyExecutor::dispatch_group`].
struct RouteGroup {
    actions: Vec<Action>,
    batch: TupleBatch,
    states: Vec<TupleState>,
    clustered: bool,
    prioritized: bool,
}

/// The eddy executor. Build one with [`EddyExecutor::build`], run it to
/// completion with [`EddyExecutor::run`].
pub struct EddyExecutor {
    query: QuerySpec,
    config: ExecConfig,
    modules: Vec<Module>,
    rt: Vec<ModuleRt>,
    layout: PlanLayout,
    agenda: EventQueue<Event>,
    policy: Box<dyn RoutingPolicy>,
    rng: SimRng,
    now: Time,
    ts_counter: Timestamp,
    /// A simulation guard tripped: the executor stops stepping for good.
    halted: bool,
    /// The guard that halted us was `max_time` — the query's deadline —
    /// rather than `max_events`. The query server reaps deadline halts
    /// as `QueryStatus::TimedOut`.
    timed_out: bool,
    parked: Vec<ParkedTuple>,
    results: Vec<Tuple>,
    metrics: Metrics,
    events: u64,
    violations: Vec<String>,
    output_seen: FxHashSet<Tuple>,
    trace: Vec<crate::report::TraceEvent>,
    /// Reusable probe-reply arena: one per executor, cleared per probe
    /// envelope, so the steady-state reply path never allocates per tuple.
    reply_set: ProbeReplySet,
}

impl EddyExecutor {
    /// Instantiate the query (paper §2.2 steps 1–4) and seed the scans
    /// (step 5).
    pub fn build(catalog: &Catalog, query: &QuerySpec, config: ExecConfig) -> Result<Self> {
        Self::build_inner(catalog, query, config, true)
    }

    /// Instantiate without seeding the scans: the query server drives
    /// every scan itself (one shared scan per source, fanned out to all
    /// interested queries) and feeds this executor through
    /// [`Self::deliver_folded_wave`] / [`Self::deliver_raw_wave`].
    pub(crate) fn build_unseeded(
        catalog: &Catalog,
        query: &QuerySpec,
        config: ExecConfig,
    ) -> Result<Self> {
        Self::build_inner(catalog, query, config, false)
    }

    fn build_inner(
        catalog: &Catalog,
        query: &QuerySpec,
        config: ExecConfig,
        seed_scans: bool,
    ) -> Result<Self> {
        config
            .validate()
            .map_err(|e| StemsError::Schema(e.to_string()))?;
        if let Some(p) = &config.priority_pred {
            if !p.is_selection() {
                return Err(StemsError::Schema(
                    "priority predicate must be a selection".into(),
                ));
            }
        }
        let plan_opts = config.resolved_plan_opts();
        let (mut modules, layout) = instantiate(catalog, query, &plan_opts)?;
        // Attach a private verdict memo to every UDF SM — one cache per
        // distinct UDF spec, shared by same-spec SMs within the query
        // (a verdict function's memo entries are query-agnostic, keyed
        // only on input values). The server later *replaces* these cells
        // with registry-shared ones when folding compatible queries.
        if config.memo {
            let mut cells: Vec<(stems_types::UdfSpec, crate::memo::MemoCell)> = Vec::new();
            for &(_, mid) in &layout.sm_mids {
                let Module::Sm(sm) = &mut modules[mid] else {
                    continue;
                };
                let Some(&spec) = sm.pred.udf_spec() else {
                    continue;
                };
                let cell = match cells.iter().find(|(s, _)| *s == spec) {
                    Some((_, c)) => c.clone(),
                    None => {
                        let c = crate::memo::MemoCache::cell(
                            crate::memo::DEFAULT_MEMO_SHARDS,
                            config.memo_bytes,
                        );
                        cells.push((spec, c.clone()));
                        c
                    }
                };
                sm.set_memo(Some(cell));
            }
        }
        let rt = modules
            .iter()
            .map(|_| ModuleRt {
                queue: VecDeque::new(),
                busy: false,
            })
            .collect();
        let policy = config.policy.build();
        let rng = SimRng::new(config.seed);
        let mut exec = EddyExecutor {
            query: query.clone(),
            modules,
            rt,
            layout,
            agenda: EventQueue::new(),
            policy,
            rng,
            now: 0,
            ts_counter: 0,
            halted: false,
            timed_out: false,
            parked: Vec::new(),
            results: Vec::new(),
            metrics: Metrics::new(),
            events: 0,
            violations: Vec::new(),
            output_seen: FxHashSet::default(),
            trace: Vec::new(),
            reply_set: ProbeReplySet::new(),
            config,
        };
        // Step 5: seed tuples to the scans. Emission chunks are capped at
        // the routing batch size — a larger burst would only be split
        // again at ingestion. An unseeded executor still clamps (the
        // server mirrors the chunking on its shared scans).
        let batch_size = exec.config.batch_size;
        for &mid in exec.layout.scan_mids.clone().iter() {
            if let Module::ScanAm(scan) = &mut exec.modules[mid] {
                scan.clamp_chunk(batch_size);
                if seed_scans {
                    exec.agenda
                        .push(scan.first_emit_time(), Event::ScanEmit(mid));
                }
            }
        }
        Ok(exec)
    }

    /// Run to completion and produce the report.
    pub fn run(mut self) -> Report {
        while self.step() {}
        self.finish()
    }

    /// Process one event off the agenda. Returns `false` when the agenda
    /// is exhausted or a simulation guard (max_time / max_events)
    /// tripped — after which the executor is permanently halted. The
    /// query server interleaves many executors by stepping each one up to
    /// the global virtual time.
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some((t, ev)) = self.agenda.pop() else {
            return false;
        };
        self.now = t;
        self.events += 1;
        if let Some(max) = self.config.max_time {
            if self.now > max {
                self.halted = true;
                self.timed_out = true;
                return false;
            }
        }
        if self.events > self.config.max_events {
            self.violations
                .push("max_events exceeded — possible routing livelock".into());
            self.halted = true;
            return false;
        }
        match ev {
            Event::Start(mid) => self.on_start(mid),
            Event::Complete(mid, deliveries, unpark) => self.on_complete(mid, deliveries, unpark),
            Event::ScanEmit(mid) => self.on_scan_emit(mid),
            Event::AmIssue(_mid) => {
                self.metrics.bump("index_probes", self.now, 1);
            }
            Event::AmResponse(mid, key) => self.on_am_response(mid, key),
            Event::AmReplyWave(mid, tuples) => self.on_am_reply_wave(mid, tuples),
        }
        true
    }

    /// Virtual time of the next pending event (`None` when drained or
    /// halted) — the server's merge key for interleaving executors.
    pub fn next_time(&self) -> Option<Time> {
        if self.halted {
            None
        } else {
            self.agenda.peek_time()
        }
    }

    /// Step every pending event up to and including virtual time `t`,
    /// returning the next pending time past the horizon (`None` when
    /// drained or halted). The server's per-wave batch: one call per
    /// executor per wave, so the drain loop reads each agenda head once
    /// instead of polling around every `step`.
    pub fn step_until(&mut self, t: Time) -> Option<Time> {
        loop {
            match self.next_time() {
                Some(nt) if nt <= t => {
                    self.step();
                }
                nt => return nt,
            }
        }
    }

    /// Current virtual time (last processed event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Produce the final report after the agenda drained.
    pub fn finish(mut self) -> Report {
        self.metrics.observe("end", self.now, 1.0);
        Report {
            results: self.results,
            metrics: self.metrics,
            end_time: self.now,
            events: self.events,
            violations: self.violations,
            policy_name: self.policy.name(),
            trace: self.trace,
        }
    }

    fn record(&mut self, kind: crate::report::TraceKind, tuple: &Tuple) {
        if self.config.trace && self.trace.len() < self.config.trace_limit {
            self.trace.push(crate::report::TraceEvent {
                t: self.now,
                kind,
                tuple: tuple.to_string(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_start(&mut self, mid: usize) {
        if self.rt[mid].busy {
            return;
        }
        let Some(env) = self.rt[mid].queue.pop_front() else {
            return;
        };
        self.rt[mid].busy = true;
        let (dur, deliveries, unpark) = self.process(mid, env);
        self.agenda.push(
            self.now + dur.max(1),
            Event::Complete(mid, deliveries, unpark),
        );
    }

    fn on_complete(&mut self, mid: usize, deliveries: Vec<Delivery>, unparks: Vec<UnparkSignal>) {
        self.rt[mid].busy = false;
        if !self.rt[mid].queue.is_empty() {
            self.agenda.push(self.now, Event::Start(mid));
        }
        if unparks
            .iter()
            .any(|u| matches!(u, UnparkSignal::AnyBuild(_)))
        {
            // A build happened: sample total SteM memory (the fig-2
            // singleton-vs-intermediate storage comparison watches this).
            let total: usize = self
                .modules
                .iter()
                .filter_map(|m| match m {
                    Module::Stem(s) => Some(s.lock().approx_bytes()),
                    _ => None,
                })
                .sum();
            self.metrics
                .observe("stem_bytes_total", self.now, total as f64);
        }
        self.route_deliveries(deliveries);
        let mut woken = Vec::new();
        for sig in unparks {
            woken.append(&mut self.unpark(sig));
        }
        self.route_deliveries(woken);
    }

    fn on_scan_emit(&mut self, mid: usize) {
        let Module::ScanAm(scan) = &mut self.modules[mid] else {
            return;
        };
        let (batch, next) = scan.emit_next(self.now);
        if let Some(nt) = next {
            self.agenda.push(nt, Event::ScanEmit(mid));
        }
        // The whole chunk enters routing as one wave: same-span singletons
        // share a candidate set, so they ride one envelope instead of
        // exploding into per-row deliveries with per-row policy decisions.
        let deliveries = batch
            .into_iter()
            .map(|t| {
                if !t.is_eot() {
                    self.metrics.bump("scanned", self.now, 1);
                }
                self.ingest(t, None)
            })
            .collect();
        self.route_deliveries(deliveries);
    }

    fn on_am_response(&mut self, mid: usize, key: Vec<Value>) {
        let mut module = std::mem::replace(&mut self.modules[mid], Module::Hole);
        let mut next = None;
        let mut waves = Vec::new();
        if let Module::IndexAm(am) = &mut module {
            let tuples = am.respond(&key, &self.query);
            // The freed server picks up the next pending lookup
            // (prioritized first, §4.1).
            next = am.dequeue_pending(self.now);
            // A chunked-reply spec streams the answer back on the
            // burst-gap cadence; the default is one wave at `now`.
            waves = am.chunk_reply(tuples, self.now);
        }
        self.modules[mid] = module;
        if let Some((key2, start, complete)) = next {
            self.agenda.push(start, Event::AmIssue(mid));
            self.agenda.push(complete, Event::AmResponse(mid, key2));
        }
        self.metrics.bump("am_responses", self.now, 1);
        for (at, tuples) in waves {
            if at <= self.now {
                self.on_am_reply_wave(mid, tuples);
            } else {
                self.agenda.push(at, Event::AmReplyWave(mid, tuples));
            }
        }
    }

    /// One arrival wave of an index reply re-enters the eddy together:
    /// its matches share a destination and route as a batch. An unchunked
    /// reply is a single wave fired inline by the response event.
    fn on_am_reply_wave(&mut self, mid: usize, tuples: Vec<Tuple>) {
        let deliveries = tuples
            .into_iter()
            .map(|t| self.ingest(t, Some(mid)))
            .collect();
        self.route_deliveries(deliveries);
    }

    // ------------------------------------------------------------------
    // Module processing (at service start)
    // ------------------------------------------------------------------

    fn process(&mut self, mid: usize, env: Envelope) -> (u64, Vec<Delivery>, Vec<UnparkSignal>) {
        let mut module = std::mem::replace(&mut self.modules[mid], Module::Hole);
        let out = match (&mut module, env.purpose) {
            (Module::Stem(cell), Purpose::Build) => {
                let table = self.table_of_stem_mid(mid);
                let mut stem = cell.lock();
                if stem.instance != table {
                    stem.retarget(table);
                }
                self.process_build(&mut stem, env)
            }
            (Module::Stem(cell), Purpose::Probe) => {
                let table = self.table_of_stem_mid(mid);
                let mut stem = cell.lock();
                if stem.instance != table {
                    stem.retarget(table);
                }
                self.process_probe(&mut stem, env)
            }
            (Module::Sm(sm), Purpose::Select) => self.process_select(sm, env),
            (Module::IndexAm(am), Purpose::AmProbe(t)) => self.process_am_probe(mid, am, env, t),
            _ => {
                self.violations
                    .push(format!("envelope {:?} routed to wrong module", env.purpose));
                (1, Vec::new(), Vec::new())
            }
        };
        self.modules[mid] = module;
        out
    }

    /// The table instance whose SteM lives at module `mid` — derived from
    /// the layout rather than read off the SteM itself, because a shared
    /// SteM may currently be targeted at another query's instance
    /// numbering (the caller retargets it under the cell lock before
    /// operating; see [`crate::sharded::ShardedStem::retarget`]).
    fn table_of_stem_mid(&self, mid: usize) -> TableIdx {
        let t = self
            .layout
            .stem_mid
            .iter()
            .position(|m| *m == Some(mid))
            .expect("stem module not in layout");
        TableIdx(t as u8)
    }

    fn process_build(
        &mut self,
        stem: &mut crate::sharded::ShardedStem,
        env: Envelope,
    ) -> (u64, Vec<Delivery>, Vec<UnparkSignal>) {
        let table = stem.instance;
        let units = if self.config.costs.shard_parallel_service {
            stem.parallel_service_units(&env.batch, &self.query, false)
        } else {
            env.batch.len() as u64
        };
        let dur = self.config.costs.stem_build_us * units.max(1);
        let mut ts = self.ts_counter;
        let results = stem.build_batch(&env.batch, &env.states, &mut ts);
        self.ts_counter = ts;
        let mut deliveries = Vec::new();
        let mut unparks = Vec::new();
        for ((tuple, state), result) in env.batch.iter().zip(env.states).zip(results) {
            match result {
                BuildResult::Fresh(stamped) => {
                    self.observe_am_build(&state, true);
                    self.observe_stem_mem(stem);
                    deliveries.push(Delivery {
                        tuple: stamped,
                        state,
                        clustered: false,
                    });
                    unparks.push(UnparkSignal::AnyBuild(table));
                }
                BuildResult::Deferred => {
                    self.observe_am_build(&state, true);
                    unparks.push(UnparkSignal::AnyBuild(table));
                }
                BuildResult::Duplicate => {
                    self.observe_am_build(&state, false);
                    self.metrics.bump("duplicates_absorbed", self.now, 1);
                }
                BuildResult::Eot => {
                    if stem.scan_complete() && stem.deferred_len() > 0 {
                        // Grace mode: the build phase ended; release the
                        // withheld bounce-backs clustered by partition.
                        for (tuple, state) in stem.release_deferred() {
                            deliveries.push(Delivery {
                                tuple,
                                state,
                                clustered: true,
                            });
                        }
                    }
                    unparks.push(UnparkSignal::Eot {
                        table,
                        bindings: eot_bindings(&tuple.components()[0].row),
                    });
                }
            }
        }
        // Collapse redundant AnyBuild signals: one wake-up per batch is
        // enough (parked tuples re-park if still not helped).
        let mut seen_any_build = false;
        unparks.retain(|u| match u {
            UnparkSignal::AnyBuild(_) => {
                let keep = !seen_any_build;
                seen_any_build = true;
                keep
            }
            UnparkSignal::Eot { .. } => true,
        });
        (dur, deliveries, unparks)
    }

    fn process_probe(
        &mut self,
        stem: &mut crate::sharded::ShardedStem,
        env: Envelope,
    ) -> (u64, Vec<Delivery>, Vec<UnparkSignal>) {
        let table = stem.instance;
        // Probe into the executor's reusable reply arena (taken out for
        // the borrow, restored below): no per-tuple `Vec`s are built.
        let mut reply_set = std::mem::take(&mut self.reply_set);
        reply_set.clear();
        stem.probe_batch_into(
            env.batch.as_slice(),
            &env.states,
            &self.query,
            &mut reply_set,
        );
        let stem_version = router::stem_version(stem);
        let probe_units = if self.config.costs.shard_parallel_service {
            stem.parallel_service_units(&env.batch, &self.query, true)
        } else {
            env.batch.len() as u64
        };
        let clustered = env.clustered;

        let mut deliveries: Vec<Delivery> = Vec::new();
        let (metas, mut results) = reply_set.metas_and_results();
        for ((tuple, state), reply) in env.batch.into_iter().zip(env.states).zip(metas) {
            self.policy.feedback(&Feedback::StemProbe {
                table,
                emitted: reply.len,
            });
            self.metrics.bump("stem_probes", self.now, 1);
            for (result, done) in results.by_ref().take(reply.len) {
                // Track intermediate-result formation per span size — the
                // §3.4 spanning-tree experiments watch these to see
                // progress continue while a source is stalled.
                self.metrics
                    .bump(&format!("span{}_formed", result.span().len()), self.now, 1);
                let mut rstate = TupleState::for_result(done);
                rstate.prioritized = state.prioritized || self.is_prioritized(&result);
                deliveries.push(Delivery {
                    tuple: result,
                    state: rstate,
                    clustered: false,
                });
            }

            match reply.outcome {
                ProbeOutcome::Consumed => {
                    self.metrics.bump("probes_consumed", self.now, 1);
                }
                ProbeOutcome::Bounced(need) => {
                    let mut state = state;
                    state.mark_probed(table);
                    state.last_match_ts = state.last_match_ts.max(reply.observed_ts);
                    state.last_probe_version = stem_version;
                    match state.prior_prober {
                        // Re-bounce of an existing prior prober for the
                        // same table: once the need has weakened to
                        // Optional it never strengthens back to Required.
                        Some(pp) if pp.table == table => {
                            let need = if pp.need == CompletionNeed::Optional {
                                CompletionNeed::Optional
                            } else {
                                need
                            };
                            state.prior_prober = Some(PriorProber { table, need });
                        }
                        // A prior prober for a *different* table probed
                        // this SteM: the router must never allow that.
                        Some(pp) => {
                            self.violations.push(format!(
                                "ProbeCompletion violated: prior prober for {} probed {}",
                                pp.table, table
                            ));
                        }
                        None => {
                            state.prior_prober = Some(PriorProber { table, need });
                        }
                    }
                    self.metrics.bump("probes_bounced", self.now, 1);
                    deliveries.push(Delivery {
                        tuple,
                        state,
                        clustered: false,
                    });
                }
            }
        }
        drop(results);
        self.reply_set = reply_set;

        let base = self.config.costs.stem_probe_us * probe_units.max(1)
            + self.config.costs.per_match_us * deliveries.len() as u64;
        let dur = if clustered {
            ((base as f64) * self.config.costs.clustered_probe_discount).max(1.0) as u64
        } else {
            base
        };
        (dur, deliveries, Vec::new())
    }

    fn process_select(
        &mut self,
        sm: &crate::sm::Sm,
        env: Envelope,
    ) -> (u64, Vec<Delivery>, Vec<UnparkSignal>) {
        // Expensive UDF predicates take their own path: per-call cost
        // charging, envelope dedup, and the verdict memo. They are also
        // excluded from fusion chains (below) — fusing one would tangle
        // a milliseconds-scale call into a cheap comparison cascade and
        // bypass the dedup/memo accounting.
        if sm.is_udf() {
            return self.select_udf(sm, env);
        }
        // Conjunction fusion: sibling SMs pinned to the same table
        // instance whose predicate every envelope member is still eligible
        // for ride this pass, in ascending predicate order (the order the
        // fixed cascade would visit them in), each through its own cached
        // kernel. Members of one envelope share a candidate signature, so
        // their pending-selection sets agree; the per-member check below
        // is the safety net, not the common case.
        let siblings: Vec<&crate::sm::Sm> = if self.config.fuse_selections {
            self.layout
                .sm_mids
                .iter()
                .filter(|(pid, _)| *pid != sm.pred_id())
                .filter_map(|(_, mid)| match &self.modules[*mid] {
                    Module::Sm(other) => Some(other),
                    _ => None,
                })
                .filter(|other| {
                    let p = &other.pred;
                    !other.is_udf()
                        && p.tables() == sm.pred.tables()
                        && env.states.iter().all(|s| !s.done.contains(p.id))
                        && env.batch.iter().all(|t| p.evaluable_on(t.span()))
                })
                .collect()
        } else {
            Vec::new()
        };
        if siblings.is_empty() {
            // Nothing to fuse: the plain single-predicate kernel path,
            // with no per-tuple cascade bookkeeping.
            return self.select_single(sm, env);
        }
        let verdicts = sm.apply_batch_fused(&env.batch, &siblings);
        // Virtual cost: one SM service per member (exactly the unfused
        // charge) plus one per extra sibling evaluation actually performed
        // — fusion saves routing hops and envelopes, not predicate work.
        let total_evals: usize = verdicts.iter().map(|v| v.evals.len()).sum();
        let dur = self.config.costs.sm_us
            * (env.batch.len() + total_evals.saturating_sub(env.batch.len())).max(1) as u64;
        let mut deliveries = Vec::new();
        for ((tuple, mut state), fused) in env.batch.into_iter().zip(env.states).zip(verdicts) {
            for (pred, passed) in &fused.evals {
                self.metrics.bump("sm_applied", self.now, 1);
                self.policy.feedback(&Feedback::Selected {
                    pred: *pred,
                    passed: *passed,
                });
            }
            match fused.verdict {
                Some(true) => {
                    state.done = state.done.union(fused.passed);
                    deliveries.push(Delivery {
                        tuple,
                        state,
                        clustered: false,
                    });
                }
                Some(false) => {
                    self.metrics.bump("filtered", self.now, 1);
                }
                None => {
                    self.violations.push(format!(
                        "selection {} not evaluable on routed tuple",
                        sm.describe()
                    ));
                }
            }
        }
        self.metrics
            .bump("fused_selects", self.now, siblings.len() as u64);
        (dur, deliveries, Vec::new())
    }

    /// The unfused Select hop: apply exactly this SM's predicate to the
    /// whole envelope.
    fn select_single(
        &mut self,
        sm: &crate::sm::Sm,
        env: Envelope,
    ) -> (u64, Vec<Delivery>, Vec<UnparkSignal>) {
        let dur = self.config.costs.sm_us * env.batch.len().max(1) as u64;
        let verdicts = sm.apply_batch(&env.batch);
        let mut deliveries = Vec::new();
        for ((tuple, mut state), verdict) in env.batch.into_iter().zip(env.states).zip(verdicts) {
            match verdict {
                Some(true) => {
                    self.metrics.bump("sm_applied", self.now, 1);
                    self.policy.feedback(&Feedback::Selected {
                        pred: sm.pred_id(),
                        passed: true,
                    });
                    state.done.insert(sm.pred_id());
                    deliveries.push(Delivery {
                        tuple,
                        state,
                        clustered: false,
                    });
                }
                Some(false) => {
                    self.metrics.bump("sm_applied", self.now, 1);
                    self.policy.feedback(&Feedback::Selected {
                        pred: sm.pred_id(),
                        passed: false,
                    });
                    self.metrics.bump("filtered", self.now, 1);
                }
                None => {
                    self.violations.push(format!(
                        "selection {} not evaluable on routed tuple",
                        sm.describe()
                    ));
                }
            }
        }
        (dur, deliveries, Vec::new())
    }

    /// The Select hop for an expensive UDF predicate: evaluate through
    /// the dedup/memo pipeline ([`crate::sm::Sm::apply_batch_udf`]),
    /// charge the configured per-call virtual latency only for verdicts
    /// actually *computed*, and feed the observed envelope cost back to
    /// the routing policy so benefit/cost ranking learns to defer
    /// expensive selections behind selective joins. Verdict handling and
    /// `Selected` feedback are identical to [`Self::select_single`] —
    /// memo and dedup change time, never semantics.
    fn select_udf(
        &mut self,
        sm: &crate::sm::Sm,
        env: Envelope,
    ) -> (u64, Vec<Delivery>, Vec<UnparkSignal>) {
        let spec = *sm.pred.udf_spec().expect("select_udf on a UDF SM");
        let out = sm.apply_batch_udf(&env.batch, self.config.udf_dedup);
        let dur =
            self.config.costs.sm_us * env.batch.len().max(1) as u64 + spec.cost_us * out.computed;
        self.metrics.bump("udf_calls", self.now, out.computed);
        if out.memo.hits > 0 {
            self.metrics.bump("memo_hits", self.now, out.memo.hits);
        }
        if out.memo.misses > 0 {
            self.metrics.bump("memo_misses", self.now, out.memo.misses);
        }
        if out.memo.evictions > 0 {
            self.metrics
                .bump("memo_evictions", self.now, out.memo.evictions);
        }
        let rows = env.batch.len();
        let mut deliveries = Vec::new();
        for ((tuple, mut state), verdict) in env.batch.into_iter().zip(env.states).zip(out.verdicts)
        {
            match verdict {
                Some(true) => {
                    self.metrics.bump("sm_applied", self.now, 1);
                    self.policy.feedback(&Feedback::Selected {
                        pred: sm.pred_id(),
                        passed: true,
                    });
                    state.done.insert(sm.pred_id());
                    deliveries.push(Delivery {
                        tuple,
                        state,
                        clustered: false,
                    });
                }
                Some(false) => {
                    self.metrics.bump("sm_applied", self.now, 1);
                    self.policy.feedback(&Feedback::Selected {
                        pred: sm.pred_id(),
                        passed: false,
                    });
                    self.metrics.bump("filtered", self.now, 1);
                }
                None => {
                    self.violations.push(format!(
                        "selection {} not evaluable on routed tuple",
                        sm.describe()
                    ));
                }
            }
        }
        // Observed cost: what this envelope actually charged, per row —
        // with an effective memo this decays toward `sm_us`, without one
        // it stays near `cost_us`, and the policy's EWMA tracks it.
        self.policy.feedback(&Feedback::SelectCost {
            pred: sm.pred_id(),
            rows,
            cost_us: dur,
        });
        (dur, deliveries, Vec::new())
    }

    fn process_am_probe(
        &mut self,
        mid: usize,
        am: &mut crate::am::IndexAm,
        env: Envelope,
        t: TableIdx,
    ) -> (u64, Vec<Delivery>, Vec<UnparkSignal>) {
        let dur = self.config.costs.am_accept_us * env.batch.len().max(1) as u64;
        let mut deliveries = Vec::new();
        for (tuple, mut state) in env.batch.into_iter().zip(env.states) {
            // One outcome per bound key — a multi-member IN binding fans
            // the probe out across member lookups.
            for (outcome, key) in am.probe(&tuple, t, &self.query, self.now, state.prioritized) {
                match outcome {
                    IndexProbeOutcome::Scheduled { start, complete } => {
                        self.agenda.push(start, Event::AmIssue(mid));
                        self.agenda.push(
                            complete,
                            Event::AmResponse(mid, key.expect("scheduled key")),
                        );
                    }
                    IndexProbeOutcome::Queued => {
                        self.metrics.bump("probes_queued", self.now, 1);
                    }
                    IndexProbeOutcome::Coalesced => {
                        self.metrics.bump("probes_coalesced", self.now, 1);
                    }
                    IndexProbeOutcome::Unbindable => {
                        self.violations
                            .push("router sent an unbindable probe to an index AM".into());
                    }
                }
            }
            // The AM asynchronously bounces back each probe tuple (Table 1).
            state.mark_am_probed(t);
            deliveries.push(Delivery {
                tuple,
                state,
                clustered: false,
            });
        }
        (dur, deliveries, Vec::new())
    }

    // ------------------------------------------------------------------
    // The eddy: ingestion, routing, output, parking
    // ------------------------------------------------------------------

    /// Wrap a singleton entering the dataflow from an AM.
    fn ingest(&mut self, tuple: Tuple, origin_am: Option<usize>) -> Delivery {
        let mut state = TupleState::new();
        state.origin_am = origin_am;
        state.prioritized = self.is_prioritized(&tuple);
        Delivery {
            tuple,
            state,
            clustered: false,
        }
    }

    fn is_prioritized(&self, tuple: &Tuple) -> bool {
        self.config
            .priority_pred
            .as_ref()
            .is_some_and(|p| p.eval(tuple) == Some(true))
    }

    /// Route a wave of tuples re-entering the eddy together.
    ///
    /// Per tuple (constraint side, paper Table 2): hop accounting, output
    /// detection, candidate computation, parking and retirement. Tuples
    /// whose legal candidate sets are identical are then grouped, and each
    /// group of up to `batch_size` tuples is routed by **one** policy
    /// decision into **one** module envelope — the batching that amortizes
    /// per-tuple adaptivity overhead. With `batch_size == 1` every group
    /// closes immediately and this is exactly the scalar routing loop.
    ///
    /// Groups flush into deferred waves (full groups first, in fill
    /// order, then the wave's leftovers) and are dispatched in that order
    /// after the whole wave is grouped; [`EddyExecutor::dispatch_group`]
    /// re-costs each wave's candidates at dequeue time.
    fn route_deliveries(&mut self, deliveries: Vec<Delivery>) {
        let cap = self.config.batch_size.max(1);
        let mut groups: Vec<RouteGroup> = Vec::new();
        let mut waves: Vec<RouteGroup> = Vec::new();
        for d in deliveries {
            let Delivery {
                tuple,
                mut state,
                clustered,
            } = d;
            state.hops += 1;
            if state.hops > self.config.max_hops {
                self.metrics.bump("hops_exceeded", self.now, 1);
                self.violations
                    .push("BoundedRepetition backstop hit (max_hops)".into());
                continue;
            }

            let acts: Vec<Action> = if tuple.is_eot() {
                // EOTs go straight to their table's SteM; they join the
                // same build group as sibling data rows so arrival order
                // into the SteM is preserved.
                let t = tuple.components()[0].table;
                match self.layout.stem_mid[t.as_usize()] {
                    Some(mid) => vec![Action::Build { mid, table: t }],
                    None => continue,
                }
            } else if tuple.span() == self.query.full_span()
                && state.done.is_superset_of(self.query.all_preds())
            {
                self.output(tuple, &state);
                continue;
            } else {
                match router::candidates(
                    &self.modules,
                    &self.layout,
                    &self.query,
                    &tuple,
                    &state,
                    self.config.probe_edges.as_deref(),
                ) {
                    Err(NoCandidates::Retire) => {
                        self.metrics.bump("retired", self.now, 1);
                        self.record(crate::report::TraceKind::Retire, &tuple);
                        continue;
                    }
                    Err(NoCandidates::Park { table }) => {
                        self.record(crate::report::TraceKind::Park { table }, &tuple);
                        self.park(tuple, state, table);
                        continue;
                    }
                    Ok(acts) => acts,
                }
            };

            // Find the open group with the same candidate signature, or
            // open a new one. Signature equality is what lets one policy
            // decision stand for every member.
            let prio = state.prioritized;
            match groups
                .iter_mut()
                .find(|g| g.actions == acts && g.clustered == clustered && g.prioritized == prio)
            {
                Some(g) => {
                    g.batch.push(tuple);
                    g.states.push(state);
                }
                None => groups.push(RouteGroup {
                    actions: acts,
                    batch: TupleBatch::single(tuple),
                    states: vec![state],
                    clustered,
                    prioritized: prio,
                }),
            }
            // A full group flushes immediately into the wave queue (with
            // cap 1 this degenerates to the scalar per-tuple loop,
            // preserving its decision order exactly).
            if let Some(i) = groups.iter().position(|g| g.batch.len() >= cap) {
                waves.push(groups.remove(i));
            }
        }
        waves.append(&mut groups);
        // Modules earlier dispatches of this burst routed into — any later
        // wave offering one of them had a stale flush-time backlog view.
        let mut touched: FxHashSet<usize> = FxHashSet::default();
        for g in waves {
            self.dispatch_group(g, &mut touched);
        }
    }

    /// Dispatch one deferred wave: a single policy decision, per-tuple
    /// constraint verification, one envelope. Candidate costs are
    /// **computed here, at dequeue time** — earlier dispatches of the
    /// same burst (`touched`) may have shifted module backlogs since the
    /// group flushed, and a decision taken on a flush-time snapshot would
    /// route into queues that no longer look like the estimate.
    fn dispatch_group(&mut self, group: RouteGroup, touched: &mut FxHashSet<usize>) {
        let RouteGroup {
            actions,
            batch,
            states,
            clustered,
            prioritized,
        } = group;
        // The RoutingPolicy contract requires non-empty batches; groups
        // only ever open around a first member, so an empty flush is an
        // engine bug, caught here rather than inside the policy.
        debug_assert!(
            !batch.is_empty(),
            "dispatch_group flushed an empty batch; RoutingPolicy::choose_batch requires ≥ 1 member"
        );
        debug_assert_eq!(batch.len(), states.len());
        // Observability: this wave's candidate set includes a module an
        // earlier wave of the same burst just routed into — a flush-time
        // backlog estimate would have been stale here.
        if actions
            .iter()
            .any(|a| a.mid().is_some_and(|m| touched.contains(&m)))
        {
            self.metrics.bump("hints_recosted", self.now, 1);
        }
        let pairs: Vec<(Action, Hint)> = actions
            .into_iter()
            .map(|a| {
                let h = self.hint_for(&a);
                (a, h)
            })
            .collect();
        let idx = if pairs.len() == 1 {
            0
        } else {
            self.policy
                .choose_batch(&batch, &states[0], &pairs, &mut self.rng)
        };
        let (action, _) = pairs[idx];
        if self.config.trace {
            for tuple in batch.iter().filter(|t| !t.is_eot()) {
                self.record(
                    crate::report::TraceKind::Route {
                        action: action.kind(),
                        table: match action {
                            Action::Build { table, .. }
                            | Action::ProbeStem { table, .. }
                            | Action::ProbeAm { table, .. } => Some(table),
                            _ => None,
                        },
                    },
                    tuple,
                );
            }
        }
        if self.config.check_constraints {
            // Constraints are per tuple: every member is verified against
            // the chosen action, not just a representative.
            for (tuple, state) in batch.iter().zip(&states) {
                if !tuple.is_eot() {
                    self.check_choice(tuple, state, &action);
                }
            }
        }
        let purpose = match action {
            Action::Drop => {
                self.metrics
                    .bump("policy_drops", self.now, batch.len() as u64);
                return;
            }
            Action::Build { .. } => Purpose::Build,
            Action::ProbeStem { .. } => Purpose::Probe,
            Action::Select { .. } => Purpose::Select,
            Action::ProbeAm { table, .. } => {
                self.metrics
                    .bump("am_probe_choices", self.now, batch.len() as u64);
                Purpose::AmProbe(table)
            }
        };
        let mid = action.mid().expect("drop handled above");
        self.metrics.bump("route_batches", self.now, 1);
        touched.insert(mid);
        self.enqueue(
            mid,
            Envelope {
                batch,
                states,
                purpose,
                clustered,
                prioritized,
            },
        );
    }

    fn enqueue(&mut self, mid: usize, env: Envelope) {
        // §4.1: prioritized tuples jump the queue so their partial results
        // surface sooner.
        if env.prioritized {
            self.rt[mid].queue.push_front(env);
        } else {
            self.rt[mid].queue.push_back(env);
        }
        if !self.rt[mid].busy {
            self.agenda.push(self.now, Event::Start(mid));
        }
    }

    fn output(&mut self, tuple: Tuple, state: &TupleState) {
        self.record(crate::report::TraceKind::Output, &tuple);
        if self.config.check_constraints && !self.output_seen.insert(tuple.clone()) {
            self.violations
                .push(format!("duplicate result emitted: {tuple}"));
        }
        self.metrics.bump("results", self.now, 1);
        if state.prioritized {
            self.metrics.bump("priority_results", self.now, 1);
        }
        self.results.push(tuple);
    }

    fn park(&mut self, tuple: Tuple, state: TupleState, table: TableIdx) {
        let all_built = tuple
            .components()
            .iter()
            .all(|c| c.ts != stems_types::UNBUILT_TS);
        let kind = if all_built {
            // Compute the coverage bindings this tuple is waiting for.
            let linking: Vec<&Predicate> = self
                .query
                .preds_linking(tuple.span(), table)
                .into_iter()
                .map(|id| self.query.predicate(id))
                .collect();
            let mut bindings = crate::stem::probe_bindings(&linking, &tuple, table, &self.query);
            // Multi-member IN probes wait on one EOT per member: any
            // member's EOT must wake the tuple so the SteM can re-judge
            // coverage (it requires *all* members before consuming).
            for (col, vals) in crate::stem::in_list_options(&self.query, table) {
                for v in vals {
                    bindings.push((col, v));
                }
            }
            ParkKind::Coverage(bindings)
        } else {
            ParkKind::AnyBuild
        };
        self.metrics.bump("parked", self.now, 1);
        self.parked.push(ParkedTuple {
            tuple,
            state,
            table,
            kind,
        });
    }

    /// Wake parked tuples matched by the signal; the caller routes the
    /// returned wave (batched with any siblings).
    fn unpark(&mut self, sig: UnparkSignal) -> Vec<Delivery> {
        let woken: Vec<ParkedTuple> = match &sig {
            UnparkSignal::AnyBuild(t) => {
                let mut woken = Vec::new();
                let mut keep = Vec::new();
                for p in self.parked.drain(..) {
                    if p.table == *t && matches!(p.kind, ParkKind::AnyBuild) {
                        woken.push(p);
                    } else {
                        keep.push(p);
                    }
                }
                self.parked = keep;
                woken
            }
            UnparkSignal::Eot { table, bindings } => {
                let mut woken = Vec::new();
                let mut keep = Vec::new();
                for p in self.parked.drain(..) {
                    let wake = p.table == *table
                        && match (&p.kind, bindings) {
                            (ParkKind::AnyBuild, _) => true,
                            (ParkKind::Coverage(_), None) => true,
                            (ParkKind::Coverage(pb), Some(eb)) => eb.iter().all(|b| pb.contains(b)),
                        };
                    if wake {
                        woken.push(p);
                    } else {
                        keep.push(p);
                    }
                }
                self.parked = keep;
                woken
            }
        };
        woken
            .into_iter()
            .map(|p| {
                self.metrics.bump("unparked", self.now, 1);
                Delivery {
                    tuple: p.tuple,
                    state: p.state,
                    clustered: false,
                }
            })
            .collect()
    }

    /// Rough cost estimate per candidate action — queue backlog plus one
    /// service (for AMs: lookup latency and server backlog).
    fn hint_for(&self, a: &Action) -> Hint {
        let c = &self.config.costs;
        let est = match a {
            Action::Build { mid, .. } => c.stem_build_us * (1 + self.rt[*mid].queue.len() as u64),
            Action::ProbeStem { mid, .. } => {
                c.stem_probe_us * (1 + self.rt[*mid].queue.len() as u64)
            }
            Action::Select { mid, .. } => {
                // Expensive UDF predicates carry a declared per-verdict
                // latency on top of the SM service cost. The hint stays a
                // static worst case (memo/dedup savings are reported back
                // through `Feedback::SelectCost` instead) so routing
                // decisions are identical across memo configurations.
                let per_row = match &self.modules[*mid] {
                    Module::Sm(sm) => c.sm_us + sm.pred.udf_spec().map_or(0, |s| s.cost_us),
                    _ => c.sm_us,
                };
                per_row * (1 + self.rt[*mid].queue.len() as u64)
            }
            Action::ProbeAm { mid, .. } => {
                let backlog = match &self.modules[*mid] {
                    Module::IndexAm(am) => am.queue_delay(self.now) + am.spec.latency_us,
                    _ => 0,
                };
                backlog + c.am_accept_us * (1 + self.rt[*mid].queue.len() as u64)
            }
            Action::Drop => 1,
        };
        Hint { est_cost_us: est }
    }

    /// Extra runtime verification of the Table 2 constraints (tests only).
    fn check_choice(&mut self, tuple: &Tuple, state: &TupleState, action: &Action) {
        // BuildFirst: an unbuilt singleton from a build-required table may
        // only build.
        if tuple.is_singleton() {
            let t = tuple.components()[0].table;
            let unbuilt = tuple.components()[0].ts == stems_types::UNBUILT_TS;
            if unbuilt
                && self.layout.build_required[t.as_usize()]
                && !matches!(action, Action::Build { .. })
            {
                self.violations
                    .push(format!("BuildFirst violated for {tuple}"));
            }
        }
        // ProbeCompletion: prior probers only touch their completion table.
        if let Some(pp) = state.prior_prober {
            match action {
                Action::ProbeStem { table, .. } | Action::ProbeAm { table, .. }
                    if *table != pp.table =>
                {
                    self.violations.push(format!(
                        "ProbeCompletion violated: {tuple} bound to {} routed to {table}",
                        pp.table
                    ));
                }
                Action::Drop if state.completion_required() => {
                    self.violations
                        .push(format!("required prior prober {tuple} dropped by policy"));
                }
                _ => {}
            }
        }
    }

    fn observe_am_build(&mut self, state: &TupleState, fresh: bool) {
        if let Some(mid) = state.origin_am {
            self.policy.feedback(&Feedback::AmBuild { mid, fresh });
            if fresh {
                self.metrics.bump("am_fresh_builds", self.now, 1);
            } else {
                self.metrics.bump("am_dup_builds", self.now, 1);
            }
        }
    }

    fn observe_stem_mem(&mut self, stem: &crate::sharded::ShardedStem) {
        // Sampled sparsely to keep the series small.
        if stem.build_count().is_multiple_of(64) {
            self.metrics.observe(
                &format!("stem_bytes_{}", stem.instance),
                self.now,
                stem.approx_bytes() as f64,
            );
        }
    }

    // ------------------------------------------------------------------
    // Query-server hooks (SteM folding, server-driven scans)
    // ------------------------------------------------------------------

    /// Current global-timestamp counter (the server threads one counter
    /// through every folded executor so TimeStamp comparisons agree with
    /// the shared SteMs' stamps).
    pub(crate) fn ts_counter(&self) -> Timestamp {
        self.ts_counter
    }

    pub(crate) fn set_ts_counter(&mut self, ts: Timestamp) {
        self.ts_counter = ts;
    }

    /// Tighten this executor's deadline to `max(now) <= t` — the server
    /// resolves per-query deadlines (submission deadline, server
    /// default) to absolute virtual time at admission and installs the
    /// minimum here, so one mechanism (the `max_time` guard in
    /// [`Self::step`] and the wave-delivery paths) enforces them all.
    pub(crate) fn clamp_max_time(&mut self, t: Time) {
        let max = self.config.max_time.get_or_insert(t);
        *max = (*max).min(t);
    }

    /// The executor halted because its `max_time` deadline passed (not
    /// `max_events`): the server retires it as timed out.
    pub(crate) fn hit_deadline(&self) -> bool {
        self.timed_out
    }

    /// Whether instance `t` has a SteM in this plan (`no_stem`-relaxed
    /// instances do not). The server uses this to decide whether an
    /// executor can ever consume global build timestamps: only
    /// stem-bearing instances *not* folded onto a shared entry route
    /// private Build envelopes, and only those consume the counter — an
    /// executor with none is timestamp-independent and safe to step in
    /// parallel with its peers.
    pub(crate) fn has_stem(&self, t: TableIdx) -> bool {
        self.layout.stem_mid[t.as_usize()].is_some()
    }

    /// Replace instance `t`'s SteM with a shared cell from the server's
    /// registry: this executor's probes now hit the SteM another query
    /// built (and its own builds would land there too — the server only
    /// folds instances whose builds it takes over, so the router never
    /// offers a Build here).
    pub(crate) fn fold_stem(&mut self, t: TableIdx, cell: &crate::plan::StemCell) {
        let mid = self.layout.stem_mid[t.as_usize()].expect("folding a no-stem instance");
        self.modules[mid] = Module::Stem(cell.share());
    }

    /// Whether this executor memoizes UDF verdicts ([`ExecConfig::memo`]):
    /// the server only folds memo cells between queries that both opted
    /// in, so a memo-off query keeps paying full price — and keeps its
    /// bit-identical memo-off timeline.
    pub(crate) fn memo_enabled(&self) -> bool {
        self.config.memo
    }

    /// The distinct UDF specs among this query's selection predicates —
    /// the server's memo-folding identities. A verdict is a pure function
    /// of (spec, input value), so any two queries running the same spec
    /// can share one cache regardless of which column or table they
    /// filter.
    pub(crate) fn udf_specs(&self) -> Vec<stems_types::UdfSpec> {
        let mut specs = Vec::new();
        for &(_, mid) in &self.layout.sm_mids {
            if let Module::Sm(sm) = &self.modules[mid] {
                if let Some(&spec) = sm.pred.udf_spec() {
                    if !specs.contains(&spec) {
                        specs.push(spec);
                    }
                }
            }
        }
        specs
    }

    /// Replace every `spec`-matching SM's memo cell with a shared one
    /// from the server's registry — the memo analogue of
    /// [`Self::fold_stem`]: query B never re-pays a verdict query A
    /// bought. Only meaningful when [`ExecConfig::memo`] is on.
    pub(crate) fn fold_memo(&mut self, spec: stems_types::UdfSpec, cell: &crate::memo::MemoCell) {
        for i in 0..self.layout.sm_mids.len() {
            let mid = self.layout.sm_mids[i].1;
            if let Module::Sm(sm) = &mut self.modules[mid] {
                if sm.pred.udf_spec() == Some(&spec) {
                    sm.set_memo(Some(cell.clone()));
                }
            }
        }
    }

    /// The `max_time` guard for server-delivered waves. [`Self::step`]
    /// checks the deadline when it pops agenda events, but the server's
    /// wave deliveries bypass the agenda — without this mirror check a
    /// query past its deadline would keep processing every shared wave
    /// (the "dead knob": `max_time` was never enforced under the
    /// server). A wave past the deadline halts the executor exactly
    /// like a stepped event past it: `now` advances to the reap point
    /// (so `end_time` records when the deadline was detected) and the
    /// wave itself is dropped, matching the solo engine, which never
    /// processes an event after the guard trips. Once halted, every
    /// later wave is ignored.
    fn wave_past_deadline(&mut self, now: Time) -> bool {
        if self.halted {
            return true;
        }
        if self.config.max_time.is_some_and(|max| now > max) {
            self.now = now;
            self.halted = true;
            self.timed_out = true;
            return true;
        }
        false
    }

    /// Deliver one shared-scan wave for a *folded* instance: the server
    /// already built `stamped` into the shared SteM (dedup happened
    /// there), so the tuples enter this query's dataflow exactly where a
    /// private build would have dropped them — stamped, routed as one
    /// wave, with the AnyBuild/Eot wake-ups a private build would have
    /// raised. `eot` marks the final wave (scan complete).
    pub(crate) fn deliver_folded_wave(
        &mut self,
        now: Time,
        table: TableIdx,
        stamped: &[Tuple],
        eot: bool,
    ) {
        if self.wave_past_deadline(now) {
            return;
        }
        self.now = now;
        let deliveries: Vec<Delivery> = stamped
            .iter()
            .map(|t| {
                self.metrics.bump("scanned", self.now, 1);
                self.ingest(t.clone(), None)
            })
            .collect();
        self.route_deliveries(deliveries);
        let mut unparks = Vec::new();
        if !stamped.is_empty() {
            // Mirror on_complete's post-build memory sample.
            let total: usize = self
                .modules
                .iter()
                .filter_map(|m| match m {
                    Module::Stem(s) => Some(s.lock().approx_bytes()),
                    _ => None,
                })
                .sum();
            self.metrics
                .observe("stem_bytes_total", self.now, total as f64);
            unparks.push(UnparkSignal::AnyBuild(table));
        }
        if eot {
            unparks.push(UnparkSignal::Eot {
                table,
                bindings: None,
            });
        }
        let mut woken = Vec::new();
        for sig in unparks {
            woken.append(&mut self.unpark(sig));
        }
        self.route_deliveries(woken);
    }

    /// Deliver one shared-scan wave for an *unfolded* (private-SteM)
    /// instance: exactly what [`Self::on_scan_emit`] would have done had
    /// this executor owned the scan — the rows (EOT markers included)
    /// enter unstamped and route to this query's own SteM for building.
    pub(crate) fn deliver_raw_wave(&mut self, now: Time, tuples: Vec<Tuple>) {
        if self.wave_past_deadline(now) {
            return;
        }
        self.now = now;
        let deliveries: Vec<Delivery> = tuples
            .into_iter()
            .map(|t| {
                if !t.is_eot() {
                    self.metrics.bump("scanned", self.now, 1);
                }
                self.ingest(t, None)
            })
            .collect();
        self.route_deliveries(deliveries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BenefitCostPolicy;
    use stems_catalog::{ScanSpec, TableDef, TableInstance};
    use stems_types::{CmpOp, ColRef, ColumnType, PredId, Schema};

    /// Star query R ⋈ S, R ⋈ T on column `a` — gives a bounced R tuple two
    /// competing SteM-probe candidates.
    fn star3() -> (Catalog, QuerySpec) {
        let mut c = Catalog::new();
        let schema = Schema::of(&[("k", ColumnType::Int), ("a", ColumnType::Int)]);
        let mut sources = Vec::new();
        for name in ["R", "S", "T"] {
            let rows = (0..8i64).map(|i| vec![i.into(), (i % 3).into()]).collect();
            let id = c
                .add_table(TableDef::new(name, schema.clone()).with_rows(rows))
                .unwrap();
            c.add_scan(id, ScanSpec::default()).unwrap();
            sources.push(id);
        }
        let q = QuerySpec::new(
            &c,
            sources
                .iter()
                .zip(["r", "s", "t"])
                .map(|(src, a)| TableInstance {
                    source: *src,
                    alias: a.into(),
                })
                .collect(),
            vec![
                Predicate::join(
                    PredId(0),
                    ColRef::new(TableIdx(0), 1),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(1), 1),
                ),
                Predicate::join(
                    PredId(1),
                    ColRef::new(TableIdx(0), 1),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(2), 1),
                ),
            ],
            None,
        )
        .unwrap();
        (c, q)
    }

    fn dummy_env() -> Envelope {
        Envelope {
            batch: TupleBatch::new(),
            states: Vec::new(),
            purpose: Purpose::Probe,
            clustered: false,
            prioritized: false,
        }
    }

    /// The hint-freshness guard: `dispatch_group` computes candidate
    /// costs only at dequeue. The test materializes the snapshot a
    /// flush-time capture *would* have taken, shifts the backlog the way
    /// earlier dispatches of a burst do, and shows the snapshot-fed
    /// decision differs from the dispatch-time one — i.e. re-costing at
    /// dequeue changes the chosen action under a shifted backlog, which
    /// is why no flush-time snapshot may ever reach the policy.
    #[test]
    fn recosting_at_dispatch_changes_choice_under_shifted_backlog() {
        let (catalog, query) = star3();
        let config = ExecConfig {
            policy: RoutingPolicyKind::BenefitCost {
                epsilon: 0.0,
                drop_rate: 0.0,
            },
            ..ExecConfig::default()
        };
        let mut exec = EddyExecutor::build(&catalog, &query, config).unwrap();
        let m1 = exec.layout.stem_mid[1].expect("S SteM");
        let m2 = exec.layout.stem_mid[2].expect("T SteM");
        let actions = vec![
            Action::ProbeStem {
                mid: m1,
                table: TableIdx(1),
            },
            Action::ProbeStem {
                mid: m2,
                table: TableIdx(2),
            },
        ];
        // Flush-time backlog: m2 busy, m1 free — the snapshot favors m1.
        for _ in 0..6 {
            exec.rt[m2].queue.push_back(dummy_env());
        }
        let flushed: Vec<Hint> = actions.iter().map(|a| exec.hint_for(a)).collect();
        // The backlog shifts before the wave is dequeued: m2 drains, m1
        // fills (earlier waves of the same burst routed into it).
        exec.rt[m2].queue.clear();
        for _ in 0..6 {
            exec.rt[m1].queue.push_back(dummy_env());
        }

        // A decision taken on the stale snapshot would route to m1 …
        let tuple = Tuple::singleton_of(TableIdx(0), vec![Value::Int(1), Value::Int(1)])
            .with_timestamp(TableIdx(0), 1);
        let stale_pairs: Vec<(Action, Hint)> = actions
            .iter()
            .copied()
            .zip(flushed.iter().copied())
            .collect();
        let mut stale_policy = BenefitCostPolicy::new(0.0, 0.0);
        let stale = stale_policy.choose(
            &tuple,
            &TupleState::new(),
            &stale_pairs,
            &mut SimRng::new(1),
        );
        assert!(
            matches!(stale_pairs[stale].0, Action::ProbeStem { mid, .. } if mid == m1),
            "stale snapshot should favor the then-empty m1"
        );

        // … but the dispatcher costs at dequeue and routes to m2. The
        // backlog shift came from earlier dispatches of the same burst
        // (`touched`), which also drives the staleness counter.
        let before = exec.rt[m1].queue.len();
        let mut touched = FxHashSet::default();
        touched.insert(m1);
        exec.dispatch_group(
            RouteGroup {
                actions,
                batch: TupleBatch::single(tuple),
                states: vec![TupleState::new()],
                clustered: false,
                prioritized: false,
            },
            &mut touched,
        );
        assert_eq!(
            exec.rt[m2].queue.len(),
            1,
            "re-costed decision must route to the now-cheaper module"
        );
        assert_eq!(
            exec.rt[m1].queue.len(),
            before,
            "m1 must not receive the wave"
        );
        assert_eq!(exec.metrics.counter("hints_recosted"), 1);
        // The dispatched wave's destination joins the touched set, so a
        // following wave offering m2 would count as re-costed too.
        assert!(touched.contains(&m2));
    }

    /// Selection-heavy workload for the fusion tests: two selections over
    /// R plus a join, so a fused Select hop can retire both predicates.
    fn sel2() -> (Catalog, QuerySpec) {
        let mut c = Catalog::new();
        let r = c
            .add_table(
                TableDef::new(
                    "R",
                    Schema::of(&[
                        ("k", ColumnType::Int),
                        ("u", ColumnType::Int),
                        ("v", ColumnType::Int),
                    ]),
                )
                .with_rows(
                    (0..40i64)
                        .map(|i| vec![i.into(), (i % 4).into(), (i % 3).into()])
                        .collect(),
                ),
            )
            .unwrap();
        let s = c
            .add_table(
                TableDef::new("S", Schema::of(&[("k", ColumnType::Int)]))
                    .with_rows((0..40i64).map(|i| vec![i.into()]).collect()),
            )
            .unwrap();
        c.add_scan(r, ScanSpec::default()).unwrap();
        c.add_scan(s, ScanSpec::default()).unwrap();
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "r".into(),
                },
                TableInstance {
                    source: s,
                    alias: "s".into(),
                },
            ],
            vec![
                Predicate::join(
                    PredId(0),
                    ColRef::new(TableIdx(0), 0),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(1), 0),
                ),
                Predicate::selection(
                    PredId(1),
                    ColRef::new(TableIdx(0), 1),
                    CmpOp::Lt,
                    Value::Int(2),
                ),
                Predicate::selection(
                    PredId(2),
                    ColRef::new(TableIdx(0), 2),
                    CmpOp::Lt,
                    Value::Int(2),
                ),
            ],
            None,
        )
        .unwrap();
        (c, q)
    }

    /// Fused and unfused runs must emit the same result multiset, and —
    /// under the deterministic fixed policy, whose cascade order equals
    /// the fused chain order — the same per-predicate evaluation count
    /// (`Feedback::Selected` parity with the scalar cascade), while the
    /// fused run schedules no more events.
    #[test]
    fn fused_selections_match_unfused_cascade() {
        let (catalog, query) = sel2();
        let run = |fuse: bool| {
            let config = ExecConfig {
                fuse_selections: fuse,
                check_constraints: true,
                ..ExecConfig::default()
            };
            EddyExecutor::build(&catalog, &query, config)
                .expect("plan")
                .run()
        };
        let fused = run(true);
        let unfused = run(false);
        assert!(fused.violations.is_empty(), "{:?}", fused.violations);
        assert!(unfused.violations.is_empty(), "{:?}", unfused.violations);
        assert_eq!(
            fused.canonical(&catalog, &query),
            unfused.canonical(&catalog, &query)
        );
        // And both must match the reference nested-loop executor.
        let expected = stems_catalog::reference::canonical(
            &catalog,
            &query,
            &stems_catalog::reference::execute(&catalog, &query),
        );
        assert_eq!(fused.canonical(&catalog, &query), expected);
        assert_eq!(
            fused.counter("sm_applied"),
            unfused.counter("sm_applied"),
            "fusion must evaluate exactly what the cascade evaluates"
        );
        assert_eq!(fused.counter("filtered"), unfused.counter("filtered"));
        assert!(fused.counter("fused_selects") > 0, "fusion never engaged");
        assert_eq!(unfused.counter("fused_selects"), 0);
        assert!(
            fused.events <= unfused.events,
            "fusion must not schedule more events ({} vs {})",
            fused.events,
            unfused.events
        );
    }
}
