//! The eddy executor: a discrete-event loop that routes tuples between
//! modules (paper §2.1.1).
//!
//! "The eddy's role is to continuously route tuples among the rest of the
//! modules, according to a routing policy. ... A tuple is removed from the
//! eddy's dataflow and sent to the output if it spans all base tables and
//! is verified to pass all predicates. The eddy terminates the query when
//! there are no tuples in the dataflow, and each module has finished
//! processing all the tuples sent to it."
//!
//! Every module runs as a serial server with its own input queue and
//! per-operation virtual service times; index AMs additionally answer
//! probes asynchronously with their configured latency. Termination is the
//! natural emptiness of the event agenda — exactly the paper's condition.

use crate::am::IndexProbeOutcome;
use crate::plan::{instantiate, Module, PlanLayout, PlanOptions};
use crate::policy::{Feedback, Hint, RoutingPolicy, RoutingPolicyKind};
use crate::report::Report;
use crate::router::{self, Action, NoCandidates};
use crate::stem::{eot_bindings, BuildResult, ProbeOutcome};
use crate::tuple_state::{CompletionNeed, PriorProber, TupleState};
use std::collections::VecDeque;
use stems_catalog::{Catalog, QuerySpec};
use stems_sim::{EventQueue, Metrics, SimRng, Time};
use stems_storage::fxhash::FxHashSet;
use stems_types::{Predicate, Result, StemsError, TableIdx, Timestamp, Tuple, Value};

/// Virtual service times of local (in-process) operations, in µs. These
/// stand in for the CPU costs of the paper's Java modules; remote costs
/// (scan rates, index latencies) come from the access-method specs.
#[derive(Debug, Clone)]
pub struct CostModel {
    pub stem_build_us: u64,
    pub stem_probe_us: u64,
    pub per_match_us: u64,
    pub sm_us: u64,
    pub am_accept_us: u64,
    /// Probe-cost multiplier for Grace-mode clustered releases (< 1.0
    /// models the I/O locality of partition-clustered probing, §3.1).
    pub clustered_probe_discount: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            stem_build_us: 20,
            stem_probe_us: 30,
            per_match_us: 5,
            sm_us: 10,
            am_accept_us: 10,
            clustered_probe_discount: 1.0,
        }
    }
}

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    pub policy: RoutingPolicyKind,
    pub seed: u64,
    pub costs: CostModel,
    /// Instantiation options (SteM backends, BuildFirst mode, §3.5
    /// exemptions).
    pub plan: PlanOptions,
    /// Restrict SteM probes to these join-graph edges (static spanning
    /// tree emulation, §3.4). `None` = fully dynamic.
    pub probe_edges: Option<Vec<(TableIdx, TableIdx)>>,
    /// User-interest predicate (§4.1): matching tuples jump module queues
    /// and their results are counted separately.
    pub priority_pred: Option<Predicate>,
    /// BoundedRepetition backstop.
    pub max_hops: u32,
    /// Simulation guards.
    pub max_events: u64,
    pub max_time: Option<Time>,
    /// Verify invariants while running (tests); violations are collected
    /// in the report instead of panicking.
    pub check_constraints: bool,
    /// Record a routing trace (capped at `trace_limit` events) — the
    /// observability hook for debugging policies and demos.
    pub trace: bool,
    pub trace_limit: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            policy: RoutingPolicyKind::default(),
            seed: 42,
            costs: CostModel::default(),
            plan: PlanOptions::default(),
            probe_edges: None,
            priority_pred: None,
            max_hops: 1_000_000,
            max_events: 200_000_000,
            max_time: None,
            check_constraints: false,
            trace: false,
            trace_limit: 100_000,
        }
    }
}

/// A tuple handed to a module's input queue.
#[derive(Debug)]
struct Envelope {
    tuple: Tuple,
    state: TupleState,
    purpose: Purpose,
    clustered: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Purpose {
    Build,
    Probe,
    Select,
    /// Probe an index AM *for* the given table instance.
    AmProbe(TableIdx),
}

/// A tuple re-entering the eddy after a module finished with it.
struct Delivery {
    tuple: Tuple,
    state: TupleState,
    clustered: bool,
}

/// Signal attached to a completed build, used to wake parked tuples.
enum UnparkSignal {
    AnyBuild(TableIdx),
    Eot {
        table: TableIdx,
        /// `None` = full-relation (scan) EOT.
        bindings: Option<Vec<(usize, Value)>>,
    },
}

enum Event {
    /// A module may begin its next queued envelope.
    Start(usize),
    /// A module finished an envelope: deliver its emissions.
    Complete(usize, Vec<Delivery>, Option<UnparkSignal>),
    /// A scan emits its next row (or EOT).
    ScanEmit(usize),
    /// An index lookup entered service (fig-7(ii)'s probe counter).
    AmIssue(usize),
    /// An index lookup finished; deliver matches + EOT.
    AmResponse(usize, Vec<Value>),
}

enum ParkKind {
    /// Unbuilt re-prober (§3.5): any build to the table may help.
    AnyBuild,
    /// Built prior prober awaiting coverage: only a matching EOT helps.
    Coverage(Vec<(usize, Value)>),
}

struct ParkedTuple {
    tuple: Tuple,
    state: TupleState,
    table: TableIdx,
    kind: ParkKind,
}

struct ModuleRt {
    queue: VecDeque<Envelope>,
    busy: bool,
}

/// The eddy executor. Build one with [`EddyExecutor::build`], run it to
/// completion with [`EddyExecutor::run`].
pub struct EddyExecutor {
    query: QuerySpec,
    config: ExecConfig,
    modules: Vec<Module>,
    rt: Vec<ModuleRt>,
    layout: PlanLayout,
    agenda: EventQueue<Event>,
    policy: Box<dyn RoutingPolicy>,
    rng: SimRng,
    now: Time,
    ts_counter: Timestamp,
    parked: Vec<ParkedTuple>,
    results: Vec<Tuple>,
    metrics: Metrics,
    events: u64,
    violations: Vec<String>,
    output_seen: FxHashSet<Tuple>,
    trace: Vec<crate::report::TraceEvent>,
}

impl EddyExecutor {
    /// Instantiate the query (paper §2.2 steps 1–4) and seed the scans
    /// (step 5).
    pub fn build(catalog: &Catalog, query: &QuerySpec, config: ExecConfig) -> Result<Self> {
        if let Some(p) = &config.priority_pred {
            if !p.is_selection() {
                return Err(StemsError::Schema(
                    "priority predicate must be a selection".into(),
                ));
            }
        }
        let (modules, layout) = instantiate(catalog, query, &config.plan)?;
        let rt = modules
            .iter()
            .map(|_| ModuleRt {
                queue: VecDeque::new(),
                busy: false,
            })
            .collect();
        let policy = config.policy.build();
        let rng = SimRng::new(config.seed);
        let mut exec = EddyExecutor {
            query: query.clone(),
            modules,
            rt,
            layout,
            agenda: EventQueue::new(),
            policy,
            rng,
            now: 0,
            ts_counter: 0,
            parked: Vec::new(),
            results: Vec::new(),
            metrics: Metrics::new(),
            events: 0,
            violations: Vec::new(),
            output_seen: FxHashSet::default(),
            trace: Vec::new(),
            config,
        };
        // Step 5: seed tuples to the scans.
        for &mid in exec.layout.scan_mids.clone().iter() {
            if let Module::ScanAm(scan) = &exec.modules[mid] {
                exec.agenda.push(scan.first_emit_time(), Event::ScanEmit(mid));
            }
        }
        Ok(exec)
    }

    /// Run to completion and produce the report.
    pub fn run(mut self) -> Report {
        while let Some((t, ev)) = self.agenda.pop() {
            self.now = t;
            self.events += 1;
            if let Some(max) = self.config.max_time {
                if self.now > max {
                    break;
                }
            }
            if self.events > self.config.max_events {
                self.violations
                    .push("max_events exceeded — possible routing livelock".into());
                break;
            }
            match ev {
                Event::Start(mid) => self.on_start(mid),
                Event::Complete(mid, deliveries, unpark) => {
                    self.on_complete(mid, deliveries, unpark)
                }
                Event::ScanEmit(mid) => self.on_scan_emit(mid),
                Event::AmIssue(_mid) => {
                    self.metrics.bump("index_probes", self.now, 1);
                }
                Event::AmResponse(mid, key) => self.on_am_response(mid, key),
            }
        }
        self.metrics.observe("end", self.now, 1.0);
        Report {
            results: self.results,
            metrics: self.metrics,
            end_time: self.now,
            events: self.events,
            violations: self.violations,
            policy_name: self.policy.name(),
            trace: self.trace,
        }
    }

    fn record(&mut self, kind: crate::report::TraceKind, tuple: &Tuple) {
        if self.config.trace && self.trace.len() < self.config.trace_limit {
            self.trace.push(crate::report::TraceEvent {
                t: self.now,
                kind,
                tuple: tuple.to_string(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_start(&mut self, mid: usize) {
        if self.rt[mid].busy {
            return;
        }
        let Some(env) = self.rt[mid].queue.pop_front() else {
            return;
        };
        self.rt[mid].busy = true;
        let (dur, deliveries, unpark) = self.process(mid, env);
        self.agenda
            .push(self.now + dur.max(1), Event::Complete(mid, deliveries, unpark));
    }

    fn on_complete(
        &mut self,
        mid: usize,
        deliveries: Vec<Delivery>,
        unpark: Option<UnparkSignal>,
    ) {
        self.rt[mid].busy = false;
        if !self.rt[mid].queue.is_empty() {
            self.agenda.push(self.now, Event::Start(mid));
        }
        if matches!(unpark, Some(UnparkSignal::AnyBuild(_))) {
            // A build happened: sample total SteM memory (the fig-2
            // singleton-vs-intermediate storage comparison watches this).
            let total: usize = self
                .modules
                .iter()
                .filter_map(|m| match m {
                    Module::Stem(s) => Some(s.approx_bytes()),
                    _ => None,
                })
                .sum();
            self.metrics
                .observe("stem_bytes_total", self.now, total as f64);
        }
        for d in deliveries {
            self.accept(d.tuple, d.state, d.clustered);
        }
        if let Some(sig) = unpark {
            self.unpark(sig);
        }
    }

    fn on_scan_emit(&mut self, mid: usize) {
        let Module::ScanAm(scan) = &mut self.modules[mid] else {
            return;
        };
        let (tuples, next) = scan.emit_next(self.now);
        if let Some(nt) = next {
            self.agenda.push(nt, Event::ScanEmit(mid));
        }
        for t in tuples {
            if !t.is_eot() {
                self.metrics.bump("scanned", self.now, 1);
            }
            self.ingest(t, None);
        }
    }

    fn on_am_response(&mut self, mid: usize, key: Vec<Value>) {
        let mut module = std::mem::replace(&mut self.modules[mid], Module::Hole);
        let mut next = None;
        let tuples = match &mut module {
            Module::IndexAm(am) => {
                let tuples = am.respond(&key, &self.query);
                // The freed server picks up the next pending lookup
                // (prioritized first, §4.1).
                next = am.dequeue_pending(self.now);
                tuples
            }
            _ => Vec::new(),
        };
        self.modules[mid] = module;
        if let Some((key2, start, complete)) = next {
            self.agenda.push(start, Event::AmIssue(mid));
            self.agenda.push(complete, Event::AmResponse(mid, key2));
        }
        self.metrics.bump("am_responses", self.now, 1);
        for t in tuples {
            self.ingest(t, Some(mid));
        }
    }

    // ------------------------------------------------------------------
    // Module processing (at service start)
    // ------------------------------------------------------------------

    fn process(
        &mut self,
        mid: usize,
        env: Envelope,
    ) -> (u64, Vec<Delivery>, Option<UnparkSignal>) {
        let mut module = std::mem::replace(&mut self.modules[mid], Module::Hole);
        let out = match (&mut module, env.purpose) {
            (Module::Stem(stem), Purpose::Build) => self.process_build(stem, env),
            (Module::Stem(stem), Purpose::Probe) => self.process_probe(stem, env),
            (Module::Sm(sm), Purpose::Select) => self.process_select(sm, env),
            (Module::IndexAm(am), Purpose::AmProbe(t)) => self.process_am_probe(mid, am, env, t),
            _ => {
                self.violations
                    .push(format!("envelope {:?} routed to wrong module", env.purpose));
                (1, Vec::new(), None)
            }
        };
        self.modules[mid] = module;
        out
    }

    fn process_build(
        &mut self,
        stem: &mut crate::stem::Stem,
        env: Envelope,
    ) -> (u64, Vec<Delivery>, Option<UnparkSignal>) {
        let table = stem.instance;
        let is_eot = env.tuple.is_eot();
        let eot_binds = if is_eot {
            eot_bindings(&env.tuple.components()[0].row)
        } else {
            None
        };
        let next_ts = self.ts_counter + 1;
        let result = stem.build(&env.tuple, &env.state, next_ts);
        let dur = self.config.costs.stem_build_us;
        match result {
            BuildResult::Fresh(stamped) => {
                self.ts_counter = next_ts;
                self.observe_am_build(&env.state, true);
                self.observe_stem_mem(stem);
                (
                    dur,
                    vec![Delivery {
                        tuple: stamped,
                        state: env.state,
                        clustered: false,
                    }],
                    Some(UnparkSignal::AnyBuild(table)),
                )
            }
            BuildResult::Deferred => {
                self.ts_counter = next_ts;
                self.observe_am_build(&env.state, true);
                (dur, Vec::new(), Some(UnparkSignal::AnyBuild(table)))
            }
            BuildResult::Duplicate => {
                self.observe_am_build(&env.state, false);
                self.metrics.bump("duplicates_absorbed", self.now, 1);
                (dur, Vec::new(), None)
            }
            BuildResult::Eot => {
                let mut deliveries = Vec::new();
                if stem.scan_complete() && stem.deferred_len() > 0 {
                    // Grace mode: the build phase ended; release the
                    // withheld bounce-backs clustered by partition.
                    for (tuple, state) in stem.release_deferred() {
                        deliveries.push(Delivery {
                            tuple,
                            state,
                            clustered: true,
                        });
                    }
                }
                (
                    dur,
                    deliveries,
                    Some(UnparkSignal::Eot {
                        table,
                        bindings: eot_binds,
                    }),
                )
            }
        }
    }

    fn process_probe(
        &mut self,
        stem: &mut crate::stem::Stem,
        env: Envelope,
    ) -> (u64, Vec<Delivery>, Option<UnparkSignal>) {
        let table = stem.instance;
        let reply = stem.probe(&env.tuple, &env.state, &self.query);
        self.policy.feedback(&Feedback::StemProbe {
            table,
            emitted: reply.results.len(),
        });
        self.metrics.bump("stem_probes", self.now, 1);

        let mut deliveries: Vec<Delivery> = Vec::new();
        for (tuple, done) in reply.results {
            // Track intermediate-result formation per span size — the
            // §3.4 spanning-tree experiments watch these to see progress
            // continue while a source is stalled.
            self.metrics
                .bump(&format!("span{}_formed", tuple.span().len()), self.now, 1);
            let mut state = TupleState::for_result(done);
            state.prioritized = env.state.prioritized || self.is_prioritized(&tuple);
            deliveries.push(Delivery {
                tuple,
                state,
                clustered: false,
            });
        }

        match reply.outcome {
            ProbeOutcome::Consumed => {
                self.metrics.bump("probes_consumed", self.now, 1);
            }
            ProbeOutcome::Bounced(need) => {
                let mut state = env.state;
                state.mark_probed(table);
                state.last_match_ts = state.last_match_ts.max(reply.observed_ts);
                state.last_probe_version = router::stem_version(stem);
                match state.prior_prober {
                    // Re-bounce of an existing prior prober for the same
                    // table: once the need has weakened to Optional it
                    // never strengthens back to Required.
                    Some(pp) if pp.table == table => {
                        let need = if pp.need == CompletionNeed::Optional {
                            CompletionNeed::Optional
                        } else {
                            need
                        };
                        state.prior_prober = Some(PriorProber { table, need });
                    }
                    // A prior prober for a *different* table probed this
                    // SteM: the router must never allow that.
                    Some(pp) => {
                        self.violations.push(format!(
                            "ProbeCompletion violated: prior prober for {} probed {}",
                            pp.table, table
                        ));
                    }
                    None => {
                        state.prior_prober = Some(PriorProber { table, need });
                    }
                }
                self.metrics.bump("probes_bounced", self.now, 1);
                deliveries.push(Delivery {
                    tuple: env.tuple,
                    state,
                    clustered: false,
                });
            }
        }

        let base = self.config.costs.stem_probe_us
            + self.config.costs.per_match_us * deliveries.len() as u64;
        let dur = if env.clustered {
            ((base as f64) * self.config.costs.clustered_probe_discount).max(1.0) as u64
        } else {
            base
        };
        (dur, deliveries, None)
    }

    fn process_select(
        &mut self,
        sm: &crate::sm::Sm,
        env: Envelope,
    ) -> (u64, Vec<Delivery>, Option<UnparkSignal>) {
        let dur = self.config.costs.sm_us;
        self.metrics.bump("sm_applied", self.now, 1);
        match sm.apply(&env.tuple) {
            Some(true) => {
                self.policy.feedback(&Feedback::Selected {
                    pred: sm.pred_id(),
                    passed: true,
                });
                let mut state = env.state;
                state.done.insert(sm.pred_id());
                (
                    dur,
                    vec![Delivery {
                        tuple: env.tuple,
                        state,
                        clustered: false,
                    }],
                    None,
                )
            }
            Some(false) => {
                self.policy.feedback(&Feedback::Selected {
                    pred: sm.pred_id(),
                    passed: false,
                });
                self.metrics.bump("filtered", self.now, 1);
                (dur, Vec::new(), None)
            }
            None => {
                self.violations.push(format!(
                    "selection {} not evaluable on routed tuple",
                    sm.describe()
                ));
                (dur, Vec::new(), None)
            }
        }
    }

    fn process_am_probe(
        &mut self,
        mid: usize,
        am: &mut crate::am::IndexAm,
        env: Envelope,
        t: TableIdx,
    ) -> (u64, Vec<Delivery>, Option<UnparkSignal>) {
        let (outcome, key) = am.probe(
            &env.tuple,
            t,
            &self.query,
            self.now,
            env.state.prioritized,
        );
        match outcome {
            IndexProbeOutcome::Scheduled { start, complete } => {
                self.agenda.push(start, Event::AmIssue(mid));
                self.agenda
                    .push(complete, Event::AmResponse(mid, key.expect("scheduled key")));
            }
            IndexProbeOutcome::Queued => {
                self.metrics.bump("probes_queued", self.now, 1);
            }
            IndexProbeOutcome::Coalesced => {
                self.metrics.bump("probes_coalesced", self.now, 1);
            }
            IndexProbeOutcome::Unbindable => {
                self.violations
                    .push("router sent an unbindable probe to an index AM".into());
            }
        }
        // The AM asynchronously bounces back the probe tuple (Table 1).
        let mut state = env.state;
        state.mark_am_probed(t);
        (
            self.config.costs.am_accept_us,
            vec![Delivery {
                tuple: env.tuple,
                state,
                clustered: false,
            }],
            None,
        )
    }

    // ------------------------------------------------------------------
    // The eddy: ingestion, routing, output, parking
    // ------------------------------------------------------------------

    /// A singleton enters the dataflow from an AM.
    fn ingest(&mut self, tuple: Tuple, origin_am: Option<usize>) {
        let mut state = TupleState::new();
        state.origin_am = origin_am;
        state.prioritized = self.is_prioritized(&tuple);
        self.accept(tuple, state, false);
    }

    fn is_prioritized(&self, tuple: &Tuple) -> bool {
        self.config
            .priority_pred
            .as_ref()
            .is_some_and(|p| p.eval(tuple) == Some(true))
    }

    /// Route one tuple: output, park, retire, or enqueue to a module.
    fn accept(&mut self, tuple: Tuple, mut state: TupleState, clustered: bool) {
        state.hops += 1;
        if state.hops > self.config.max_hops {
            self.metrics.bump("hops_exceeded", self.now, 1);
            self.violations
                .push("BoundedRepetition backstop hit (max_hops)".into());
            return;
        }

        if tuple.is_eot() {
            let t = tuple.components()[0].table;
            if let Some(mid) = self.layout.stem_mid[t.as_usize()] {
                self.enqueue(mid, Envelope {
                    tuple,
                    state,
                    purpose: Purpose::Build,
                    clustered: false,
                });
            }
            return;
        }

        if tuple.span() == self.query.full_span() && state.done.is_superset_of(self.query.all_preds())
        {
            self.output(tuple, &state);
            return;
        }

        match router::candidates(
            &self.modules,
            &self.layout,
            &self.query,
            &tuple,
            &state,
            self.config.probe_edges.as_deref(),
        ) {
            Err(NoCandidates::Retire) => {
                self.metrics.bump("retired", self.now, 1);
                self.record(crate::report::TraceKind::Retire, &tuple);
            }
            Err(NoCandidates::Park { table }) => {
                self.record(crate::report::TraceKind::Park { table }, &tuple);
                self.park(tuple, state, table);
            }
            Ok(acts) => {
                let pairs: Vec<(Action, Hint)> = acts
                    .into_iter()
                    .map(|a| {
                        let h = self.hint_for(&a);
                        (a, h)
                    })
                    .collect();
                let idx = if pairs.len() == 1 {
                    0
                } else {
                    self.policy.choose(&tuple, &state, &pairs, &mut self.rng)
                };
                let (action, _) = pairs[idx];
                if self.config.trace {
                    self.record(
                        crate::report::TraceKind::Route {
                            action: action.kind(),
                            table: match action {
                                Action::Build { table, .. }
                                | Action::ProbeStem { table, .. }
                                | Action::ProbeAm { table, .. } => Some(table),
                                _ => None,
                            },
                        },
                        &tuple,
                    );
                }
                if self.config.check_constraints {
                    self.check_choice(&tuple, &state, &action);
                }
                match action {
                    Action::Drop => {
                        self.metrics.bump("policy_drops", self.now, 1);
                    }
                    Action::Build { mid, .. } => self.enqueue(mid, Envelope {
                        tuple,
                        state,
                        purpose: Purpose::Build,
                        clustered,
                    }),
                    Action::ProbeStem { mid, .. } => self.enqueue(mid, Envelope {
                        tuple,
                        state,
                        purpose: Purpose::Probe,
                        clustered,
                    }),
                    Action::Select { mid, .. } => self.enqueue(mid, Envelope {
                        tuple,
                        state,
                        purpose: Purpose::Select,
                        clustered,
                    }),
                    Action::ProbeAm { mid, table } => {
                        self.metrics.bump("am_probe_choices", self.now, 1);
                        self.enqueue(mid, Envelope {
                            tuple,
                            state,
                            purpose: Purpose::AmProbe(table),
                            clustered,
                        })
                    }
                }
            }
        }
    }

    fn enqueue(&mut self, mid: usize, env: Envelope) {
        // §4.1: prioritized tuples jump the queue so their partial results
        // surface sooner.
        if env.state.prioritized {
            self.rt[mid].queue.push_front(env);
        } else {
            self.rt[mid].queue.push_back(env);
        }
        if !self.rt[mid].busy {
            self.agenda.push(self.now, Event::Start(mid));
        }
    }

    fn output(&mut self, tuple: Tuple, state: &TupleState) {
        self.record(crate::report::TraceKind::Output, &tuple);
        if self.config.check_constraints && !self.output_seen.insert(tuple.clone()) {
            self.violations
                .push(format!("duplicate result emitted: {tuple}"));
        }
        self.metrics.bump("results", self.now, 1);
        if state.prioritized {
            self.metrics.bump("priority_results", self.now, 1);
        }
        self.results.push(tuple);
    }

    fn park(&mut self, tuple: Tuple, state: TupleState, table: TableIdx) {
        let all_built = tuple
            .components()
            .iter()
            .all(|c| c.ts != stems_types::UNBUILT_TS);
        let kind = if all_built {
            // Compute the coverage bindings this tuple is waiting for.
            let linking: Vec<&Predicate> = self
                .query
                .preds_linking(tuple.span(), table)
                .into_iter()
                .map(|id| self.query.predicate(id))
                .collect();
            ParkKind::Coverage(crate::stem::probe_bindings(
                &linking,
                &tuple,
                table,
                &self.query,
            ))
        } else {
            ParkKind::AnyBuild
        };
        self.metrics.bump("parked", self.now, 1);
        self.parked.push(ParkedTuple {
            tuple,
            state,
            table,
            kind,
        });
    }

    fn unpark(&mut self, sig: UnparkSignal) {
        let woken: Vec<ParkedTuple> = match &sig {
            UnparkSignal::AnyBuild(t) => {
                let mut woken = Vec::new();
                let mut keep = Vec::new();
                for p in self.parked.drain(..) {
                    if p.table == *t && matches!(p.kind, ParkKind::AnyBuild) {
                        woken.push(p);
                    } else {
                        keep.push(p);
                    }
                }
                self.parked = keep;
                woken
            }
            UnparkSignal::Eot { table, bindings } => {
                let mut woken = Vec::new();
                let mut keep = Vec::new();
                for p in self.parked.drain(..) {
                    let wake = p.table == *table
                        && match (&p.kind, bindings) {
                            (ParkKind::AnyBuild, _) => true,
                            (ParkKind::Coverage(_), None) => true,
                            (ParkKind::Coverage(pb), Some(eb)) => {
                                eb.iter().all(|b| pb.contains(b))
                            }
                        };
                    if wake {
                        woken.push(p);
                    } else {
                        keep.push(p);
                    }
                }
                self.parked = keep;
                woken
            }
        };
        for p in woken {
            self.metrics.bump("unparked", self.now, 1);
            self.accept(p.tuple, p.state, false);
        }
    }

    /// Rough cost estimate per candidate action — queue backlog plus one
    /// service (for AMs: lookup latency and server backlog).
    fn hint_for(&self, a: &Action) -> Hint {
        let c = &self.config.costs;
        let est = match a {
            Action::Build { mid, .. } => {
                c.stem_build_us * (1 + self.rt[*mid].queue.len() as u64)
            }
            Action::ProbeStem { mid, .. } => {
                c.stem_probe_us * (1 + self.rt[*mid].queue.len() as u64)
            }
            Action::Select { mid, .. } => c.sm_us * (1 + self.rt[*mid].queue.len() as u64),
            Action::ProbeAm { mid, .. } => {
                let backlog = match &self.modules[*mid] {
                    Module::IndexAm(am) => am.queue_delay(self.now) + am.spec.latency_us,
                    _ => 0,
                };
                backlog + c.am_accept_us * (1 + self.rt[*mid].queue.len() as u64)
            }
            Action::Drop => 1,
        };
        Hint { est_cost_us: est }
    }

    /// Extra runtime verification of the Table 2 constraints (tests only).
    fn check_choice(&mut self, tuple: &Tuple, state: &TupleState, action: &Action) {
        // BuildFirst: an unbuilt singleton from a build-required table may
        // only build.
        if tuple.is_singleton() {
            let t = tuple.components()[0].table;
            let unbuilt = tuple.components()[0].ts == stems_types::UNBUILT_TS;
            if unbuilt
                && self.layout.build_required[t.as_usize()]
                && !matches!(action, Action::Build { .. })
            {
                self.violations
                    .push(format!("BuildFirst violated for {tuple}"));
            }
        }
        // ProbeCompletion: prior probers only touch their completion table.
        if let Some(pp) = state.prior_prober {
            match action {
                Action::ProbeStem { table, .. } | Action::ProbeAm { table, .. }
                    if *table != pp.table => {
                        self.violations.push(format!(
                            "ProbeCompletion violated: {tuple} bound to {} routed to {table}",
                            pp.table
                        ));
                    }
                Action::Drop
                    if state.completion_required() => {
                        self.violations.push(format!(
                            "required prior prober {tuple} dropped by policy"
                        ));
                    }
                _ => {}
            }
        }
    }

    fn observe_am_build(&mut self, state: &TupleState, fresh: bool) {
        if let Some(mid) = state.origin_am {
            self.policy.feedback(&Feedback::AmBuild { mid, fresh });
            if fresh {
                self.metrics.bump("am_fresh_builds", self.now, 1);
            } else {
                self.metrics.bump("am_dup_builds", self.now, 1);
            }
        }
    }

    fn observe_stem_mem(&mut self, stem: &crate::stem::Stem) {
        // Sampled sparsely to keep the series small.
        if stem.build_count.is_multiple_of(64) {
            self.metrics.observe(
                &format!("stem_bytes_{}", stem.instance),
                self.now,
                stem.approx_bytes() as f64,
            );
        }
    }
}
