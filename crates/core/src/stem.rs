//! The State Module — a "half join" (paper §2.1.4).
//!
//! A SteM owns a dictionary of singleton tuples from one table instance and
//! handles:
//!
//! * **build** — insert with set-semantics duplicate absorption (§3.2) and
//!   global timestamp assignment (§3.1); EOT tuples are built into an EOT
//!   index that tracks which probes the SteM can answer *completely*;
//! * **probe** — find matches, concatenate, filter by the TimeStamp and
//!   LastMatchTimeStamp rules, and decide whether to bounce the probe back
//!   (SteM BounceBack, Table 2 + §3.3/§4.1);
//! * **eviction** — optional FIFO window, the CACQ/PSoup-style extension
//!   the paper describes for queries over unbounded streams (§2.3, §6);
//! * **deferred clustered bounce-back** — the §3.1 "asynchronous hash
//!   index" trick that makes routing simulate a Grace hash join: build
//!   acknowledgements are withheld and later released clustered by hash
//!   partition.

use crate::sync::{Arc, ScratchPool};
use crate::tuple_state::{CompletionNeed, TupleState};
use stems_catalog::{QuerySpec, SourceId};
use stems_storage::fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
use stems_storage::{index_key, CandidateBuf, DictStore, RowSet, StoreKind};
use stems_types::{
    HashedKey, PredSet, Row, TableIdx, TableSet, Timestamp, Tuple, TupleBatch, Value, UNBUILT_TS,
};

/// A probe tuple's equality binding, resolved and hashed exactly once at
/// the envelope boundary: the bound store column plus the annotated key.
/// `None` means the probe binds nothing and must scan.
pub(crate) type ProbeBinding = Option<(usize, HashedKey)>;

/// Reusable per-SteM probe scratch. Everything the batched probe path
/// materializes per envelope — key groups, flat candidate arenas, plans —
/// lives here and keeps its capacity across envelopes, so steady-state
/// probing allocates nothing. Kept in a mutexed free-list on the SteM
/// because probes run through `&self` and the sharded runtime may split
/// one shard's probe lane into chunks serviced concurrently by several
/// pool workers ([`crate::runtime::WorkerPool`]): each chunk checks a
/// scratch out for its envelope and returns it after, so the lock is
/// taken twice per envelope, never per tuple, and concurrent chunks
/// never serialize on a shared buffer.
/// Cap on the scratch free-list: a concurrency burst may check out many
/// scratches at once, but only this many are kept when they come back —
/// the rest are dropped so the pool's footprint tracks steady-state
/// concurrency, not the historical high-water mark.
const MAX_POOLED_SCRATCH: usize = 8;

#[derive(Debug, Default)]
struct ProbeScratch {
    /// Distinct probe columns of the current envelope.
    cols: Vec<usize>,
    /// Key list per column slot (capacity pooled across envelopes).
    keys: Vec<Vec<HashedKey>>,
    /// Flat candidate arena per column slot.
    bufs: Vec<CandidateBuf>,
    /// Per tuple: span-cache index + optional (column slot, key slot).
    plans: Vec<(usize, Option<(usize, usize)>)>,
    /// Per tuple bindings, when this SteM computes them itself
    /// ([`Stem::probe_batch_into`]; the sharded layer passes its own).
    bindings: Vec<ProbeBinding>,
}

/// Configuration of one SteM.
#[derive(Debug, Clone, PartialEq)]
pub struct StemOptions {
    /// Dictionary backend.
    pub store: StoreKind,
    /// FIFO eviction window (None = unbounded, the paper's default for
    /// snapshot queries).
    pub eviction_window: Option<usize>,
    /// Withhold build bounce-backs until the table's scan completes, then
    /// release them clustered by hash partition (§3.1 Grace simulation).
    pub deferred_bounce: bool,
    /// Partition fan-out used to cluster deferred bounce-backs, and how
    /// many of those partitions bounce immediately ("memory-resident",
    /// yielding Hybrid-Hash, §3.1).
    pub partitions: usize,
    pub mem_partitions: usize,
    /// Hash-partition shard fan-out of the SteM's dictionary
    /// ([`crate::sharded::ShardedStem`]). `1` (the default) is the
    /// unsharded scalar SteM; larger values split storage by join-key
    /// hash so build/probe envelopes parallelize across threads. Values
    /// are interpreted by `ShardedStem`; this `Stem` type itself is
    /// always one shard.
    pub num_shards: usize,
    /// Worker-pool budget for this SteM's sharded envelope fan-outs.
    /// `None` (the default) inherits `ExecConfig::workers` (and thus
    /// `STEMS_WORKERS` / host parallelism); `Some(n)` pins this SteM's
    /// budget — interpreted by `ShardedStem`, irrelevant at one shard.
    pub workers: Option<usize>,
    /// Minimum routed rows in one envelope before the sharded fan-out
    /// dispatches to the worker pool. `None` (the default) inherits
    /// `ExecConfig::parallel_min_rows` (and thus
    /// `STEMS_PARALLEL_MIN_ROWS` /
    /// [`crate::runtime::DEFAULT_PARALLEL_MIN_ROWS`]).
    pub parallel_min_rows: Option<usize>,
}

impl Default for StemOptions {
    fn default() -> Self {
        StemOptions {
            store: StoreKind::Hash,
            eviction_window: None,
            deferred_bounce: false,
            partitions: 8,
            mem_partitions: 0,
            num_shards: 1,
            workers: None,
            parallel_min_rows: None,
        }
    }
}

/// Result of building a tuple into a SteM.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildResult {
    /// Inserted; the returned tuple carries its new build timestamp and
    /// must be bounced back to the eddy ("so that \[it\] can probe the other
    /// SteMs", Table 2).
    Fresh(Tuple),
    /// Inserted, but the bounce-back is withheld for clustered release
    /// (Grace mode). The engine gets it later from [`Stem::release_deferred`].
    Deferred,
    /// Absorbed as a set-semantics duplicate (§3.2) — removed from the
    /// dataflow.
    Duplicate,
    /// An EOT tuple; recorded in the EOT index and absorbed.
    Eot,
}

/// Whether a probed tuple is bounced back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// All matches were returned; the probe tuple leaves the SteM's
    /// responsibility ("never bounce back probe tuples" in the
    /// fully-covered case).
    Consumed,
    /// Bounced back per SteM BounceBack; the tuple becomes a prior prober
    /// for this table (Definition 3).
    Bounced(CompletionNeed),
}

/// Everything a probe produces.
#[derive(Debug)]
pub struct ProbeReply {
    /// Concatenated results with their updated donebits.
    pub results: Vec<(Tuple, PredSet)>,
    pub outcome: ProbeOutcome,
    /// The SteM's max build timestamp at probe time — recorded into the
    /// prober's LastMatchTimeStamp when bounced (§3.5).
    pub observed_ts: Timestamp,
    /// Matches found (before timestamp filtering) — policy feedback.
    pub raw_matches: usize,
}

/// Header of one probe reply stored flat in a [`ProbeReplySet`] arena:
/// everything a [`ProbeReply`] carries except the result tuples, which
/// live contiguously in the arena ( `len` of them per reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyMeta {
    pub outcome: ProbeOutcome,
    /// The SteM's max build timestamp at probe time (§3.5).
    pub observed_ts: Timestamp,
    /// Matches found before timestamp filtering — policy feedback.
    pub raw_matches: usize,
    /// Result tuples this reply wrote into the arena.
    pub len: usize,
}

/// Envelope-lifetime probe-reply arena: all replies of one probe envelope,
/// stored as one flat `(tuple, donebits)` vector plus one [`ReplyMeta`]
/// header per probe tuple, in batch order. Callers own the set and reuse
/// it across envelopes, so the steady-state reply path performs **zero
/// per-tuple heap allocations** — the per-reply `Vec`s the old
/// `Vec<ProbeReply>` API materialized are gone (`tests/alloc_probe.rs`
/// pins this with a counting allocator). The sharded merge additionally
/// moves replies *between* sets without reallocating
/// ([`ProbeReplySet::take_results_into`]).
#[derive(Debug, Default)]
pub struct ProbeReplySet {
    /// Flat result arena: each reply's results are contiguous.
    results: Vec<(Tuple, PredSet)>,
    /// One header per probe tuple, batch order.
    metas: Vec<ReplyMeta>,
    /// Consumption cursors for [`ProbeReplySet::take_results_into`].
    meta_cursor: usize,
    result_cursor: usize,
}

impl ProbeReplySet {
    pub fn new() -> ProbeReplySet {
        ProbeReplySet::default()
    }

    /// Drop contents, keep capacity (arena reuse across envelopes).
    pub fn clear(&mut self) {
        self.results.clear();
        self.metas.clear();
        self.meta_cursor = 0;
        self.result_cursor = 0;
    }

    /// Number of replies (== probe tuples of the envelope).
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Total result tuples across all replies.
    pub fn total_results(&self) -> usize {
        self.results.len()
    }

    /// Walk the replies in batch order as `(header, results)` views.
    pub fn iter(&self) -> impl Iterator<Item = (&ReplyMeta, &[(Tuple, PredSet)])> {
        let mut off = 0usize;
        self.metas.iter().map(move |m| {
            let slice = &self.results[off..off + m.len];
            off += m.len;
            (m, slice)
        })
    }

    /// Split-borrow accessor for owning consumption: the headers plus a
    /// draining iterator over the flat results (the engine walks the
    /// headers and takes `meta.len` results for each; dropping the drain
    /// keeps the arena's capacity).
    pub fn metas_and_results(&mut self) -> (&[ReplyMeta], std::vec::Drain<'_, (Tuple, PredSet)>) {
        self.meta_cursor = 0;
        self.result_cursor = 0;
        (&self.metas, self.results.drain(..))
    }

    /// Move the next unconsumed reply's *results* into `out`'s arena
    /// (no header is pushed — the caller merges headers itself, e.g. the
    /// sharded fan-out combines several per-lane replies into one) and
    /// return its header. Moved-from slots are left as empty placeholder
    /// tuples; no allocation happens in either set beyond `out`'s arena
    /// growth, which amortizes to zero across reused envelopes.
    pub(crate) fn take_results_into(&mut self, out: &mut ProbeReplySet) -> ReplyMeta {
        let meta = self.metas[self.meta_cursor];
        self.meta_cursor += 1;
        let start = self.result_cursor;
        for slot in &mut self.results[start..start + meta.len] {
            out.results
                .push(std::mem::replace(slot, (Tuple::empty(), PredSet::EMPTY)));
        }
        self.result_cursor = start + meta.len;
        meta
    }

    /// Append a reply header (sharded merge tail; results were already
    /// appended via [`ProbeReplySet::take_results_into`]).
    pub(crate) fn push_meta(&mut self, meta: ReplyMeta) {
        self.metas.push(meta);
    }

    /// Replies not yet consumed by [`ProbeReplySet::take_results_into`].
    pub(crate) fn remaining(&self) -> usize {
        self.metas.len() - self.meta_cursor
    }

    /// Mutable tail of the result arena from `start` — the sharded
    /// fan-out merge sorts a freshly merged reply's results in place.
    pub(crate) fn results_tail_mut(&mut self, start: usize) -> &mut [(Tuple, PredSet)] {
        &mut self.results[start..]
    }

    /// Convert a single-reply set into the scalar [`ProbeReply`].
    pub(crate) fn into_single_reply(mut self) -> ProbeReply {
        debug_assert_eq!(self.metas.len(), 1);
        let meta = self.metas[0];
        ProbeReply {
            results: std::mem::take(&mut self.results),
            outcome: meta.outcome,
            observed_ts: meta.observed_ts,
            raw_matches: meta.raw_matches,
        }
    }
}

/// A State Module over one table instance.
///
/// Self-joins note: the paper shares one SteM per *source* across FROM
/// instances; we share row storage via `Arc<Row>` but keep per-instance
/// dictionaries, which preserves the memory-sharing benefit while keeping
/// the timestamp bookkeeping per instance (see DESIGN.md).
pub struct Stem {
    pub instance: TableIdx,
    pub source: SourceId,
    store: Box<dyn DictStore + Send + Sync>,
    dedup: RowSet,
    ts_of: FxHashMap<Arc<Row>, Timestamp>,
    /// Scan EOT seen: the full relation is present.
    eot_full: bool,
    /// Index-probe EOTs: sorted `(col, value)` binding sets known complete.
    eot_keys: FxHashSet<Vec<(usize, Value)>>,
    /// Max build timestamp among stored tuples.
    pub max_ts: Timestamp,
    /// Builds accepted (fresh, non-EOT).
    pub build_count: u64,
    /// Duplicates absorbed (§3.2 competition bookkeeping).
    pub duplicates_absorbed: u64,
    /// Evictions performed.
    pub evictions: u64,
    pub has_scan_am: bool,
    pub has_index_am: bool,
    opts: StemOptions,
    /// Build tuples whose bounce-back is withheld (Grace mode).
    deferred: Vec<(Tuple, TupleState)>,
    /// Column used to cluster deferred bounce-backs (first join column).
    part_col: usize,
    hasher: FxBuildHasher,
    /// Free-list of envelope-lifetime probe buffers (see
    /// [`ProbeScratch`]): one per chunk probing this SteM concurrently.
    /// Boxed so checking a scratch in/out under the lock moves one
    /// pointer, not the ~20-vector struct.
    scratch: ScratchPool<Box<ProbeScratch>>,
}

impl std::fmt::Debug for Stem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stem")
            .field("instance", &self.instance)
            .field("len", &self.store.len())
            .field("backend", &self.store.backend())
            .field("eot_full", &self.eot_full)
            .field("max_ts", &self.max_ts)
            .finish()
    }
}

impl Stem {
    /// Create a SteM for `instance` of `source`, indexing `join_cols`
    /// ("one main-memory index on each column involved in a join
    /// predicate", §2.1.4).
    pub fn new(
        instance: TableIdx,
        source: SourceId,
        join_cols: &[usize],
        has_scan_am: bool,
        has_index_am: bool,
        opts: StemOptions,
    ) -> Stem {
        Stem {
            instance,
            source,
            store: opts.store.build(join_cols),
            dedup: RowSet::new(),
            ts_of: FxHashMap::default(),
            eot_full: false,
            eot_keys: FxHashSet::default(),
            max_ts: 0,
            build_count: 0,
            duplicates_absorbed: 0,
            evictions: 0,
            has_scan_am,
            has_index_am,
            opts,
            deferred: Vec::new(),
            part_col: join_cols.first().copied().unwrap_or(0),
            hasher: FxBuildHasher::default(),
            scratch: ScratchPool::new(MAX_POOLED_SCRATCH),
        }
    }

    /// Check a probe scratch out of the free-list (or grow the list).
    /// The pool recovers from poison by discarding the free-list: a
    /// prober that panicked mid-probe leaves only scratch buffers
    /// behind, and those are pure caches — a clean pool keeps every
    /// later query on a shared SteM running.
    fn acquire_scratch(&self) -> Box<ProbeScratch> {
        self.scratch.acquire()
    }

    /// Return a scratch to the free-list. The pool is capped at
    /// [`MAX_POOLED_SCRATCH`]: a burst of concurrent probers would
    /// otherwise pin its high-water-mark capacity forever, so scratches
    /// beyond the cap are simply dropped.
    fn release_scratch(&self, scratch: Box<ProbeScratch>) {
        self.scratch.release(scratch);
    }

    /// Number of scratches currently pooled (test hook for the cap).
    #[cfg(test)]
    pub(crate) fn pooled_scratches(&self) -> usize {
        self.scratch.pooled()
    }

    /// Number of stored (non-EOT) tuples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// Has the full relation arrived (scan EOT)?
    pub fn scan_complete(&self) -> bool {
        self.eot_full
    }

    /// EOT change counter (keyed EOTs + scan completion); combined with
    /// `build_count` it forms the SteM's version for re-probe gating.
    pub fn eot_version(&self) -> u64 {
        self.eot_keys.len() as u64 + self.eot_full as u64
    }

    /// Approximate memory footprint.
    pub fn approx_bytes(&self) -> usize {
        self.store.approx_bytes() + self.dedup.approx_bytes()
    }

    /// Which dictionary backend is currently in use.
    pub fn backend(&self) -> &'static str {
        self.store.backend()
    }

    /// Build a singleton tuple (or EOT tuple) into the SteM. `ts` is the
    /// caller-supplied next global timestamp; it is consumed only on a
    /// fresh insert.
    pub fn build(&mut self, tuple: &Tuple, state: &TupleState, ts: Timestamp) -> BuildResult {
        let mut counter = ts.saturating_sub(1);
        let mut pending = Vec::new();
        let result = self.build_inner(tuple, state, &mut counter, &mut pending);
        self.store.insert_batch(pending);
        self.apply_eviction();
        result
    }

    /// Build a whole batch, consuming timestamps from `ts_counter` as
    /// fresh inserts happen. Dedup, timestamping and bounce decisions stay
    /// per tuple (intra-batch duplicates are absorbed exactly like
    /// cross-batch ones); the dictionary insert is amortized through
    /// [`DictStore::insert_batch`] and eviction runs once per batch.
    pub fn build_batch(
        &mut self,
        batch: &TupleBatch,
        states: &[TupleState],
        ts_counter: &mut Timestamp,
    ) -> Vec<BuildResult> {
        debug_assert_eq!(batch.len(), states.len());
        let mut pending = Vec::with_capacity(batch.len());
        let out = batch
            .iter()
            .zip(states)
            .map(|(tuple, state)| self.build_inner(tuple, state, ts_counter, &mut pending))
            .collect();
        self.store.insert_batch(pending);
        self.apply_eviction();
        out
    }

    /// Everything `build` does except the dictionary insert (deferred to
    /// the caller so batches go through one `insert_batch`) and eviction.
    fn build_inner(
        &mut self,
        tuple: &Tuple,
        state: &TupleState,
        ts_counter: &mut Timestamp,
        pending: &mut Vec<Arc<Row>>,
    ) -> BuildResult {
        debug_assert!(tuple.is_singleton(), "SteMs store singleton tuples only");
        let comp = &tuple.components()[0];
        debug_assert_eq!(comp.table, self.instance, "build routed to wrong SteM");
        let row = comp.row.clone();

        if row.is_eot() {
            if let Some(bindings) = eot_bindings(&row) {
                self.eot_keys.insert(bindings);
            } else {
                self.eot_full = true;
            }
            return BuildResult::Eot;
        }

        if !self.dedup.insert(row.clone()) {
            self.duplicates_absorbed += 1;
            return BuildResult::Duplicate;
        }

        let ts = *ts_counter + 1;
        *ts_counter = ts;
        let windowed = self.opts.eviction_window.is_some();
        if windowed {
            // Windowed SteMs must insert and evict per tuple: deferring
            // the insert would let an intra-batch duplicate of a row that
            // eviction should already have forgotten be wrongly absorbed.
            self.store.insert(row.clone());
        } else {
            pending.push(row.clone());
        }
        self.ts_of.insert(row.clone(), ts);
        self.max_ts = self.max_ts.max(ts);
        self.build_count += 1;
        if windowed {
            self.apply_eviction();
        }

        let stamped = tuple.with_timestamp(self.instance, ts);
        if self.opts.deferred_bounce && !self.partition_is_resident(&row) {
            self.deferred.push((stamped, state.clone()));
            BuildResult::Deferred
        } else {
            BuildResult::Fresh(stamped)
        }
    }

    /// FIFO-evict down to the configured window (no-op when unbounded).
    fn apply_eviction(&mut self) {
        if let Some(window) = self.opts.eviction_window {
            while self.store.len() > window {
                if !self.evict_oldest() {
                    break;
                }
            }
        }
    }

    /// One FIFO eviction step: forget the oldest stored row in the store,
    /// the dedup filter and the timestamp map together. Also the hook
    /// [`crate::sharded::ShardedStem`] uses to run a *global* FIFO window
    /// across shards (the globally oldest row is the one with the minimum
    /// [`Stem::oldest_ts`]).
    pub(crate) fn evict_oldest(&mut self) -> bool {
        if let Some(old) = self.store.oldest() {
            self.store.remove(&old);
            self.dedup.forget(&old);
            self.ts_of.remove(&old);
            self.evictions += 1;
            true
        } else {
            false
        }
    }

    /// Build timestamp of the oldest stored row (`None` when empty) — the
    /// cross-shard FIFO ordering key for windowed sharded SteMs.
    pub(crate) fn oldest_ts(&self) -> Option<Timestamp> {
        self.store
            .oldest()
            .map(|r| *self.ts_of.get(&r).unwrap_or(&UNBUILT_TS))
    }

    fn partition_is_resident(&self, row: &Row) -> bool {
        if self.opts.mem_partitions == 0 {
            return false;
        }
        self.partition_of(row) < self.opts.mem_partitions
    }

    pub(crate) fn partition_of(&self, row: &Row) -> usize {
        use std::hash::BuildHasher;
        let key = row.get(self.part_col).cloned().unwrap_or(Value::Null);
        (self.hasher.hash_one(&key) % self.opts.partitions.max(1) as u64) as usize
    }

    /// Release deferred bounce-backs, clustered by hash partition (the
    /// Grace "asynchronous" bounce, §3.1). Called by the engine when the
    /// table's scan completes, or when the policy asks for early release
    /// (SHJ↔Grace hybridization).
    pub fn release_deferred(&mut self) -> Vec<(Tuple, TupleState)> {
        let mut out = std::mem::take(&mut self.deferred);
        out.sort_by_key(|(t, _)| {
            let row = &t.components()[0].row;
            self.partition_of(row)
        });
        out
    }

    /// How many bounce-backs are currently withheld.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Drain the withheld bounce-backs *without* the clustering sort —
    /// [`crate::sharded::ShardedStem`] merges the per-shard queues first
    /// and clusters the union so the release order matches the unsharded
    /// engine's exactly.
    pub(crate) fn take_deferred(&mut self) -> Vec<(Tuple, TupleState)> {
        std::mem::take(&mut self.deferred)
    }

    // ------------------------------------------------------------------
    // Sharding phase hooks (used by `crate::sharded::ShardedStem`)
    //
    // A sharded build must assign global timestamps in batch order while
    // the per-shard dictionary work runs on worker threads. The split:
    // `ingest_batch` (parallel per shard — dedup + dictionary insert,
    // no timestamps) followed by `stamp_fresh` (serial, global batch
    // order — timestamping, bounce/defer decision). Running the two
    // phases back-to-back on one shard reproduces `build_batch` exactly;
    // the unit suite below pins that equivalence.
    // ------------------------------------------------------------------

    /// Phase 1 of a sharded build: set-semantics dedup plus the dictionary
    /// insert for the routed (non-EOT) data rows of one shard, in batch
    /// order. Returns `true` per row for fresh inserts, `false` for
    /// absorbed duplicates (the `duplicates_absorbed` counter is bumped
    /// here). Windowed SteMs never take this path — eviction must
    /// interleave with inserts per tuple, which is inherently serial.
    pub(crate) fn ingest_batch(&mut self, rows: &[Arc<Row>]) -> Vec<bool> {
        debug_assert!(
            self.opts.eviction_window.is_none(),
            "windowed SteMs must build serially"
        );
        let mut pending = Vec::with_capacity(rows.len());
        let out = rows
            .iter()
            .map(|row| {
                debug_assert!(!row.is_eot(), "EOT rows are handled by the shard layer");
                if self.dedup.insert(row.clone()) {
                    pending.push(row.clone());
                    true
                } else {
                    self.duplicates_absorbed += 1;
                    false
                }
            })
            .collect();
        self.store.insert_batch(pending);
        out
    }

    /// Phase 2 of a sharded build: stamp one row `ingest_batch` reported
    /// fresh with its globally-ordered timestamp and take the bounce/defer
    /// decision — everything `build_inner` does after the dictionary
    /// insert.
    pub(crate) fn stamp_fresh(
        &mut self,
        tuple: &Tuple,
        state: &TupleState,
        ts: Timestamp,
    ) -> BuildResult {
        let row = &tuple.components()[0].row;
        self.ts_of.insert(row.clone(), ts);
        self.max_ts = self.max_ts.max(ts);
        self.build_count += 1;
        let stamped = tuple.with_timestamp(self.instance, ts);
        if self.opts.deferred_bounce && !self.partition_is_resident(row) {
            self.deferred.push((stamped, state.clone()));
            BuildResult::Deferred
        } else {
            BuildResult::Fresh(stamped)
        }
    }

    /// Probe the SteM with `tuple` (spanning tables other than this
    /// instance). Returns concatenated matches passing every newly
    /// evaluable predicate and both timestamp rules, plus the bounce
    /// decision per SteM BounceBack.
    pub fn probe(&self, tuple: &Tuple, state: &TupleState, query: &QuerySpec) -> ProbeReply {
        let t = self.instance;
        let linking: Vec<&stems_types::Predicate> = query
            .preds_linking(tuple.span(), t)
            .into_iter()
            .map(|id| query.predicate(id))
            .collect();
        // Candidate fetch: use an equi predicate's hash index when we have
        // one; otherwise scan-filter.
        let candidates: Vec<Arc<Row>> = match equi_binding(&linking, tuple, t) {
            Some((col, val)) => self.store.lookup_eq(col, &val),
            None => self.store.scan(),
        };
        // Per-call recomputation of the newly evaluable set — the batched
        // path caches this per (span, done) pair; the unit suite pins the
        // two against each other.
        let result_span = tuple.span().with(t);
        let newly: Vec<&stems_types::Predicate> = query
            .predicates
            .iter()
            .filter(|p| p.evaluable_on(result_span) && !state.done.contains(p.id))
            .collect();
        let mut done_union = state.done;
        for p in &newly {
            done_union.insert(p.id);
        }
        let mut set = ProbeReplySet::default();
        self.probe_with_candidates(
            tuple,
            state,
            query,
            &linking,
            &newly,
            done_union,
            &candidates,
            &mut set,
        );
        set.into_single_reply()
    }

    /// Probe a whole batch into the caller-owned reply arena, appending
    /// one reply per tuple in batch order. The per-tuple semantics
    /// (timestamp rules, predicate re-verification, bounce decisions) are
    /// identical to [`Stem::probe`]; the amortization is in the fetch and
    /// the reply path: linking predicates are resolved once per distinct
    /// probe span, the newly-evaluable predicate set once per distinct
    /// `(result span, donebits)` pair, every key is hashed exactly once
    /// at this envelope boundary ([`HashedKey`]), all equality lookups on
    /// one column go through a single [`DictStore::lookup_eq_flat`] index
    /// descent into a reusable arena (duplicate keys share one candidate
    /// span; unbindable probes share one scan snapshot), and results land
    /// in `out`'s flat arena instead of per-reply `Vec`s.
    pub fn probe_batch_into(
        &self,
        batch: &[Tuple],
        states: &[TupleState],
        query: &QuerySpec,
        out: &mut ProbeReplySet,
    ) {
        debug_assert_eq!(batch.len(), states.len());
        let t = self.instance;
        let mut scratch = self.acquire_scratch();
        // Hash-once boundary: resolve each tuple's equality binding and
        // annotate its key here; nothing downstream re-hashes.
        let mut bindings = std::mem::take(&mut scratch.bindings);
        bindings.clear();
        let mut spans: Vec<(TableSet, Vec<&stems_types::Predicate>)> = Vec::new();
        for tuple in batch.iter() {
            let li = linking_for(&mut spans, query, tuple.span(), t);
            bindings.push(
                equi_binding(&spans[li].1, tuple, t).map(|(col, val)| (col, HashedKey::new(val))),
            );
        }
        self.probe_with_scratch(batch, states, query, &bindings, &mut scratch, out);
        scratch.bindings = bindings;
        self.release_scratch(scratch);
    }

    /// Probe with bindings the caller already resolved and hashed —
    /// [`crate::sharded::ShardedStem`] routes envelopes by these same
    /// annotations, so the shard layer and the dictionary descent share
    /// one hash computation per key. `batch` may be any sub-slice of a
    /// routed lane: the sharded runtime chunks hot lanes across pool
    /// workers, each chunk probing with its own scratch and arena.
    pub(crate) fn probe_batch_prehashed_into(
        &self,
        batch: &[Tuple],
        states: &[TupleState],
        query: &QuerySpec,
        bindings: &[ProbeBinding],
        out: &mut ProbeReplySet,
    ) {
        let mut scratch = self.acquire_scratch();
        self.probe_with_scratch(batch, states, query, bindings, &mut scratch, out);
        self.release_scratch(scratch);
    }

    /// The flat probe pipeline over one envelope: group keys per column,
    /// one [`DictStore::lookup_eq_flat`] per column into the reusable
    /// arenas, then per-tuple result formation over borrowed candidate
    /// slices — semantically exactly the scalar path.
    fn probe_with_scratch(
        &self,
        batch: &[Tuple],
        states: &[TupleState],
        query: &QuerySpec,
        bindings: &[ProbeBinding],
        scratch: &mut ProbeScratch,
        out: &mut ProbeReplySet,
    ) {
        debug_assert_eq!(batch.len(), states.len());
        debug_assert_eq!(batch.len(), bindings.len());
        let t = self.instance;
        let ProbeScratch {
            cols,
            keys,
            bufs,
            plans,
            ..
        } = scratch;
        cols.clear();
        plans.clear();

        // Linking predicates per distinct span (batches are usually
        // span-uniform, so this is a one-entry cache).
        let mut spans: Vec<(TableSet, Vec<&stems_types::Predicate>)> = Vec::new();

        // Pass 1: group the prehashed keys by column.
        for (tuple, binding) in batch.iter().zip(bindings) {
            let li = linking_for(&mut spans, query, tuple.span(), t);
            let plan = binding.as_ref().map(|(col, key)| {
                let ci = match cols.iter().position(|c| c == col) {
                    Some(i) => i,
                    None => {
                        cols.push(*col);
                        let i = cols.len() - 1;
                        if keys.len() <= i {
                            keys.push(Vec::new());
                            bufs.push(CandidateBuf::new());
                        }
                        keys[i].clear();
                        i
                    }
                };
                keys[ci].push(key.clone());
                (ci, keys[ci].len() - 1)
            });
            plans.push((li, plan));
        }
        // One flat descent per column: the store dedups identical keys and
        // reads the precomputed hashes, never re-hashing.
        for (ci, col) in cols.iter().enumerate() {
            self.store.lookup_eq_flat(*col, &keys[ci], &mut bufs[ci]);
        }
        // Unbindable probes share one scan snapshot for the whole
        // envelope instead of cloning the materialized scan per tuple.
        let mut full_scan: Option<Vec<Arc<Row>>> = None;

        // Span-level predicate cache: `newly_evaluable` is a pure
        // function of (result span, donebits), so resolve it once per
        // distinct pair per envelope instead of per tuple (envelopes are
        // usually span- and done-uniform, so this stays one entry). The
        // donebits union every surviving result carries is equally
        // uniform per pair and precomputed here.
        let mut evals: Vec<(TableSet, PredSet, Vec<&stems_types::Predicate>, PredSet)> = Vec::new();

        // Pass 2: per-tuple result formation, exactly the scalar path.
        for ((tuple, state), (li, plan)) in batch.iter().zip(states).zip(plans.iter()) {
            let candidates: &[Arc<Row>] = match plan {
                Some((ci, ki)) => bufs[*ci].candidates(*ki),
                None => full_scan.get_or_insert_with(|| self.store.scan()),
            };
            let result_span = tuple.span().with(t);
            let ei = match evals
                .iter()
                .position(|(s, d, _, _)| *s == result_span && *d == state.done)
            {
                Some(i) => i,
                None => {
                    let newly: Vec<&stems_types::Predicate> = query
                        .predicates
                        .iter()
                        .filter(|p| p.evaluable_on(result_span) && !state.done.contains(p.id))
                        .collect();
                    let mut done_union = state.done;
                    for p in &newly {
                        done_union.insert(p.id);
                    }
                    evals.push((result_span, state.done, newly, done_union));
                    evals.len() - 1
                }
            };
            let (_, _, newly, done_union) = &evals[ei];
            self.probe_with_candidates(
                tuple,
                state,
                query,
                &spans[*li].1,
                newly,
                *done_union,
                candidates,
                out,
            );
        }
    }

    /// Shared probe tail: filter candidates by the timestamp rules,
    /// concatenate, verify the (caller-resolved) newly evaluable
    /// predicates, decide the bounce; append one reply to `out`. The only
    /// allocations are the surviving result tuples themselves (one
    /// component vec each, via [`Tuple::concat_row`]) — `newly` comes
    /// from the span cache, `done_union` is a precomputed copy, and the
    /// results land in `out`'s arena.
    #[allow(clippy::too_many_arguments)]
    fn probe_with_candidates(
        &self,
        tuple: &Tuple,
        state: &TupleState,
        query: &QuerySpec,
        linking: &[&stems_types::Predicate],
        newly: &[&stems_types::Predicate],
        done_union: PredSet,
        candidates: &[Arc<Row>],
        out: &mut ProbeReplySet,
    ) {
        let t = self.instance;
        debug_assert!(!tuple.span().contains(t), "probe tuple already spans {t}");
        let probe_ts = tuple.timestamp();

        let raw_matches = candidates.len();
        let start = out.results.len();
        for row in candidates {
            let ts_u = *self.ts_of.get(row).unwrap_or(&UNBUILT_TS);
            // TimeStamp rule (§3.1): only the later-built side generates
            // the result. LastMatchTimeStamp rule (§3.5): repeated probes
            // skip matches already returned.
            if ts_u >= probe_ts || ts_u <= state.last_match_ts {
                continue;
            }
            let cand = tuple.concat_row(t, row.clone(), ts_u);
            if newly.iter().all(|p| p.eval(&cand).unwrap_or(false)) {
                out.results.push((cand, done_union));
            }
        }

        let outcome = self.bounce_decision(linking, tuple, query);
        out.metas.push(ReplyMeta {
            outcome,
            observed_ts: self.max_ts,
            raw_matches,
            len: out.results.len() - start,
        });
    }

    /// SteM BounceBack (paper Table 2, plus the §4.1 refinement for tables
    /// with index AMs).
    fn bounce_decision(
        &self,
        linking: &[&stems_types::Predicate],
        tuple: &Tuple,
        query: &QuerySpec,
    ) -> ProbeOutcome {
        if self.covers(linking, tuple, query) {
            return ProbeOutcome::Consumed;
        }
        let all_built = tuple.components().iter().all(|c| c.ts != UNBUILT_TS);
        if !all_built {
            // §3.5: the prober is not cached anywhere, so it must keep
            // re-probing this SteM until coverage (LastMatchTimeStamp
            // prevents duplicate concatenations).
            return ProbeOutcome::Bounced(CompletionNeed::Required);
        }
        match (self.has_scan_am, self.has_index_am) {
            // Scan covers completeness; no index to offer: consume.
            (true, false) => ProbeOutcome::Consumed,
            // Index AM available: bounce so the policy *may* probe it
            // (§4.1; completeness already covered by the scan, so the
            // policy may also drop the tuple).
            (true, true) => ProbeOutcome::Bounced(CompletionNeed::Optional),
            // No scan: the probe MUST complete through an AM (§3.3).
            (false, _) => ProbeOutcome::Bounced(CompletionNeed::Required),
        }
    }

    /// Does the EOT index guarantee all matches for this probe are present?
    fn covers(
        &self,
        linking: &[&stems_types::Predicate],
        tuple: &Tuple,
        query: &QuerySpec,
    ) -> bool {
        if self.eot_full {
            return true;
        }
        if self.eot_keys.is_empty() {
            return false;
        }
        let bindings = probe_bindings(linking, tuple, self.instance, query);
        let options = in_list_options(query, self.instance);
        if options.is_empty() {
            return self.covered_by(&bindings);
        }
        // Multi-member IN lists make the probe a family of sub-probes,
        // one per member combination (index AMs answer them with one EOT
        // per member key). The probe is complete only when EVERY
        // combination is covered.
        if self.covered_by(&bindings) {
            return true;
        }
        // Fast path, exact for a single list and sufficient for several:
        // if ONE option list has every member covered together with the
        // fixed bindings, every combination is covered (each combination
        // contains some member of that list, so its witness EOT subset
        // applies). This is linear in Σ|list| — no member-combination
        // blowup for the common shapes, however long the list.
        let member_covered = |col: usize, v: &Value| {
            let mut merged = bindings.clone();
            merged.push((col, v.clone()));
            merged.sort_by_key(|a| a.0);
            merged.dedup();
            self.covered_by(&merged)
        };
        if options
            .iter()
            .any(|(col, vals)| vals.iter().all(|v| member_covered(*col, v)))
        {
            return true;
        }
        if options.len() == 1 {
            // One list: the per-member check above was the exact
            // condition, so failing it means genuinely uncovered.
            return false;
        }
        // Several lists and no single list covers alone: EOTs may bind
        // members of multiple lists at once (a multi-bind-col AM), so
        // enumerate member combinations — exactly as many as the lookups
        // `bind_value_sets` fans out for this probe. A product too large
        // to even count could never have been probed; report uncovered.
        let Some(total) = options
            .iter()
            .try_fold(1usize, |acc, (_, vals)| acc.checked_mul(vals.len()))
        else {
            return false;
        };
        for combo in 0..total {
            let mut merged = bindings.clone();
            let mut rem = combo;
            for (col, vals) in &options {
                merged.push((*col, vals[rem % vals.len()].clone()));
                rem /= vals.len();
            }
            merged.sort_by_key(|a| a.0);
            merged.dedup();
            if !self.covered_by(&merged) {
                return false;
            }
        }
        true
    }

    /// Is one binding set covered by the EOT index? An EOT for binding
    /// set B covers any probe whose bindings ⊇ B; bindings are tiny
    /// (1–3 columns), so enumerate non-empty subsets.
    fn covered_by(&self, bindings: &[(usize, Value)]) -> bool {
        if bindings.is_empty() {
            return false;
        }
        let n = bindings.len().min(16);
        for mask in 1u32..(1 << n) {
            let mut subset: Vec<(usize, Value)> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| bindings[i].clone())
                .collect();
            subset.sort_by_key(|a| a.0);
            if self.eot_keys.contains(&subset) {
                return true;
            }
        }
        false
    }
}

/// The `(col, value)` pairs a probe binds on table `t`: equi-join columns
/// fed from the probe tuple, plus constant equality selections on `t`.
/// Values are normalized through [`index_key`] so coverage matching agrees
/// with what index AMs put into their EOT tuples; un-indexable values
/// (NULL/EOT) bind nothing.
pub fn probe_bindings(
    linking: &[&stems_types::Predicate],
    tuple: &Tuple,
    t: TableIdx,
    query: &QuerySpec,
) -> Vec<(usize, Value)> {
    let mut out: Vec<(usize, Value)> = Vec::new();
    for p in linking {
        if let Some((l, r)) = p.equi_join_cols() {
            let (tcol, ocol) = if l.table == t { (l, r) } else { (r, l) };
            if let Some(v) = tuple.value(ocol.table, ocol.col).and_then(index_key) {
                out.push((tcol.col, v));
            }
        }
    }
    for p in query.predicates.iter() {
        if p.op == stems_types::CmpOp::Eq {
            if let (stems_types::Operand::Col(c), stems_types::Operand::Const(v)) =
                (&p.left, &p.right)
            {
                if c.table == t {
                    if let Some(v) = index_key(v) {
                        out.push((c.col, v));
                    }
                }
            } else if let (stems_types::Operand::Const(v), stems_types::Operand::Col(c)) =
                (&p.left, &p.right)
            {
                if c.table == t {
                    if let Some(v) = index_key(v) {
                        out.push((c.col, v));
                    }
                }
            }
        } else if p.op == stems_types::CmpOp::In {
            // A single-member IN-list (or scalar IN) is a degenerate
            // equality and binds like one — the same rule the feasibility
            // fixpoint applies (`stems_catalog::feasible`), so a query
            // admitted through an `IN (v)` binding is actually probeable
            // at runtime.
            let single = match (&p.left, &p.right) {
                (stems_types::Operand::Col(c), stems_types::Operand::List(items))
                    if items.len() == 1 =>
                {
                    Some((c, &items[0]))
                }
                (stems_types::Operand::Col(c), stems_types::Operand::Const(v)) => Some((c, v)),
                _ => None,
            };
            if let Some((c, v)) = single {
                if c.table == t {
                    if let Some(v) = index_key(v) {
                        out.push((c.col, v));
                    }
                }
            }
        }
    }
    out.sort_by_key(|a| a.0);
    out.dedup();
    out
}

/// The multi-member IN-list binding *options* on table `t`: for each
/// `col IN (v1, ..., vk)` predicate with more than one member, the
/// equality-normalized member values (members that can never satisfy SQL
/// equality — NULL/EOT — match no row and are dropped). Single-member
/// lists are degenerate equalities and live in [`probe_bindings`]
/// instead. Index AMs fan a probe out across these members (one lookup
/// key per member, answered through the multi-key flat path), and
/// [`Stem::covers`] requires every member's EOT before declaring the
/// probe complete — the same rule `stems_catalog::feasible` applies, so
/// a query admitted through a multi-member IN binding is actually
/// probeable at runtime.
pub fn in_list_options(query: &QuerySpec, t: TableIdx) -> Vec<(usize, Vec<Value>)> {
    let mut out: Vec<(usize, Vec<Value>)> = Vec::new();
    for p in query.predicates.iter() {
        if p.op != stems_types::CmpOp::In {
            continue;
        }
        if let (stems_types::Operand::Col(c), stems_types::Operand::List(items)) =
            (&p.left, &p.right)
        {
            if c.table == t && items.len() > 1 {
                let mut vals: Vec<Value> = Vec::with_capacity(items.len());
                for v in items.iter().filter_map(index_key) {
                    if !vals.contains(&v) {
                        vals.push(v);
                    }
                }
                if !vals.is_empty() {
                    out.push((c.col, vals));
                }
            }
        }
    }
    out
}

/// Resolve (and cache) the linking predicates for one probe span: the
/// per-envelope span cache shared by the batched probe paths in [`Stem`]
/// and [`crate::sharded::ShardedStem`]. Returns the span's index in
/// `spans`; batches are usually span-uniform, so the cache stays one
/// entry.
pub(crate) fn linking_for<'q>(
    spans: &mut Vec<(TableSet, Vec<&'q stems_types::Predicate>)>,
    query: &'q QuerySpec,
    span: TableSet,
    t: TableIdx,
) -> usize {
    match spans.iter().position(|(s, _)| *s == span) {
        Some(i) => i,
        None => {
            let linking = query
                .preds_linking(span, t)
                .into_iter()
                .map(|id| query.predicate(id))
                .collect();
            spans.push((span, linking));
            spans.len() - 1
        }
    }
}

/// First equi-join predicate that binds a column of `t` from the probe
/// tuple — the hash-lookup opportunity (and, for sharded SteMs, the
/// shard-routing opportunity when it binds the shard key column).
pub(crate) fn equi_binding(
    linking: &[&stems_types::Predicate],
    tuple: &Tuple,
    t: TableIdx,
) -> Option<(usize, Value)> {
    for p in linking {
        if let Some((l, r)) = p.equi_join_cols() {
            let (tcol, ocol) = if l.table == t { (l, r) } else { (r, l) };
            if let Some(v) = tuple.value(ocol.table, ocol.col) {
                return Some((tcol.col, v.clone()));
            }
        }
    }
    None
}

/// Decode an EOT row into its binding set; `None` means a full-relation
/// (scan) EOT. Paper §2.1.3: "the EOT tuple is a regular tuple with a
/// special EOT value in all the non-bound fields".
pub(crate) fn eot_bindings(row: &Row) -> Option<Vec<(usize, Value)>> {
    let bound: Vec<(usize, Value)> = row
        .values()
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_eot())
        .map(|(i, v)| (i, v.clone()))
        .collect();
    if bound.is_empty() {
        None
    } else {
        Some(bound)
    }
}

/// Build the EOT row for an index probe answering `bindings` over a table
/// of the given arity.
pub fn make_eot_row(arity: usize, bindings: &[(usize, Value)]) -> Arc<Row> {
    let mut vals = vec![Value::Eot; arity];
    for (c, v) in bindings {
        vals[*c] = v.clone();
    }
    Row::shared(vals)
}

/// The full-relation EOT row a scan emits when exhausted.
pub fn make_scan_eot_row(arity: usize) -> Arc<Row> {
    Row::shared(vec![Value::Eot; arity])
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_catalog::{Catalog, ScanSpec, TableDef, TableInstance};
    use stems_types::{CmpOp, ColRef, ColumnType, PredId, Predicate, Schema};

    /// Two-table setup: R(key, a) ⋈ S(x, y) on R.a = S.x.
    fn setup() -> (Catalog, QuerySpec) {
        let mut c = Catalog::new();
        let r = c
            .add_table(TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            ))
            .unwrap();
        let s = c
            .add_table(TableDef::new(
                "S",
                Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
            ))
            .unwrap();
        c.add_scan(r, ScanSpec::default()).unwrap();
        c.add_scan(s, ScanSpec::default()).unwrap();
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "r".into(),
                },
                TableInstance {
                    source: s,
                    alias: "s".into(),
                },
            ],
            vec![Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            )],
            None,
        )
        .unwrap();
        (c, q)
    }

    fn s_stem(has_scan: bool, has_index: bool) -> Stem {
        Stem::new(
            TableIdx(1),
            SourceId(1),
            &[0],
            has_scan,
            has_index,
            StemOptions::default(),
        )
    }

    fn s_tuple(x: i64, y: i64) -> Tuple {
        Tuple::singleton_of(TableIdx(1), vec![Value::Int(x), Value::Int(y)])
    }

    fn r_tuple(key: i64, a: i64) -> Tuple {
        Tuple::singleton_of(TableIdx(0), vec![Value::Int(key), Value::Int(a)])
    }

    fn build_fresh(stem: &mut Stem, t: &Tuple, ts: Timestamp) -> Tuple {
        match stem.build(t, &TupleState::new(), ts) {
            BuildResult::Fresh(stamped) => stamped,
            other => panic!("expected Fresh, got {other:?}"),
        }
    }

    #[test]
    fn build_assigns_timestamp_and_bounces() {
        let mut stem = s_stem(true, false);
        let stamped = build_fresh(&mut stem, &s_tuple(10, 1), 5);
        assert_eq!(stamped.timestamp(), 5);
        assert_eq!(stem.len(), 1);
        assert_eq!(stem.max_ts, 5);
        assert_eq!(stem.build_count, 1);
    }

    #[test]
    fn duplicate_builds_absorbed() {
        let mut stem = s_stem(true, false);
        build_fresh(&mut stem, &s_tuple(10, 1), 1);
        // Same row value from a competing AM: absorbed (§3.2).
        let r = stem.build(&s_tuple(10, 1), &TupleState::new(), 2);
        assert_eq!(r, BuildResult::Duplicate);
        assert_eq!(stem.len(), 1);
        assert_eq!(stem.duplicates_absorbed, 1);
        // max_ts unchanged — the duplicate consumed no timestamp.
        assert_eq!(stem.max_ts, 1);
    }

    #[test]
    fn probe_finds_matches_and_concatenates() {
        let (_c, q) = setup();
        let mut stem = s_stem(true, false);
        build_fresh(&mut stem, &s_tuple(10, 1), 1);
        build_fresh(&mut stem, &s_tuple(20, 2), 2);
        // r (built later, ts 3) probes: matches only x=10.
        let r = r_tuple(100, 10).with_timestamp(TableIdx(0), 3);
        let reply = stem.probe(&r, &TupleState::new(), &q);
        assert_eq!(reply.results.len(), 1);
        let (result, done) = &reply.results[0];
        assert_eq!(result.span().len(), 2);
        assert!(done.contains(PredId(0)));
        assert_eq!(result.value(TableIdx(1), 1), Some(&Value::Int(1)));
    }

    #[test]
    fn timestamp_rule_suppresses_earlier_side() {
        let (_c, q) = setup();
        let mut stem = s_stem(true, false);
        // s built at ts 7, probe r built at ts 3: 7 ≥ 3 ⇒ suppressed; the
        // s tuple's own probe path is responsible for this result.
        build_fresh(&mut stem, &s_tuple(10, 1), 7);
        let r = r_tuple(100, 10).with_timestamp(TableIdx(0), 3);
        let reply = stem.probe(&r, &TupleState::new(), &q);
        assert!(reply.results.is_empty());
        assert_eq!(reply.raw_matches, 1);
    }

    #[test]
    fn unbuilt_probe_sees_everything() {
        let (_c, q) = setup();
        let mut stem = s_stem(true, false);
        build_fresh(&mut stem, &s_tuple(10, 1), 7);
        // Unbuilt probe has ts = ∞ (paper: "before building, ts is ∞").
        let r = r_tuple(100, 10);
        let reply = stem.probe(&r, &TupleState::new(), &q);
        assert_eq!(reply.results.len(), 1);
    }

    #[test]
    fn last_match_timestamp_dedups_reprobes() {
        let (_c, q) = setup();
        let mut stem = s_stem(true, false);
        build_fresh(&mut stem, &s_tuple(10, 1), 1);
        build_fresh(&mut stem, &s_tuple(10, 2), 2);
        let r = r_tuple(100, 10); // unbuilt, re-probing per §3.5
        let mut state = TupleState::new();
        let first = stem.probe(&r, &state, &q);
        assert_eq!(first.results.len(), 2);
        // Record observed ts, as the engine does on bounce.
        state.last_match_ts = first.observed_ts;
        // New tuple arrives, then re-probe: only the new one returned.
        build_fresh(&mut stem, &s_tuple(10, 3), 9);
        let second = stem.probe(&r, &state, &q);
        assert_eq!(second.results.len(), 1);
        assert_eq!(
            second.results[0].0.value(TableIdx(1), 1),
            Some(&Value::Int(3))
        );
    }

    #[test]
    fn bounce_rules_follow_table2() {
        let (_c, q) = setup();
        let r_built = r_tuple(1, 10).with_timestamp(TableIdx(0), 1);
        let state = TupleState::new();

        // scan-only, incomplete, prober built ⇒ consumed (scan covers it).
        let stem = s_stem(true, false);
        assert_eq!(
            stem.probe(&r_built, &state, &q).outcome,
            ProbeOutcome::Consumed
        );

        // index AM present ⇒ optional bounce (§4.1 hybridization hook).
        let stem = s_stem(true, true);
        assert_eq!(
            stem.probe(&r_built, &state, &q).outcome,
            ProbeOutcome::Bounced(CompletionNeed::Optional)
        );

        // no scan ⇒ required bounce (§3.3 index join flow).
        let stem = s_stem(false, true);
        assert_eq!(
            stem.probe(&r_built, &state, &q).outcome,
            ProbeOutcome::Bounced(CompletionNeed::Required)
        );

        // unbuilt prober ⇒ required bounce regardless (§3.5 re-probe).
        let stem = s_stem(true, false);
        let r_unbuilt = r_tuple(1, 10);
        assert_eq!(
            stem.probe(&r_unbuilt, &state, &q).outcome,
            ProbeOutcome::Bounced(CompletionNeed::Required)
        );
    }

    #[test]
    fn scan_eot_makes_everything_covered() {
        let (_c, q) = setup();
        let mut stem = s_stem(false, true);
        let eot = Tuple::singleton(TableIdx(1), make_scan_eot_row(2));
        assert_eq!(stem.build(&eot, &TupleState::new(), 99), BuildResult::Eot);
        assert!(stem.scan_complete());
        let r = r_tuple(1, 10).with_timestamp(TableIdx(0), 1);
        assert_eq!(
            stem.probe(&r, &TupleState::new(), &q).outcome,
            ProbeOutcome::Consumed
        );
        // EOT consumed no timestamp and is not a data row.
        assert_eq!(stem.len(), 0);
        assert_eq!(stem.max_ts, 0);
    }

    #[test]
    fn keyed_eot_covers_matching_probes_only() {
        let (_c, q) = setup();
        let mut stem = s_stem(false, true);
        // Index answered bindings {x=10}: EOT row (10, EOT).
        let eot = Tuple::singleton(TableIdx(1), make_eot_row(2, &[(0, Value::Int(10))]));
        stem.build(&eot, &TupleState::new(), 50);
        let state = TupleState::new();
        let covered = r_tuple(1, 10).with_timestamp(TableIdx(0), 1);
        assert_eq!(
            stem.probe(&covered, &state, &q).outcome,
            ProbeOutcome::Consumed
        );
        let uncovered = r_tuple(2, 20).with_timestamp(TableIdx(0), 2);
        assert_eq!(
            stem.probe(&uncovered, &state, &q).outcome,
            ProbeOutcome::Bounced(CompletionNeed::Required)
        );
    }

    #[test]
    fn multi_member_in_coverage_requires_every_member() {
        // Query: R ⋈ S on R.a = S.x, plus `S.y IN (1, 2)`. An index AM
        // answers the probe one member key at a time; the SteM may
        // declare the probe complete only once EVERY member's EOT landed.
        let (c, q) = setup();
        let mut q2 = q.clone();
        q2.predicates.push(Predicate::in_list(
            PredId(1),
            ColRef::new(TableIdx(1), 1),
            vec![Value::Int(1), Value::Int(2)],
        ));
        let q2 = QuerySpec::new(&c, q2.tables, q2.predicates, None).unwrap();
        assert_eq!(
            in_list_options(&q2, TableIdx(1)),
            vec![(1, vec![Value::Int(1), Value::Int(2)])]
        );
        let mut stem = s_stem(false, true);
        let state = TupleState::new();
        let r = r_tuple(1, 10).with_timestamp(TableIdx(0), 5);

        // Nothing answered yet.
        assert_eq!(
            stem.probe(&r, &state, &q2).outcome,
            ProbeOutcome::Bounced(CompletionNeed::Required)
        );
        // Member 1 answered (the index AM binds the IN column and emits
        // one keyed EOT per member lookup): still incomplete — the
        // member-2 sub-probe has no coverage.
        stem.build(
            &Tuple::singleton(TableIdx(1), make_eot_row(2, &[(1, Value::Int(1))])),
            &state,
            0,
        );
        assert_eq!(
            stem.probe(&r, &state, &q2).outcome,
            ProbeOutcome::Bounced(CompletionNeed::Required)
        );
        // Member 2 answered too: every sub-probe is covered now.
        stem.build(
            &Tuple::singleton(TableIdx(1), make_eot_row(2, &[(1, Value::Int(2))])),
            &state,
            0,
        );
        assert_eq!(stem.probe(&r, &state, &q2).outcome, ProbeOutcome::Consumed);
    }

    #[test]
    fn huge_in_list_coverage_is_linear_not_capped() {
        // A 1500-member IN list on the indexed column: coverage must
        // complete once every member's EOT landed — the per-member rule
        // is linear in the list, so no combination cap can strand the
        // probe (the old 2^10 cap livelocked index-only queries here).
        let (c, q) = setup();
        let members: Vec<Value> = (0..1500).map(Value::Int).collect();
        let mut q2 = q.clone();
        q2.predicates.push(Predicate::in_list(
            PredId(1),
            ColRef::new(TableIdx(1), 0),
            members.clone(),
        ));
        // Join through y instead, so col 0 stays IN-bound only.
        q2.predicates[0] = Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 1),
        );
        let q2 = QuerySpec::new(&c, q2.tables, q2.predicates, None).unwrap();
        let mut stem = s_stem(false, true);
        let state = TupleState::new();
        let r = r_tuple(1, 3).with_timestamp(TableIdx(0), 5);
        for m in &members[..1499] {
            stem.build(
                &Tuple::singleton(TableIdx(1), make_eot_row(2, &[(0, m.clone())])),
                &state,
                0,
            );
        }
        assert_eq!(
            stem.probe(&r, &state, &q2).outcome,
            ProbeOutcome::Bounced(CompletionNeed::Required),
            "one member still unanswered"
        );
        stem.build(
            &Tuple::singleton(TableIdx(1), make_eot_row(2, &[(0, members[1499].clone())])),
            &state,
            0,
        );
        assert_eq!(stem.probe(&r, &state, &q2).outcome, ProbeOutcome::Consumed);
    }

    #[test]
    fn cross_list_coverage_enumerates_member_combinations() {
        // Two IN lists on different columns, answered by a two-bind-col
        // AM whose EOTs pair one member of each list: no single list is
        // covered alone, so coverage must enumerate the combinations.
        let (c, q) = setup();
        let mut q2 = q.clone();
        q2.predicates = vec![
            Predicate::in_list(
                PredId(0),
                ColRef::new(TableIdx(1), 0),
                vec![Value::Int(1), Value::Int(2)],
            ),
            Predicate::in_list(
                PredId(1),
                ColRef::new(TableIdx(1), 1),
                vec![Value::Int(5), Value::Int(6)],
            ),
        ];
        let q2 = QuerySpec::new(&c, q2.tables, q2.predicates, None).unwrap();
        let mut stem = s_stem(false, true);
        let state = TupleState::new();
        let r = r_tuple(1, 3).with_timestamp(TableIdx(0), 5);
        let pairs = [(1, 5), (1, 6), (2, 5), (2, 6)];
        for (x, y) in &pairs[..3] {
            stem.build(
                &Tuple::singleton(
                    TableIdx(1),
                    // Arity-3 EOT row so a column stays EOT-marked.
                    make_eot_row(3, &[(0, Value::Int(*x)), (1, Value::Int(*y))]),
                ),
                &state,
                0,
            );
        }
        assert_eq!(
            stem.probe(&r, &state, &q2).outcome,
            ProbeOutcome::Bounced(CompletionNeed::Required),
            "one member pair still unanswered"
        );
        stem.build(
            &Tuple::singleton(
                TableIdx(1),
                make_eot_row(3, &[(0, Value::Int(2)), (1, Value::Int(6))]),
            ),
            &state,
            0,
        );
        assert_eq!(stem.probe(&r, &state, &q2).outcome, ProbeOutcome::Consumed);
    }

    #[test]
    fn in_list_options_normalize_and_skip_degenerates() {
        let (c, q) = setup();
        let mut q2 = q.clone();
        // Single-member list: a degenerate equality, not an option set.
        q2.predicates.push(Predicate::in_list(
            PredId(1),
            ColRef::new(TableIdx(1), 1),
            vec![Value::Int(7)],
        ));
        // Multi-member list with coercing/duplicate/NULL members.
        q2.predicates.push(Predicate::in_list(
            PredId(2),
            ColRef::new(TableIdx(1), 0),
            vec![Value::Int(3), Value::Float(3.0), Value::Null, Value::Int(4)],
        ));
        let q2 = QuerySpec::new(&c, q2.tables, q2.predicates, None).unwrap();
        assert_eq!(
            in_list_options(&q2, TableIdx(1)),
            vec![(0, vec![Value::Int(3), Value::Int(4)])]
        );
        assert!(in_list_options(&q2, TableIdx(0)).is_empty());
    }

    #[test]
    fn probe_results_skip_eot_rows() {
        let (_c, q) = setup();
        let mut stem = s_stem(false, true);
        stem.build(
            &Tuple::singleton(TableIdx(1), make_eot_row(2, &[(0, Value::Int(10))])),
            &TupleState::new(),
            1,
        );
        build_fresh(&mut stem, &s_tuple(10, 5), 2);
        let r = r_tuple(1, 10).with_timestamp(TableIdx(0), 9);
        let reply = stem.probe(&r, &TupleState::new(), &q);
        // Only the data row joins; the EOT "row" never appears in results.
        assert_eq!(reply.results.len(), 1);
        assert_eq!(
            reply.results[0].0.value(TableIdx(1), 1),
            Some(&Value::Int(5))
        );
    }

    #[test]
    fn eviction_window_fifo() {
        let opts = StemOptions {
            eviction_window: Some(2),
            ..StemOptions::default()
        };
        let mut stem = Stem::new(TableIdx(1), SourceId(1), &[0], true, false, opts);
        build_fresh(&mut stem, &s_tuple(1, 1), 1);
        build_fresh(&mut stem, &s_tuple(2, 2), 2);
        build_fresh(&mut stem, &s_tuple(3, 3), 3);
        assert_eq!(stem.len(), 2);
        assert_eq!(stem.evictions, 1);
        // Evicted row may re-enter (dedup forgot it).
        match stem.build(&s_tuple(1, 1), &TupleState::new(), 4) {
            BuildResult::Fresh(_) => {}
            other => panic!("evicted row should rebuild, got {other:?}"),
        }
    }

    #[test]
    fn windowed_build_batch_matches_scalar_eviction() {
        // window=2, batch [r1, r2, r3, r1]: inserting r2/r3 evicts r1 and
        // forgets it, so the second r1 must re-enter as Fresh — exactly
        // what per-tuple scalar builds do. A batch-deferred insert would
        // wrongly absorb it as a duplicate.
        let opts = StemOptions {
            eviction_window: Some(2),
            ..StemOptions::default()
        };
        let mut stem = Stem::new(TableIdx(1), SourceId(1), &[0], true, false, opts);
        let batch: TupleBatch = [s_tuple(1, 1), s_tuple(2, 2), s_tuple(3, 3), s_tuple(1, 1)]
            .into_iter()
            .collect();
        let states = vec![TupleState::new(); 4];
        let mut ts = 0;
        let results = stem.build_batch(&batch, &states, &mut ts);
        assert!(matches!(results[0], BuildResult::Fresh(_)));
        assert!(matches!(results[1], BuildResult::Fresh(_)));
        assert!(matches!(results[2], BuildResult::Fresh(_)));
        assert!(
            matches!(results[3], BuildResult::Fresh(_)),
            "evicted row must rebuild mid-batch, got {:?}",
            results[3]
        );
        assert_eq!(stem.len(), 2);
        assert_eq!(stem.evictions, 2);
        assert_eq!(ts, 4);
    }

    /// The side maps (`dedup`, `ts_of`) and the store must agree on
    /// membership and length — `Stem::apply_eviction` must sweep all
    /// three together.
    fn assert_side_maps_consistent(stem: &Stem) {
        assert_eq!(stem.ts_of.len(), stem.store.len(), "ts_of vs store len");
        assert_eq!(stem.dedup.len(), stem.store.len(), "dedup vs store len");
        for row in stem.store.scan() {
            assert!(
                stem.ts_of.contains_key(&row),
                "stored row missing from ts_of: {row:?}"
            );
            assert!(
                stem.dedup.contains(&row),
                "stored row missing from dedup: {row:?}"
            );
        }
    }

    #[test]
    fn windowed_side_maps_stay_consistent_across_sweeps() {
        let opts = StemOptions {
            eviction_window: Some(3),
            ..StemOptions::default()
        };
        let mut stem = Stem::new(TableIdx(1), SourceId(1), &[0], true, false, opts);
        // Drive far past the window, with duplicates interleaved, so many
        // sweeps run; the maps must agree after every build.
        for i in 0..40i64 {
            let key = i % 10;
            stem.build(&s_tuple(key, key), &TupleState::new(), (i + 1) as u64);
            assert_side_maps_consistent(&stem);
            assert!(stem.len() <= 3, "window overrun at i={i}");
        }
        assert!(stem.evictions > 0);
        // An evicted row must be forgotten everywhere: it rebuilds Fresh,
        // and the maps stay in step.
        let victim = s_tuple(0, 0);
        assert!(matches!(
            stem.build(&victim, &TupleState::new(), 99),
            BuildResult::Fresh(_)
        ));
        assert_side_maps_consistent(&stem);
    }

    #[test]
    fn windowed_side_maps_survive_intra_batch_duplicate_rearrival() {
        // window=2, batch [r1, r2, r3, r1, r1]: inserting r2/r3 evicts r1
        // and must forget it in `dedup` and `ts_of`; the first re-arrival
        // rebuilds Fresh (and re-enters both maps), the second is a true
        // duplicate again. After the sweep, store/dedup/ts_of agree.
        let opts = StemOptions {
            eviction_window: Some(2),
            ..StemOptions::default()
        };
        let mut stem = Stem::new(TableIdx(1), SourceId(1), &[0], true, false, opts);
        let batch: TupleBatch = [
            s_tuple(1, 1),
            s_tuple(2, 2),
            s_tuple(3, 3),
            s_tuple(1, 1),
            s_tuple(1, 1),
        ]
        .into_iter()
        .collect();
        let states = vec![TupleState::new(); 5];
        let mut ts = 0;
        let results = stem.build_batch(&batch, &states, &mut ts);
        assert!(matches!(results[3], BuildResult::Fresh(_)));
        assert_eq!(results[4], BuildResult::Duplicate);
        assert_side_maps_consistent(&stem);
        assert_eq!(stem.len(), 2);
        // The re-built r1 carries its *new* timestamp in ts_of.
        let r1 = s_tuple(1, 1);
        let ts_r1 = *stem.ts_of.get(&r1.components()[0].row).expect("r1 stored");
        assert_eq!(ts_r1, 4, "re-arrival must be re-stamped, not stale");
    }

    #[test]
    fn unbounded_stem_side_maps_consistent() {
        let mut stem = s_stem(true, false);
        for i in 0..10 {
            stem.build(&s_tuple(i, i), &TupleState::new(), (i + 1) as u64);
        }
        // Duplicates leave the maps untouched.
        stem.build(&s_tuple(3, 3), &TupleState::new(), 50);
        assert_side_maps_consistent(&stem);
        assert_eq!(stem.len(), 10);
    }

    #[test]
    fn deferred_bounce_clusters_by_partition() {
        let opts = StemOptions {
            deferred_bounce: true,
            partitions: 4,
            ..StemOptions::default()
        };
        let mut stem = Stem::new(TableIdx(1), SourceId(1), &[0], true, false, opts);
        for i in 0..20 {
            let r = stem.build(&s_tuple(i, i), &TupleState::new(), (i + 1) as u64);
            assert_eq!(r, BuildResult::Deferred);
        }
        assert_eq!(stem.deferred_len(), 20);
        let released = stem.release_deferred();
        assert_eq!(released.len(), 20);
        assert_eq!(stem.deferred_len(), 0);
        // Released order is clustered: partition ids are non-decreasing.
        let parts: Vec<usize> = released
            .iter()
            .map(|(t, _)| stem.partition_of(&t.components()[0].row))
            .collect();
        let mut sorted = parts.clone();
        sorted.sort_unstable();
        assert_eq!(parts, sorted);
    }

    #[test]
    fn hybrid_mem_partitions_bounce_immediately() {
        let opts = StemOptions {
            deferred_bounce: true,
            partitions: 2,
            mem_partitions: 1,
            ..StemOptions::default()
        };
        let mut stem = Stem::new(TableIdx(1), SourceId(1), &[0], true, false, opts);
        let mut fresh = 0;
        let mut deferred = 0;
        for i in 0..50 {
            match stem.build(&s_tuple(i, i), &TupleState::new(), (i + 1) as u64) {
                BuildResult::Fresh(_) => fresh += 1,
                BuildResult::Deferred => deferred += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        // Both behaviours must occur (hybrid-hash: memory-resident
        // partitions pipeline, the rest wait).
        assert!(fresh > 0, "no immediate bounces");
        assert!(deferred > 0, "no deferred bounces");
    }

    #[test]
    fn selection_predicates_checked_at_concat() {
        let (c, q) = setup();
        // Add a selection on S.y > 3.
        let mut q2 = q.clone();
        q2.predicates.push(Predicate::selection(
            PredId(1),
            ColRef::new(TableIdx(1), 1),
            CmpOp::Gt,
            Value::Int(3),
        ));
        let q2 = QuerySpec::new(&c, q2.tables, q2.predicates, None).unwrap();
        let mut stem = s_stem(true, false);
        build_fresh(&mut stem, &s_tuple(10, 1), 1); // fails y > 3
        build_fresh(&mut stem, &s_tuple(10, 9), 2); // passes
        let r = r_tuple(1, 10).with_timestamp(TableIdx(0), 5);
        let reply = stem.probe(&r, &TupleState::new(), &q2);
        assert_eq!(reply.results.len(), 1);
        let (tup, done) = &reply.results[0];
        assert_eq!(tup.value(TableIdx(1), 1), Some(&Value::Int(9)));
        assert!(done.contains(PredId(0)) && done.contains(PredId(1)));
    }

    #[test]
    fn cartesian_probe_scans_store() {
        // Query with no predicates: probe returns cross product rows.
        let (c, q) = setup();
        let q = QuerySpec::new(&c, q.tables, vec![], None).unwrap();
        let mut stem = s_stem(true, false);
        build_fresh(&mut stem, &s_tuple(10, 1), 1);
        build_fresh(&mut stem, &s_tuple(20, 2), 2);
        let r = r_tuple(1, 999).with_timestamp(TableIdx(0), 5);
        let reply = stem.probe(&r, &TupleState::new(), &q);
        assert_eq!(reply.results.len(), 2);
    }

    /// The sharding phase split (`ingest_batch` then `stamp_fresh` in
    /// batch order) must reproduce `build_batch` exactly on one shard —
    /// same results, same timestamps, same counters, same side maps.
    #[test]
    fn phase_split_build_equals_build_batch() {
        let tuples: Vec<Tuple> = (0..20)
            .map(|i| s_tuple(i % 7, i))
            .chain(std::iter::once(s_tuple(3, 3)))
            .collect();
        let batch: TupleBatch = tuples.iter().cloned().collect();
        let states = vec![TupleState::new(); batch.len()];

        let mut whole = s_stem(true, false);
        let mut ts_whole = 0;
        let expected = whole.build_batch(&batch, &states, &mut ts_whole);

        let mut phased = s_stem(true, false);
        let rows: Vec<Arc<Row>> = tuples
            .iter()
            .map(|t| t.components()[0].row.clone())
            .collect();
        let fresh = phased.ingest_batch(&rows);
        let mut ts_phased = 0;
        let got: Vec<BuildResult> = tuples
            .iter()
            .zip(&states)
            .zip(&fresh)
            .map(|((tuple, state), fresh)| {
                if *fresh {
                    ts_phased += 1;
                    phased.stamp_fresh(tuple, state, ts_phased)
                } else {
                    BuildResult::Duplicate
                }
            })
            .collect();

        assert_eq!(expected, got);
        assert_eq!(ts_whole, ts_phased);
        assert_eq!(whole.len(), phased.len());
        assert_eq!(whole.max_ts, phased.max_ts);
        assert_eq!(whole.build_count, phased.build_count);
        assert_eq!(whole.duplicates_absorbed, phased.duplicates_absorbed);
        for (a, b) in expected.iter().zip(&got) {
            if let (BuildResult::Fresh(x), BuildResult::Fresh(y)) = (a, b) {
                assert_eq!(x.timestamp(), y.timestamp());
            }
        }
        assert_side_maps_consistent(&phased);
    }

    #[test]
    fn evict_oldest_and_oldest_ts_walk_fifo_order() {
        let mut stem = s_stem(true, false);
        for i in 0..4 {
            build_fresh(&mut stem, &s_tuple(i, i), (i + 1) as u64);
        }
        assert_eq!(stem.oldest_ts(), Some(1));
        assert!(stem.evict_oldest());
        assert_eq!(stem.oldest_ts(), Some(2));
        assert_eq!(stem.len(), 3);
        assert_eq!(stem.evictions, 1);
        assert_side_maps_consistent(&stem);
        // The evicted row was forgotten everywhere: it can rebuild fresh.
        assert!(matches!(
            stem.build(&s_tuple(0, 0), &TupleState::new(), 9),
            BuildResult::Fresh(_)
        ));
        while stem.evict_oldest() {}
        assert_eq!(stem.oldest_ts(), None);
        assert!(stem.is_empty());
    }

    #[test]
    fn probe_bindings_include_constant_selections() {
        let (c, q) = setup();
        let mut q2 = q.clone();
        q2.predicates.push(Predicate::selection(
            PredId(1),
            ColRef::new(TableIdx(1), 1),
            CmpOp::Eq,
            Value::Int(7),
        ));
        let q2 = QuerySpec::new(&c, q2.tables, q2.predicates, None).unwrap();
        let linking: Vec<&Predicate> = q2
            .preds_linking(TableSet::single(TableIdx(0)), TableIdx(1))
            .into_iter()
            .map(|id| q2.predicate(id))
            .collect();
        let r = r_tuple(1, 10);
        let b = probe_bindings(&linking, &r, TableIdx(1), &q2);
        assert_eq!(b, vec![(0, Value::Int(10)), (1, Value::Int(7))]);
    }

    /// The batched probe path resolves `newly_evaluable` once per distinct
    /// `(result_span, done)` pair per envelope (the span-level predicate
    /// cache); the scalar probe recomputes it per call. On an envelope
    /// mixing probe spans {R}, {T} and {R,T} with varied done-sets —
    /// including pairs that share a span but differ in done bits — the two
    /// must agree reply for reply.
    #[test]
    fn span_predicate_cache_matches_per_tuple_recomputation() {
        use stems_catalog::SourceId as Src;
        // Three tables, two joins through S, plus a selection on S:
        // R.a = S.x, S.y = T.b, S.y < 25.
        let mut c = Catalog::new();
        let r = c
            .add_table(TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            ))
            .unwrap();
        let s = c
            .add_table(TableDef::new(
                "S",
                Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
            ))
            .unwrap();
        let t = c
            .add_table(TableDef::new("T", Schema::of(&[("b", ColumnType::Int)])))
            .unwrap();
        for src in [r, s, t] {
            c.add_scan(src, ScanSpec::default()).unwrap();
        }
        let inst = |source: Src, alias: &str| TableInstance {
            source,
            alias: alias.into(),
        };
        let q = QuerySpec::new(
            &c,
            vec![inst(r, "r"), inst(s, "s"), inst(t, "t")],
            vec![
                Predicate::join(
                    PredId(0),
                    ColRef::new(TableIdx(0), 1),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(1), 0),
                ),
                Predicate::join(
                    PredId(1),
                    ColRef::new(TableIdx(1), 1),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(2), 0),
                ),
                Predicate::selection(
                    PredId(2),
                    ColRef::new(TableIdx(1), 1),
                    CmpOp::Lt,
                    Value::Int(25),
                ),
            ],
            None,
        )
        .unwrap();

        let mut stem = Stem::new(
            TableIdx(1),
            Src(1),
            &[0, 1],
            true,
            false,
            StemOptions::default(),
        );
        for i in 0..40i64 {
            build_fresh(&mut stem, &s_tuple(i % 10, i), (i + 1) as Timestamp);
        }

        // Mixed envelope: span {R} (live + stale), span {T}, span {R,T},
        // with done-sets that differ *within* a shared span.
        let mut probes: Vec<Tuple> = Vec::new();
        let mut states: Vec<TupleState> = Vec::new();
        let mut push = |tuple: Tuple, done: &[u16]| {
            probes.push(tuple);
            let mut st = TupleState::new();
            for &p in done {
                st.done.insert(PredId(p));
            }
            states.push(st);
        };
        for i in 0..12i64 {
            let r_probe = r_tuple(i, i % 10).with_timestamp(TableIdx(0), 1_000 + i as u64);
            push(r_probe.clone(), &[]);
            push(r_probe, &[2]); // same span, different done bits
            let t_probe = Tuple::singleton_of(TableIdx(2), vec![Value::Int(i % 30)])
                .with_timestamp(TableIdx(2), 2_000 + i as u64);
            push(t_probe.clone(), &[]);
            push(
                r_tuple(i, i % 10)
                    .with_timestamp(TableIdx(0), 3_000 + i as u64)
                    .concat(&t_probe),
                &[2],
            );
        }

        let mut batched = ProbeReplySet::new();
        stem.probe_batch_into(&probes, &states, &q, &mut batched);
        assert_eq!(batched.len(), probes.len());
        let mut seen_results = 0usize;
        for ((tuple, state), (meta, results)) in probes.iter().zip(&states).zip(batched.iter()) {
            let want = stem.probe(tuple, state, &q);
            assert_eq!(want.results, results, "probe {tuple}");
            assert_eq!(want.outcome, meta.outcome, "probe {tuple}");
            assert_eq!(want.observed_ts, meta.observed_ts, "probe {tuple}");
            assert_eq!(want.raw_matches, meta.raw_matches, "probe {tuple}");
            seen_results += results.len();
        }
        assert!(seen_results > 0, "workload must form results");
    }

    #[test]
    fn scratch_pool_capped_after_burst() {
        let stem = s_stem(true, false);
        // A burst of concurrent probers checks out far more scratches than
        // the cap, then returns them all.
        let burst: Vec<_> = (0..4 * MAX_POOLED_SCRATCH)
            .map(|_| stem.acquire_scratch())
            .collect();
        for scratch in burst {
            stem.release_scratch(scratch);
        }
        assert!(
            stem.pooled_scratches() <= MAX_POOLED_SCRATCH,
            "free-list kept {} scratches, cap is {MAX_POOLED_SCRATCH}",
            stem.pooled_scratches()
        );
    }

    #[test]
    fn scratch_pool_recovers_from_poison() {
        let (_c, q) = setup();
        let mut stem = s_stem(true, false);
        build_fresh(&mut stem, &s_tuple(10, 1), 1);
        // Poison the scratch mutex: panic while holding the free-list
        // lock (the unwinding drop marks it poisoned).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stem.scratch.with_slots(|_| panic!("prober died mid-probe"));
        }));
        assert!(result.is_err());
        assert!(stem.scratch.is_poisoned());
        // A later query's probe must still succeed — the pool discards the
        // poisoned free-list instead of propagating the panic. The batch
        // path is the one that checks scratch out of the pool.
        let r = r_tuple(100, 10).with_timestamp(TableIdx(0), 3);
        let mut out = ProbeReplySet::new();
        stem.probe_batch_into(&[r], &[TupleState::new()], &q, &mut out);
        assert_eq!(out.results.len(), 1);
        assert!(!stem.scratch.is_poisoned(), "poison mark must be cleared");
    }

    #[test]
    fn scratch_poisoned_while_checked_out_recovers_on_release() {
        // A chunk holds a checked-out scratch (no lock held) while the
        // pool's free-list is poisoned underneath it — the in-flight
        // chunk's release must recover the pool, not deadlock or lose
        // the poison repair.
        let (_c, q) = setup();
        let mut stem = s_stem(true, false);
        build_fresh(&mut stem, &s_tuple(10, 1), 1);
        let held = stem.acquire_scratch();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stem.scratch
                .with_slots(|_| panic!("sibling chunk died mid-envelope"));
        }));
        assert!(result.is_err());
        assert!(stem.scratch.is_poisoned());
        // The surviving chunk finishes its envelope and returns its
        // scratch: release goes through poison recovery and re-pools it.
        stem.release_scratch(held);
        assert!(!stem.scratch.is_poisoned(), "release must clear poison");
        assert_eq!(stem.pooled_scratches(), 1);
        let r = r_tuple(100, 10).with_timestamp(TableIdx(0), 3);
        let mut out = ProbeReplySet::new();
        stem.probe_batch_into(&[r], &[TupleState::new()], &q, &mut out);
        assert_eq!(out.results.len(), 1);
    }

    #[test]
    fn worker_panic_replay_with_concurrent_scratch_checkout() {
        // End-to-end satellite: a pool scope where one task poisons the
        // scratch free-list by panicking inside it while a sibling task
        // concurrently holds a checked-out scratch and releases it
        // mid-recovery. The panic must replay to the scope caller after
        // the barrier (never lost, never a deadlock), and the SteM must
        // stay fully usable afterwards.
        let (_c, q) = setup();
        let mut stem = s_stem(true, false);
        build_fresh(&mut stem, &s_tuple(10, 1), 1);
        let pool = crate::runtime::WorkerPool::global();
        let stem_ref = &stem;
        let q_ref = &q;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(2, |scope| {
                scope.spawn(0, move || {
                    stem_ref
                        .scratch
                        .with_slots(|_| panic!("worker died holding the free-list"));
                });
                scope.spawn(1, move || {
                    // Concurrent envelope: checkout → probe → release,
                    // racing the sibling's poisoning. Must complete
                    // whether it runs before, during, or after.
                    let scratch = stem_ref.acquire_scratch();
                    let r = r_tuple(100, 10).with_timestamp(TableIdx(0), 3);
                    let mut out = ProbeReplySet::new();
                    stem_ref.probe_batch_into(&[r], &[TupleState::new()], q_ref, &mut out);
                    assert_eq!(out.results.len(), 1);
                    stem_ref.release_scratch(scratch);
                });
            });
        }));
        assert!(result.is_err(), "worker panic must replay to the caller");
        // The pool recovered (either at the sibling's release or at the
        // next acquire) and the SteM still probes.
        let r = r_tuple(100, 10).with_timestamp(TableIdx(0), 3);
        let mut out = ProbeReplySet::new();
        stem.probe_batch_into(&[r], &[TupleState::new()], &q, &mut out);
        assert_eq!(out.results.len(), 1);
        assert!(!stem.scratch.is_poisoned());
    }

    use stems_types::TableSet;
}
