//! The constraint layer: which modules may a tuple be routed to *right
//! now*? (paper Table 2, routing-policy side.)
//!
//! The router computes the legal candidate set; the
//! [`crate::policy::RoutingPolicy`] picks among candidates. This split is
//! the paper's central separation of concerns: "the SteM BounceBack and
//! Timestamp rules are implemented internally to the AMs and SteMs, and the
//! routing policy implementor need not be aware of them at all" — while
//! BuildFirst / BoundedRepetition / ProbeCompletion live here, so *no*
//! policy can produce wrong answers.

use crate::plan::{Module, PlanLayout};
use crate::tuple_state::TupleState;
use stems_catalog::QuerySpec;
use stems_types::{PredId, TableIdx, Tuple};

/// One legal routing destination for a tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Build into the SteM on the tuple's own table (BuildFirst).
    Build { mid: usize, table: TableIdx },
    /// Probe the SteM on `table`.
    ProbeStem { mid: usize, table: TableIdx },
    /// Apply the selection module for `pred`.
    Select { mid: usize, pred: PredId },
    /// Probe an index AM on `table` (prior probers only, §3.3).
    ProbeAm { mid: usize, table: TableIdx },
    /// Leave the dataflow. Offered only when correctness permits it
    /// (optional-completion prior probers, §4.1) — this is the "wait for
    /// the scan instead" arm of index/hash hybridization.
    Drop,
}

impl Action {
    /// The destination module id; `None` for [`Action::Drop`].
    pub fn mid(&self) -> Option<usize> {
        match self {
            Action::Build { mid, .. }
            | Action::ProbeStem { mid, .. }
            | Action::Select { mid, .. }
            | Action::ProbeAm { mid, .. } => Some(*mid),
            Action::Drop => None,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            Action::Build { .. } => "build",
            Action::ProbeStem { .. } => "probe_stem",
            Action::Select { .. } => "select",
            Action::ProbeAm { .. } => "probe_am",
            Action::Drop => "drop",
        }
    }
}

/// Why `candidates` returned an empty set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NoCandidates {
    /// The tuple's useful life is over (it has done everything it may do);
    /// remove it from the dataflow. This is the normal fate of most
    /// tuples — results are carried forward by their concatenations.
    Retire,
    /// A prior prober whose completion is still pending: park it until the
    /// completion table's SteM changes (new builds or EOTs).
    Park { table: TableIdx },
}

/// Compute the candidate actions for a tuple, or the reason there are none.
///
/// `probe_edges`: optional restriction of SteM probes to a fixed set of
/// join-graph edges — used to emulate a *static spanning tree* for the
/// §3.4 experiments. `None` = all edges (dynamic spanning trees).
pub fn candidates(
    modules: &[Module],
    layout: &PlanLayout,
    query: &QuerySpec,
    tuple: &Tuple,
    state: &TupleState,
    probe_edges: Option<&[(TableIdx, TableIdx)]>,
) -> Result<Vec<Action>, NoCandidates> {
    let span = tuple.span();

    // BuildFirst (Table 2): an unbuilt singleton from a build-required
    // table may do nothing else.
    if tuple.is_singleton() {
        let t = tuple.components()[0].table;
        let unbuilt = tuple.components()[0].ts == stems_types::UNBUILT_TS;
        if unbuilt && layout.build_required[t.as_usize()] {
            if let Some(mid) = layout.stem_mid[t.as_usize()] {
                return Ok(vec![Action::Build { mid, table: t }]);
            }
        }
    }

    let mut acts: Vec<Action> = Vec::new();

    // Selections not yet passed and evaluable on the current span.
    for (pred, mid) in &layout.sm_mids {
        if !state.done.contains(*pred) && query.predicate(*pred).evaluable_on(span) {
            acts.push(Action::Select {
                mid: *mid,
                pred: *pred,
            });
        }
    }

    if let Some(pp) = state.prior_prober {
        // ProbeCompletion (Table 2): only the completion table's SteM and
        // AMs are reachable.
        let ct = pp.table;
        // Re-probe the completion SteM, but only if it changed since our
        // last probe (BoundedRepetition).
        if let Some(mid) = layout.stem_mid[ct.as_usize()] {
            if let Module::Stem(cell) = &modules[mid] {
                if stem_version(&cell.lock()) > state.last_probe_version {
                    acts.push(Action::ProbeStem { mid, table: ct });
                }
            }
        }
        // Index AMs on the completion table, each at most once, and only
        // if this tuple can bind their lookup columns.
        if !state.probed_ams.contains(ct) {
            for &mid in &layout.index_mids[ct.as_usize()] {
                if let Module::IndexAm(am) = &modules[mid] {
                    if am.can_bind(tuple, ct, query) {
                        acts.push(Action::ProbeAm { mid, table: ct });
                    }
                }
            }
        }
        match pp.need {
            crate::tuple_state::CompletionNeed::Optional => acts.push(Action::Drop),
            crate::tuple_state::CompletionNeed::Required => {
                if acts.is_empty() {
                    return Err(NoCandidates::Park { table: ct });
                }
            }
        }
        if acts.is_empty() {
            return Err(NoCandidates::Retire);
        }
        return Ok(acts);
    }

    // SteM probes: adjacent (predicate-linked) tables outside the span;
    // if no predicate links anything (cross product), every remaining
    // table is a candidate.
    let graph = query.join_graph();
    let mut frontier = graph.frontier(span);
    if frontier.is_empty() {
        frontier = query.full_span().minus(span);
    }
    for t in frontier.iter() {
        if state.probed_stems.contains(t) {
            continue; // BoundedRepetition: one probe per SteM per tuple.
        }
        if let Some(edges) = probe_edges {
            let allowed = span.iter().any(|s| {
                edges
                    .iter()
                    .any(|(a, b)| (*a == s && *b == t) || (*a == t && *b == s))
            });
            if !allowed {
                continue;
            }
        }
        if let Some(mid) = layout.stem_mid[t.as_usize()] {
            acts.push(Action::ProbeStem { mid, table: t });
        }
    }

    if acts.is_empty() {
        Err(NoCandidates::Retire)
    } else {
        Ok(acts)
    }
}

/// A SteM's change counter: any build, EOT or scan-completion bumps it.
/// Aggregated across shards, so a build into any shard re-offers the
/// re-probe.
pub fn stem_version(stem: &crate::sharded::ShardedStem) -> u64 {
    stem.build_count() + stem.eot_version()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{instantiate, PlanOptions};
    use crate::stem::{make_scan_eot_row, BuildResult};
    use crate::tuple_state::{CompletionNeed, PriorProber};
    use stems_catalog::{Catalog, IndexSpec, ScanSpec, TableDef, TableInstance};
    use stems_types::{CmpOp, ColRef, ColumnType, Predicate, Schema, Timestamp, Value};

    fn setup(index_on_s: bool) -> (Catalog, QuerySpec) {
        let mut c = Catalog::new();
        let r = c
            .add_table(TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            ))
            .unwrap();
        let s = c
            .add_table(
                TableDef::new(
                    "S",
                    Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
                )
                .with_rows(vec![vec![10.into(), 1.into()]]),
            )
            .unwrap();
        c.add_scan(r, ScanSpec::default()).unwrap();
        if index_on_s {
            c.add_index(s, IndexSpec::new(vec![0], 1000)).unwrap();
        } else {
            c.add_scan(s, ScanSpec::default()).unwrap();
        }
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "r".into(),
                },
                TableInstance {
                    source: s,
                    alias: "s".into(),
                },
            ],
            vec![
                Predicate::join(
                    PredId(0),
                    ColRef::new(TableIdx(0), 1),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(1), 0),
                ),
                Predicate::selection(
                    PredId(1),
                    ColRef::new(TableIdx(0), 0),
                    CmpOp::Gt,
                    Value::Int(0),
                ),
            ],
            None,
        )
        .unwrap();
        (c, q)
    }

    fn plan(c: &Catalog, q: &QuerySpec) -> (Vec<Module>, PlanLayout) {
        instantiate(c, q, &PlanOptions::default()).unwrap()
    }

    fn r_tuple(key: i64, a: i64) -> Tuple {
        Tuple::singleton_of(TableIdx(0), vec![Value::Int(key), Value::Int(a)])
    }

    #[test]
    fn unbuilt_singleton_must_build_first() {
        let (c, q) = setup(true);
        let (m, l) = plan(&c, &q);
        let acts = candidates(&m, &l, &q, &r_tuple(1, 10), &TupleState::new(), None).unwrap();
        assert_eq!(acts.len(), 1);
        assert!(matches!(
            acts[0],
            Action::Build {
                table: TableIdx(0),
                ..
            }
        ));
    }

    #[test]
    fn built_singleton_gets_selects_and_probes() {
        let (c, q) = setup(true);
        let (m, l) = plan(&c, &q);
        let r = r_tuple(1, 10).with_timestamp(TableIdx(0), 1);
        let acts = candidates(&m, &l, &q, &r, &TupleState::new(), None).unwrap();
        let kinds: Vec<_> = acts.iter().map(Action::kind).collect();
        assert!(kinds.contains(&"select"));
        assert!(kinds.contains(&"probe_stem"));
        assert!(!kinds.contains(&"probe_am"), "AMs only after a SteM bounce");
    }

    #[test]
    fn probed_stem_not_offered_again() {
        let (c, q) = setup(true);
        let (m, l) = plan(&c, &q);
        let r = r_tuple(1, 10).with_timestamp(TableIdx(0), 1);
        let mut st = TupleState::new();
        st.done.insert(PredId(1));
        st.mark_probed(TableIdx(1));
        match candidates(&m, &l, &q, &r, &st, None) {
            Err(NoCandidates::Retire) => {}
            other => panic!("expected retire, got {other:?}"),
        }
    }

    #[test]
    fn required_prior_prober_goes_to_am_then_parks() {
        let (c, q) = setup(true);
        let (m, l) = plan(&c, &q);
        let r = r_tuple(1, 10).with_timestamp(TableIdx(0), 1);
        let mut st = TupleState::new();
        st.done.insert(PredId(1));
        st.mark_probed(TableIdx(1));
        st.prior_prober = Some(PriorProber {
            table: TableIdx(1),
            need: CompletionNeed::Required,
        });
        let acts = candidates(&m, &l, &q, &r, &st, None).unwrap();
        assert_eq!(acts.len(), 1);
        assert!(matches!(
            acts[0],
            Action::ProbeAm {
                table: TableIdx(1),
                ..
            }
        ));
        assert!(!acts.contains(&Action::Drop));
        // After probing the AM (and with the stem unchanged): park.
        st.mark_am_probed(TableIdx(1));
        match candidates(&m, &l, &q, &r, &st, None) {
            Err(NoCandidates::Park { table: TableIdx(1) }) => {}
            other => panic!("expected park, got {other:?}"),
        }
    }

    #[test]
    fn optional_prior_prober_may_drop() {
        let (c, q) = setup(true);
        let (m, l) = plan(&c, &q);
        let r = r_tuple(1, 10).with_timestamp(TableIdx(0), 1);
        let mut st = TupleState::new();
        st.done.insert(PredId(1));
        st.mark_probed(TableIdx(1));
        st.prior_prober = Some(PriorProber {
            table: TableIdx(1),
            need: CompletionNeed::Optional,
        });
        let acts = candidates(&m, &l, &q, &r, &st, None).unwrap();
        assert!(acts.contains(&Action::Drop));
        assert!(acts.iter().any(|a| matches!(a, Action::ProbeAm { .. })));
        // ProbeCompletion: no other SteM may be probed.
        assert!(!acts.iter().any(|a| matches!(
            a,
            Action::ProbeStem {
                table: TableIdx(0),
                ..
            }
        )));
    }

    #[test]
    fn reprobe_offered_only_after_stem_change() {
        let (c, q) = setup(true);
        let (mut m, l) = plan(&c, &q);
        let r = r_tuple(1, 10).with_timestamp(TableIdx(0), 1);
        let mut st = TupleState::new();
        st.done.insert(PredId(1));
        st.mark_probed(TableIdx(1));
        st.mark_am_probed(TableIdx(1));
        st.prior_prober = Some(PriorProber {
            table: TableIdx(1),
            need: CompletionNeed::Required,
        });
        st.last_probe_version = 0;
        // Unchanged stem: park.
        assert!(matches!(
            candidates(&m, &l, &q, &r, &st, None),
            Err(NoCandidates::Park { .. })
        ));
        // Build an EOT into SteM_S: version bumps, re-probe offered.
        let smid = l.stem_mid[1].unwrap();
        if let Module::Stem(cell) = &mut m[smid] {
            let eot = Tuple::singleton(TableIdx(1), make_scan_eot_row(2));
            assert_eq!(
                cell.lock().build(&eot, &TupleState::new(), 1 as Timestamp),
                BuildResult::Eot
            );
        }
        let acts = candidates(&m, &l, &q, &r, &st, None).unwrap();
        assert!(matches!(
            acts[0],
            Action::ProbeStem {
                table: TableIdx(1),
                ..
            }
        ));
    }

    #[test]
    fn probe_edges_restrict_spanning_tree() {
        // Triangle query; restricting to edges (0,1),(1,2) forbids 0–2.
        let mut c = Catalog::new();
        let schema = Schema::of(&[("k", ColumnType::Int)]);
        let ids: Vec<_> = ["A", "B", "C"]
            .iter()
            .map(|n| {
                let id = c.add_table(TableDef::new(n, schema.clone())).unwrap();
                c.add_scan(id, ScanSpec::default()).unwrap();
                id
            })
            .collect();
        let q = QuerySpec::new(
            &c,
            ids.iter()
                .zip(["a", "b", "cc"])
                .map(|(s, al)| TableInstance {
                    source: *s,
                    alias: al.into(),
                })
                .collect(),
            vec![
                Predicate::join(
                    PredId(0),
                    ColRef::new(TableIdx(0), 0),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(1), 0),
                ),
                Predicate::join(
                    PredId(1),
                    ColRef::new(TableIdx(1), 0),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(2), 0),
                ),
                Predicate::join(
                    PredId(2),
                    ColRef::new(TableIdx(0), 0),
                    CmpOp::Eq,
                    ColRef::new(TableIdx(2), 0),
                ),
            ],
            None,
        )
        .unwrap();
        let (m, l) = plan(&c, &q);
        let a =
            Tuple::singleton_of(TableIdx(0), vec![Value::Int(1)]).with_timestamp(TableIdx(0), 1);
        // Unrestricted: both SteM_B and SteM_C are candidates.
        let acts = candidates(&m, &l, &q, &a, &TupleState::new(), None).unwrap();
        assert_eq!(acts.len(), 2);
        // Restricted to the chain tree: only SteM_B.
        let tree = vec![(TableIdx(0), TableIdx(1)), (TableIdx(1), TableIdx(2))];
        let acts = candidates(&m, &l, &q, &a, &TupleState::new(), Some(&tree)).unwrap();
        assert_eq!(acts.len(), 1);
        assert!(matches!(
            acts[0],
            Action::ProbeStem {
                table: TableIdx(1),
                ..
            }
        ));
    }

    #[test]
    fn cross_product_probes_offered_without_predicates() {
        let (c, q) = setup(false);
        let q = QuerySpec::new(&c, q.tables, vec![], None).unwrap();
        let (m, l) = plan(&c, &q);
        let r = r_tuple(1, 10).with_timestamp(TableIdx(0), 1);
        let acts = candidates(&m, &l, &q, &r, &TupleState::new(), None).unwrap();
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::ProbeStem {
                table: TableIdx(1),
                ..
            }
        )));
    }
}
