//! Persistent work-stealing worker pool — the parallel runtime under the
//! sharded SteM fan-outs.
//!
//! PR 4 parallelized [`crate::sharded::ShardedStem`] envelopes with
//! [`std::thread::scope`], which spawns and joins OS threads *per
//! envelope* — tens of microseconds of syscall cost on every large batch,
//! and no thread reuse across the thousands of envelopes one query
//! routes. This module replaces that with a process-wide pool of
//! long-lived workers:
//!
//! * **Per-worker injector queues** — every worker owns a deque; tasks
//!   are submitted with an *affinity* (the shard index), so the same
//!   shard's envelopes keep landing on the same worker. That is a NUMA
//!   stand-in: the worker that last touched a shard's dictionary re-runs
//!   it with its caches warm.
//! * **Work stealing** — an idle worker scans the other queues (its own
//!   first, then round-robin) and steals whatever is waiting, so a skewed
//!   fan-out cannot strand idle workers behind one hot queue.
//! * **Caller participation** — the thread that opened a scope helps
//!   drain the queues while waiting, so a `workers = n` scope really has
//!   `n` active execution streams without over-subscribing the host.
//! * **Scoped, borrow-friendly tasks** — [`WorkerPool::scope`] mirrors
//!   `std::thread::scope`: tasks may borrow from the caller's stack
//!   (`&mut Stem` shard slices), and the scope does not return until
//!   every task it spawned has finished — even when a task or the scope
//!   body panics (the panic is re-raised after the barrier, never lost).
//!
//! The pool is deliberately *schedule-only*: which worker runs which
//! task, and in what order, is nondeterministic, but every caller writes
//! results into per-task output slots and merges them serially in a fixed
//! order — so results are bit-identical at every worker count, which
//! `tests/prop_batch_equivalence.rs` enforces across `STEMS_WORKERS`
//! {1, 2, 4, 8}.
//!
//! Workers are spawned lazily up to the largest budget any scope has
//! requested (capped at [`MAX_POOL_WORKERS`]) and parked on a condvar
//! when idle; the pool lives for the process (workers die with it).

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Lock a pool mutex, shrugging off poison. Every task runs under
/// `catch_unwind`, so a panic can only unwind through these locks from
/// pool-internal code holding them across plain queue/counter updates —
/// the protected data is still structurally valid, and the pool is
/// process-global: propagating poison would take down every later query
/// sharing the runtime for no safety gain.
fn lock_ok<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Hard cap on pool size. Scopes asking for more workers than this are
/// clamped; the cap only bounds the queue array, not correctness (tests
/// force worker counts above the host's core count and stay
/// bit-identical).
pub const MAX_POOL_WORKERS: usize = 32;

/// Default minimum routed rows per envelope before the shard fan-out
/// dispatches to the pool; see [`default_parallel_min_rows`]. PR 4's
/// scoped-thread fan-out needed 512 rows to amortize per-envelope thread
/// spawn/join (~tens of µs per thread); pool dispatch is a queue push +
/// condvar wake (measured ~1–2 µs per task on the bench host), so the
/// crossover where parallel dispatch beats the serial loop drops to
/// roughly half an envelope of dictionary work — 256 rows. `bench_workers`
/// (BENCH_6.json) sweeps worker counts at this threshold.
pub const DEFAULT_PARALLEL_MIN_ROWS: usize = 256;

/// Worker threads the host can actually run in parallel (affinity/cgroup
/// aware), cached once per process.
pub fn host_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The default worker budget for sharded fan-outs: [`host_parallelism`]
/// unless overridden by the `STEMS_WORKERS` environment variable (the CI
/// matrix crosses it with batch size and shard count so worker-count
/// invariance is enforced on every push; tests force counts
/// programmatically through `ExecConfig::workers` / `StemOptions::workers`
/// instead). Like `STEMS_NUM_SHARDS`, a set-but-invalid value errors — a
/// misconfigured CI leg or server deployment must fail loudly rather than
/// silently re-test the default parallelism.
pub fn try_default_workers() -> Result<usize, crate::engine::ConfigError> {
    crate::engine::env_knob("STEMS_WORKERS", host_parallelism())
}

/// Panicking shim over [`try_default_workers`] for one-shot binaries.
pub fn default_workers() -> usize {
    try_default_workers().unwrap_or_else(|e| panic!("{e}"))
}

/// The default parallel-dispatch threshold:
/// [`DEFAULT_PARALLEL_MIN_ROWS`] unless overridden by the
/// `STEMS_PARALLEL_MIN_ROWS` environment variable (validated like the
/// other engine knobs: set-but-invalid errors).
pub fn try_default_parallel_min_rows() -> Result<usize, crate::engine::ConfigError> {
    crate::engine::env_knob("STEMS_PARALLEL_MIN_ROWS", DEFAULT_PARALLEL_MIN_ROWS)
}

/// Panicking shim over [`try_default_parallel_min_rows`].
pub fn default_parallel_min_rows() -> usize {
    try_default_parallel_min_rows().unwrap_or_else(|e| panic!("{e}"))
}

/// A queued task. Tasks are created with a scope-bound lifetime and
/// transmuted to `'static` for storage; [`PoolScope`]'s completion
/// barrier is what makes that sound (see `Scope::spawn` safety note).
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// One injector queue per worker slot. Affinity picks the home queue;
    /// stealing scans the rest.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Guards the "queues look empty → park" decision against submissions
    /// racing with it (a submitter notifies under this lock, so a worker
    /// holding it cannot miss the wake-up between its scan and its wait).
    gate: Mutex<()>,
    signal: Condvar,
}

impl Shared {
    /// Pop a task: own queue first, then round-robin steal.
    fn find_job(&self, home: usize) -> Option<Job> {
        let n = self.queues.len();
        for i in 0..n {
            let q = (home + i) % n;
            if let Some(job) = lock_ok(&self.queues[q]).pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn looks_empty(&self) -> bool {
        self.queues.iter().all(|q| lock_ok(q).is_empty())
    }
}

/// The process-wide worker pool. Obtain it with [`WorkerPool::global`];
/// per-query worker budgets are passed per scope, so one pool serves
/// every SteM of every concurrent query (the multi-query server the
/// ROADMAP points at shares this runtime).
pub struct WorkerPool {
    shared: Arc<Shared>,
    spawned: Mutex<usize>,
}

impl WorkerPool {
    /// The process-global pool (created on first use, workers spawned
    /// lazily as scopes request them).
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::new)
    }

    fn new() -> WorkerPool {
        WorkerPool {
            shared: Arc::new(Shared {
                queues: (0..MAX_POOL_WORKERS)
                    .map(|_| Mutex::new(VecDeque::new()))
                    .collect(),
                gate: Mutex::new(()),
                signal: Condvar::new(),
            }),
            spawned: Mutex::new(0),
        }
    }

    /// How many workers have been spawned so far (diagnostics).
    pub fn workers_spawned(&self) -> usize {
        *lock_ok(&self.spawned)
    }

    /// Make sure at least `n` (≤ [`MAX_POOL_WORKERS`]) workers exist.
    fn ensure_workers(&self, n: usize) {
        let n = n.min(MAX_POOL_WORKERS);
        let mut spawned = lock_ok(&self.spawned);
        while *spawned < n {
            let id = *spawned;
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("stems-worker-{id}"))
                .spawn(move || worker_loop(id, shared))
                .expect("spawn pool worker");
            *spawned += 1;
        }
    }

    fn push_job(&self, queue: usize, job: Job) {
        lock_ok(&self.shared.queues[queue]).push_back(job);
        // Notify under the gate so a worker that just scanned empty
        // queues and is about to park cannot miss this submission.
        let _gate = lock_ok(&self.shared.gate);
        self.shared.signal.notify_one();
    }

    /// Run `f` with a scope that can spawn borrow-carrying tasks onto the
    /// pool. `workers` is the parallelism budget: tasks are distributed
    /// over `min(workers, MAX_POOL_WORKERS)` home queues (affinity `a`
    /// maps to queue `a % workers`), and at least `workers` pool threads
    /// exist by the time tasks run. Does not return until every spawned
    /// task completed; a panicking task panics the caller here, after the
    /// barrier.
    pub fn scope<'env, R>(&self, workers: usize, f: impl FnOnce(&PoolScope<'_, 'env>) -> R) -> R {
        let workers = workers.clamp(1, MAX_POOL_WORKERS);
        self.ensure_workers(workers);
        let scope = PoolScope {
            pool: self,
            workers,
            state: Arc::new(ScopeState::default()),
            _env: PhantomData,
        };
        let result = {
            // The guard waits for task completion even if `f` unwinds
            // mid-spawn — queued tasks borrow `'env` data that must
            // outlive them, so the barrier is unconditional.
            let _barrier = ScopeBarrier(&scope);
            f(&scope)
        };
        scope.check_panic();
        result
    }
}

#[derive(Default)]
struct ScopeState {
    sync: Mutex<ScopeSync>,
    cv: Condvar,
}

#[derive(Default)]
struct ScopeSync {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`].
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    workers: usize,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> PoolScope<'pool, 'env> {
    /// Queue `task` on the home queue of `affinity % workers`. The task
    /// may borrow anything outliving the scope (`'env`); it runs on a
    /// pool worker (or on the caller while it waits) before `scope`
    /// returns.
    pub fn spawn(&self, affinity: usize, task: impl FnOnce() + Send + 'env) {
        lock_ok(&self.state.sync).remaining += 1;
        let state = Arc::clone(&self.state);
        let wrapped = move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            let mut sync = lock_ok(&state.sync);
            if let Err(payload) = result {
                sync.panic.get_or_insert(payload);
            }
            sync.remaining -= 1;
            if sync.remaining == 0 {
                state.cv.notify_all();
            }
        };
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(wrapped);
        // SAFETY: the job only borrows data outliving 'env, and the scope
        // barrier (`ScopeBarrier`, run even on unwind) blocks until
        // `remaining == 0` — i.e. until this job has finished running —
        // before the 'env stack frame can be left. Erasing the lifetime
        // for queue storage is therefore sound, exactly the
        // `std::thread::scope` argument.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.push_job(affinity % self.workers, job);
    }

    /// Block until every spawned task finished, executing queued pool
    /// tasks while waiting (caller participation).
    fn wait(&self) {
        loop {
            if lock_ok(&self.state.sync).remaining == 0 {
                return;
            }
            // Help: run any queued task (ours or a sibling scope's —
            // progress either way; tasks never block on other tasks).
            if let Some(job) = self.pool.shared.find_job(0) {
                job();
                continue;
            }
            let sync = lock_ok(&self.state.sync);
            if sync.remaining != 0 {
                // Every outstanding task is in flight on a worker; its
                // completion hook notifies this condvar.
                drop(
                    self.state
                        .cv
                        .wait(sync)
                        .unwrap_or_else(PoisonError::into_inner),
                );
            }
        }
    }

    fn check_panic(&self) {
        let payload = lock_ok(&self.state.sync).panic.take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Drop guard running the completion barrier even when the scope body
/// unwinds.
struct ScopeBarrier<'a, 'pool, 'env>(&'a PoolScope<'pool, 'env>);

impl Drop for ScopeBarrier<'_, '_, '_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

fn worker_loop(id: usize, shared: Arc<Shared>) {
    loop {
        if let Some(job) = shared.find_job(id) {
            // Task panics are captured by the scope wrapper; a raw panic
            // here would mean a bug in the pool itself.
            job();
            continue;
        }
        let gate = lock_ok(&shared.gate);
        if shared.looks_empty() {
            // Submissions notify under `gate`, so nothing pushed between
            // our scan and this wait can be missed.
            drop(
                shared
                    .signal
                    .wait(gate)
                    .unwrap_or_else(PoisonError::into_inner),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_every_task_and_blocks_until_done() {
        let pool = WorkerPool::global();
        let mut outs = vec![0usize; 100];
        pool.scope(4, |scope| {
            for (i, out) in outs.iter_mut().enumerate() {
                scope.spawn(i, move || *out = i + 1);
            }
        });
        // The scope returned ⇒ every borrow ended and every slot is set.
        assert!(outs.iter().enumerate().all(|(i, v)| *v == i + 1));
    }

    #[test]
    fn tasks_can_borrow_disjoint_mutable_slices() {
        let pool = WorkerPool::global();
        let mut lanes: Vec<Vec<u64>> = (0..8).map(|i| vec![i as u64; 64]).collect();
        pool.scope(8, |scope| {
            for (i, lane) in lanes.iter_mut().enumerate() {
                scope.spawn(i, move || {
                    for v in lane.iter_mut() {
                        *v *= 2;
                    }
                });
            }
        });
        for (i, lane) in lanes.iter().enumerate() {
            assert!(lane.iter().all(|v| *v == 2 * i as u64), "lane {i}");
        }
    }

    #[test]
    fn worker_budget_one_still_completes() {
        let pool = WorkerPool::global();
        let counter = AtomicUsize::new(0);
        pool.scope(1, |scope| {
            for _ in 0..32 {
                scope.spawn(0, || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn nested_sequential_scopes_reuse_workers() {
        let pool = WorkerPool::global();
        let before = pool.workers_spawned();
        for round in 0..10usize {
            let mut outs = [0usize; 16];
            pool.scope(4, |scope| {
                for (i, out) in outs.iter_mut().enumerate() {
                    scope.spawn(i, move || *out = round);
                }
            });
            assert!(outs.iter().all(|v| *v == round));
        }
        // Persistent runtime: repeated scopes never spawn beyond the
        // requested budget (no per-envelope thread churn).
        assert!(pool.workers_spawned() >= before.max(4));
        assert!(pool.workers_spawned() <= MAX_POOL_WORKERS);
    }

    #[test]
    fn task_panic_propagates_after_barrier() {
        let pool = WorkerPool::global();
        let flag = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(2, |scope| {
                scope.spawn(0, || panic!("task boom"));
                scope.spawn(1, || {
                    flag.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err(), "task panic must reach the scope caller");
        // The barrier ran the healthy sibling to completion first.
        assert_eq!(flag.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn env_default_workers_validation() {
        // Not present: falls back to host parallelism (≥ 1).
        assert!(default_workers() >= 1);
        assert!(default_parallel_min_rows() >= 1);
    }
}
