//! Persistent work-stealing worker pool — the parallel runtime under the
//! sharded SteM fan-outs.
//!
//! PR 4 parallelized [`crate::sharded::ShardedStem`] envelopes with
//! [`std::thread::scope`], which spawns and joins OS threads *per
//! envelope* — tens of microseconds of syscall cost on every large batch,
//! and no thread reuse across the thousands of envelopes one query
//! routes. This module replaces that with a process-wide pool of
//! long-lived workers:
//!
//! * **Per-worker injector queues** — every worker owns a deque; tasks
//!   are submitted with an *affinity* (the shard index), so the same
//!   shard's envelopes keep landing on the same worker. That is a NUMA
//!   stand-in: the worker that last touched a shard's dictionary re-runs
//!   it with its caches warm.
//! * **Work stealing** — an idle worker scans the other queues (its own
//!   first, then round-robin) and steals whatever is waiting, so a skewed
//!   fan-out cannot strand idle workers behind one hot queue.
//! * **Caller participation** — the thread that opened a scope helps
//!   drain the queues while waiting, so a `workers = n` scope really has
//!   `n` active execution streams without over-subscribing the host.
//! * **Scoped, borrow-friendly tasks** — [`WorkerPool::scope`] mirrors
//!   `std::thread::scope`: tasks may borrow from the caller's stack
//!   (`&mut Stem` shard slices), and the scope does not return until
//!   every task it spawned has finished — even when a task or the scope
//!   body panics (the panic is re-raised after the barrier, never lost).
//!
//! The pool is deliberately *schedule-only*: which worker runs which
//! task, and in what order, is nondeterministic, but every caller writes
//! results into per-task output slots and merges them serially in a fixed
//! order — so results are bit-identical at every worker count, which
//! `tests/prop_batch_equivalence.rs` enforces across `STEMS_WORKERS`
//! {1, 2, 4, 8}.
//!
//! Workers are spawned lazily up to the largest budget any scope has
//! requested (capped at [`MAX_POOL_WORKERS`]) and parked on a condvar
//! when idle; the pool lives for the process (workers die with it).

use crate::sync::{lock_ok, wait_ok, Arc, Condvar, Mutex, OnceLock};
use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Hard cap on pool size. Scopes asking for more workers than this are
/// clamped; the cap only bounds the queue array, not correctness (tests
/// force worker counts above the host's core count and stay
/// bit-identical).
pub const MAX_POOL_WORKERS: usize = 32;

/// Default minimum routed rows per envelope before the shard fan-out
/// dispatches to the pool; see [`default_parallel_min_rows`]. PR 4's
/// scoped-thread fan-out needed 512 rows to amortize per-envelope thread
/// spawn/join (~tens of µs per thread); pool dispatch is a queue push +
/// condvar wake (measured ~1–2 µs per task on the bench host), so the
/// crossover where parallel dispatch beats the serial loop drops to
/// roughly half an envelope of dictionary work — 256 rows. `bench_workers`
/// (BENCH_6.json) sweeps worker counts at this threshold.
pub const DEFAULT_PARALLEL_MIN_ROWS: usize = 256;

/// Worker threads the host can actually run in parallel (affinity/cgroup
/// aware), cached once per process.
pub fn host_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The default worker budget for sharded fan-outs: [`host_parallelism`]
/// unless overridden by the `STEMS_WORKERS` environment variable (the CI
/// matrix crosses it with batch size and shard count so worker-count
/// invariance is enforced on every push; tests force counts
/// programmatically through `ExecConfig::workers` / `StemOptions::workers`
/// instead). Like `STEMS_NUM_SHARDS`, a set-but-invalid value errors — a
/// misconfigured CI leg or server deployment must fail loudly rather than
/// silently re-test the default parallelism.
pub fn try_default_workers() -> Result<usize, crate::engine::ConfigError> {
    crate::engine::env_knob("STEMS_WORKERS", host_parallelism())
}

/// Panicking shim over [`try_default_workers`] for one-shot binaries.
pub fn default_workers() -> usize {
    try_default_workers().unwrap_or_else(|e| panic!("{e}"))
}

/// The default parallel-dispatch threshold:
/// [`DEFAULT_PARALLEL_MIN_ROWS`] unless overridden by the
/// `STEMS_PARALLEL_MIN_ROWS` environment variable (validated like the
/// other engine knobs: set-but-invalid errors).
pub fn try_default_parallel_min_rows() -> Result<usize, crate::engine::ConfigError> {
    crate::engine::env_knob("STEMS_PARALLEL_MIN_ROWS", DEFAULT_PARALLEL_MIN_ROWS)
}

/// Panicking shim over [`try_default_parallel_min_rows`].
pub fn default_parallel_min_rows() -> usize {
    try_default_parallel_min_rows().unwrap_or_else(|e| panic!("{e}"))
}

/// A queued task. Tasks are created with a scope-bound lifetime and
/// transmuted to `'static` for storage; [`PoolScope`]'s completion
/// barrier is what makes that sound (see `Scope::spawn` safety note).
///
/// `nested` marks a *composite* job: one that may itself open pool
/// scopes or take SteM cell locks (the query server's executor-stepping
/// jobs). Leaf jobs (`nested = false` — the sharded build/probe lanes)
/// never block and never lock cells. The distinction exists for the
/// help path: a thread that is *inside* a job and helping while it
/// waits on a nested scope may already hold a `StemCell` lock, so
/// running a sibling composite job there could re-enter the same cell's
/// mutex on the same thread — a self-deadlock `std::sync::Mutex` does
/// not detect. Helping threads therefore only ever pick up leaf jobs
/// ([`Shared::find_job`] with `include_nested = false`); top-level
/// workers, which hold no locks, run anything.
struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    nested: bool,
}

/// The pool's sleep/wake protocol, factored out so `tests/model.rs` can
/// drive the exact shipped type through the model checker.
///
/// The invariant it exists to uphold: a sleeper that observed "nothing
/// to do" cannot miss a wake-up for work submitted after its scan. The
/// scan result lives *outside* this gate (the queue mutexes), which is
/// precisely the lost-wakeup shape — so wakers notify **while holding
/// the gate**. Either the waker's notify happens before the sleeper
/// locks the gate (then the sleeper's scan, which happens after, sees
/// the submitted work and skips the wait), or after the sleeper is
/// already parked in `wait` (then the notify lands). The model checker
/// proves the window is closed within the preemption bound, and the
/// seeded mutant that notifies without the gate deadlocks.
pub struct SleepGate {
    gate: Mutex<()>,
    signal: Condvar,
}

impl SleepGate {
    pub fn new() -> SleepGate {
        SleepGate {
            gate: Mutex::new(()),
            signal: Condvar::new(),
        }
    }

    /// Wake one sleeper. Notifies under the gate — see the type docs.
    pub fn wake_one(&self) {
        let _gate = lock_ok(&self.gate);
        self.signal.notify_one();
    }

    /// Park the caller iff `idle()` still holds under the gate. `idle`
    /// must read its state through its own synchronization (the queue
    /// mutexes); the gate only orders the scan against wakers.
    pub fn sleep_if(&self, idle: impl FnOnce() -> bool) {
        let gate = lock_ok(&self.gate);
        if idle() {
            drop(wait_ok(&self.signal, gate));
        }
    }
}

impl Default for SleepGate {
    fn default() -> SleepGate {
        SleepGate::new()
    }
}

struct Shared {
    /// One injector queue per worker slot. Affinity picks the home queue;
    /// stealing scans the rest.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep/wake for idle workers; see [`SleepGate`].
    gate: SleepGate,
}

impl Shared {
    /// Pop a task: own queue first, then round-robin steal. With
    /// `include_nested` off, composite jobs are skipped in place (never
    /// reordered past each other) — the helping-thread restriction the
    /// [`Job`] docs argue.
    fn find_job(&self, home: usize, include_nested: bool) -> Option<Job> {
        let n = self.queues.len();
        for i in 0..n {
            let q = (home + i) % n;
            let mut queue = lock_ok(&self.queues[q]);
            let pos = queue.iter().position(|j| include_nested || !j.nested);
            if let Some(pos) = pos {
                return queue.remove(pos);
            }
        }
        None
    }

    fn looks_empty(&self) -> bool {
        self.queues.iter().all(|q| lock_ok(q).is_empty())
    }
}

/// The process-wide worker pool. Obtain it with [`WorkerPool::global`];
/// per-query worker budgets are passed per scope, so one pool serves
/// every SteM of every concurrent query (the multi-query server the
/// ROADMAP points at shares this runtime).
pub struct WorkerPool {
    shared: Arc<Shared>,
    spawned: Mutex<usize>,
}

impl WorkerPool {
    /// The process-global pool (created on first use, workers spawned
    /// lazily as scopes request them).
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::new)
    }

    fn new() -> WorkerPool {
        WorkerPool {
            shared: Arc::new(Shared {
                queues: (0..MAX_POOL_WORKERS)
                    .map(|_| Mutex::new(VecDeque::new()))
                    .collect(),
                gate: SleepGate::new(),
            }),
            spawned: Mutex::new(0),
        }
    }

    /// How many workers have been spawned so far (diagnostics).
    pub fn workers_spawned(&self) -> usize {
        *lock_ok(&self.spawned)
    }

    /// Make sure at least `n` (≤ [`MAX_POOL_WORKERS`]) workers exist.
    fn ensure_workers(&self, n: usize) {
        let n = n.min(MAX_POOL_WORKERS);
        let mut spawned = lock_ok(&self.spawned);
        while *spawned < n {
            let id = *spawned;
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("stems-worker-{id}"))
                .spawn(move || worker_loop(id, shared))
                .expect("spawn pool worker");
            *spawned += 1;
        }
    }

    fn push_job(&self, queue: usize, job: Job) {
        lock_ok(&self.shared.queues[queue]).push_back(job);
        // Gate-held notify: a worker that just scanned empty queues and
        // is about to park cannot miss this submission.
        self.shared.gate.wake_one();
    }

    /// Run `f` with a scope that can spawn borrow-carrying tasks onto the
    /// pool. `workers` is the parallelism budget: tasks are distributed
    /// over `min(workers, MAX_POOL_WORKERS)` home queues (affinity `a`
    /// maps to queue `a % workers`), and at least `workers` pool threads
    /// exist by the time tasks run. Does not return until every spawned
    /// task completed; a panicking task panics the caller here, after the
    /// barrier.
    pub fn scope<'env, R>(&self, workers: usize, f: impl FnOnce(&PoolScope<'_, 'env>) -> R) -> R {
        let workers = workers.clamp(1, MAX_POOL_WORKERS);
        self.ensure_workers(workers);
        let scope = PoolScope {
            pool: self,
            workers,
            latch: Arc::new(CompletionLatch::new()),
            _env: PhantomData,
        };
        let result = {
            // The guard waits for task completion even if `f` unwinds
            // mid-spawn — queued tasks borrow `'env` data that must
            // outlive them, so the barrier is unconditional.
            let _barrier = ScopeBarrier(&scope);
            f(&scope)
        };
        scope.check_panic();
        result
    }
}

/// The scope completion barrier, factored out so `tests/model.rs` can
/// drive the exact shipped type through the model checker.
///
/// The protocol: [`register`](CompletionLatch::register) before a task
/// is queued, [`complete`](CompletionLatch::complete) exactly once when
/// it finishes (recording the first panic payload *and* decrementing the
/// count in one critical section, so a waiter that observes zero also
/// observes every payload), [`wait`](CompletionLatch::wait) blocks —
/// helping with other work while it can — until the count is zero.
///
/// The invariant [`WorkerPool::scope`]'s `unsafe` transmute rests on:
/// **`wait` returns only after every registered task has completed**.
/// The count is incremented before a job is ever visible to a worker and
/// decremented only after the task body returned (or unwound), so
/// `remaining == 0` under the latch mutex means no task body can run
/// again. The model checker explores every bounded interleaving of
/// register/complete/wait; the seeded mutants (a `complete` that skips
/// `notify_all`, and one that decrements before the task's effects)
/// deadlock or fail an assertion under the checker.
#[derive(Default)]
pub struct CompletionLatch {
    sync: Mutex<LatchSync>,
    cv: Condvar,
}

#[derive(Default)]
struct LatchSync {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl CompletionLatch {
    pub fn new() -> CompletionLatch {
        CompletionLatch::default()
    }

    /// Account one more outstanding task. Must happen before the task
    /// can possibly run.
    pub fn register(&self) {
        lock_ok(&self.sync).remaining += 1;
    }

    /// Mark one task done, recording the first panic payload. Payload
    /// store and decrement share one critical section: a waiter that
    /// sees the count hit zero is guaranteed to also see the payload.
    pub fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut sync = lock_ok(&self.sync);
        if let Some(payload) = panic {
            sync.panic.get_or_insert(payload);
        }
        sync.remaining -= 1;
        if sync.remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// Block until every registered task completed. While the count is
    /// nonzero, `help` is invited to make progress (run a queued job);
    /// it returns whether it did. Only when it cannot does the caller
    /// park — re-checking the count under the latch mutex first, so a
    /// completion between the check and the wait cannot be lost.
    pub fn wait(&self, mut help: impl FnMut() -> bool) {
        loop {
            if lock_ok(&self.sync).remaining == 0 {
                return;
            }
            if help() {
                continue;
            }
            let sync = lock_ok(&self.sync);
            if sync.remaining != 0 {
                // Every outstanding task is in flight on a worker; its
                // `complete` notifies this condvar.
                drop(wait_ok(&self.cv, sync));
            }
        }
    }

    /// Take the first recorded panic payload, if any. Meaningful after
    /// [`wait`](CompletionLatch::wait) returned.
    pub fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        lock_ok(&self.sync).panic.take()
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`].
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    workers: usize,
    latch: Arc<CompletionLatch>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> PoolScope<'pool, 'env> {
    /// Queue `task` on the home queue of `affinity % workers`. The task
    /// may borrow anything outliving the scope (`'env`); it runs on a
    /// pool worker (or on the caller while it waits) before `scope`
    /// returns.
    pub fn spawn(&self, affinity: usize, task: impl FnOnce() + Send + 'env) {
        self.spawn_inner(affinity, task, false);
    }

    /// [`PoolScope::spawn`] for *composite* tasks: ones that may open
    /// nested pool scopes or take SteM cell locks (the query server's
    /// executor-stepping jobs). Composite jobs run only on top-level
    /// pool workers or the scope caller — never on a thread that is
    /// already inside another job — so a job holding a shared cell's
    /// mutex can never re-enter it on its own thread (see [`Job`]).
    pub fn spawn_nested(&self, affinity: usize, task: impl FnOnce() + Send + 'env) {
        self.spawn_inner(affinity, task, true);
    }

    fn spawn_inner(&self, affinity: usize, task: impl FnOnce() + Send + 'env, nested: bool) {
        self.latch.register();
        let latch = Arc::clone(&self.latch);
        let wrapped = move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            latch.complete(result.err());
        };
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(wrapped);
        // SAFETY: erasing 'env to 'static for queue storage is sound
        // because no erased job can run — or even be dropped by the
        // queues, which live on past the scope — after 'env ends. The
        // argument, step by step:
        //
        // 1. `task` only captures borrows outliving 'env (enforced by
        //    this signature), so the job is safe to run at any point
        //    *within* 'env; the hazard is exactly a run or drop after
        //    the borrowed frames are popped.
        // 2. `latch.register()` happens-before the job becomes visible
        //    to any worker (`push_job` below), so at every moment a job
        //    exists in a queue, the latch's `remaining` accounts for it.
        // 3. The job's only exit paths — normal return or unwind out of
        //    `task` — funnel through `catch_unwind` into
        //    `latch.complete(..)`, which decrements `remaining` strictly
        //    after the task body finished. Workers run jobs to
        //    completion and never drop one unexecuted; queues only pop.
        // 4. `ScopeBarrier` is constructed before the scope closure can
        //    spawn, and its `Drop` runs `latch.wait(..)` on every exit
        //    path from `WorkerPool::scope` — normal return *and* unwind
        //    of the scope body (a `Drop` guard, not ordinary code after
        //    the call, precisely so that panics cannot skip it).
        // 5. `CompletionLatch::wait` returns only upon observing
        //    `remaining == 0` under the latch mutex, which by (2)+(3)
        //    means every spawned job has fully finished and no queue
        //    holds one. That protocol — including the wait/notify
        //    handshake and its panic paths — is model-checked in
        //    `tests/model.rs` (`latch_barrier_is_sound_under_every_
        //    schedule`), and the seeded mutants that would break this
        //    step (skipped notify, early decrement) are caught there.
        //
        // Hence every job's run and destruction are sequenced before
        // `scope` returns or unwinds past the barrier — the
        // `std::thread::scope` argument, with the latch in the role of
        // the thread-join barrier.
        let run = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool
            .push_job(affinity % self.workers, Job { run, nested });
    }

    /// Block until every spawned task finished, executing queued *leaf*
    /// pool tasks while waiting (caller participation). Help is
    /// restricted to leaf jobs because this wait may be reached from
    /// inside a composite job that already holds a SteM cell lock —
    /// running a sibling composite job on the same stack could re-lock
    /// that cell and self-deadlock (see [`Job`]). Leaf jobs never block
    /// and never lock cells, so helping with them is always progress;
    /// composite jobs are drained by top-level workers, which
    /// [`WorkerPool::scope`] guarantees exist for the requested budget.
    fn wait(&self) {
        self.latch
            .wait(|| match self.pool.shared.find_job(0, false) {
                Some(job) => {
                    (job.run)();
                    true
                }
                None => false,
            });
    }

    fn check_panic(&self) {
        if let Some(payload) = self.latch.take_panic() {
            resume_unwind(payload);
        }
    }
}

/// Drop guard running the completion barrier even when the scope body
/// unwinds.
struct ScopeBarrier<'a, 'pool, 'env>(&'a PoolScope<'pool, 'env>);

impl Drop for ScopeBarrier<'_, '_, '_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

fn worker_loop(id: usize, shared: Arc<Shared>) {
    loop {
        // Top-level workers hold no locks, so they run any job —
        // composite stepping jobs included.
        if let Some(job) = shared.find_job(id, true) {
            // Task panics are captured by the scope wrapper; a raw panic
            // here would mean a bug in the pool itself.
            (job.run)();
            continue;
        }
        // Submissions notify under the gate, so nothing pushed between
        // our scan and the wait can be missed.
        shared.gate.sleep_if(|| shared.looks_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_every_task_and_blocks_until_done() {
        let pool = WorkerPool::global();
        let mut outs = vec![0usize; 100];
        pool.scope(4, |scope| {
            for (i, out) in outs.iter_mut().enumerate() {
                scope.spawn(i, move || *out = i + 1);
            }
        });
        // The scope returned ⇒ every borrow ended and every slot is set.
        assert!(outs.iter().enumerate().all(|(i, v)| *v == i + 1));
    }

    #[test]
    fn tasks_can_borrow_disjoint_mutable_slices() {
        let pool = WorkerPool::global();
        let mut lanes: Vec<Vec<u64>> = (0..8).map(|i| vec![i as u64; 64]).collect();
        pool.scope(8, |scope| {
            for (i, lane) in lanes.iter_mut().enumerate() {
                scope.spawn(i, move || {
                    for v in lane.iter_mut() {
                        *v *= 2;
                    }
                });
            }
        });
        for (i, lane) in lanes.iter().enumerate() {
            assert!(lane.iter().all(|v| *v == 2 * i as u64), "lane {i}");
        }
    }

    #[test]
    fn worker_budget_one_still_completes() {
        let pool = WorkerPool::global();
        let counter = AtomicUsize::new(0);
        pool.scope(1, |scope| {
            for _ in 0..32 {
                scope.spawn(0, || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn nested_sequential_scopes_reuse_workers() {
        let pool = WorkerPool::global();
        let before = pool.workers_spawned();
        for round in 0..10usize {
            let mut outs = [0usize; 16];
            pool.scope(4, |scope| {
                for (i, out) in outs.iter_mut().enumerate() {
                    scope.spawn(i, move || *out = round);
                }
            });
            assert!(outs.iter().all(|v| *v == round));
        }
        // Persistent runtime: repeated scopes never spawn beyond the
        // requested budget (no per-envelope thread churn).
        assert!(pool.workers_spawned() >= before.max(4));
        assert!(pool.workers_spawned() <= MAX_POOL_WORKERS);
    }

    #[test]
    fn task_panic_propagates_after_barrier() {
        let pool = WorkerPool::global();
        let flag = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(2, |scope| {
                scope.spawn(0, || panic!("task boom"));
                scope.spawn(1, || {
                    flag.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err(), "task panic must reach the scope caller");
        // The barrier ran the healthy sibling to completion first.
        assert_eq!(flag.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn env_default_workers_validation() {
        // Not present: falls back to host parallelism (≥ 1).
        assert!(default_workers() >= 1);
        assert!(default_parallel_min_rows() >= 1);
    }
}
