//! Access Modules: scans and asynchronous indexes (paper §2.1.3).
//!
//! "An Access Module encapsulates a single access method over a data
//! source." Scans accept only the initial *seed* and then push all rows;
//! indexes accept *probe* tuples that bind their lookup columns, answer
//! **asynchronously**, and finish each answer with an EOT tuple so SteMs
//! can tell when a probe's matches are complete.
//!
//! Both AM kinds here are simulation-backed: the rows live in the catalog
//! and are served with the latencies/rates of their [`ScanSpec`] /
//! [`IndexSpec`]. The *protocol* (seeds, probes, bounce-backs, EOTs,
//! in-flight coalescing) is exactly the paper's.

use crate::stem::{make_eot_row, make_scan_eot_row};
use crate::sync::Arc;
use stems_catalog::{IndexSpec, QuerySpec, ScanSpec, SourceId};
use stems_sim::{burst_gap, secs_f, StallWindows, Time};
use stems_storage::fxhash::{FxHashMap, FxHashSet};
use stems_storage::index_key;
use stems_types::{Row, TableIdx, Tuple, TupleBatch, Value};

/// A scan access method serving every instance of one source.
///
/// Delivers rows at `rate_tps`, `chunk` rows per emission event ([`ScanSpec`]
/// models bursty/remote arrival; a chunk of `n` rows lands after `n`
/// per-row gaps, so the average rate is chunk-independent), shifted around
/// stall windows. After the last row it emits the full-relation EOT tuple
/// ("in the case of a scan AM, the predicate is simply true", §2.1.3) —
/// always strictly after the final data chunk, exactly once per instance.
#[derive(Debug)]
pub struct ScanAm {
    pub source: SourceId,
    pub instances: Vec<TableIdx>,
    rows: Vec<Arc<Row>>,
    arity: usize,
    gap_us: u64,
    start_delay_us: u64,
    stalls: StallWindows,
    /// Rows delivered per emission event (the spec's `chunk`, clamped by
    /// the engine to its routing batch size).
    chunk: usize,
    /// Next row to emit.
    pos: usize,
    /// Whether the EOT has been emitted.
    pub finished: bool,
}

impl ScanAm {
    pub fn new(
        source: SourceId,
        instances: Vec<TableIdx>,
        rows: Vec<Arc<Row>>,
        arity: usize,
        spec: &ScanSpec,
    ) -> ScanAm {
        ScanAm {
            source,
            instances,
            rows,
            arity,
            gap_us: secs_f(1.0 / spec.rate_tps).max(1),
            start_delay_us: spec.start_delay_us,
            stalls: StallWindows::new(spec.stall_windows.clone()),
            chunk: spec.chunk.max(1),
            pos: 0,
            finished: false,
        }
    }

    /// Clamp the emission chunk to the engine's routing batch size: the
    /// eddy routes at most `batch_size` tuples per envelope, so a larger
    /// burst would only be split again at ingestion.
    pub fn clamp_chunk(&mut self, cap: usize) {
        self.chunk = self.chunk.min(cap.max(1)).max(1);
    }

    /// Rows delivered per emission event.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Time of the first emission (when the first chunk has accumulated).
    pub fn first_emit_time(&self) -> Time {
        let first = self.chunk.min(self.rows.len()).max(1);
        self.stalls
            .next_available(self.start_delay_us + burst_gap(self.gap_us, first))
    }

    /// Emit the next batch: up to `chunk` rows as singletons per instance,
    /// or the final EOTs once the data is exhausted. Returns the emitted
    /// batch and, if more remain, the time of the next emission.
    pub fn emit_next(&mut self, now: Time) -> (TupleBatch, Option<Time>) {
        if self.finished {
            return (TupleBatch::new(), None);
        }
        let mut out = TupleBatch::with_capacity(self.chunk * self.instances.len());
        if self.pos < self.rows.len() {
            let take = self.chunk.min(self.rows.len() - self.pos);
            for row in &self.rows[self.pos..self.pos + take] {
                for t in &self.instances {
                    out.push(Tuple::singleton(*t, row.clone()));
                }
            }
            self.pos += take;
            let remaining = self.rows.len() - self.pos;
            // Next event: the next chunk once it has accumulated, or the
            // EOT one per-row gap after the final data chunk (matching
            // row-at-a-time cadence, where the EOT follows the last row).
            let next_gap = if remaining > 0 {
                burst_gap(self.gap_us, self.chunk.min(remaining))
            } else {
                self.gap_us
            };
            (out, Some(self.stalls.next_available(now + next_gap)))
        } else {
            for t in &self.instances {
                out.push(Tuple::singleton(*t, make_scan_eot_row(self.arity)));
            }
            self.finished = true;
            (out, None)
        }
    }

    /// Fraction of the table delivered so far.
    pub fn progress(&self) -> f64 {
        if self.rows.is_empty() {
            1.0
        } else {
            self.pos as f64 / self.rows.len() as f64
        }
    }
}

/// What an index AM does with one probe.
#[derive(Debug, PartialEq)]
pub enum IndexProbeOutcome {
    /// A lookup was scheduled: service starts at `start` and the response
    /// lands at `complete`.
    Scheduled { start: Time, complete: Time },
    /// All servers busy: the lookup waits in the AM's pending queue
    /// (prioritized probes wait at the front, paper §4.1) and will be
    /// scheduled by [`IndexAm::dequeue_pending`] when a server frees.
    Queued,
    /// Coalesced with an identical in-flight (or already-answered) lookup
    /// — no new work; the SteM cache will serve the caller.
    Coalesced,
    /// The probe tuple does not bind the index's columns (router bug).
    Unbindable,
}

/// An asynchronous index access method (paper §2.1.3, WSQ/DSQ-style).
///
/// Lookups are serialized across `concurrency` virtual servers, each
/// `latency_us` long — concurrency 1 matches the paper's "sleeps of
/// identical duration". Identical in-flight probes are coalesced, which is
/// how both fig-7 systems end up making ~250 probes for 1000 R tuples.
#[derive(Debug)]
pub struct IndexAm {
    pub source: SourceId,
    pub instances: Vec<TableIdx>,
    pub spec: IndexSpec,
    arity: usize,
    /// Pre-built lookup structure: bind-values → rows.
    data: FxHashMap<Vec<Value>, Vec<Arc<Row>>>,
    stalls: StallWindows,
    /// Lookups currently in service (≤ concurrency).
    busy: usize,
    /// Keys awaiting a free server: `(key, prioritized)`. Prioritized
    /// lookups are picked first (§4.1).
    pending: std::collections::VecDeque<(Vec<Value>, bool)>,
    in_flight: FxHashSet<Vec<Value>>,
    answered: FxHashSet<Vec<Value>>,
    /// Lookups actually issued (the fig-7(ii) series).
    pub probes_issued: u64,
    /// Probes absorbed by coalescing.
    pub probes_coalesced: u64,
}

impl IndexAm {
    pub fn new(
        source: SourceId,
        instances: Vec<TableIdx>,
        rows: &[Arc<Row>],
        arity: usize,
        spec: IndexSpec,
    ) -> IndexAm {
        let mut data: FxHashMap<Vec<Value>, Vec<Arc<Row>>> = FxHashMap::default();
        for r in rows {
            if let Some(key) = Self::key_of(r, &spec.bind_cols) {
                data.entry(key).or_default().push(r.clone());
            }
        }
        IndexAm {
            source,
            instances,
            stalls: StallWindows::new(spec.stall_windows.clone()),
            busy: 0,
            pending: std::collections::VecDeque::new(),
            arity,
            data,
            spec,
            in_flight: FxHashSet::default(),
            answered: FxHashSet::default(),
            probes_issued: 0,
            probes_coalesced: 0,
        }
    }

    fn key_of(row: &Row, bind_cols: &[usize]) -> Option<Vec<Value>> {
        bind_cols
            .iter()
            .map(|c| row.get(*c).and_then(index_key))
            .collect()
    }

    /// Every lookup key a probe tuple supplies for instance `t` of this
    /// source. For each bind column: an equi-join predicate from the
    /// tuple's span or a constant equality selection supplies *one*
    /// value; a multi-member IN list fans out across its members. The
    /// result is the cartesian product over bind columns (IN lists are
    /// tiny), `None` when some bind column is unboundable.
    pub fn bind_value_sets(
        &self,
        tuple: &Tuple,
        t: TableIdx,
        query: &QuerySpec,
    ) -> Option<Vec<Vec<Value>>> {
        let linking: Vec<&stems_types::Predicate> = query
            .preds_linking(tuple.span(), t)
            .into_iter()
            .map(|id| query.predicate(id))
            .collect();
        let bindings = crate::stem::probe_bindings(&linking, tuple, t, query);
        let options = crate::stem::in_list_options(query, t);
        let mut per_col: Vec<Vec<Value>> = Vec::with_capacity(self.spec.bind_cols.len());
        for c in &self.spec.bind_cols {
            if let Some(v) = bindings
                .iter()
                .find(|(col, _)| col == c)
                .and_then(|(_, v)| index_key(v))
            {
                // A fixed equality binding is complete on its own; it
                // wins over any IN options on the same column.
                per_col.push(vec![v]);
            } else if let Some((_, vals)) = options.iter().find(|(col, _)| col == c) {
                per_col.push(vals.clone());
            } else {
                return None;
            }
        }
        let mut keys: Vec<Vec<Value>> = vec![Vec::new()];
        for choices in &per_col {
            let mut next = Vec::with_capacity(keys.len() * choices.len());
            for key in &keys {
                for v in choices {
                    let mut k = key.clone();
                    k.push(v.clone());
                    next.push(k);
                }
            }
            keys = next;
        }
        Some(keys)
    }

    /// Can this probe tuple bind the index's lookup columns (possibly by
    /// fanning out over IN-list members)? The router calls this per
    /// tuple per routing decision, so it only checks that every bind
    /// column has a supplier — it never materializes the cartesian key
    /// product [`IndexAm::bind_value_sets`] builds at probe time.
    /// (Binding values are equality-normalized at the source, so a
    /// supplied column is always a usable one — the two methods agree.)
    pub fn can_bind(&self, tuple: &Tuple, t: TableIdx, query: &QuerySpec) -> bool {
        let linking: Vec<&stems_types::Predicate> = query
            .preds_linking(tuple.span(), t)
            .into_iter()
            .map(|id| query.predicate(id))
            .collect();
        let bindings = crate::stem::probe_bindings(&linking, tuple, t, query);
        let options = crate::stem::in_list_options(query, t);
        self.spec.bind_cols.iter().all(|c| {
            bindings.iter().any(|(col, _)| col == c) || options.iter().any(|(col, _)| col == c)
        })
    }

    /// Accept a probe for instance `t`: one lookup per bound key (a
    /// multi-member IN binding fans out across members, each with its own
    /// schedule/queue/coalesce outcome). The probe tuple itself is
    /// bounced back by the engine regardless (AMs "asynchronously bounce
    /// back each probe tuple", Table 1). `prioritized` lookups jump the
    /// pending queue (paper §4.1).
    pub fn probe(
        &mut self,
        tuple: &Tuple,
        t: TableIdx,
        query: &QuerySpec,
        now: Time,
        prioritized: bool,
    ) -> Vec<(IndexProbeOutcome, Option<Vec<Value>>)> {
        let Some(keys) = self.bind_value_sets(tuple, t, query) else {
            return vec![(IndexProbeOutcome::Unbindable, None)];
        };
        keys.into_iter()
            .map(|key| self.probe_key(key, now, prioritized))
            .collect()
    }

    /// One key's share of a probe: coalesce against in-flight/answered
    /// lookups, else schedule or queue it.
    fn probe_key(
        &mut self,
        key: Vec<Value>,
        now: Time,
        prioritized: bool,
    ) -> (IndexProbeOutcome, Option<Vec<Value>>) {
        if self.in_flight.contains(&key) || self.answered.contains(&key) {
            self.probes_coalesced += 1;
            return (IndexProbeOutcome::Coalesced, Some(key));
        }
        if self.pending.iter().any(|(k, _)| *k == key) {
            // Already queued; a prioritized duplicate promotes it.
            if prioritized {
                if let Some(pos) = self.pending.iter().position(|(k, p)| *k == key && !*p) {
                    let (k, _) = self.pending.remove(pos).expect("position valid");
                    self.pending.push_front((k, true));
                }
            }
            self.probes_coalesced += 1;
            return (IndexProbeOutcome::Coalesced, Some(key));
        }
        if self.busy < self.spec.concurrency.max(1) {
            let (start, complete) = self.begin_service(key.clone(), now);
            (IndexProbeOutcome::Scheduled { start, complete }, Some(key))
        } else {
            if prioritized {
                self.pending.push_front((key.clone(), true));
            } else {
                self.pending.push_back((key.clone(), false));
            }
            (IndexProbeOutcome::Queued, Some(key))
        }
    }

    fn begin_service(&mut self, key: Vec<Value>, now: Time) -> (Time, Time) {
        let start = self.stalls.next_available(now);
        let complete = start + self.spec.latency_us;
        self.busy += 1;
        self.in_flight.insert(key);
        self.probes_issued += 1;
        (start, complete)
    }

    /// Called by the engine right after a response: pull the next pending
    /// lookup (prioritized first) into the freed server. Returns the key
    /// and its service window for event scheduling.
    pub fn dequeue_pending(&mut self, now: Time) -> Option<(Vec<Value>, Time, Time)> {
        // Prefer a prioritized entry anywhere in the queue.
        let pos = self
            .pending
            .iter()
            .position(|(_, p)| *p)
            .or(if self.pending.is_empty() {
                None
            } else {
                Some(0)
            })?;
        let (key, _) = self.pending.remove(pos).expect("position valid");
        let (start, complete) = self.begin_service(key.clone(), now);
        Some((key, start, complete))
    }

    /// Lookups waiting for a server.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Deliver the response for `key`: matching rows (filtered by the
    /// table's own selection predicates — "the AM applies the others after
    /// the lookup", §2.1.3 fn 2) as singletons per instance, plus the EOT
    /// tuple encoding the probed bindings.
    pub fn respond(&mut self, key: &[Value], query: &QuerySpec) -> Vec<Tuple> {
        self.in_flight.remove(key);
        self.answered.insert(key.to_vec());
        self.busy = self.busy.saturating_sub(1);
        let rows = self.data.get(key).cloned().unwrap_or_default();
        let mut out = Vec::new();
        for t in &self.instances {
            // Selections on this instance that the AM can check locally.
            let sels: Vec<&stems_types::Predicate> = query
                .predicates
                .iter()
                .filter(|p| p.is_selection() && p.tables().contains(*t))
                .collect();
            for r in &rows {
                let single = Tuple::singleton(*t, r.clone());
                if sels.iter().all(|p| p.eval(&single).unwrap_or(false)) {
                    out.push(single);
                }
            }
            let bindings: Vec<(usize, Value)> = self
                .spec
                .bind_cols
                .iter()
                .zip(key.iter())
                .map(|(c, v)| (*c, v.clone()))
                .collect();
            out.push(Tuple::singleton(*t, make_eot_row(self.arity, &bindings)));
        }
        out
    }

    /// Current backlog estimate: pending lookups (plus in-service ones)
    /// times the per-lookup latency, divided across servers.
    pub fn queue_delay(&self, _now: Time) -> Time {
        let servers = self.spec.concurrency.max(1) as u64;
        (self.pending.len() as u64 + self.busy as u64) * self.spec.latency_us / servers
    }

    /// Shape a response into arrival waves per [`IndexSpec::reply_chunk`]:
    /// the scan `chunk` cadence applied to index replies. The first wave
    /// lands at `now` (the lookup's completion — it accumulated during
    /// service, like a scan's first chunk accumulates before its first
    /// emission), each later wave of `n` tuples `n` per-tuple gaps
    /// ([`burst_gap`]) after its predecessor. An unchunked spec
    /// (`reply_chunk: 0`) returns the whole reply as one `now` wave — the
    /// classic single-burst delivery. Tuple order is preserved, so the
    /// per-instance EOTs [`IndexAm::respond`] appends stay strictly last.
    pub fn chunk_reply(&self, tuples: Vec<Tuple>, now: Time) -> Vec<(Time, Vec<Tuple>)> {
        let chunk = self.spec.reply_chunk;
        if chunk == 0 || tuples.len() <= chunk {
            return vec![(now, tuples)];
        }
        let mut waves = Vec::with_capacity(tuples.len().div_ceil(chunk));
        let mut t = now;
        let mut rest = tuples;
        let mut first = true;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let tail = rest.split_off(take);
            if !first {
                t += burst_gap(self.spec.reply_gap_us, take);
            }
            waves.push((t, rest));
            rest = tail;
            first = false;
        }
        waves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_catalog::{Catalog, TableDef, TableInstance};
    use stems_types::{CmpOp, ColRef, ColumnType, PredId, Predicate, Schema};

    fn rows(vals: &[(i64, i64)]) -> Vec<Arc<Row>> {
        vals.iter()
            .map(|(a, b)| Row::shared(vec![Value::Int(*a), Value::Int(*b)]))
            .collect()
    }

    /// Unwrap a single-key probe's fan-out (the pre-IN-fan-out shape most
    /// of these tests exercise).
    fn one(
        mut outcomes: Vec<(IndexProbeOutcome, Option<Vec<Value>>)>,
    ) -> (IndexProbeOutcome, Option<Vec<Value>>) {
        assert_eq!(outcomes.len(), 1, "expected a single-key probe");
        outcomes.pop().expect("checked length")
    }

    fn rs_query() -> (Catalog, QuerySpec) {
        let mut c = Catalog::new();
        let r = c
            .add_table(TableDef::new(
                "R",
                Schema::of(&[("key", ColumnType::Int), ("a", ColumnType::Int)]),
            ))
            .unwrap();
        let s = c
            .add_table(TableDef::new(
                "S",
                Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
            ))
            .unwrap();
        c.add_scan(r, ScanSpec::default()).unwrap();
        c.add_index(s, IndexSpec::new(vec![0], 1000)).unwrap();
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "r".into(),
                },
                TableInstance {
                    source: s,
                    alias: "s".into(),
                },
            ],
            vec![Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            )],
            None,
        )
        .unwrap();
        (c, q)
    }

    #[test]
    fn scan_emits_rows_then_eot() {
        let spec = ScanSpec::with_rate(10.0); // 100ms per tuple
        let mut scan = ScanAm::new(
            SourceId(0),
            vec![TableIdx(0)],
            rows(&[(1, 10), (2, 20)]),
            2,
            &spec,
        );
        let t0 = scan.first_emit_time();
        assert_eq!(t0, 100_000);
        let (batch1, next1) = scan.emit_next(t0);
        assert_eq!(batch1.len(), 1);
        assert!(!batch1.as_slice()[0].is_eot());
        assert_eq!(next1, Some(200_000));
        let (batch2, next2) = scan.emit_next(next1.unwrap());
        assert_eq!(batch2.len(), 1);
        assert!(next2.is_some());
        let (eot, done) = scan.emit_next(next2.unwrap());
        assert_eq!(eot.len(), 1);
        assert!(eot.as_slice()[0].is_eot());
        assert_eq!(done, None);
        assert!(scan.finished);
        assert_eq!(scan.emit_next(999_999_999).0.len(), 0);
    }

    #[test]
    fn scan_respects_stall_windows() {
        let spec = ScanSpec {
            rate_tps: 10.0,
            start_delay_us: 0,
            stall_windows: vec![(50_000, 500_000)],
            chunk: 1,
        };
        let scan = ScanAm::new(SourceId(0), vec![TableIdx(0)], rows(&[(1, 1)]), 2, &spec);
        // First emission would be at 100ms, inside the stall: pushed to end.
        assert_eq!(scan.first_emit_time(), 500_000);
    }

    #[test]
    fn scan_serves_multiple_instances() {
        let spec = ScanSpec::with_rate(1000.0);
        let mut scan = ScanAm::new(
            SourceId(0),
            vec![TableIdx(0), TableIdx(2)],
            rows(&[(5, 6)]),
            2,
            &spec,
        );
        let (batch, _) = scan.emit_next(1000);
        let batch = batch.as_slice();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].span(), stems_types::TableSet::single(TableIdx(0)));
        assert_eq!(batch[1].span(), stems_types::TableSet::single(TableIdx(2)));
        // Same Arc row shared between instances.
        assert!(Arc::ptr_eq(
            &batch[0].components()[0].row,
            &batch[1].components()[0].row
        ));
    }

    #[test]
    fn chunked_scan_emits_batches_then_single_eot() {
        // 5 rows, chunk 2 → data batches of 2, 2, 1 — then one EOT event.
        let spec = ScanSpec::with_rate(10.0).with_chunk(2); // 100ms per row
        let mut scan = ScanAm::new(
            SourceId(0),
            vec![TableIdx(0)],
            rows(&[(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]),
            2,
            &spec,
        );
        // First chunk lands when both rows have accumulated.
        let t0 = scan.first_emit_time();
        assert_eq!(t0, 200_000);
        let (b1, n1) = scan.emit_next(t0);
        assert_eq!(b1.len(), 2);
        assert!(b1.iter().all(|t| !t.is_eot()));
        assert_eq!(n1, Some(400_000));
        let (b2, n2) = scan.emit_next(n1.unwrap());
        assert_eq!(b2.len(), 2);
        // Tail chunk is short: only one row remains, so one row-gap away.
        assert_eq!(n2, Some(500_000));
        let (b3, n3) = scan.emit_next(n2.unwrap());
        assert_eq!(b3.len(), 1);
        assert!(b3.iter().all(|t| !t.is_eot()));
        // EOT follows the last data batch by one row gap…
        assert_eq!(n3, Some(600_000));
        assert!(!scan.finished);
        let (eot, done) = scan.emit_next(n3.unwrap());
        // …and fires exactly once.
        assert_eq!(eot.len(), 1);
        assert!(eot.as_slice()[0].is_eot());
        assert_eq!(done, None);
        assert!(scan.finished);
        assert!(scan.emit_next(999_999_999).0.is_empty());
    }

    #[test]
    fn chunk_larger_than_table_delivers_one_batch() {
        let spec = ScanSpec::with_rate(1000.0).with_chunk(100);
        let mut scan = ScanAm::new(
            SourceId(0),
            vec![TableIdx(0)],
            rows(&[(1, 1), (2, 2), (3, 3)]),
            2,
            &spec,
        );
        // The first (and only) chunk accumulates in 3 row gaps, not 100.
        assert_eq!(scan.first_emit_time(), 3_000);
        let (b, next) = scan.emit_next(3_000);
        assert_eq!(b.len(), 3);
        let (eot, done) = scan.emit_next(next.unwrap());
        assert_eq!(eot.len(), 1);
        assert!(eot.as_slice()[0].is_eot());
        assert_eq!(done, None);
    }

    #[test]
    fn chunked_scan_eot_respects_stall_windows() {
        // The stall covers the second chunk's natural arrival; both the
        // chunk and the trailing EOT are pushed past the window, and the
        // EOT still strictly follows the last data batch.
        let spec = ScanSpec {
            rate_tps: 10.0, // 100ms per row
            start_delay_us: 0,
            stall_windows: vec![(300_000, 900_000)],
            chunk: 2,
        };
        let mut scan = ScanAm::new(
            SourceId(0),
            vec![TableIdx(0)],
            rows(&[(1, 1), (2, 2), (3, 3), (4, 4)]),
            2,
            &spec,
        );
        let t0 = scan.first_emit_time();
        assert_eq!(t0, 200_000);
        let (b1, n1) = scan.emit_next(t0);
        assert_eq!(b1.len(), 2);
        // 400ms is inside the stall → deferred to its end.
        assert_eq!(n1, Some(900_000));
        let (b2, n2) = scan.emit_next(n1.unwrap());
        assert_eq!(b2.len(), 2);
        assert!(b2.iter().all(|t| !t.is_eot()));
        assert_eq!(n2, Some(1_000_000));
        let (eot, done) = scan.emit_next(n2.unwrap());
        assert_eq!(eot.len(), 1);
        assert!(eot.as_slice()[0].is_eot());
        assert_eq!(done, None);
    }

    #[test]
    fn chunked_scan_serves_every_instance_per_row() {
        let spec = ScanSpec::with_rate(1000.0).with_chunk(3);
        let mut scan = ScanAm::new(
            SourceId(0),
            vec![TableIdx(0), TableIdx(1)],
            rows(&[(1, 1), (2, 2), (3, 3)]),
            2,
            &spec,
        );
        let (b, next) = scan.emit_next(3_000);
        // 3 rows × 2 instances, rows-major so per-instance order is the
        // same as row-at-a-time emission.
        assert_eq!(b.len(), 6);
        let spans: Vec<_> = b.iter().map(|t| t.components()[0].table).collect();
        assert_eq!(
            spans,
            vec![
                TableIdx(0),
                TableIdx(1),
                TableIdx(0),
                TableIdx(1),
                TableIdx(0),
                TableIdx(1)
            ]
        );
        // One EOT per instance, once.
        let (eot, done) = scan.emit_next(next.unwrap());
        assert_eq!(eot.len(), 2);
        assert!(eot.iter().all(|t| t.is_eot()));
        assert_eq!(done, None);
        assert!(scan.emit_next(u64::MAX).0.is_empty());
    }

    #[test]
    fn clamp_chunk_caps_at_engine_batch_size() {
        let spec = ScanSpec::with_rate(1000.0).with_chunk(256);
        let mut scan = ScanAm::new(SourceId(0), vec![TableIdx(0)], rows(&[(1, 1)]), 2, &spec);
        assert_eq!(scan.chunk(), 256);
        scan.clamp_chunk(64);
        assert_eq!(scan.chunk(), 64);
        // A zero cap is floored: the scan must still make progress.
        scan.clamp_chunk(0);
        assert_eq!(scan.chunk(), 1);
    }

    #[test]
    fn index_probe_queues_behind_busy_server() {
        let (_c, q) = rs_query();
        let spec = IndexSpec::new(vec![0], 1000);
        let mut am = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 1), (10, 2), (20, 3)]),
            2,
            spec,
        );
        let r1 = Tuple::singleton_of(TableIdx(0), vec![Value::Int(1), Value::Int(10)]);
        let r2 = Tuple::singleton_of(TableIdx(0), vec![Value::Int(2), Value::Int(20)]);
        let (o1, k1) = one(am.probe(&r1, TableIdx(1), &q, 0, false));
        assert_eq!(
            o1,
            IndexProbeOutcome::Scheduled {
                start: 0,
                complete: 1000
            }
        );
        // Second distinct probe waits in the pending queue.
        let (o2, _) = one(am.probe(&r2, TableIdx(1), &q, 10, false));
        assert_eq!(o2, IndexProbeOutcome::Queued);
        assert_eq!(am.probes_issued, 1);
        assert_eq!(am.pending_len(), 1);
        assert!(am.queue_delay(10) > 0);
        // Responses: matches + EOT; then the pending lookup starts.
        let resp = am.respond(&k1.unwrap(), &q);
        assert_eq!(resp.len(), 3); // two x=10 rows + EOT
        assert!(resp.last().unwrap().is_eot());
        let (key2, start2, complete2) = am.dequeue_pending(1000).expect("pending lookup");
        assert_eq!(key2, vec![Value::Int(20)]);
        assert_eq!(start2, 1000);
        assert_eq!(complete2, 2000);
        assert_eq!(am.probes_issued, 2);
        assert!(am.dequeue_pending(2000).is_none());
    }

    #[test]
    fn prioritized_probes_jump_the_pending_queue() {
        let (_c, q) = rs_query();
        let mut am = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 1), (20, 2), (30, 3), (40, 4)]),
            2,
            IndexSpec::new(vec![0], 1000),
        );
        let mk = |a: i64| Tuple::singleton_of(TableIdx(0), vec![Value::Int(0), Value::Int(a)]);
        let (_, k1) = one(am.probe(&mk(10), TableIdx(1), &q, 0, false)); // in service
        am.probe(&mk(20), TableIdx(1), &q, 0, false); // pending lo
        am.probe(&mk(30), TableIdx(1), &q, 0, false); // pending lo
        am.probe(&mk(40), TableIdx(1), &q, 0, true); // pending HI
        am.respond(&k1.unwrap(), &q);
        let (key, _, _) = am.dequeue_pending(1000).expect("next");
        assert_eq!(key, vec![Value::Int(40)], "prioritized probe served first");
        // A prioritized duplicate promotes an already-pending key.
        let mut am2 = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 1), (20, 2), (30, 3)]),
            2,
            IndexSpec::new(vec![0], 1000),
        );
        let (_, k1) = one(am2.probe(&mk(10), TableIdx(1), &q, 0, false));
        am2.probe(&mk(20), TableIdx(1), &q, 0, false);
        am2.probe(&mk(30), TableIdx(1), &q, 0, false);
        let (o, _) = one(am2.probe(&mk(30), TableIdx(1), &q, 0, true)); // promote 30
        assert_eq!(o, IndexProbeOutcome::Coalesced);
        am2.respond(&k1.unwrap(), &q);
        let (key, _, _) = am2.dequeue_pending(1000).expect("next");
        assert_eq!(key, vec![Value::Int(30)]);
    }

    #[test]
    fn identical_inflight_probes_coalesce() {
        let (_c, q) = rs_query();
        let mut am = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 1)]),
            2,
            IndexSpec::new(vec![0], 1000),
        );
        let mk = |key: i64, a: i64| {
            Tuple::singleton_of(TableIdx(0), vec![Value::Int(key), Value::Int(a)])
        };
        let (o1, _) = one(am.probe(&mk(1, 10), TableIdx(1), &q, 0, false));
        assert!(matches!(o1, IndexProbeOutcome::Scheduled { .. }));
        // Different R tuple, same bind value: coalesced.
        let (o2, _) = one(am.probe(&mk(2, 10), TableIdx(1), &q, 5, false));
        assert_eq!(o2, IndexProbeOutcome::Coalesced);
        assert_eq!(am.probes_issued, 1);
        assert_eq!(am.probes_coalesced, 1);
        // After the answer, same key is still coalesced (cache hit path).
        am.respond(&[Value::Int(10)], &q);
        let (o3, _) = one(am.probe(&mk(3, 10), TableIdx(1), &q, 2000, false));
        assert_eq!(o3, IndexProbeOutcome::Coalesced);
    }

    #[test]
    fn concurrency_runs_probes_in_parallel() {
        let (_c, q) = rs_query();
        let mut am = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 1), (20, 2)]),
            2,
            IndexSpec::new(vec![0], 1000).with_concurrency(2),
        );
        let mk = |key: i64, a: i64| {
            Tuple::singleton_of(TableIdx(0), vec![Value::Int(key), Value::Int(a)])
        };
        let (o1, _) = one(am.probe(&mk(1, 10), TableIdx(1), &q, 0, false));
        let (o2, _) = one(am.probe(&mk(2, 20), TableIdx(1), &q, 0, false));
        assert_eq!(
            o1,
            IndexProbeOutcome::Scheduled {
                start: 0,
                complete: 1000
            }
        );
        assert_eq!(
            o2,
            IndexProbeOutcome::Scheduled {
                start: 0,
                complete: 1000
            }
        );
    }

    #[test]
    fn zero_match_probe_still_answers_with_eot() {
        let (_c, q) = rs_query();
        let mut am = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 1)]),
            2,
            IndexSpec::new(vec![0], 1000),
        );
        let r = Tuple::singleton_of(TableIdx(0), vec![Value::Int(1), Value::Int(77)]);
        let (_, key) = one(am.probe(&r, TableIdx(1), &q, 0, false));
        let resp = am.respond(&key.unwrap(), &q);
        assert_eq!(resp.len(), 1);
        assert!(resp[0].is_eot());
        // EOT encodes the probed binding so the SteM records coverage.
        assert_eq!(resp[0].components()[0].row.get(0), Some(&Value::Int(77)));
    }

    #[test]
    fn multi_member_in_list_fans_out_index_lookups() {
        // S's index binds x, which only `s.x IN (10, 20, 99)` covers: one
        // probe fans out into one lookup per member.
        let (c, q) = rs_query();
        let mut q2 = q.clone();
        q2.predicates.push(Predicate::in_list(
            PredId(1),
            ColRef::new(TableIdx(1), 0),
            vec![Value::Int(10), Value::Int(20), Value::Int(99)],
        ));
        // Re-link the join through y so x stays IN-bound only.
        q2.predicates[0] = Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 1),
        );
        let q2 = QuerySpec::new(&c, q2.tables, q2.predicates, None).unwrap();
        let mut am = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 1), (20, 1), (30, 1)]),
            2,
            IndexSpec::new(vec![0], 1000).with_concurrency(3),
        );
        let r = Tuple::singleton_of(TableIdx(0), vec![Value::Int(7), Value::Int(1)]);
        assert_eq!(
            am.bind_value_sets(&r, TableIdx(1), &q2),
            Some(vec![
                vec![Value::Int(10)],
                vec![Value::Int(20)],
                vec![Value::Int(99)]
            ])
        );
        let outcomes = am.probe(&r, TableIdx(1), &q2, 0, false);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes
            .iter()
            .all(|(o, _)| matches!(o, IndexProbeOutcome::Scheduled { .. })));
        assert_eq!(am.probes_issued, 3);
        // A second prober over the same list coalesces entirely.
        let r2 = Tuple::singleton_of(TableIdx(0), vec![Value::Int(8), Value::Int(1)]);
        let again = am.probe(&r2, TableIdx(1), &q2, 5, false);
        assert!(again
            .iter()
            .all(|(o, _)| *o == IndexProbeOutcome::Coalesced));
        // Each member's response carries its own rows + keyed EOT; the
        // miss (99) answers with a bare EOT.
        let resp10 = am.respond(&[Value::Int(10)], &q2);
        assert_eq!(resp10.len(), 2);
        assert!(resp10.last().unwrap().is_eot());
        let resp99 = am.respond(&[Value::Int(99)], &q2);
        assert_eq!(resp99.len(), 1);
        assert!(resp99[0].is_eot());
        assert_eq!(resp99[0].components()[0].row.get(0), Some(&Value::Int(99)));
    }

    #[test]
    fn in_fan_out_composes_with_fixed_bindings() {
        // A two-column index: x is IN-bound (fan-out), y is join-bound
        // (single value) — the key set is the product.
        let (c, q) = rs_query();
        let mut q2 = q.clone();
        q2.predicates[0] = Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 1),
        );
        q2.predicates.push(Predicate::in_list(
            PredId(1),
            ColRef::new(TableIdx(1), 0),
            vec![Value::Int(10), Value::Int(20)],
        ));
        let q2 = QuerySpec::new(&c, q2.tables, q2.predicates, None).unwrap();
        let am = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 5)]),
            2,
            IndexSpec::new(vec![0, 1], 1000),
        );
        let r = Tuple::singleton_of(TableIdx(0), vec![Value::Int(1), Value::Int(5)]);
        assert_eq!(
            am.bind_value_sets(&r, TableIdx(1), &q2),
            Some(vec![
                vec![Value::Int(10), Value::Int(5)],
                vec![Value::Int(20), Value::Int(5)]
            ])
        );
        assert!(am.can_bind(&r, TableIdx(1), &q2));
    }

    #[test]
    fn unbindable_probe_rejected() {
        let (_c, q) = rs_query();
        let mut am = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 1)]),
            2,
            IndexSpec::new(vec![1], 1000), // binds y, which no pred covers
        );
        let r = Tuple::singleton_of(TableIdx(0), vec![Value::Int(1), Value::Int(10)]);
        let (o, k) = one(am.probe(&r, TableIdx(1), &q, 0, false));
        assert_eq!(o, IndexProbeOutcome::Unbindable);
        assert!(k.is_none());
    }

    #[test]
    fn chunked_reply_waves_follow_burst_gap_cadence() {
        let (_c, q) = rs_query();
        // 5 matching rows + 1 EOT = 6 reply tuples; chunk 4, 50µs/tuple.
        let mut am = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 1), (10, 2), (10, 3), (10, 4), (10, 5)]),
            2,
            IndexSpec::new(vec![0], 1000).with_reply_chunk(4, 50),
        );
        let r = Tuple::singleton_of(TableIdx(0), vec![Value::Int(1), Value::Int(10)]);
        let (_, key) = one(am.probe(&r, TableIdx(1), &q, 0, false));
        let reply = am.respond(&key.unwrap(), &q);
        assert_eq!(reply.len(), 6);
        let waves = am.chunk_reply(reply, 1000);
        assert_eq!(waves.len(), 2);
        // First wave at the completion instant; the 2-tuple tail two
        // per-tuple gaps later.
        assert_eq!(waves[0].0, 1000);
        assert_eq!(waves[0].1.len(), 4);
        assert_eq!(waves[1].0, 1000 + 2 * 50);
        assert_eq!(waves[1].1.len(), 2);
        // Order preserved: the EOT is the last tuple of the last wave.
        assert!(waves[1].1.last().unwrap().is_eot());
        assert!(waves
            .iter()
            .flat_map(|(_, w)| &w[..w.len() - usize::from(w.last().unwrap().is_eot())])
            .all(|t| !t.is_eot()));
    }

    #[test]
    fn unchunked_reply_is_one_immediate_wave() {
        let (_c, q) = rs_query();
        let mut am = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 1), (10, 2), (10, 3)]),
            2,
            IndexSpec::new(vec![0], 1000),
        );
        let r = Tuple::singleton_of(TableIdx(0), vec![Value::Int(1), Value::Int(10)]);
        let (_, key) = one(am.probe(&r, TableIdx(1), &q, 0, false));
        let reply = am.respond(&key.unwrap(), &q);
        let n = reply.len();
        let waves = am.chunk_reply(reply, 1000);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].0, 1000);
        assert_eq!(waves[0].1.len(), n);
        // A reply no longer than the chunk also stays a single wave.
        let mut am2 = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 1)]),
            2,
            IndexSpec::new(vec![0], 1000).with_reply_chunk(8, 50),
        );
        let (_, key2) = one(am2.probe(&r, TableIdx(1), &q, 0, false));
        let reply2 = am2.respond(&key2.unwrap(), &q);
        let waves2 = am2.chunk_reply(reply2, 2000);
        assert_eq!(waves2.len(), 1);
        assert_eq!(waves2[0].0, 2000);
    }

    #[test]
    fn index_applies_local_selections() {
        let (c, q) = rs_query();
        let mut q2 = q.clone();
        q2.predicates.push(Predicate::selection(
            PredId(1),
            ColRef::new(TableIdx(1), 1),
            CmpOp::Gt,
            Value::Int(1),
        ));
        let q2 = QuerySpec::new(&c, q2.tables, q2.predicates, None).unwrap();
        let mut am = IndexAm::new(
            SourceId(1),
            vec![TableIdx(1)],
            &rows(&[(10, 1), (10, 5)]),
            2,
            IndexSpec::new(vec![0], 1000),
        );
        let r = Tuple::singleton_of(TableIdx(0), vec![Value::Int(1), Value::Int(10)]);
        let (_, key) = one(am.probe(&r, TableIdx(1), &q2, 0, false));
        let resp = am.respond(&key.unwrap(), &q2);
        // Only (10,5) passes y > 1; plus EOT.
        assert_eq!(resp.len(), 2);
        assert_eq!(resp[0].value(TableIdx(1), 1), Some(&Value::Int(5)));
    }
}
