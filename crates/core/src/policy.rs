//! Routing policies.
//!
//! The eddy "continuously routes tuples among the rest of the modules,
//! according to a routing policy" (paper §2.1.1). The constraint layer
//! ([`crate::router`]) guarantees that *any* policy produces correct
//! results; policies differ only in performance. Three are provided:
//!
//! * [`FixedOrderPolicy`] — a static priority order. With hash SteMs this
//!   realizes the n-ary symmetric hash join of §2.3, and it can emulate a
//!   static plan for baselines.
//! * [`LotteryPolicy`] — ticket-based weighted-random routing in the style
//!   of the original eddies paper \[Avnur & Hellerstein 2000\], rewarding
//!   destinations that produce matches / drop tuples.
//! * [`BenefitCostPolicy`] — a reconstruction of the paper's §4.1 policy
//!   ("the eddy continually routes so as to maximize benefit/cost"): per
//!   (destination, choice-kind) EWMAs of observed benefit over expected
//!   completion time, with an exploration floor so the eddy keeps probing
//!   alternatives — this is what hybridizes index and hash joins in the
//!   fig-8 experiment ("the eddy keeps sending a small fraction of the
//!   tuples to the index throughout ... to explore").

use crate::router::Action;
use stems_sim::{SimRng, Time};
use stems_storage::fxhash::FxHashMap;
use stems_types::{TableIdx, Tuple, TupleBatch};

use crate::tuple_state::TupleState;

/// Per-candidate hints the engine computes for the policy: rough expected
/// time-to-effect for the action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hint {
    /// Estimated completion time of the action's effect in µs (service +
    /// backlog; for AM probes: queue delay + lookup latency).
    pub est_cost_us: Time,
}

/// Observations fed back to the policy by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Feedback {
    /// A SteM probe finished: how many concatenations were emitted.
    StemProbe { table: TableIdx, emitted: usize },
    /// A selection was applied.
    Selected {
        pred: stems_types::PredId,
        passed: bool,
    },
    /// A row originating from index AM `mid` built into a SteM: was it new
    /// (fresh) or absorbed as a duplicate? Freshness decays as the scan
    /// fills the SteM — the hybridization signal.
    AmBuild { mid: usize, fresh: bool },
    /// An expensive (UDF) selection envelope finished: `rows` tuples cost
    /// `cost_us` of virtual time *in total*, memoization and dedup
    /// included. Emitted only by the UDF fast path, so cheap comparison
    /// selections keep their purely hint-driven cost. Lets benefit/cost
    /// ranking learn the *observed* per-row price of an expensive
    /// predicate — high when every verdict is computed, decaying toward
    /// the plain SM cost as the memo warms — and defer it behind
    /// selective joins.
    SelectCost {
        pred: stems_types::PredId,
        rows: usize,
        cost_us: Time,
    },
}

/// A routing policy: pick one of the legal candidate actions.
pub trait RoutingPolicy: Send {
    fn choose(
        &mut self,
        tuple: &Tuple,
        state: &TupleState,
        actions: &[(Action, Hint)],
        rng: &mut SimRng,
    ) -> usize;

    /// Pick one action for a whole batch of tuples sharing the same legal
    /// candidate set — the batched engine's hot path. One decision is
    /// amortized over every member, which is what makes per-tuple
    /// adaptivity affordable at high input rates.
    ///
    /// # Contract
    ///
    /// * `batch` is **never empty**: route groups only open around a first
    ///   member, and the engine debug-asserts this at the dispatch site
    ///   (`EddyExecutor::dispatch_group`). Implementations may rely on
    ///   `batch.as_slice().first()` being `Some`; the default
    ///   implementation panics on an (impossible) empty batch rather than
    ///   silently picking an arbitrary action.
    /// * `actions` is non-empty, and the `Hint` costs are recomputed at
    ///   dispatch time — they reflect module backlogs at the moment of
    ///   the decision, not at group flush.
    ///
    /// The default falls back to the scalar [`RoutingPolicy::choose`] on
    /// the batch's first tuple (all members face identical candidates, so
    /// any member is a valid representative); `state` is that tuple's
    /// state. Policies that want batch-size-aware scoring override this.
    fn choose_batch(
        &mut self,
        batch: &TupleBatch,
        state: &TupleState,
        actions: &[(Action, Hint)],
        rng: &mut SimRng,
    ) -> usize {
        let rep = batch
            .as_slice()
            .first()
            .expect("choose_batch contract violated: the engine flushes only non-empty groups");
        self.choose(rep, state, actions, rng)
    }

    /// Observe an execution event (default: ignore).
    fn feedback(&mut self, _fb: &Feedback) {}

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Factory enum so configs stay plain data.
#[derive(Debug, Clone)]
pub enum RoutingPolicyKind {
    /// Fixed priority order; optional explicit SteM-probe table order.
    Fixed { probe_order: Option<Vec<TableIdx>> },
    /// Lottery/ticket scheduling.
    Lottery,
    /// Benefit/cost with exploration floor `epsilon` and a value-rate for
    /// the Drop arm (results/sec credited to "wait for the scan").
    BenefitCost { epsilon: f64, drop_rate: f64 },
}

impl Default for RoutingPolicyKind {
    fn default() -> Self {
        RoutingPolicyKind::Fixed { probe_order: None }
    }
}

impl RoutingPolicyKind {
    pub fn build(&self) -> Box<dyn RoutingPolicy> {
        match self {
            RoutingPolicyKind::Fixed { probe_order } => Box::new(FixedOrderPolicy {
                probe_order: probe_order.clone(),
            }),
            RoutingPolicyKind::Lottery => Box::new(LotteryPolicy::new()),
            RoutingPolicyKind::BenefitCost { epsilon, drop_rate } => {
                Box::new(BenefitCostPolicy::new(*epsilon, *drop_rate))
            }
        }
    }
}

/// Rank of an action under the fixed policy: lower runs first.
fn fixed_rank(a: &Action, probe_order: &Option<Vec<TableIdx>>) -> (u8, usize) {
    match a {
        Action::Build { .. } => (0, 0),
        // Selections before probes: cheap filters first (the classic
        // static heuristic).
        Action::Select { .. } => (1, 0),
        Action::ProbeStem { table, .. } => {
            let pos = probe_order
                .as_ref()
                .and_then(|o| o.iter().position(|t| t == table))
                .unwrap_or(table.as_usize());
            (2, pos)
        }
        Action::ProbeAm { .. } => (3, 0),
        Action::Drop => (4, 0),
    }
}

/// Deterministic fixed-priority policy (n-ary SHJ / static-plan emulation).
#[derive(Debug, Clone, Default)]
pub struct FixedOrderPolicy {
    pub probe_order: Option<Vec<TableIdx>>,
}

impl RoutingPolicy for FixedOrderPolicy {
    fn choose(
        &mut self,
        _tuple: &Tuple,
        _state: &TupleState,
        actions: &[(Action, Hint)],
        _rng: &mut SimRng,
    ) -> usize {
        actions
            .iter()
            .enumerate()
            .min_by_key(|(_, (a, _))| fixed_rank(a, &self.probe_order))
            .map(|(i, _)| i)
            .expect("choose called with no actions")
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Ticket-based policy à la the original eddies paper: each destination
/// holds tickets; routing is a weighted lottery; productive destinations
/// (matches emitted, tuples dropped by selections) win tickets.
#[derive(Debug)]
pub struct LotteryPolicy {
    stem_tickets: FxHashMap<TableIdx, f64>,
    sm_tickets: FxHashMap<stems_types::PredId, f64>,
}

impl LotteryPolicy {
    pub fn new() -> LotteryPolicy {
        LotteryPolicy {
            stem_tickets: FxHashMap::default(),
            sm_tickets: FxHashMap::default(),
        }
    }

    fn weight(&self, a: &Action) -> f64 {
        match a {
            Action::Build { .. } => return 1e9, // builds are mandatory-ish
            Action::ProbeStem { table, .. } => *self.stem_tickets.get(table).unwrap_or(&1.0),
            Action::Select { pred, .. } => *self.sm_tickets.get(pred).unwrap_or(&1.0),
            Action::ProbeAm { .. } => 1.0,
            Action::Drop => 0.5,
        }
        .max(0.05)
    }
}

impl Default for LotteryPolicy {
    fn default() -> Self {
        LotteryPolicy::new()
    }
}

impl RoutingPolicy for LotteryPolicy {
    fn choose(
        &mut self,
        _tuple: &Tuple,
        _state: &TupleState,
        actions: &[(Action, Hint)],
        rng: &mut SimRng,
    ) -> usize {
        let weights: Vec<f64> = actions.iter().map(|(a, _)| self.weight(a)).collect();
        let total: f64 = weights.iter().sum();
        let mut draw = rng.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            draw -= w;
            if draw <= 0.0 {
                return i;
            }
        }
        actions.len() - 1
    }

    fn feedback(&mut self, fb: &Feedback) {
        match fb {
            Feedback::StemProbe { table, emitted } => {
                let t = self.stem_tickets.entry(*table).or_insert(1.0);
                // Reward matches; mild decay keeps the lottery adaptive.
                *t = (*t * 0.95 + *emitted as f64 * 0.5).clamp(0.05, 100.0);
            }
            Feedback::Selected { pred, passed } => {
                let t = self.sm_tickets.entry(*pred).or_insert(1.0);
                // Selections earn tickets by *dropping* tuples.
                let reward = if *passed { 0.0 } else { 1.0 };
                *t = (*t * 0.95 + reward).clamp(0.05, 100.0);
            }
            Feedback::AmBuild { .. } => {}
            // The lottery already rewards selections only for dropping
            // tuples; observed cost has no ticket to adjust.
            Feedback::SelectCost { .. } => {}
        }
    }

    fn name(&self) -> &'static str {
        "lottery"
    }
}

/// Benefit/cost policy (reconstruction of \[22\] as summarized in §4.1).
///
/// Scores every candidate as expected-benefit per unit expected time and
/// routes to the argmax, with probability `epsilon` of exploring uniformly.
/// Benefits are EWMAs of observations:
///
/// * SteM probe → average concatenations emitted per probe;
/// * selection → expected drop probability (pruning is progress);
/// * AM probe → *freshness*: the fraction of recent AM-fetched rows that
///   were not already in the SteM. As the competing scan fills the SteM,
///   freshness decays and bounced tuples shift from "probe the index" to
///   "drop and let the scan finish" — index→hash hybridization.
#[derive(Debug)]
pub struct BenefitCostPolicy {
    epsilon: f64,
    /// Value-rate (results/s) credited to the Drop arm — the expected rate
    /// at which the scan side will deliver the same results for free.
    drop_rate: f64,
    stem_yield: FxHashMap<TableIdx, Ewma>,
    sel_pass: FxHashMap<stems_types::PredId, Ewma>,
    /// Observed per-row cost (µs) of expensive selections, from
    /// [`Feedback::SelectCost`]. Absent for cheap comparison predicates,
    /// whose cost stays hint-driven.
    sel_cost: FxHashMap<stems_types::PredId, Ewma>,
    am_fresh: FxHashMap<usize, Ewma>,
}

#[derive(Debug, Clone, Copy)]
struct Ewma {
    value: f64,
    alpha: f64,
}

impl Ewma {
    fn new(init: f64, alpha: f64) -> Ewma {
        Ewma { value: init, alpha }
    }

    fn update(&mut self, obs: f64) {
        self.value += self.alpha * (obs - self.value);
    }
}

impl BenefitCostPolicy {
    pub fn new(epsilon: f64, drop_rate: f64) -> BenefitCostPolicy {
        BenefitCostPolicy {
            epsilon: epsilon.clamp(0.0, 1.0),
            drop_rate,
            stem_yield: FxHashMap::default(),
            sel_pass: FxHashMap::default(),
            sel_cost: FxHashMap::default(),
            am_fresh: FxHashMap::default(),
        }
    }

    /// Results (or equivalent progress) per second of action time.
    fn score(&self, a: &Action, h: &Hint) -> f64 {
        let secs = (h.est_cost_us.max(1)) as f64 / 1e6;
        match a {
            Action::Build { .. } => 1e12, // BuildFirst: effectively mandatory
            Action::ProbeStem { table, .. } => {
                let y = self.stem_yield.get(table).map(|e| e.value).unwrap_or(1.0);
                (y + 0.05) / secs
            }
            Action::Select { pred, .. } => {
                let pass = self.sel_pass.get(pred).map(|e| e.value).unwrap_or(0.5);
                // Expensive predicates report their observed per-row cost;
                // take the worse of the hint and the observation so a warm
                // memo can cheapen the arm but a cold one never hides its
                // price behind an optimistic static estimate.
                let obs_us = self.sel_cost.get(pred).map(|e| e.value).unwrap_or(0.0);
                let secs = (h.est_cost_us.max(1) as f64).max(obs_us) / 1e6;
                // Benefit of a selection is pruning early: (1 - pass).
                ((1.0 - pass) + 0.05) / secs
            }
            Action::ProbeAm { mid, .. } => {
                let fresh = self.am_fresh.get(mid).map(|e| e.value).unwrap_or(1.0);
                fresh / secs
            }
            Action::Drop => self.drop_rate,
        }
    }
}

impl RoutingPolicy for BenefitCostPolicy {
    fn choose(
        &mut self,
        _tuple: &Tuple,
        _state: &TupleState,
        actions: &[(Action, Hint)],
        rng: &mut SimRng,
    ) -> usize {
        if actions.len() > 1 && rng.chance(self.epsilon) {
            return rng.below(actions.len() as u64) as usize;
        }
        actions
            .iter()
            .enumerate()
            .max_by(|(_, (a1, h1)), (_, (a2, h2))| {
                self.score(a1, h1)
                    .partial_cmp(&self.score(a2, h2))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .expect("choose called with no actions")
    }

    fn feedback(&mut self, fb: &Feedback) {
        match fb {
            Feedback::StemProbe { table, emitted } => {
                self.stem_yield
                    .entry(*table)
                    .or_insert_with(|| Ewma::new(1.0, 0.1))
                    .update(*emitted as f64);
            }
            Feedback::Selected { pred, passed } => {
                self.sel_pass
                    .entry(*pred)
                    .or_insert_with(|| Ewma::new(0.5, 0.1))
                    .update(if *passed { 1.0 } else { 0.0 });
            }
            Feedback::AmBuild { mid, fresh } => {
                self.am_fresh
                    .entry(*mid)
                    .or_insert_with(|| Ewma::new(1.0, 0.05))
                    .update(if *fresh { 1.0 } else { 0.0 });
            }
            Feedback::SelectCost {
                pred,
                rows,
                cost_us,
            } => {
                let per_row = *cost_us as f64 / (*rows).max(1) as f64;
                self.sel_cost
                    .entry(*pred)
                    .or_insert_with(|| Ewma::new(per_row, 0.2))
                    .update(per_row);
            }
        }
    }

    fn name(&self) -> &'static str {
        "benefit-cost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::{PredId, Value};

    fn dummy_tuple() -> Tuple {
        Tuple::singleton_of(TableIdx(0), vec![Value::Int(1)])
    }

    fn h(us: Time) -> Hint {
        Hint { est_cost_us: us }
    }

    #[test]
    fn fixed_policy_orders_kinds() {
        let mut p = FixedOrderPolicy::default();
        let acts = vec![
            (Action::Drop, h(1)),
            (
                Action::ProbeStem {
                    mid: 3,
                    table: TableIdx(2),
                },
                h(50),
            ),
            (
                Action::Select {
                    mid: 1,
                    pred: PredId(0),
                },
                h(20),
            ),
        ];
        let i = p.choose(
            &dummy_tuple(),
            &TupleState::new(),
            &acts,
            &mut SimRng::new(1),
        );
        assert!(matches!(acts[i].0, Action::Select { .. }));
    }

    #[test]
    fn fixed_policy_respects_probe_order() {
        let mut p = FixedOrderPolicy {
            probe_order: Some(vec![TableIdx(2), TableIdx(1)]),
        };
        let acts = vec![
            (
                Action::ProbeStem {
                    mid: 1,
                    table: TableIdx(1),
                },
                h(50),
            ),
            (
                Action::ProbeStem {
                    mid: 2,
                    table: TableIdx(2),
                },
                h(50),
            ),
        ];
        let i = p.choose(
            &dummy_tuple(),
            &TupleState::new(),
            &acts,
            &mut SimRng::new(1),
        );
        assert!(matches!(
            acts[i].0,
            Action::ProbeStem {
                table: TableIdx(2),
                ..
            }
        ));
    }

    #[test]
    fn lottery_rewards_productive_stems() {
        let mut p = LotteryPolicy::new();
        for _ in 0..50 {
            p.feedback(&Feedback::StemProbe {
                table: TableIdx(1),
                emitted: 5,
            });
            p.feedback(&Feedback::StemProbe {
                table: TableIdx(2),
                emitted: 0,
            });
        }
        let acts = vec![
            (
                Action::ProbeStem {
                    mid: 1,
                    table: TableIdx(1),
                },
                h(50),
            ),
            (
                Action::ProbeStem {
                    mid: 2,
                    table: TableIdx(2),
                },
                h(50),
            ),
        ];
        let mut rng = SimRng::new(7);
        let wins: usize = (0..1000)
            .filter(|_| {
                let i = p.choose(&dummy_tuple(), &TupleState::new(), &acts, &mut rng);
                matches!(
                    acts[i].0,
                    Action::ProbeStem {
                        table: TableIdx(1),
                        ..
                    }
                )
            })
            .count();
        assert!(wins > 800, "productive stem won only {wins}/1000");
    }

    #[test]
    fn lottery_rewards_selective_sms() {
        let mut p = LotteryPolicy::new();
        for _ in 0..50 {
            p.feedback(&Feedback::Selected {
                pred: PredId(0),
                passed: false, // drops everything: very selective
            });
            p.feedback(&Feedback::Selected {
                pred: PredId(1),
                passed: true,
            });
        }
        let t0 = p.sm_tickets[&PredId(0)];
        let t1 = p.sm_tickets[&PredId(1)];
        assert!(t0 > t1 * 2.0, "t0={t0} t1={t1}");
    }

    #[test]
    fn benefit_cost_prefers_fresh_index_early_then_drops() {
        let mut p = BenefitCostPolicy::new(0.0, 2.0);
        let acts = vec![
            (
                Action::ProbeAm {
                    mid: 9,
                    table: TableIdx(1),
                },
                h(200_000), // 0.2 s lookup
            ),
            (Action::Drop, h(1)),
        ];
        let mut rng = SimRng::new(1);
        // Early: freshness starts at 1.0 ⇒ 5 results/s > drop_rate 2.0.
        let i = p.choose(&dummy_tuple(), &TupleState::new(), &acts, &mut rng);
        assert!(matches!(acts[i].0, Action::ProbeAm { .. }));
        // Feed many duplicate builds: freshness decays, Drop wins.
        for _ in 0..200 {
            p.feedback(&Feedback::AmBuild {
                mid: 9,
                fresh: false,
            });
        }
        let i = p.choose(&dummy_tuple(), &TupleState::new(), &acts, &mut rng);
        assert!(matches!(acts[i].0, Action::Drop));
    }

    #[test]
    fn benefit_cost_cost_sensitivity() {
        let mut p = BenefitCostPolicy::new(0.0, 0.0);
        // Two stems with equal yield: the cheaper one wins.
        let acts = vec![
            (
                Action::ProbeStem {
                    mid: 1,
                    table: TableIdx(1),
                },
                h(1_000),
            ),
            (
                Action::ProbeStem {
                    mid: 2,
                    table: TableIdx(2),
                },
                h(100_000),
            ),
        ];
        let i = p.choose(
            &dummy_tuple(),
            &TupleState::new(),
            &acts,
            &mut SimRng::new(3),
        );
        assert!(matches!(
            acts[i].0,
            Action::ProbeStem {
                table: TableIdx(1),
                ..
            }
        ));
    }

    #[test]
    fn exploration_floor_visits_all_arms() {
        let mut p = BenefitCostPolicy::new(0.2, 10.0);
        let acts = vec![
            (
                Action::ProbeAm {
                    mid: 9,
                    table: TableIdx(1),
                },
                h(200_000),
            ),
            (Action::Drop, h(1)),
        ];
        // Saturate so Drop dominates deterministically.
        for _ in 0..200 {
            p.feedback(&Feedback::AmBuild {
                mid: 9,
                fresh: false,
            });
        }
        let mut rng = SimRng::new(11);
        let am_picks = (0..1000)
            .filter(|_| {
                let i = p.choose(&dummy_tuple(), &TupleState::new(), &acts, &mut rng);
                matches!(acts[i].0, Action::ProbeAm { .. })
            })
            .count();
        // ~ epsilon/2 of choices explore the AM arm.
        assert!(am_picks > 30 && am_picks < 300, "am_picks={am_picks}");
    }

    #[test]
    fn benefit_cost_learns_to_defer_expensive_selection() {
        let mut p = BenefitCostPolicy::new(0.0, 0.0);
        // An unselective, nominally-cheap selection vs a selective join
        // probe. On the static hint alone the selection wins (cheap
        // filters first).
        let acts = vec![
            (
                Action::Select {
                    mid: 1,
                    pred: PredId(0),
                },
                h(10),
            ),
            (
                Action::ProbeStem {
                    mid: 2,
                    table: TableIdx(1),
                },
                h(500),
            ),
        ];
        let mut rng = SimRng::new(5);
        let i = p.choose(&dummy_tuple(), &TupleState::new(), &acts, &mut rng);
        assert!(matches!(acts[i].0, Action::Select { .. }));
        // Observations arrive: the selection passes almost everything and
        // each envelope reports a huge per-row cost (a cold expensive
        // UDF), while the probe's yield stays modest.
        for _ in 0..50 {
            p.feedback(&Feedback::Selected {
                pred: PredId(0),
                passed: true,
            });
            p.feedback(&Feedback::SelectCost {
                pred: PredId(0),
                rows: 10,
                cost_us: 10_000 * 10,
            });
            p.feedback(&Feedback::StemProbe {
                table: TableIdx(1),
                emitted: 1,
            });
        }
        // The learned cost overrides the optimistic hint: defer the
        // selection behind the join.
        let i = p.choose(&dummy_tuple(), &TupleState::new(), &acts, &mut rng);
        assert!(matches!(acts[i].0, Action::ProbeStem { .. }));
    }

    #[test]
    fn policy_kind_factory() {
        assert_eq!(RoutingPolicyKind::default().build().name(), "fixed");
        assert_eq!(RoutingPolicyKind::Lottery.build().name(), "lottery");
        assert_eq!(
            RoutingPolicyKind::BenefitCost {
                epsilon: 0.05,
                drop_rate: 2.0
            }
            .build()
            .name(),
            "benefit-cost"
        );
    }
}
