//! Execution reports.

use stems_catalog::{reference, Catalog, QuerySpec};
use stems_sim::{Metrics, Time};
use stems_types::{TableIdx, Tuple, Value};

/// What happened to a tuple at one routing step (recorded when
/// `ExecConfig::trace` is on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// Routed to a module.
    Route {
        action: &'static str,
        table: Option<TableIdx>,
    },
    /// Emitted as a query result.
    Output,
    /// Left the dataflow with nothing more to do.
    Retire,
    /// Parked awaiting new builds/EOTs on `table`.
    Park { table: TableIdx },
}

/// One routing-trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub t: Time,
    pub kind: TraceKind,
    /// Rendered tuple (content at the time of the event).
    pub tuple: String,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match &self.kind {
            TraceKind::Route { action, table } => match table {
                Some(t) => format!("{action}({t})"),
                None => (*action).to_string(),
            },
            TraceKind::Output => "output".to_string(),
            TraceKind::Retire => "retire".to_string(),
            TraceKind::Park { table } => format!("park({table})"),
        };
        write!(
            f,
            "{:>10.3}s {:<14} {}",
            stems_sim::to_secs(self.t),
            what,
            self.tuple
        )
    }
}

/// Everything a run produces: the result tuples, the metric series the
/// figures are drawn from, and bookkeeping for the test suites.
#[derive(Debug)]
pub struct Report {
    /// Output tuples, in emission order.
    pub results: Vec<Tuple>,
    /// Counters and time series ("results", "index_probes", ...).
    pub metrics: Metrics,
    /// Virtual completion time.
    pub end_time: Time,
    /// Events processed by the simulation loop.
    pub events: u64,
    /// Constraint violations detected (empty unless the checker found a
    /// bug; tests assert emptiness).
    pub violations: Vec<String>,
    /// The policy that ran.
    pub policy_name: &'static str,
    /// Routing trace (empty unless `ExecConfig::trace` was set).
    pub trace: Vec<TraceEvent>,
}

impl Report {
    /// Canonical (sorted, projected) form of the results for comparisons
    /// against the reference executor.
    pub fn canonical(&self, catalog: &Catalog, query: &QuerySpec) -> Vec<Vec<Value>> {
        reference::canonical(catalog, query, &self.results)
    }

    /// Convenience: value of a counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// Time at which `fraction` (0..=1) of the final result count had been
    /// emitted — the online-metric summary used by the experiments.
    /// `None` if there are no results or the fraction was never reached.
    pub fn time_to_fraction(&self, fraction: f64) -> Option<Time> {
        let series = self.metrics.series("results")?;
        let total = series.last_value();
        if total <= 0.0 {
            return None;
        }
        let target = total * fraction.clamp(0.0, 1.0);
        series
            .points()
            .iter()
            .find(|(_, v)| *v >= target)
            .map(|(t, _)| *t)
    }

    /// Render a short human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "policy={} results={} time={:.2}s events={} probes={} dups_absorbed={}{}",
            self.policy_name,
            self.results.len(),
            stems_sim::to_secs(self.end_time),
            self.events,
            self.counter("index_probes"),
            self.counter("duplicates_absorbed"),
            if self.violations.is_empty() {
                String::new()
            } else {
                format!(" VIOLATIONS={}", self.violations.len())
            }
        )
    }
}

/// One query's report under the multi-query server
/// ([`crate::server::QueryServer`]): the per-query [`Report`] plus its
/// place on the server's shared virtual timeline — the latency
/// bookkeeping `bench_server` aggregates into percentiles.
#[derive(Debug)]
pub struct ServerReport {
    /// Index of the query in admission order.
    pub query: usize,
    /// Virtual time the query was admitted.
    pub admitted_at: Time,
    /// Virtual time the query finished (its last event *and* its last
    /// scan stream closed).
    pub completed_at: Time,
    /// The per-query report, exactly as a solo run would produce it.
    pub report: Report,
}

impl ServerReport {
    /// Virtual latency from admission to completion.
    pub fn latency(&self) -> Time {
        self.completed_at.saturating_sub(self.admitted_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_key_counters() {
        let mut m = Metrics::new();
        m.bump("index_probes", 5, 3);
        let r = Report {
            results: vec![],
            metrics: m,
            end_time: 1_500_000,
            events: 42,
            violations: vec![],
            policy_name: "fixed",
            trace: vec![],
        };
        let s = r.summary();
        assert!(s.contains("results=0"));
        assert!(s.contains("probes=3"));
        assert!(s.contains("1.50s"));
        assert!(!s.contains("VIOLATIONS"));
    }

    #[test]
    fn summary_flags_violations() {
        let r = Report {
            results: vec![],
            metrics: Metrics::new(),
            end_time: 0,
            events: 0,
            violations: vec!["dup".into()],
            policy_name: "fixed",
            trace: vec![],
        };
        assert!(r.summary().contains("VIOLATIONS=1"));
    }
}
