//! Selection Modules (paper §2.1.2).
//!
//! "Selection modules are simple. When a selection module receives an input
//! tuple, it returns it to the eddy if it passes the selection predicate,
//! and removes it from the dataflow otherwise. To track the progress made,
//! if the tuple passes the predicate, the SM marks this fact in the tuple's
//! TupleState."

use stems_types::{PredId, Predicate, Tuple, TupleBatch};

/// A selection module wrapping one predicate.
#[derive(Debug, Clone)]
pub struct Sm {
    pub pred: Predicate,
}

impl Sm {
    pub fn new(pred: Predicate) -> Sm {
        debug_assert!(pred.is_selection(), "SMs wrap selection predicates");
        Sm { pred }
    }

    pub fn pred_id(&self) -> PredId {
        self.pred.id
    }

    /// Apply the predicate. `Some(true)` = passes (mark done and bounce
    /// back), `Some(false)` = fails (drop), `None` = not evaluable on this
    /// tuple's span (router error; treated as a drop in release builds).
    pub fn apply(&self, tuple: &Tuple) -> Option<bool> {
        self.pred.eval(tuple)
    }

    /// Apply the predicate to every tuple of a batch. One verdict per
    /// member, in batch order. The predicate evaluation itself is still
    /// row-at-a-time (vectorized predicate kernels are a planned
    /// follow-on); the batched engine path amortizes the envelope, event
    /// and routing-decision overhead around this call.
    pub fn apply_batch(&self, batch: &TupleBatch) -> Vec<Option<bool>> {
        batch.iter().map(|t| self.apply(t)).collect()
    }

    /// Observed selectivity helpers are kept by the policy, not here; the
    /// SM itself is stateless, as in the paper.
    pub fn describe(&self) -> String {
        self.pred.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::{CmpOp, ColRef, TableIdx, Value};

    fn sm_gt(threshold: i64) -> Sm {
        Sm::new(Predicate::selection(
            PredId(0),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Gt,
            Value::Int(threshold),
        ))
    }

    #[test]
    fn passes_and_fails() {
        let sm = sm_gt(10);
        let hi = Tuple::singleton_of(TableIdx(0), vec![Value::Int(99)]);
        let lo = Tuple::singleton_of(TableIdx(0), vec![Value::Int(3)]);
        assert_eq!(sm.apply(&hi), Some(true));
        assert_eq!(sm.apply(&lo), Some(false));
    }

    #[test]
    fn not_evaluable_on_wrong_span() {
        let sm = sm_gt(10);
        let other = Tuple::singleton_of(TableIdx(1), vec![Value::Int(99)]);
        assert_eq!(sm.apply(&other), None);
    }

    #[test]
    fn applies_to_composites() {
        let sm = sm_gt(10);
        let a = Tuple::singleton_of(TableIdx(0), vec![Value::Int(50)]);
        let b = Tuple::singleton_of(TableIdx(1), vec![Value::Int(1)]);
        assert_eq!(sm.apply(&a.concat(&b)), Some(true));
    }

    #[test]
    fn describe_mentions_predicate() {
        assert!(sm_gt(7).describe().contains('>'));
        assert_eq!(sm_gt(7).pred_id(), PredId(0));
    }
}
