//! Selection Modules (paper §2.1.2).
//!
//! "Selection modules are simple. When a selection module receives an input
//! tuple, it returns it to the eddy if it passes the selection predicate,
//! and removes it from the dataflow otherwise. To track the progress made,
//! if the tuple passes the predicate, the SM marks this fact in the tuple's
//! TupleState."

use stems_types::{PredId, Predicate, Tuple, TupleBatch};

/// A selection module wrapping one predicate.
#[derive(Debug, Clone)]
pub struct Sm {
    pub pred: Predicate,
}

impl Sm {
    pub fn new(pred: Predicate) -> Sm {
        debug_assert!(pred.is_selection(), "SMs wrap selection predicates");
        Sm { pred }
    }

    pub fn pred_id(&self) -> PredId {
        self.pred.id
    }

    /// Apply the predicate. `Some(true)` = passes (mark done and bounce
    /// back), `Some(false)` = fails (drop), `None` = not evaluable on this
    /// tuple's span (router error; treated as a drop in release builds).
    pub fn apply(&self, tuple: &Tuple) -> Option<bool> {
        self.pred.eval(tuple)
    }

    /// Apply the predicate to every tuple of a batch: one verdict per
    /// member, in batch order, verdict-for-verdict identical to calling
    /// [`Sm::apply`] in a loop.
    ///
    /// Dispatch rules (see [`stems_types::IntConstKernel`]): a selection
    /// of shape `col <op> Int-constant` — either orientation, any
    /// [`stems_types::CmpOp`] — whose batch column is all-`Int` runs as a
    /// column-at-a-time kernel: the column is gathered once, then one
    /// tight primitive comparison loop with the operator and constant
    /// hoisted out. Any other predicate shape, and any batch containing a
    /// `Null`, EOT, non-`Int`, or missing column value, falls back to the
    /// scalar [`stems_types::Predicate::eval`] loop, which remains the
    /// semantic ground truth (`tests/prop_kernel_equivalence.rs`).
    pub fn apply_batch(&self, batch: &TupleBatch) -> Vec<Option<bool>> {
        self.pred.eval_batch(batch)
    }

    /// Observed selectivity helpers are kept by the policy, not here; the
    /// SM itself is stateless, as in the paper.
    pub fn describe(&self) -> String {
        self.pred.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::{CmpOp, ColRef, TableIdx, Value};

    fn sm_gt(threshold: i64) -> Sm {
        Sm::new(Predicate::selection(
            PredId(0),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Gt,
            Value::Int(threshold),
        ))
    }

    #[test]
    fn passes_and_fails() {
        let sm = sm_gt(10);
        let hi = Tuple::singleton_of(TableIdx(0), vec![Value::Int(99)]);
        let lo = Tuple::singleton_of(TableIdx(0), vec![Value::Int(3)]);
        assert_eq!(sm.apply(&hi), Some(true));
        assert_eq!(sm.apply(&lo), Some(false));
    }

    #[test]
    fn not_evaluable_on_wrong_span() {
        let sm = sm_gt(10);
        let other = Tuple::singleton_of(TableIdx(1), vec![Value::Int(99)]);
        assert_eq!(sm.apply(&other), None);
    }

    #[test]
    fn applies_to_composites() {
        let sm = sm_gt(10);
        let a = Tuple::singleton_of(TableIdx(0), vec![Value::Int(50)]);
        let b = Tuple::singleton_of(TableIdx(1), vec![Value::Int(1)]);
        assert_eq!(sm.apply(&a.concat(&b)), Some(true));
    }

    #[test]
    fn describe_mentions_predicate() {
        assert!(sm_gt(7).describe().contains('>'));
        assert_eq!(sm_gt(7).pred_id(), PredId(0));
    }

    #[test]
    fn apply_batch_agrees_with_scalar_apply() {
        let sm = sm_gt(10);
        let batch: TupleBatch = vec![
            Tuple::singleton_of(TableIdx(0), vec![Value::Int(99)]),
            Tuple::singleton_of(TableIdx(0), vec![Value::Int(3)]),
            Tuple::singleton_of(TableIdx(0), vec![Value::Int(10)]),
            Tuple::singleton_of(TableIdx(1), vec![Value::Int(50)]), // wrong span
            Tuple::singleton_of(TableIdx(0), vec![Value::Null]),
        ]
        .into_iter()
        .collect();
        let want: Vec<_> = batch.iter().map(|t| sm.apply(t)).collect();
        assert_eq!(sm.apply_batch(&batch), want);
        assert_eq!(
            want,
            vec![Some(true), Some(false), Some(false), None, Some(false)]
        );
    }
}
