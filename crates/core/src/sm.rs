//! Selection Modules (paper §2.1.2).
//!
//! "Selection modules are simple. When a selection module receives an input
//! tuple, it returns it to the eddy if it passes the selection predicate,
//! and removes it from the dataflow otherwise. To track the progress made,
//! if the tuple passes the predicate, the SM marks this fact in the tuple's
//! TupleState."
//!
//! # Conjunction fusion
//!
//! The engine may hand an SM a batch together with *sibling* SMs — other
//! pending selections over the same table instance that every batch
//! member is also eligible for. [`Sm::apply_batch_fused`] then evaluates
//! the whole conjunction in one pass: each predicate runs column-at-a-time
//! over the rows still alive (via the kernels' masked entry point),
//! short-circuiting a row out of later predicates the moment one fails.
//! The per-predicate outcomes are reported exactly as a sequential scalar
//! cascade through separate SMs would report them: one `(pred, passed)`
//! observation per evaluation actually performed, none for predicates a
//! row never reached.

//! # Expensive UDF predicates
//!
//! A UDF-style predicate ([`stems_types::ExprKind::Udf`]) charges a
//! virtual latency per *computed* verdict, so the SM takes a dedicated
//! batch path ([`Sm::apply_batch_udf`]) that (a) groups the envelope's
//! rows by input key ([`HashedKey`], the hash-once plumbing) and
//! evaluates one representative per distinct key, scattering the verdict
//! to every duplicate, and (b) consults an optional [`MemoCell`] shared
//! across envelopes — and, under the query server, across queries — so a
//! verdict is computed once per distinct key ever seen. Both layers are
//! verdict-for-verdict identical to the scalar cascade
//! (`tests/prop_memo_equivalence.rs`); only the computed-call count (and
//! therefore virtual time) changes.

use crate::memo::{MemoCell, MemoCounters};
use stems_types::{ConstKernel, HashedKey, PredId, PredSet, Predicate, Tuple, TupleBatch};

/// A selection module wrapping one predicate. The predicate's columnar
/// kernel is derived **once** here — IN-list kernels sort and dedup their
/// member list at construction, so envelopes must not re-derive them per
/// batch.
#[derive(Debug, Clone)]
pub struct Sm {
    pub pred: Predicate,
    kernel: Option<ConstKernel>,
    /// Verdict memo for UDF predicates (`None`: memoization off or not a
    /// UDF). Shared handles mean shared entries (server folding).
    memo: Option<MemoCell>,
}

/// Outcome of one UDF batch: per-row verdicts plus the cost accounting
/// the engine needs to charge virtual latency for the calls actually
/// made and to surface memo observability counters.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfOutcome {
    /// One verdict per batch member, in batch order — identical to
    /// mapping [`Sm::apply`] over the batch.
    pub verdicts: Vec<Option<bool>>,
    /// Verdict-function invocations actually performed (each one costs
    /// the predicate's `cost_us` of virtual time).
    pub computed: u64,
    /// Memo hit/miss/eviction counts for this batch (all zero when the
    /// SM has no memo attached).
    pub memo: MemoCounters,
}

/// Per-tuple outcome of a fused selection cascade.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedVerdict {
    /// `Some(true)` — every predicate in the chain passed; `Some(false)` —
    /// dropped at the first failing predicate; `None` — a predicate was
    /// unexpectedly not evaluable on the tuple's span (router error).
    pub verdict: Option<bool>,
    /// Donebits earned: the predicates that evaluated to `true`.
    pub passed: PredSet,
    /// Chain-order `(pred, passed)` observations for policy feedback —
    /// exactly the `Feedback::Selected` events a sequential scalar cascade
    /// would have generated.
    pub evals: Vec<(PredId, bool)>,
}

impl Sm {
    pub fn new(pred: Predicate) -> Sm {
        debug_assert!(pred.is_selection(), "SMs wrap selection predicates");
        let kernel = pred.const_kernel();
        Sm {
            pred,
            kernel,
            memo: None,
        }
    }

    pub fn pred_id(&self) -> PredId {
        self.pred.id
    }

    /// Whether this SM wraps an expensive UDF-style predicate (routed
    /// through [`Sm::apply_batch_udf`] and excluded from conjunction
    /// fusion).
    pub fn is_udf(&self) -> bool {
        self.pred.udf_spec().is_some()
    }

    /// Attach (or replace) the verdict memo. The engine attaches a
    /// private cell per UDF spec; the query server folds a shared cell
    /// across compatible queries.
    pub fn set_memo(&mut self, memo: Option<MemoCell>) {
        debug_assert!(memo.is_none() || self.is_udf(), "memo on a non-UDF SM");
        self.memo = memo;
    }

    /// The attached memo cell, if any.
    pub fn memo_cell(&self) -> Option<&MemoCell> {
        self.memo.as_ref()
    }

    /// Apply the predicate. `Some(true)` = passes (mark done and bounce
    /// back), `Some(false)` = fails (drop), `None` = not evaluable on this
    /// tuple's span (router error; treated as a drop in release builds).
    pub fn apply(&self, tuple: &Tuple) -> Option<bool> {
        self.pred.eval(tuple)
    }

    /// Apply the predicate to every tuple of a batch: one verdict per
    /// member, in batch order, verdict-for-verdict identical to calling
    /// [`Sm::apply`] in a loop. Constant selections run as the typed
    /// partial-gather kernel cached at construction (see
    /// `stems_types::kernel` for the dispatch rules); everything else
    /// takes the scalar loop, which remains the semantic ground truth
    /// (`tests/prop_kernel_equivalence.rs`).
    pub fn apply_batch(&self, batch: &TupleBatch) -> Vec<Option<bool>> {
        self.eval_masked(batch, None)
    }

    /// One pass of this SM's predicate over the (masked) batch, through
    /// the cached kernel when there is one. Kernel-less predicates defer
    /// to [`Predicate::eval_batch_masked`], whose own kernel derivation is
    /// a cheap `None` for exactly these shapes.
    fn eval_masked(&self, batch: &TupleBatch, mask: Option<&[bool]>) -> Vec<Option<bool>> {
        match &self.kernel {
            Some(k) => k.eval_masked(&self.pred, batch, mask),
            None => self.pred.eval_batch_masked(batch, mask),
        }
    }

    /// Apply this SM's predicate *and* the `siblings` chain to every tuple
    /// of a batch in one pass — conjunction fusion. The chain order is
    /// this SM's predicate first, then `siblings` in the given order; a
    /// row that fails (or turns out not evaluable) short-circuits out of
    /// every later predicate. Every link runs through its own SM's cached
    /// kernel. With an empty `siblings` slice this is [`Sm::apply_batch`]
    /// plus bookkeeping.
    pub fn apply_batch_fused(&self, batch: &TupleBatch, siblings: &[&Sm]) -> Vec<FusedVerdict> {
        let n = batch.len();
        let mut out: Vec<FusedVerdict> = (0..n)
            .map(|_| FusedVerdict {
                verdict: Some(true),
                passed: PredSet::EMPTY,
                evals: Vec::new(),
            })
            .collect();
        let mut alive = vec![true; n];
        let mut alive_count = n;
        for (k, sm) in std::iter::once(&self).chain(siblings.iter()).enumerate() {
            if alive_count == 0 {
                break;
            }
            // The first predicate sees every row; later ones gather only
            // the survivors through the kernels' mask.
            let mask = if k == 0 { None } else { Some(alive.as_slice()) };
            let verdicts = sm.eval_masked(batch, mask);
            let pred_id = sm.pred_id();
            for (i, v) in verdicts.into_iter().enumerate() {
                if !alive[i] {
                    continue;
                }
                match v {
                    Some(true) => {
                        out[i].evals.push((pred_id, true));
                        out[i].passed.insert(pred_id);
                    }
                    Some(false) => {
                        out[i].evals.push((pred_id, false));
                        out[i].verdict = Some(false);
                        alive[i] = false;
                        alive_count -= 1;
                    }
                    None => {
                        out[i].verdict = None;
                        alive[i] = false;
                        alive_count -= 1;
                    }
                }
            }
        }
        out
    }

    /// Evaluate a UDF predicate over a batch: verdict-for-verdict
    /// identical to mapping [`Sm::apply`], but computing the verdict
    /// function as few times as the configuration allows.
    ///
    /// * `dedup: true` groups rows by input key first and evaluates one
    ///   representative per distinct key (the envelope-level dedup);
    /// * an attached memo (see [`Sm::set_memo`]) is consulted before any
    ///   computation and learns every computed verdict (the cross-batch,
    ///   cross-query layer).
    ///
    /// NULL/EOT inputs short-circuit to `Some(false)` without invoking —
    /// or charging for — the verdict function, matching
    /// [`stems_types::UdfSpec::verdict`]; rows that do not span the
    /// predicate's table yield `None` exactly like every other selection.
    pub fn apply_batch_udf(&self, batch: &TupleBatch, dedup: bool) -> UdfOutcome {
        let spec = *self.pred.udf_spec().expect("apply_batch_udf on a UDF SM");
        let n = batch.len();
        let mut out = UdfOutcome {
            verdicts: vec![None; n],
            computed: 0,
            memo: MemoCounters::default(),
        };
        // Rows with a hashable key, annotated once (hash-once pipeline);
        // `groups` maps a key hash to the representative rows seen so far
        // when dedup is on.
        let mut keyed: Vec<(usize, HashedKey)> = Vec::new();
        for (i, t) in batch.iter().enumerate() {
            let Some(v) = self.pred.left.resolve(t) else {
                continue; // wrong span: not evaluable
            };
            if v.is_null() || v.is_eot() {
                out.verdicts[i] = Some(false);
                continue;
            }
            keyed.push((i, HashedKey::new(v.clone())));
        }
        let mut groups: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        let verdict_of = |hk: &HashedKey, out: &mut UdfOutcome| -> bool {
            if let Some(memo) = &self.memo {
                if let Some(v) = memo.lookup(hk) {
                    out.memo.hits += 1;
                    return v;
                }
                let v = spec.verdict(hk.raw());
                out.computed += 1;
                out.memo.misses += 1;
                out.memo.evictions += memo.insert(hk, v);
                return v;
            }
            out.computed += 1;
            spec.verdict(hk.raw())
        };
        if dedup {
            for k in 0..keyed.len() {
                let (i, ref hk) = keyed[k];
                let hash = hk.hash().expect("keyed rows are hashable").get();
                let chain = groups.entry(hash).or_default();
                if let Some(&rep) = chain.iter().find(|&&r| keyed[r].1.same_lookup(hk)) {
                    // Duplicate of an earlier row: scatter its verdict.
                    out.verdicts[i] = out.verdicts[keyed[rep].0];
                    continue;
                }
                chain.push(k);
                let v = verdict_of(hk, &mut out);
                out.verdicts[i] = Some(v);
            }
        } else {
            for (i, hk) in &keyed {
                let v = verdict_of(hk, &mut out);
                out.verdicts[*i] = Some(v);
            }
        }
        out
    }

    /// Observed selectivity helpers are kept by the policy, not here; the
    /// SM itself is stateless, as in the paper.
    pub fn describe(&self) -> String {
        self.pred.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::{CmpOp, ColRef, TableIdx, Value};

    fn sm_gt(threshold: i64) -> Sm {
        Sm::new(Predicate::selection(
            PredId(0),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Gt,
            Value::Int(threshold),
        ))
    }

    #[test]
    fn passes_and_fails() {
        let sm = sm_gt(10);
        let hi = Tuple::singleton_of(TableIdx(0), vec![Value::Int(99)]);
        let lo = Tuple::singleton_of(TableIdx(0), vec![Value::Int(3)]);
        assert_eq!(sm.apply(&hi), Some(true));
        assert_eq!(sm.apply(&lo), Some(false));
    }

    #[test]
    fn not_evaluable_on_wrong_span() {
        let sm = sm_gt(10);
        let other = Tuple::singleton_of(TableIdx(1), vec![Value::Int(99)]);
        assert_eq!(sm.apply(&other), None);
    }

    #[test]
    fn applies_to_composites() {
        let sm = sm_gt(10);
        let a = Tuple::singleton_of(TableIdx(0), vec![Value::Int(50)]);
        let b = Tuple::singleton_of(TableIdx(1), vec![Value::Int(1)]);
        assert_eq!(sm.apply(&a.concat(&b)), Some(true));
    }

    #[test]
    fn describe_mentions_predicate() {
        assert!(sm_gt(7).describe().contains('>'));
        assert_eq!(sm_gt(7).pred_id(), PredId(0));
    }

    #[test]
    fn apply_batch_agrees_with_scalar_apply() {
        let sm = sm_gt(10);
        let batch: TupleBatch = vec![
            Tuple::singleton_of(TableIdx(0), vec![Value::Int(99)]),
            Tuple::singleton_of(TableIdx(0), vec![Value::Int(3)]),
            Tuple::singleton_of(TableIdx(0), vec![Value::Int(10)]),
            Tuple::singleton_of(TableIdx(1), vec![Value::Int(50)]), // wrong span
            Tuple::singleton_of(TableIdx(0), vec![Value::Null]),
        ]
        .into_iter()
        .collect();
        let want: Vec<_> = batch.iter().map(|t| sm.apply(t)).collect();
        assert_eq!(sm.apply_batch(&batch), want);
        assert_eq!(
            want,
            vec![Some(true), Some(false), Some(false), None, Some(false)]
        );
    }

    #[test]
    fn fused_chain_short_circuits_and_reports_per_pred() {
        // p0: c0 > 10, p1: c1 < 5 over table 0.
        let p1 = Predicate::selection(
            PredId(1),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Lt,
            Value::Int(5),
        );
        let sm = sm_gt(10);
        let sm1 = Sm::new(p1);
        let t = |a: i64, b: i64| Tuple::singleton_of(TableIdx(0), vec![a.into(), b.into()]);
        let batch: TupleBatch = vec![t(99, 1), t(3, 1), t(99, 9)].into_iter().collect();
        let out = sm.apply_batch_fused(&batch, &[&sm1]);
        // Row 0 passes both: both donebits, both feedback events.
        assert_eq!(out[0].verdict, Some(true));
        assert!(out[0].passed.contains(PredId(0)) && out[0].passed.contains(PredId(1)));
        assert_eq!(out[0].evals, vec![(PredId(0), true), (PredId(1), true)]);
        // Row 1 fails p0: p1 is never evaluated (short circuit).
        assert_eq!(out[1].verdict, Some(false));
        assert_eq!(out[1].evals, vec![(PredId(0), false)]);
        // Row 2 passes p0, fails p1.
        assert_eq!(out[2].verdict, Some(false));
        assert!(out[2].passed.contains(PredId(0)));
        assert_eq!(out[2].evals, vec![(PredId(0), true), (PredId(1), false)]);
    }

    #[test]
    fn udf_batch_dedup_and_memo_agree_with_scalar() {
        use crate::memo::MemoCache;
        use stems_types::UdfSpec;
        let spec = UdfSpec::hash_sieve(500, 1000);
        let pred = Predicate::udf(PredId(0), ColRef::new(TableIdx(0), 0), spec);
        let batch: TupleBatch = [7, 3, 7, 7, 3, 11]
            .iter()
            .map(|&v| Tuple::singleton_of(TableIdx(0), vec![Value::Int(v)]))
            .chain([
                Tuple::singleton_of(TableIdx(0), vec![Value::Null]),
                Tuple::singleton_of(TableIdx(1), vec![Value::Int(7)]), // wrong span
            ])
            .collect();
        let plain = Sm::new(pred.clone());
        let want: Vec<_> = batch.iter().map(|t| plain.apply(t)).collect();

        // No memo, no dedup: one call per evaluable non-null row.
        let out = plain.apply_batch_udf(&batch, false);
        assert_eq!(out.verdicts, want);
        assert_eq!(out.computed, 6);
        assert_eq!(out.memo, crate::memo::MemoCounters::default());

        // Dedup alone: one call per distinct key (7, 3, 11).
        let out = plain.apply_batch_udf(&batch, true);
        assert_eq!(out.verdicts, want);
        assert_eq!(out.computed, 3);

        // Memo alone: first batch misses per row until the cache warms
        // within the batch (row-at-a-time memo consult).
        let mut memoed = Sm::new(pred.clone());
        memoed.set_memo(Some(MemoCache::cell(2, 1 << 16)));
        let out = memoed.apply_batch_udf(&batch, false);
        assert_eq!(out.verdicts, want);
        assert_eq!(out.computed, 3, "duplicates hit the warming memo");
        assert_eq!(out.memo.hits, 3);
        assert_eq!(out.memo.misses, 3);
        // Second batch: all hits, nothing computed.
        let out = memoed.apply_batch_udf(&batch, true);
        assert_eq!(out.verdicts, want);
        assert_eq!(out.computed, 0);
        assert_eq!(out.memo.hits, 3, "one lookup per distinct key");
    }

    #[test]
    fn fused_with_no_siblings_matches_apply_batch() {
        let sm = sm_gt(10);
        let batch: TupleBatch = vec![
            Tuple::singleton_of(TableIdx(0), vec![Value::Int(99)]),
            Tuple::singleton_of(TableIdx(0), vec![Value::Int(3)]),
            Tuple::singleton_of(TableIdx(1), vec![Value::Int(50)]),
        ]
        .into_iter()
        .collect();
        let fused = sm.apply_batch_fused(&batch, &[]);
        let plain = sm.apply_batch(&batch);
        assert_eq!(fused.iter().map(|f| f.verdict).collect::<Vec<_>>(), plain);
        // Not-evaluable rows report no feedback, like the scalar engine.
        assert!(fused[2].evals.is_empty());
    }
}
