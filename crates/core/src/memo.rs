//! Verdict memoization for expensive UDF-style predicates.
//!
//! A [`MemoCache`] maps the *equality normal form* of a predicate's input
//! value ([`stems_types::Value::equality_key`], pre-hashed as a
//! [`HashedKey`]) to the UDF's boolean verdict, so a verdict is computed —
//! and its virtual latency paid — at most once per distinct key. Because a
//! [`stems_types::UdfSpec`] verdict is a pure function of the equality
//! key, replaying a cached verdict is semantically invisible: the only
//! observable difference is time.
//!
//! Structure: `num_shards` independently locked shards (hash-routed, like
//! the SteM shard fan-out), each a hash index over an entry slab with a
//! clock/second-chance eviction hand bounded by an
//! [`stems_types::Value::approx_bytes`] budget. Shards live behind the
//! [`crate::sync`] shim; poison recovery clears the poisoned shard — the
//! memo is pure performance state, so an empty shard is always correct.
//!
//! One cache memoizes exactly one verdict function. The query server
//! shares a [`MemoCell`] across queries whose predicates carry the same
//! `UdfSpec` (folding, PR 7's registry idiom): query B never re-pays a
//! verdict query A bought.

use crate::sync::{lock_recover, Arc, Mutex, MutexGuard};
use stems_types::{HashedKey, Value};

/// Default per-cache byte budget (`STEMS_MEMO_BYTES` overrides).
pub const DEFAULT_MEMO_BYTES: usize = 1 << 20;

/// Default shard fan-out for a memo cache.
pub const DEFAULT_MEMO_SHARDS: usize = 8;

/// Estimated per-entry bookkeeping on top of the key's own
/// `approx_bytes`: slab slot, index chain slot, verdict + clock bits.
const ENTRY_OVERHEAD: usize = 48;

/// A shareable handle on one [`MemoCache`] (what the server folds across
/// compatible queries; a solo query holds the only reference).
pub type MemoCell = Arc<MemoCache>;

/// Per-call counters a memo operation hands back to the caller, which
/// folds them into its own per-query `Metrics` — so even when the cache
/// itself is shared, each query observes *its* hits and misses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// One memoized verdict.
#[derive(Debug)]
struct MemoEntry {
    hash: u64,
    /// The input's equality normal form (dictionary-compared on lookup, so
    /// hash collisions between distinct keys can never alias verdicts).
    key: Value,
    verdict: bool,
    /// Second-chance bit: set on every hit, cleared when the clock hand
    /// sweeps past.
    referenced: bool,
}

impl MemoEntry {
    fn approx_bytes(&self) -> usize {
        self.key.approx_bytes() + ENTRY_OVERHEAD
    }
}

/// One lock's worth of cache: an entry slab plus a hash index over it.
#[derive(Default)]
struct MemoShard {
    /// Slab of entries; `None` slots are free (reused before growing).
    slab: Vec<Option<MemoEntry>>,
    free: Vec<usize>,
    /// hash → slab slots holding entries with that hash (collision chain).
    index: std::collections::HashMap<u64, Vec<usize>>,
    /// Clock hand for second-chance eviction, an index into `slab`.
    hand: usize,
    bytes: usize,
}

impl MemoShard {
    fn clear(&mut self) {
        self.slab.clear();
        self.free.clear();
        self.index.clear();
        self.hand = 0;
        self.bytes = 0;
    }

    fn lookup(&mut self, hash: u64, key: &Value) -> Option<bool> {
        let chain = self.index.get(&hash)?;
        for &slot in chain {
            let entry = self.slab[slot].as_mut().expect("indexed slot is live");
            if &entry.key == key {
                entry.referenced = true;
                return Some(entry.verdict);
            }
        }
        None
    }

    /// Insert a verdict, evicting clock victims until the shard fits its
    /// budget. Returns how many entries were evicted.
    fn insert(&mut self, hash: u64, key: Value, verdict: bool, budget: usize) -> u64 {
        let entry = MemoEntry {
            hash,
            key,
            verdict,
            referenced: false,
        };
        let need = entry.approx_bytes();
        let mut evicted = 0;
        while self.bytes + need > budget && self.live() > 0 {
            self.evict_one();
            evicted += 1;
        }
        self.bytes += need;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s] = Some(entry);
                s
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        };
        self.index.entry(hash).or_default().push(slot);
        evicted
    }

    fn live(&self) -> usize {
        self.slab.len() - self.free.len()
    }

    /// Advance the clock hand to the next victim: referenced entries get
    /// a second chance (bit cleared, hand moves on); the first
    /// unreferenced entry is evicted. Deterministic for a deterministic
    /// access sequence.
    fn evict_one(&mut self) {
        debug_assert!(self.live() > 0);
        loop {
            if self.hand >= self.slab.len() {
                self.hand = 0;
            }
            let slot = self.hand;
            self.hand += 1;
            let Some(entry) = self.slab[slot].as_mut() else {
                continue;
            };
            if entry.referenced {
                entry.referenced = false;
                continue;
            }
            let entry = self.slab[slot].take().expect("checked live above");
            self.bytes -= entry.approx_bytes();
            let chain = self
                .index
                .get_mut(&entry.hash)
                .expect("live entry is indexed");
            chain.retain(|&s| s != slot);
            if chain.is_empty() {
                self.index.remove(&entry.hash);
            }
            self.free.push(slot);
            return;
        }
    }
}

/// A sharded, capacity-bounded verdict memo. See the module docs.
pub struct MemoCache {
    shards: Vec<Mutex<MemoShard>>,
    budget_per_shard: usize,
}

impl MemoCache {
    /// A cache with `num_shards` lock shards splitting `budget_bytes`
    /// evenly (each shard enforces its slice independently, like the
    /// SteM shard budgets).
    pub fn new(num_shards: usize, budget_bytes: usize) -> MemoCache {
        let n = num_shards.max(1);
        MemoCache {
            shards: (0..n).map(|_| Mutex::new(MemoShard::default())).collect(),
            budget_per_shard: (budget_bytes / n).max(1),
        }
    }

    /// A shareable handle on a fresh cache.
    pub fn cell(num_shards: usize, budget_bytes: usize) -> MemoCell {
        Arc::new(MemoCache::new(num_shards, budget_bytes))
    }

    /// The memoized verdict for `key`, if present. NULL/EOT keys have no
    /// equality form and are never cached (their verdict is uniformly
    /// `false` and costs nothing — callers short-circuit them).
    pub fn lookup(&self, key: &HashedKey) -> Option<bool> {
        let hash = key.hash()?.get();
        let normal = key.key()?;
        self.shard(hash).lookup(hash, normal)
    }

    /// Memoize a computed verdict. Returns the number of entries evicted
    /// to make room. NULL/EOT keys are silently not cached.
    pub fn insert(&self, key: &HashedKey, verdict: bool) -> u64 {
        let (Some(hash), Some(normal)) = (key.hash(), key.key()) else {
            return 0;
        };
        let budget = self.budget_per_shard;
        self.shard(hash.get())
            .insert(hash.get(), normal.clone(), verdict, budget)
    }

    /// Total live entries across shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| lock_recover(&self.shards[i], MemoShard::clear).live())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total accounted bytes across shards.
    pub fn approx_bytes(&self) -> usize {
        (0..self.shards.len())
            .map(|i| lock_recover(&self.shards[i], MemoShard::clear).bytes)
            .sum()
    }

    fn shard(&self, hash: u64) -> MutexGuard<'_, MemoShard> {
        let i = (hash % self.shards.len() as u64) as usize;
        // Poison recovery: a memo shard is pure performance state — a
        // panicking evaluator may have died mid-insert, so discard the
        // shard's contents; an empty shard is always correct.
        lock_recover(&self.shards[i], MemoShard::clear)
    }

    /// Whether any shard is currently poisoned (test observability).
    pub fn any_poisoned(&self) -> bool {
        self.shards.iter().any(|s| s.is_poisoned())
    }

    /// Run `f` under the lock of the shard `hash` routes to. Exists for
    /// tests that plant adversarial collision chains or poison a shard
    /// deliberately (panic inside `f`); production code goes through
    /// [`lookup`](MemoCache::lookup) / [`insert`](MemoCache::insert).
    #[doc(hidden)]
    pub fn with_shard_of<R>(&self, hash: u64, f: impl FnOnce(&mut dyn std::any::Any) -> R) -> R {
        f(&mut *self.shard(hash))
    }

    /// Plant an entry under an explicit hash, bypassing the key's own
    /// hash — the adversarial-collision seam for the property suite.
    #[doc(hidden)]
    pub fn insert_with_hash(&self, hash: u64, key: Value, verdict: bool) {
        let budget = self.budget_per_shard;
        self.shard(hash).insert(hash, key, verdict, budget);
    }

    /// Lookup under an explicit hash (pairs with
    /// [`insert_with_hash`](MemoCache::insert_with_hash)).
    #[doc(hidden)]
    pub fn lookup_with_hash(&self, hash: u64, key: &Value) -> Option<bool> {
        self.shard(hash).lookup(hash, key)
    }
}

impl std::fmt::Debug for MemoCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoCache")
            .field("shards", &self.shards.len())
            .field("budget_per_shard", &self.budget_per_shard)
            .field("entries", &self.len())
            .field("bytes", &self.approx_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hk(i: i64) -> HashedKey {
        HashedKey::new(Value::Int(i))
    }

    #[test]
    fn lookup_after_insert_and_coercion() {
        let m = MemoCache::new(4, 1 << 16);
        assert_eq!(m.lookup(&hk(5)), None);
        m.insert(&hk(5), true);
        assert_eq!(m.lookup(&hk(5)), Some(true));
        // Float(5.0) normalizes to the same equality key as Int(5).
        assert_eq!(m.lookup(&HashedKey::new(Value::Float(5.0))), Some(true));
        assert_eq!(m.lookup(&hk(6)), None);
        assert_eq!(m.len(), 1);
        assert!(m.approx_bytes() > 0);
    }

    #[test]
    fn null_and_eot_keys_never_cached() {
        let m = MemoCache::new(2, 1 << 16);
        for v in [Value::Null, Value::Eot] {
            let k = HashedKey::new(v);
            assert_eq!(m.insert(&k, true), 0);
            assert_eq!(m.lookup(&k), None);
        }
        assert!(m.is_empty());
    }

    #[test]
    fn budget_bounds_bytes_with_clock_eviction() {
        // Single shard, room for only a few Int entries.
        let m = MemoCache::new(1, 4 * (ENTRY_OVERHEAD + std::mem::size_of::<Value>()));
        let mut evictions = 0;
        for i in 0..100 {
            evictions += m.insert(&hk(i), i % 2 == 0);
        }
        assert!(evictions >= 96, "evicted {evictions}");
        assert!(m.len() <= 4);
        assert!(m.approx_bytes() <= 4 * (ENTRY_OVERHEAD + std::mem::size_of::<Value>()));
        // The survivors still answer correctly.
        let mut live = 0;
        for i in 0..100 {
            if let Some(v) = m.lookup(&hk(i)) {
                assert_eq!(v, i % 2 == 0);
                live += 1;
            }
        }
        assert_eq!(live, m.len());
    }

    #[test]
    fn second_chance_prefers_hot_entries() {
        let budget = 3 * (ENTRY_OVERHEAD + std::mem::size_of::<Value>());
        let m = MemoCache::new(1, budget);
        m.insert(&hk(1), true);
        m.insert(&hk(2), false);
        m.insert(&hk(3), true);
        // Touch key 1: its referenced bit shields it from the next sweep.
        assert_eq!(m.lookup(&hk(1)), Some(true));
        m.insert(&hk(4), false);
        assert_eq!(m.lookup(&hk(1)), Some(true), "hot entry survived");
        assert_eq!(m.lookup(&hk(2)), None, "cold entry was the victim");
    }

    #[test]
    fn collision_chains_compare_full_keys() {
        let m = MemoCache::new(1, 1 << 16);
        // Two distinct keys planted under one hash: the chain must
        // dictionary-compare keys, not trust the hash.
        m.insert_with_hash(42, Value::Int(1), true);
        m.insert_with_hash(42, Value::Int(2), false);
        assert_eq!(m.lookup_with_hash(42, &Value::Int(1)), Some(true));
        assert_eq!(m.lookup_with_hash(42, &Value::Int(2)), Some(false));
        assert_eq!(m.lookup_with_hash(42, &Value::Int(3)), None);
    }

    #[test]
    fn poisoned_shard_recovers_empty() {
        let m = MemoCache::new(1, 1 << 16);
        m.insert(&hk(7), true);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.with_shard_of(0, |_| panic!("die holding the shard lock"));
        }));
        assert!(caught.is_err());
        assert!(m.any_poisoned());
        // Recovery clears the shard; the cache keeps working.
        assert_eq!(m.lookup(&hk(7)), None);
        assert!(!m.any_poisoned());
        m.insert(&hk(7), false);
        assert_eq!(m.lookup(&hk(7)), Some(false));
    }

    #[test]
    fn string_keys_charge_arc_header_convention() {
        let m = MemoCache::new(1, 1 << 16);
        let k = HashedKey::new(Value::str("hello"));
        m.insert(&k, true);
        assert_eq!(
            m.approx_bytes(),
            Value::str("hello").approx_bytes() + ENTRY_OVERHEAD
        );
    }
}
