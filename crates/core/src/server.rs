//! The multi-query server: admit a stream of parsed [`QuerySpec`]s,
//! execute them *concurrently* on one deterministic virtual timeline, and
//! **fold** compatible SteMs so each scanned row is built once and probed
//! by every interested query — the paper's multiquery motivation for
//! making state a first-class module ("the state managed by SteMs can be
//! shared across queries", §1 / §5).
//!
//! # What is shared, what stays per-query
//!
//! * **Scan streams** collapse per *source*: one [`ScanAm`] per table fans
//!   each chunk wave out to every subscribed query, however many queries
//!   read the table.
//! * **SteMs** are shared through a registry keyed by
//!   [`StemKey`] — `(source, join columns, resolved SteM options)`. When
//!   query B's key matches query A's, B's plan is rewired
//!   ([`EddyExecutor::fold_stem`]) to probe the *same* [`StemCell`] A
//!   uses: one build, N probers. The server performs the builds itself
//!   (one build service per scan wave per entry, not per query) and hands
//!   every subscriber the same timestamped singletons.
//! * **Routers, routing policies, SMs, index AMs and result sets stay
//!   per-query** — each query adapts its routing independently; only
//!   state and scan work are shared.
//!
//! An instance does *not* fold when its source has an index AM (the
//! bounce protocol then depends on per-query probe traffic), when it uses
//! Grace-style `deferred_bounce`, when it is `no_stem`-relaxed (§3.5), or
//! when an earlier instance of the *same query* already claimed the entry
//! (a self-join needs two dictionaries). Unfolded instances get a **raw**
//! subscription: the shared scan stream delivered as plain unstamped
//! singletons, built into the query's private SteM exactly as if its own
//! scan had emitted them.
//!
//! # Determinism contract
//!
//! One global virtual clock merges all executors. At every instant the
//! server first applies its own events (admissions, scan waves, build
//! completions), then steps each query's executor in admission order. A
//! single server-global build-timestamp counter threads through all
//! folded executors, so a query's *observable* behaviour — ordered
//! results, events, metrics, end time — is bit-identical whether it runs
//! alone (`N = 1`) or alongside any number of concurrent queries:
//! interleaving other queries only relabels the *gaps* in the timestamp
//! sequence, never the relative order of any two stamps one query can
//! compare (`tests/server_folding.rs` sweeps this invariant).
//!
//! With folding disabled the server degenerates to a pure merge of
//! independent classic executors — each query behaves exactly like a solo
//! [`EddyExecutor::run`]; `bench_server` uses that mode as the baseline
//! the folding throughput gain is measured against.

use crate::am::ScanAm;
use crate::engine::{EddyExecutor, ExecConfig};
use crate::plan::StemCell;
use crate::report::ServerReport;
use crate::sharded::ShardedStem;
use crate::stem::{make_scan_eot_row, BuildResult, StemOptions};
use crate::sync::Arc;
use crate::tuple_state::TupleState;
use stems_catalog::{AccessMethodDef, Catalog, QuerySpec, SourceId};
use stems_sim::{EventQueue, Time};
use stems_types::{Result, Row, TableIdx, Timestamp, Tuple, TupleBatch};

/// SteM-sharing compatibility key. Two instances may share one SteM only
/// if they scan the same source, index it by the same (canonicalized)
/// join columns, and resolve to identical SteM options — options affect
/// virtual service durations (shard fan-out) and storage semantics
/// (backend, eviction window), so any mismatch would leak one query's
/// configuration into another's timeline.
#[derive(Debug, Clone, PartialEq)]
struct StemKey {
    source: SourceId,
    join_cols: Vec<usize>,
    opts: StemOptions,
}

/// One shared SteM plus the build log its subscribers replay.
struct SharedEntry {
    key: StemKey,
    cell: StemCell,
    /// Fresh builds in arrival order with their global timestamps.
    /// Server-absorbed duplicates are omitted — every subscriber would
    /// have absorbed them identically.
    log: Vec<(Arc<Row>, Timestamp)>,
    /// Log prefix whose `DeliverBuilt` has fired (safe to hand to
    /// late-admitted subscribers immediately).
    released: usize,
    /// Scan EOT built into the SteM.
    eot_applied: bool,
    /// Scan EOT announced to subscribers.
    eot_released: bool,
    /// The SteM build server is busy until this time; waves queue FIFO.
    busy_until: Time,
}

/// One scan stream, shared by every query reading the source.
struct ServerScan {
    source: SourceId,
    am: ScanAm,
    arity: usize,
    /// Rows emitted so far — the catch-up prefix for late admissions.
    emitted: Vec<Arc<Row>>,
    eot: bool,
}

/// A query instance rewired onto a shared SteM.
struct FoldedSub {
    entry: usize,
    table: TableIdx,
    /// Position in the entry's build log delivered so far.
    cursor: usize,
    eot_seen: bool,
}

/// A query's instances fed raw rows from a shared scan stream.
struct RawSub {
    scan: usize,
    tables: Vec<TableIdx>,
    eot_seen: bool,
}

struct QuerySlot {
    query: QuerySpec,
    config: ExecConfig,
    exec: Option<EddyExecutor>,
    admitted_at: Time,
    active: bool,
    folded: Vec<FoldedSub>,
    raw: Vec<RawSub>,
    report: Option<ServerReport>,
}

impl QuerySlot {
    fn streams_open(&self) -> bool {
        self.folded.iter().any(|s| !s.eot_seen) || self.raw.iter().any(|s| !s.eot_seen)
    }
}

enum ServerEvent {
    /// Activate an admitted query.
    Admit(usize),
    /// A shared scan emits its next chunk (or EOT).
    ScanEmit(usize),
    /// A shared SteM finished servicing a build wave: release the log
    /// prefix `..upto` to every subscriber.
    DeliverBuilt {
        entry: usize,
        upto: usize,
        eot: bool,
    },
}

/// How much state a server run shared (one entry/stream serving N
/// queries is the whole point — `tests/server_folding.rs` and
/// `bench_server` assert on these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Shared SteM registry entries created.
    pub shared_stems: usize,
    /// Shared scan streams created (folding mode only).
    pub scan_streams: usize,
    /// Rows built into shared SteMs — once per entry, not per query.
    pub shared_builds: u64,
}

/// Concurrent multi-query executor over shared SteMs — see the module
/// docs for the sharing and determinism contracts.
pub struct QueryServer<'a> {
    catalog: &'a Catalog,
    config: ExecConfig,
    fold: bool,
    now: Time,
    /// Server-global build-timestamp counter, threaded through every
    /// folded executor so all stamps live on one total order.
    ts_counter: Timestamp,
    agenda: EventQueue<ServerEvent>,
    scans: Vec<ServerScan>,
    entries: Vec<SharedEntry>,
    slots: Vec<QuerySlot>,
}

impl<'a> QueryServer<'a> {
    /// A server over `catalog`. `fold` enables SteM sharing; with it off
    /// every query runs a fully private classic executor (the bench
    /// baseline). `config` is the default per-query configuration and
    /// also sizes the shared scan chunks.
    pub fn new(catalog: &'a Catalog, config: ExecConfig, fold: bool) -> Result<QueryServer<'a>> {
        config
            .validate()
            .map_err(|e| stems_types::StemsError::Schema(e.to_string()))?;
        Ok(QueryServer {
            catalog,
            config,
            fold,
            now: 0,
            ts_counter: 0,
            agenda: EventQueue::new(),
            scans: Vec::new(),
            entries: Vec::new(),
            slots: Vec::new(),
        })
    }

    /// Admit a query at time 0 with the server's default config.
    pub fn admit(&mut self, query: QuerySpec) -> Result<usize> {
        self.admit_at(0, query)
    }

    /// Admit a query at virtual time `at` (clamped to the present).
    pub fn admit_at(&mut self, at: Time, query: QuerySpec) -> Result<usize> {
        let config = self.config.clone();
        self.admit_with_config(at, query, config)
    }

    /// Admit a query with its own configuration (policy, seed, plan
    /// options...). The query folds onto a shared SteM only where its
    /// *resolved* options match the entry's — config divergence simply
    /// degrades to private state, never to wrong answers.
    pub fn admit_with_config(
        &mut self,
        at: Time,
        query: QuerySpec,
        config: ExecConfig,
    ) -> Result<usize> {
        let exec = if self.fold {
            EddyExecutor::build_unseeded(self.catalog, &query, config.clone())?
        } else {
            EddyExecutor::build(self.catalog, &query, config.clone())?
        };
        let idx = self.slots.len();
        self.slots.push(QuerySlot {
            query,
            config,
            exec: Some(exec),
            admitted_at: 0,
            active: false,
            folded: Vec::new(),
            raw: Vec::new(),
            report: None,
        });
        self.agenda.push(at.max(self.now), ServerEvent::Admit(idx));
        Ok(idx)
    }

    /// Run every admitted query to completion; reports come back in
    /// admission order.
    pub fn run(self) -> Vec<ServerReport> {
        self.run_with_stats().0
    }

    /// [`QueryServer::run`], plus a summary of how much state the run
    /// actually shared.
    pub fn run_with_stats(mut self) -> (Vec<ServerReport>, ServerStats) {
        loop {
            let server_next = self.agenda.peek_time();
            let exec_next = self
                .slots
                .iter()
                .filter(|s| s.active)
                .filter_map(|s| s.exec.as_ref().and_then(EddyExecutor::next_time))
                .min();
            let t = match (server_next, exec_next) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            self.now = t;
            // Server events first: every wave a query can observe at `t`
            // is delivered before any executor steps, so the interleaving
            // is a pure function of the timeline — not of N.
            while self.agenda.peek_time() == Some(t) {
                let (_, ev) = self.agenda.pop().expect("peeked event");
                match ev {
                    ServerEvent::Admit(i) => self.on_admit(i),
                    ServerEvent::ScanEmit(si) => self.on_scan_emit(si),
                    ServerEvent::DeliverBuilt { entry, upto, eot } => {
                        self.on_deliver_built(entry, upto, eot)
                    }
                }
            }
            // Then each executor drains its own events up to `t`, in
            // admission order, threading the global timestamp counter.
            for idx in 0..self.slots.len() {
                if !self.slots[idx].active {
                    continue;
                }
                let fold = self.fold;
                let exec = self.slots[idx].exec.as_mut().expect("active slot");
                if fold {
                    exec.set_ts_counter(self.ts_counter);
                }
                while exec.next_time().is_some_and(|nt| nt <= t) {
                    exec.step();
                }
                if fold {
                    self.ts_counter = exec.ts_counter();
                }
            }
            self.sweep_completions();
        }
        self.sweep_completions();
        let stats = ServerStats {
            shared_stems: self.entries.len(),
            scan_streams: self.scans.len(),
            shared_builds: self.entries.iter().map(|e| e.log.len() as u64).sum(),
        };
        let reports = self
            .slots
            .into_iter()
            .map(|s| s.report.expect("query ran to completion"))
            .collect();
        (reports, stats)
    }

    /// Activate slot `idx`: decide folding per instance, rewire the plan,
    /// subscribe to scan streams, and catch up on anything the streams
    /// already produced.
    fn on_admit(&mut self, idx: usize) {
        let now = self.now;
        self.slots[idx].admitted_at = now;
        self.slots[idx].active = true;
        if !self.fold {
            // Classic executor: self-contained, scans seeded privately.
            return;
        }
        let query = self.slots[idx].query.clone();
        let plan_opts = self.slots[idx].config.resolved_plan_opts();
        let mut claimed: Vec<usize> = Vec::new();
        let mut raw_tables: Vec<(SourceId, Vec<TableIdx>)> = Vec::new();
        for t in 0..query.n_tables() {
            let ti = TableIdx(t as u8);
            let source = query.instance(ti).source;
            if !self.catalog.has_scan(source) {
                // Index-only source: driven by probes, nothing to stream.
                continue;
            }
            let opts = plan_opts.stem_opts_for(ti);
            let foldable = !self.catalog.has_index(source)
                && !opts.deferred_bounce
                && !plan_opts.no_stem.contains(ti);
            if foldable {
                let key = StemKey {
                    source,
                    join_cols: query.join_cols_of(ti),
                    opts,
                };
                let ei = match self.entries.iter().position(|e| e.key == key) {
                    // A self-join over the same key needs two
                    // dictionaries; the second instance stays private.
                    Some(ei) if claimed.contains(&ei) => None,
                    Some(ei) => Some(ei),
                    None => Some(self.new_entry(key, ti)),
                };
                if let Some(ei) = ei {
                    claimed.push(ei);
                    self.ensure_scan(source);
                    self.subscribe_folded(idx, ei, ti);
                    continue;
                }
            }
            match raw_tables.iter_mut().find(|(s, _)| *s == source) {
                Some((_, tables)) => tables.push(ti),
                None => raw_tables.push((source, vec![ti])),
            }
        }
        for (source, tables) in raw_tables {
            let si = self.ensure_scan(source);
            self.subscribe_raw(idx, si, tables);
        }
    }

    /// Create a shared entry for `key`, replaying any prefix its source's
    /// scan already emitted so the newcomer's SteM matches what a
    /// from-the-start subscriber would hold.
    fn new_entry(&mut self, key: StemKey, instance: TableIdx) -> usize {
        let stem = ShardedStem::new(
            instance,
            key.source,
            &key.join_cols,
            true,  // foldable requires a scan AM
            false, // ... and no index AM
            key.opts.clone(),
        );
        let ei = self.entries.len();
        self.entries.push(SharedEntry {
            key,
            cell: StemCell::new(stem),
            log: Vec::new(),
            released: 0,
            eot_applied: false,
            eot_released: false,
            busy_until: self.now,
        });
        let source = self.entries[ei].key.source;
        if let Some(si) = self.scans.iter().position(|s| s.source == source) {
            let rows = self.scans[si].emitted.clone();
            let eot = self.scans[si].eot;
            let arity = self.scans[si].arity;
            if !rows.is_empty() || eot {
                self.build_into_entry(ei, &rows, eot, arity);
            }
        }
        ei
    }

    /// Rewire slot `idx`'s instance `ti` onto entry `ei` and deliver the
    /// released log prefix (late admission catch-up).
    fn subscribe_folded(&mut self, idx: usize, ei: usize, ti: TableIdx) {
        let exec = self.slots[idx].exec.as_mut().expect("admitting slot");
        exec.fold_stem(ti, &self.entries[ei].cell);
        let entry = &self.entries[ei];
        let stamped: Vec<Tuple> = entry.log[..entry.released]
            .iter()
            .map(|(row, ts)| Tuple::singleton(ti, Arc::clone(row)).with_timestamp(ti, *ts))
            .collect();
        if !stamped.is_empty() || entry.eot_released {
            exec.deliver_folded_wave(self.now, ti, &stamped, entry.eot_released);
        }
        self.slots[idx].folded.push(FoldedSub {
            entry: ei,
            table: ti,
            cursor: entry.released,
            eot_seen: entry.eot_released,
        });
    }

    /// Subscribe slot `idx`'s instances to scan `si` raw, catching up on
    /// the emitted prefix (and EOT, if the scan already finished).
    fn subscribe_raw(&mut self, idx: usize, si: usize, tables: Vec<TableIdx>) {
        let scan = &self.scans[si];
        let eot = scan.eot;
        let mut tuples = Vec::new();
        for row in &scan.emitted {
            for &t in &tables {
                tuples.push(Tuple::singleton(t, Arc::clone(row)));
            }
        }
        if eot {
            for &t in &tables {
                tuples.push(Tuple::singleton(t, make_scan_eot_row(scan.arity)));
            }
        }
        if !tuples.is_empty() {
            let exec = self.slots[idx].exec.as_mut().expect("admitting slot");
            exec.deliver_raw_wave(self.now, tuples);
        }
        self.slots[idx].raw.push(RawSub {
            scan: si,
            tables,
            eot_seen: eot,
        });
    }

    /// The shared scan stream for `source`, creating (and scheduling) it
    /// on first subscription. Multiple competitive scan AMs collapse to
    /// one stream built from the first spec.
    fn ensure_scan(&mut self, source: SourceId) -> usize {
        if let Some(si) = self.scans.iter().position(|s| s.source == source) {
            return si;
        }
        let catalog = self.catalog;
        let table = catalog.table_expect(source);
        let arity = table.schema.arity();
        let spec = catalog
            .ams_of(source)
            .into_iter()
            .find_map(|(_, d)| match d {
                AccessMethodDef::Scan(s) => Some(s),
                _ => None,
            })
            .expect("scan subscription on a scan-less source");
        // The dummy instance makes each emitted batch map 1:1 to rows;
        // the server re-tags rows per subscriber.
        let mut am = ScanAm::new(
            source,
            vec![TableIdx(0)],
            table.rows().to_vec(),
            arity,
            spec,
        );
        am.clamp_chunk(self.config.batch_size);
        let si = self.scans.len();
        self.agenda
            .push(self.now + am.first_emit_time(), ServerEvent::ScanEmit(si));
        self.scans.push(ServerScan {
            source,
            am,
            arity,
            emitted: Vec::new(),
            eot: false,
        });
        si
    }

    /// A scan wave: build it into every shared entry on the source (once
    /// per entry — the folding win) and fan it raw to every raw sub.
    fn on_scan_emit(&mut self, si: usize) {
        let (batch, next) = self.scans[si].am.emit_next(self.now);
        if let Some(nt) = next {
            self.agenda.push(nt, ServerEvent::ScanEmit(si));
        }
        let mut rows: Vec<Arc<Row>> = Vec::new();
        let mut eot = false;
        for t in batch {
            let row = Arc::clone(&t.components()[0].row);
            if row.is_eot() {
                eot = true;
            } else {
                rows.push(row);
            }
        }
        let source = self.scans[si].source;
        let arity = self.scans[si].arity;
        self.scans[si].emitted.extend(rows.iter().cloned());
        if eot {
            self.scans[si].eot = true;
        }
        for ei in 0..self.entries.len() {
            if self.entries[ei].key.source == source {
                self.build_into_entry(ei, &rows, eot, arity);
            }
        }
        for idx in 0..self.slots.len() {
            if !self.slots[idx].active {
                continue;
            }
            let mut tuples = Vec::new();
            for sub in self.slots[idx].raw.iter_mut() {
                if sub.scan != si {
                    continue;
                }
                // Classic emission order: rows outer, instances inner.
                for row in &rows {
                    for &t in &sub.tables {
                        tuples.push(Tuple::singleton(t, Arc::clone(row)));
                    }
                }
                if eot {
                    for &t in &sub.tables {
                        tuples.push(Tuple::singleton(t, make_scan_eot_row(arity)));
                    }
                    sub.eot_seen = true;
                }
            }
            if !tuples.is_empty() {
                let exec = self.slots[idx].exec.as_mut().expect("active slot");
                exec.deliver_raw_wave(self.now, tuples);
            }
        }
    }

    /// Build `rows` (and EOT) into entry `ei` now, consuming global
    /// timestamps, and schedule the subscriber release for when the
    /// SteM's build server has absorbed the wave.
    fn build_into_entry(&mut self, ei: usize, rows: &[Arc<Row>], eot: bool, arity: usize) {
        let apply_eot = eot && !self.entries[ei].eot_applied;
        if rows.is_empty() && !apply_eot {
            return;
        }
        let cell = self.entries[ei].cell.share();
        let mut stem = cell.lock();
        let instance = stem.instance;
        let mut batch: TupleBatch = rows
            .iter()
            .map(|r| Tuple::singleton(instance, Arc::clone(r)))
            .collect();
        if apply_eot {
            batch.push(Tuple::singleton(instance, make_scan_eot_row(arity)));
        }
        let states = vec![TupleState::new(); batch.len()];
        let mut ts = self.ts_counter;
        let results = stem.build_batch(&batch, &states, &mut ts);
        self.ts_counter = ts;
        drop(stem);
        let entry = &mut self.entries[ei];
        let mut results = results.into_iter();
        for row in rows {
            if let Some(BuildResult::Fresh(stamped)) = results.next() {
                entry.log.push((Arc::clone(row), stamped.timestamp()));
            }
            // Duplicates are absorbed server-side: every subscriber
            // would have absorbed them identically, so nothing ships.
        }
        if apply_eot {
            entry.eot_applied = true;
        }
        let wave = batch.len() as u64;
        let t_done = self.now.max(entry.busy_until) + self.config.costs.stem_build_us * wave.max(1);
        entry.busy_until = t_done;
        self.agenda.push(
            t_done,
            ServerEvent::DeliverBuilt {
                entry: ei,
                upto: entry.log.len(),
                eot: apply_eot,
            },
        );
    }

    /// A build wave finished service: hand every subscriber its stamped
    /// singletons (plus the EOT signal on the final wave).
    fn on_deliver_built(&mut self, ei: usize, upto: usize, eot: bool) {
        {
            let entry = &mut self.entries[ei];
            entry.released = entry.released.max(upto);
            if eot {
                entry.eot_released = true;
            }
        }
        for idx in 0..self.slots.len() {
            if !self.slots[idx].active {
                continue;
            }
            let mut wave: Option<(TableIdx, Vec<Tuple>, bool)> = None;
            for sub in self.slots[idx].folded.iter_mut() {
                if sub.entry != ei {
                    continue;
                }
                let stamped: Vec<Tuple> = if sub.cursor < upto {
                    self.entries[ei].log[sub.cursor..upto]
                        .iter()
                        .map(|(row, ts)| {
                            Tuple::singleton(sub.table, Arc::clone(row))
                                .with_timestamp(sub.table, *ts)
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                sub.cursor = sub.cursor.max(upto);
                let deliver_eot = eot && !sub.eot_seen;
                if deliver_eot {
                    sub.eot_seen = true;
                }
                if !stamped.is_empty() || deliver_eot {
                    wave = Some((sub.table, stamped, deliver_eot));
                }
            }
            if let Some((table, stamped, deliver_eot)) = wave {
                let exec = self.slots[idx].exec.as_mut().expect("active slot");
                exec.deliver_folded_wave(self.now, table, &stamped, deliver_eot);
            }
        }
    }

    /// Retire every query whose executor has drained and whose scan
    /// streams have all closed.
    fn sweep_completions(&mut self) {
        for idx in 0..self.slots.len() {
            let slot = &self.slots[idx];
            if !slot.active
                || slot.streams_open()
                || slot.exec.as_ref().is_some_and(|e| e.next_time().is_some())
            {
                continue;
            }
            let exec = self.slots[idx].exec.take().expect("active slot");
            let completed_at = exec.now();
            let report = exec.finish();
            self.slots[idx].report = Some(ServerReport {
                query: idx,
                admitted_at: self.slots[idx].admitted_at,
                completed_at,
                report,
            });
            self.slots[idx].active = false;
        }
    }
}
