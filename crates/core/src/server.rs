//! The multi-query server: submit a stream of parsed [`QuerySpec`]s,
//! execute them *concurrently* on one deterministic virtual timeline, and
//! **fold** compatible SteMs so each scanned row is built once and probed
//! by every interested query — the paper's multiquery motivation for
//! making state a first-class module ("the state managed by SteMs can be
//! shared across queries", §1 / §5).
//!
//! # The submission surface
//!
//! A server is configured through [`ServerBuilder`] (folding, per-query
//! defaults, admission budgets, deadlines), queries enter through
//! [`QueryServer::submit`] as [`Submission`]s (admission time, per-query
//! config, deadline, scheduled cancellation), and [`QueryServer::serve`]
//! returns one [`QueryHandle`] per query in submission order: its
//! [`QueryId`], a terminal [`QueryStatus`], and — for every query that
//! actually ran — its [`ServerReport`]. Errors are typed
//! ([`ServerError`]) rather than stringly. The PR 7 positional surface
//! (`QueryServer::new` + `admit*` + `run_with_stats`) survives as thin
//! deprecated shims over this API; `tests/server_folding.rs` proves the
//! two equivalent.
//!
//! # What is shared, what stays per-query
//!
//! * **Scan streams** collapse per *source*: one [`ScanAm`] per table fans
//!   each chunk wave out to every subscribed query, however many queries
//!   read the table.
//! * **SteMs** are shared through a registry keyed by
//!   [`StemKey`] — `(source, join columns, resolved SteM options)`. When
//!   query B's key matches query A's, B's plan is rewired
//!   ([`EddyExecutor::fold_stem`]) to probe the *same* [`StemCell`] A
//!   uses: one build, N probers. The server performs the builds itself
//!   (one build service per scan wave per entry, not per query) and hands
//!   every subscriber the same timestamped singletons.
//! * **Routers, routing policies, SMs, index AMs and result sets stay
//!   per-query** — each query adapts its routing independently; only
//!   state and scan work are shared.
//!
//! An instance does *not* fold when its source has an index AM (the
//! bounce protocol then depends on per-query probe traffic), when it uses
//! Grace-style `deferred_bounce`, when it is `no_stem`-relaxed (§3.5), or
//! when an earlier instance of the *same query* already claimed the entry
//! (a self-join needs two dictionaries). Unfolded instances get a **raw**
//! subscription: the shared scan stream delivered as plain unstamped
//! singletons, built into the query's private SteM exactly as if its own
//! scan had emitted them.
//!
//! # Admission control
//!
//! The registry is the server's memory: every shared entry holds a built
//! dictionary. [`ServerBuilder::stem_bytes_budget`] and
//! [`ServerBuilder::shared_builds_budget`] bound it — both are fed by the
//! per-wave observations the build service already makes (entry bytes are
//! re-sampled after every absorbed wave). A query whose admission instant
//! finds the budget exceeded is either **queued** (FIFO, re-tried at
//! every completion sweep, after evicting subscriber-less entries while
//! the budget stays exceeded) or **shed** (a terminal
//! [`QueryStatus::Shed`], no execution) per
//! [`ServerBuilder::admission`]. The boundary is inclusive: usage exactly
//! *at* the budget still admits. A queued head is force-admitted when the
//! server is otherwise idle, so an unsatisfiable budget (e.g. an
//! exhausted cumulative build budget) degrades to serial execution
//! instead of stranding the queue. [`ServerBuilder::max_queries`] caps
//! total submissions with a typed [`ServerError::BudgetExhausted`].
//!
//! # Deadlines and cancellation
//!
//! Each query may carry a deadline — [`Submission::deadline`] or the
//! server-wide [`ServerBuilder::default_deadline`], both *relative* to
//! the admission instant — which the server installs as the executor's
//! `max_time` guard (an `ExecConfig::max_time` set directly still means
//! absolute virtual time, matching its solo semantics). The guard now
//! bites on *every* path: stepped agenda events and server-delivered
//! waves alike, so deadlines are checked at wave boundaries and a query
//! past its deadline is retired as [`QueryStatus::TimedOut`] with the
//! partial report it produced. [`Submission::cancel_at`] /
//! [`QueryServer::cancel`] schedule an explicit cancellation:
//! a cancelled query releases its registry claims immediately (its
//! entries become evictable, its queue slot is dropped) and reports
//! [`QueryStatus::Cancelled`].
//!
//! # Determinism contract
//!
//! One global virtual clock merges all executors. At every instant the
//! server first applies its own events (admissions, cancellations, scan
//! waves, build completions), then steps each query's executor up to the
//! instant. A single server-global build-timestamp counter threads
//! through the executors that can consume it, so a query's *observable*
//! behaviour — ordered results, events, metrics, end time — is
//! bit-identical whether it runs alone (`N = 1`) or alongside any number
//! of concurrent queries: interleaving other queries only relabels the
//! *gaps* in the timestamp sequence, never the relative order of any two
//! stamps one query can compare (`tests/server_folding.rs` sweeps this
//! invariant).
//!
//! # Parallel stepping
//!
//! Between two server waves the executors are *independent*: they share
//! no mutable state except the shared SteM cells (probe-only between
//! build waves, each probe serialized under the cell mutex and
//! schedule-invariant) and the global timestamp counter. Only executors
//! that still own a private stem-bearing instance can consume the
//! counter ([`EddyExecutor::has_stem`]); the server partitions each
//! wave's runnable executors accordingly. Counter-threading executors
//! step serially in admission order (the counter is a chain); the rest
//! are claimed off a [`WaveBarrier`] by `ExecConfig::workers` runner
//! jobs on the process [`WorkerPool`] — each executor stepped by exactly
//! one thread, the wave merged back into the serial timeline only when
//! the barrier observes every claim finished. Per-executor behaviour is
//! a pure function of its own deliveries, so reports are bit-identical
//! at every worker budget (the invariance suite sweeps workers {1, 4}).
//! The barrier protocol itself is model-checked in `tests/model.rs`.
//!
//! With folding disabled the server degenerates to a pure merge of
//! independent classic executors — each query behaves exactly like a solo
//! [`EddyExecutor::run`]; `bench_server` uses that mode as the baseline
//! the folding throughput gain is measured against.

use crate::am::ScanAm;
use crate::engine::{ConfigError, EddyExecutor, ExecConfig};
use crate::memo::{MemoCache, MemoCell, DEFAULT_MEMO_SHARDS};
use crate::plan::StemCell;
use crate::report::ServerReport;
use crate::runtime::WorkerPool;
use crate::sharded::ShardedStem;
use crate::stem::{make_scan_eot_row, BuildResult, StemOptions};
use crate::sync::{lock_ok, Arc, Mutex, WaveBarrier};
use crate::tuple_state::TupleState;
use std::collections::VecDeque;
use stems_catalog::{AccessMethodDef, Catalog, QuerySpec, SourceId};
use stems_sim::{EventQueue, Time};
use stems_types::{Result, Row, StemsError, TableIdx, Timestamp, Tuple, TupleBatch};

/// SteM-sharing compatibility key. Two instances may share one SteM only
/// if they scan the same source, index it by the same (canonicalized)
/// join columns, and resolve to identical SteM options — options affect
/// virtual service durations (shard fan-out) and storage semantics
/// (backend, eviction window), so any mismatch would leak one query's
/// configuration into another's timeline.
#[derive(Debug, Clone, PartialEq)]
struct StemKey {
    source: SourceId,
    join_cols: Vec<usize>,
    opts: StemOptions,
}

/// One shared SteM plus the build log its subscribers replay.
struct SharedEntry {
    key: StemKey,
    cell: StemCell,
    /// Fresh builds in arrival order with their global timestamps.
    /// Server-absorbed duplicates are omitted — every subscriber would
    /// have absorbed them identically.
    log: Vec<(Arc<Row>, Timestamp)>,
    /// Log prefix whose `DeliverBuilt` has fired (safe to hand to
    /// late-admitted subscribers immediately).
    released: usize,
    /// Scan EOT built into the SteM.
    eot_applied: bool,
    /// Scan EOT announced to subscribers.
    eot_released: bool,
    /// The SteM build server is busy until this time; waves queue FIFO.
    busy_until: Time,
    /// Live folded subscriptions. Only subscriber-less entries may be
    /// evicted, and only under budget pressure — an idle entry is a warm
    /// cache for the next compatible query.
    subs: usize,
    /// Last observed dictionary footprint (re-sampled per build wave);
    /// the admission budget sums these.
    bytes: usize,
}

/// One scan stream, shared by every query reading the source.
struct ServerScan {
    source: SourceId,
    am: ScanAm,
    arity: usize,
    /// Rows emitted so far — the catch-up prefix for late admissions.
    emitted: Vec<Arc<Row>>,
    eot: bool,
    /// Live raw subscriptions; when zero (everything folded), an emit
    /// skips the per-slot delivery sweep.
    raw_subs: usize,
}

/// A query instance rewired onto a shared SteM.
struct FoldedSub {
    entry: usize,
    table: TableIdx,
    /// Position in the entry's build log delivered so far.
    cursor: usize,
    eot_seen: bool,
}

/// A query's instances fed raw rows from a shared scan stream.
struct RawSub {
    scan: usize,
    tables: Vec<TableIdx>,
    eot_seen: bool,
}

struct QuerySlot {
    query: QuerySpec,
    config: ExecConfig,
    exec: Option<EddyExecutor>,
    admitted_at: Time,
    active: bool,
    /// Relative deadline (virtual µs from admission), resolved against
    /// the admission instant into the executor's `max_time` guard.
    deadline: Option<Time>,
    /// This executor can consume the server-global timestamp counter
    /// (it owns a private stem-bearing instance), so it must step
    /// serially on the counter chain rather than in the parallel phase.
    threads_ts: bool,
    folded: Vec<FoldedSub>,
    raw: Vec<RawSub>,
    status: Option<QueryStatus>,
    report: Option<ServerReport>,
}

impl QuerySlot {
    fn streams_open(&self) -> bool {
        self.folded.iter().any(|s| !s.eot_seen) || self.raw.iter().any(|s| !s.eot_seen)
    }
}

enum ServerEvent {
    /// Activate an admitted query (or queue/shed it, per budget).
    Admit(usize),
    /// Cancel a query wherever it is: queued, pending admission, or
    /// running.
    Cancel(usize),
    /// A shared scan emits its next chunk (or EOT).
    ScanEmit(usize),
    /// A shared SteM finished servicing a build wave: release the log
    /// prefix `..upto` to every subscriber.
    DeliverBuilt {
        entry: usize,
        upto: usize,
        eot: bool,
    },
}

/// How a server run went: how much state it shared (one entry/stream
/// serving N queries is the whole point) and what admission control did
/// (`tests/server_folding.rs`, `tests/server_admission.rs` and
/// `bench_server` assert on these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Shared SteM registry entries created (cumulative — evicted
    /// entries recreated for a later query count again).
    pub shared_stems: usize,
    /// Shared scan streams created (folding mode only).
    pub scan_streams: usize,
    /// Rows built into shared SteMs — once per entry, not per query
    /// (cumulative across evictions).
    pub shared_builds: u64,
    /// High-water mark of the registry's summed dictionary bytes.
    pub stem_bytes_peak: usize,
    /// Subscriber-less entries evicted under budget pressure.
    pub evicted_stems: usize,
    /// UDF memo-cell folds onto an already-registered cell: each count is
    /// one query subscribed to a verdict cache another query created —
    /// that query never re-pays a verdict the earlier one bought.
    pub shared_memos: usize,
    /// Admissions deferred to the queue at least once.
    pub queued: usize,
    /// Queries shed at admission (budget exceeded, shed policy).
    pub shed: usize,
    /// Queries retired at their deadline.
    pub timed_out: usize,
    /// Queries cancelled.
    pub cancelled: usize,
}

/// Terminal state of a submitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Ran to completion; the handle carries its full report.
    Completed,
    /// Rejected at admission under [`AdmissionPolicy::Shed`]; never ran,
    /// no report.
    Shed,
    /// Retired at its deadline; the handle carries the partial report.
    TimedOut,
    /// Cancelled. If it was already running the handle carries the
    /// partial report; a query cancelled before admission has none.
    Cancelled,
}

/// Identifier for a submitted query: its index in submission order (the
/// order of [`QueryServer::serve`]'s returned handles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(pub usize);

/// One query's outcome: terminal status plus — for every query that
/// actually ran — its [`ServerReport`], exactly as the PR 7 surface
/// produced it.
#[derive(Debug)]
pub struct QueryHandle {
    pub id: QueryId,
    pub status: QueryStatus,
    /// `None` iff the query never ran ([`QueryStatus::Shed`], or
    /// cancelled before admission).
    pub report: Option<ServerReport>,
}

/// What to do with an admission that finds the budget exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Defer it: FIFO queue, re-tried at every completion sweep (after
    /// evicting idle entries while the budget stays exceeded).
    #[default]
    Queue,
    /// Reject it terminally ([`QueryStatus::Shed`]).
    Shed,
}

/// A rejected server interaction — configuration, submission, or
/// cancellation. The server-wide promotion of [`ConfigError`]: every
/// failure is typed, not stringly.
#[derive(Debug)]
pub enum ServerError {
    /// Invalid engine configuration (server default or per-submission).
    Config(ConfigError),
    /// The query itself failed admission (plan instantiation).
    Admission { query: usize, source: StemsError },
    /// [`ServerBuilder::max_queries`] reached: the server accepts no
    /// further submissions.
    BudgetExhausted { admitted: usize, max_queries: usize },
    /// A deadline of zero virtual µs — the query could never run.
    InvalidDeadline { deadline: Time },
    /// A [`QueryId`] this server never issued.
    UnknownQuery { id: usize },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Config(e) => write!(f, "invalid server configuration: {e}"),
            ServerError::Admission { query, source } => {
                write!(f, "query {query} rejected at admission: {source}")
            }
            ServerError::BudgetExhausted {
                admitted,
                max_queries,
            } => write!(
                f,
                "admission budget exhausted: {admitted} queries submitted, max_queries = \
                 {max_queries}"
            ),
            ServerError::InvalidDeadline { deadline } => {
                write!(f, "invalid deadline {deadline}: must be >= 1 virtual µs")
            }
            ServerError::UnknownQuery { id } => write!(f, "unknown query id {id}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Config(e) => Some(e),
            ServerError::Admission { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ConfigError> for ServerError {
    fn from(e: ConfigError) -> ServerError {
        ServerError::Config(e)
    }
}

/// Configures a [`QueryServer`]: named setters over the PR 7 positional
/// `(catalog, config, fold)` constructor, plus the admission-control and
/// deadline knobs that have no legacy equivalent.
pub struct ServerBuilder<'a> {
    catalog: &'a Catalog,
    config: Option<ExecConfig>,
    fold: bool,
    max_stem_bytes: Option<usize>,
    max_shared_builds: Option<u64>,
    max_queries: Option<usize>,
    policy: AdmissionPolicy,
    default_deadline: Option<Time>,
}

impl<'a> ServerBuilder<'a> {
    /// A builder over `catalog`, with folding on, environment-derived
    /// default config, no budgets and no deadlines.
    pub fn new(catalog: &'a Catalog) -> ServerBuilder<'a> {
        ServerBuilder {
            catalog,
            config: None,
            fold: true,
            max_stem_bytes: None,
            max_shared_builds: None,
            max_queries: None,
            policy: AdmissionPolicy::Queue,
            default_deadline: None,
        }
    }

    /// Default per-query configuration (also sizes the shared scan
    /// chunks). Defaults to [`ExecConfig::from_env`].
    pub fn config(mut self, config: ExecConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Enable/disable SteM sharing. Off, every query runs a fully
    /// private classic executor (the bench baseline). Default: on.
    pub fn fold(mut self, fold: bool) -> Self {
        self.fold = fold;
        self
    }

    /// Bound the registry's summed dictionary bytes (observed per build
    /// wave). Inclusive: usage exactly at the budget still admits.
    pub fn stem_bytes_budget(mut self, bytes: usize) -> Self {
        self.max_stem_bytes = Some(bytes);
        self
    }

    /// Bound the cumulative rows built into shared SteMs. Inclusive.
    pub fn shared_builds_budget(mut self, builds: u64) -> Self {
        self.max_shared_builds = Some(builds);
        self
    }

    /// Cap total submissions; past it [`QueryServer::submit`] fails with
    /// [`ServerError::BudgetExhausted`].
    pub fn max_queries(mut self, n: usize) -> Self {
        self.max_queries = Some(n);
        self
    }

    /// Queue or shed admissions that exceed the budget. Default: queue.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Default per-query deadline, in virtual µs *from admission*;
    /// overridable per submission ([`Submission::deadline`]).
    pub fn default_deadline(mut self, deadline: Time) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    pub fn build(self) -> std::result::Result<QueryServer<'a>, ServerError> {
        let config = match self.config {
            Some(c) => c,
            None => ExecConfig::from_env()?,
        };
        config.validate()?;
        if self.default_deadline == Some(0) {
            return Err(ServerError::InvalidDeadline { deadline: 0 });
        }
        Ok(QueryServer {
            catalog: self.catalog,
            config,
            fold: self.fold,
            max_stem_bytes: self.max_stem_bytes,
            max_shared_builds: self.max_shared_builds,
            max_queries: self.max_queries,
            policy: self.policy,
            default_deadline: self.default_deadline,
            now: 0,
            ts_counter: 0,
            agenda: EventQueue::new(),
            scans: Vec::new(),
            entries: Vec::new(),
            memo_cells: Vec::new(),
            shared_memos: 0,
            slots: Vec::new(),
            active_set: Vec::new(),
            pending: VecDeque::new(),
            exec_next: None,
            entries_created: 0,
            builds_total: 0,
            bytes_total: 0,
            bytes_peak: 0,
            evicted: 0,
            queued: 0,
            shed: 0,
            timed_out: 0,
            cancelled: 0,
        })
    }
}

/// One query's submission: the spec plus everything that can vary per
/// query — admission time, configuration, deadline, and a scheduled
/// cancellation.
#[derive(Debug, Clone)]
pub struct Submission {
    query: QuerySpec,
    at: Time,
    config: Option<ExecConfig>,
    deadline: Option<Time>,
    cancel_at: Option<Time>,
}

impl Submission {
    /// Submit `query` at virtual time 0 with the server defaults.
    pub fn new(query: QuerySpec) -> Submission {
        Submission {
            query,
            at: 0,
            config: None,
            deadline: None,
            cancel_at: None,
        }
    }

    /// Admission time (clamped to the server's present).
    pub fn at(mut self, at: Time) -> Self {
        self.at = at;
        self
    }

    /// Per-query configuration (policy, seed, plan options...). The
    /// query folds onto a shared SteM only where its *resolved* options
    /// match the entry's — config divergence simply degrades to private
    /// state, never to wrong answers.
    pub fn config(mut self, config: ExecConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Deadline in virtual µs *from admission*; past it the query is
    /// retired as [`QueryStatus::TimedOut`] with its partial report.
    /// Overrides [`ServerBuilder::default_deadline`].
    pub fn deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Schedule a cancellation at absolute virtual time `at` — as if
    /// [`QueryServer::cancel`] were called then.
    pub fn cancel_at(mut self, at: Time) -> Self {
        self.cancel_at = Some(at);
        self
    }
}

/// Concurrent multi-query executor over shared SteMs — see the module
/// docs for the sharing, admission and determinism contracts.
pub struct QueryServer<'a> {
    catalog: &'a Catalog,
    config: ExecConfig,
    fold: bool,
    max_stem_bytes: Option<usize>,
    max_shared_builds: Option<u64>,
    max_queries: Option<usize>,
    policy: AdmissionPolicy,
    default_deadline: Option<Time>,
    now: Time,
    /// Server-global build-timestamp counter, threaded through every
    /// counter-consuming executor so all stamps live on one total order.
    ts_counter: Timestamp,
    agenda: EventQueue<ServerEvent>,
    scans: Vec<ServerScan>,
    /// The shared-SteM registry. `None` slots are evicted entries;
    /// indices stay stable because subscriptions hold them.
    entries: Vec<Option<SharedEntry>>,
    /// The shared UDF memo registry: one verdict cache per
    /// `(spec, budget)` identity, handed to every memo-enabled query
    /// running that spec ([`EddyExecutor::fold_memo`]). Verdicts are pure
    /// functions of (spec, input value), so sharing is column- and
    /// query-agnostic.
    memo_cells: Vec<(stems_types::UdfSpec, usize, MemoCell)>,
    shared_memos: usize,
    slots: Vec<QuerySlot>,
    /// Indices of active slots, ascending — the drain loop scans this
    /// instead of all slots, so a 1000-query run's per-wave cost tracks
    /// the *running* population, not the submitted one.
    active_set: Vec<usize>,
    /// Admissions deferred by the budget, FIFO.
    pending: VecDeque<usize>,
    /// Cached min of the active executors' next event times, recomputed
    /// by every [`step_wave`](QueryServer::step_wave) pass and merged on
    /// activation — the drain loop reads each executor's agenda head
    /// once per wave instead of once per wave *per scan*. Retirements
    /// may leave it stale-low, which costs at most one empty wave (the
    /// next pass corrects it), never a skipped event.
    exec_next: Option<Time>,
    entries_created: usize,
    builds_total: u64,
    bytes_total: usize,
    bytes_peak: usize,
    evicted: usize,
    queued: usize,
    shed: usize,
    timed_out: usize,
    cancelled: usize,
}

impl<'a> QueryServer<'a> {
    /// Start configuring a server — see [`ServerBuilder`].
    pub fn builder(catalog: &'a Catalog) -> ServerBuilder<'a> {
        ServerBuilder::new(catalog)
    }

    /// A server over `catalog`. `fold` enables SteM sharing; `config` is
    /// the default per-query configuration.
    #[deprecated(note = "use `QueryServer::builder(catalog)` — named setters, budgets, deadlines")]
    pub fn new(catalog: &'a Catalog, config: ExecConfig, fold: bool) -> Result<QueryServer<'a>> {
        ServerBuilder::new(catalog)
            .config(config)
            .fold(fold)
            .build()
            .map_err(|e| StemsError::Schema(e.to_string()))
    }

    /// Submit a query. Returns its [`QueryId`] — the index of its handle
    /// in [`QueryServer::serve`]'s result (submission order).
    pub fn submit(&mut self, submission: Submission) -> std::result::Result<QueryId, ServerError> {
        let Submission {
            query,
            at,
            config,
            deadline,
            cancel_at,
        } = submission;
        if let Some(max) = self.max_queries {
            if self.slots.len() >= max {
                return Err(ServerError::BudgetExhausted {
                    admitted: self.slots.len(),
                    max_queries: max,
                });
            }
        }
        if deadline == Some(0) {
            return Err(ServerError::InvalidDeadline { deadline: 0 });
        }
        let config = config.unwrap_or_else(|| self.config.clone());
        config.validate()?;
        let idx = self.slots.len();
        let exec = if self.fold {
            EddyExecutor::build_unseeded(self.catalog, &query, config.clone())
        } else {
            EddyExecutor::build(self.catalog, &query, config.clone())
        }
        .map_err(|source| ServerError::Admission { query: idx, source })?;
        self.slots.push(QuerySlot {
            query,
            config,
            exec: Some(exec),
            admitted_at: 0,
            active: false,
            deadline: deadline.or(self.default_deadline),
            threads_ts: false,
            folded: Vec::new(),
            raw: Vec::new(),
            status: None,
            report: None,
        });
        self.agenda.push(at.max(self.now), ServerEvent::Admit(idx));
        if let Some(c) = cancel_at {
            self.agenda.push(c.max(self.now), ServerEvent::Cancel(idx));
        }
        Ok(QueryId(idx))
    }

    /// Schedule `id`'s cancellation at virtual time `at` (clamped to the
    /// present). Wherever the query is then — queued, pending admission,
    /// or running — it reaches [`QueryStatus::Cancelled`] and releases
    /// its registry claims; a no-op if already terminal.
    pub fn cancel(&mut self, id: QueryId, at: Time) -> std::result::Result<(), ServerError> {
        if id.0 >= self.slots.len() {
            return Err(ServerError::UnknownQuery { id: id.0 });
        }
        self.agenda
            .push(at.max(self.now), ServerEvent::Cancel(id.0));
        Ok(())
    }

    /// Admit a query at time 0 with the server's default config.
    #[deprecated(note = "use `QueryServer::submit(Submission::new(query))`")]
    pub fn admit(&mut self, query: QuerySpec) -> Result<usize> {
        self.submit(Submission::new(query))
            .map(|id| id.0)
            .map_err(|e| StemsError::Schema(e.to_string()))
    }

    /// Admit a query at virtual time `at` (clamped to the present).
    #[deprecated(note = "use `QueryServer::submit(Submission::new(query).at(at))`")]
    pub fn admit_at(&mut self, at: Time, query: QuerySpec) -> Result<usize> {
        self.submit(Submission::new(query).at(at))
            .map(|id| id.0)
            .map_err(|e| StemsError::Schema(e.to_string()))
    }

    /// Admit a query with its own configuration.
    #[deprecated(note = "use `QueryServer::submit(Submission::new(query).at(at).config(config))`")]
    pub fn admit_with_config(
        &mut self,
        at: Time,
        query: QuerySpec,
        config: ExecConfig,
    ) -> Result<usize> {
        self.submit(Submission::new(query).at(at).config(config))
            .map(|id| id.0)
            .map_err(|e| StemsError::Schema(e.to_string()))
    }

    /// Run every submitted query to a terminal status; handles come back
    /// in submission order.
    pub fn serve(mut self) -> (Vec<QueryHandle>, ServerStats) {
        // Reused across waves so the steady-state drain allocates
        // nothing.
        let mut drained: Vec<usize> = Vec::new();
        let mut indep: Vec<usize> = Vec::new();
        loop {
            let server_next = self.agenda.peek_time();
            if server_next.is_none() && self.exec_next.is_none() {
                // Quiescent: retire the finished (freeing budget), then
                // let the sweep's queue drain — force-admitting if
                // nothing running could ever free more — and go around
                // again until nothing is left anywhere.
                self.sweep_all();
                let live = !self.agenda.is_empty()
                    || !self.pending.is_empty()
                    || !self.active_set.is_empty();
                if live {
                    continue;
                }
                break;
            }
            // Phase 1 — the inter-wave window. Executors only interact
            // at *server* instants (waves delivered, timestamps
            // consumed by shared builds), so between two server events
            // every executor legally runs its whole window in one go:
            // its own event order is untouched, and cross-executor gaps
            // in the timestamp sequence are unobservable. One touch per
            // executor per window, not per merged event time.
            let horizon = server_next.map_or(Time::MAX, |s| s.saturating_sub(1));
            if self.exec_next.is_some_and(|e| e <= horizon) {
                self.step_wave(horizon, &mut indep, &mut drained);
                // Only an executor stepped this window can have newly
                // drained (or tripped its deadline); the full
                // active-set sweep is reserved for quiescence, where it
                // also catches deadlines tripped by wave delivery
                // rather than stepping.
                if !drained.is_empty() {
                    self.sweep_candidates(&drained);
                }
                // Re-derive the horizon: a retirement may have admitted
                // a queued query whose scan events land inside it.
                continue;
            }
            // Phase 2 — the server instant: every wave a query can
            // observe at `t` is delivered before any executor steps
            // past it, so the interleaving is a pure function of the
            // timeline — not of N.
            let Some(t) = server_next else {
                continue;
            };
            self.now = t;
            while self.agenda.peek_time() == Some(t) {
                let (_, ev) = self.agenda.pop().expect("peeked event");
                match ev {
                    ServerEvent::Admit(i) => self.on_admit(i),
                    ServerEvent::Cancel(i) => self.on_cancel(i),
                    ServerEvent::ScanEmit(si) => self.on_scan_emit(si),
                    ServerEvent::DeliverBuilt { entry, upto, eot } => {
                        self.on_deliver_built(entry, upto, eot)
                    }
                }
            }
        }
        let stats = ServerStats {
            shared_stems: self.entries_created,
            scan_streams: self.scans.len(),
            shared_builds: self.builds_total,
            stem_bytes_peak: self.bytes_peak,
            evicted_stems: self.evicted,
            shared_memos: self.shared_memos,
            queued: self.queued,
            shed: self.shed,
            timed_out: self.timed_out,
            cancelled: self.cancelled,
        };
        let handles = self
            .slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| QueryHandle {
                id: QueryId(i),
                status: s.status.expect("every query reaches a terminal status"),
                report: s.report,
            })
            .collect();
        (handles, stats)
    }

    /// Run every admitted query to completion; reports come back in
    /// admission order. Panics if any query was shed — impossible
    /// without a budget, which this legacy surface cannot configure.
    #[deprecated(note = "use `QueryServer::serve` — per-query handles with terminal statuses")]
    pub fn run(self) -> Vec<ServerReport> {
        #[allow(deprecated)]
        self.run_with_stats().0
    }

    /// [`QueryServer::run`], plus a summary of how much state the run
    /// actually shared.
    #[deprecated(note = "use `QueryServer::serve` — per-query handles with terminal statuses")]
    pub fn run_with_stats(self) -> (Vec<ServerReport>, ServerStats) {
        let (handles, stats) = self.serve();
        let reports = handles
            .into_iter()
            .map(|h| h.report.expect("query ran to completion"))
            .collect();
        (reports, stats)
    }

    /// Step every runnable executor up to `t` — the wave's execution
    /// phase. Counter-threading executors go serially in admission
    /// order; independent ones are claimed off a [`WaveBarrier`] by up
    /// to `workers` runner jobs on the process pool (and by this
    /// thread), each executor stepped by exactly one thread. The wave
    /// merges back into the serial timeline only when the barrier
    /// observes every claim finished, so reports are bit-identical at
    /// every worker budget.
    ///
    /// The one pass doubles as the drain loop's bookkeeping: it
    /// recomputes [`exec_next`](QueryServer::exec_next) and collects
    /// into `drained` the executors whose agendas emptied (or whose
    /// deadline tripped) this wave — the only completion candidates.
    fn step_wave(&mut self, t: Time, indep: &mut Vec<usize>, drained: &mut Vec<usize>) {
        indep.clear();
        drained.clear();
        let mut next_min: Option<Time> = None;
        let mut merge = |nt: Option<Time>, idx: usize, drained: &mut Vec<usize>| match nt {
            Some(nt) => {
                if next_min.is_none_or(|m| nt < m) {
                    next_min = Some(nt);
                }
            }
            None => drained.push(idx),
        };
        for pos in 0..self.active_set.len() {
            let idx = self.active_set[pos];
            let slot = &mut self.slots[idx];
            let exec = slot.exec.as_mut().expect("active slot");
            let nt = exec.next_time();
            if nt.is_none_or(|nt| nt > t) {
                merge(nt, idx, drained);
                continue;
            }
            if slot.threads_ts {
                // Serial phase, inline: the global timestamp counter is
                // a chain through these executors in admission order
                // (`active_set` ascends, and slot index is admission
                // order).
                exec.set_ts_counter(self.ts_counter);
                let nt = exec.step_until(t);
                self.ts_counter = exec.ts_counter();
                merge(nt, idx, drained);
            } else {
                indep.push(idx);
            }
        }
        let workers = self.config.workers;
        if indep.len() < 2 || workers < 2 {
            for &idx in indep.iter() {
                let exec = self.slots[idx].exec.as_mut().expect("active slot");
                merge(exec.step_until(t), idx, drained);
            }
            self.exec_next = next_min;
            return;
        }
        // Collect disjoint `&mut` executor lanes (indices ascend, so one
        // pass over the active span suffices). The per-lane mutex is
        // uncontended — the claim cursor hands each lane to exactly one
        // runner — it only exists to move `&mut` access across threads
        // without new `unsafe`.
        let first = *indep.first().expect("nonempty");
        let last = *indep.last().expect("nonempty");
        let mut lanes: Vec<Mutex<&mut EddyExecutor>> = Vec::with_capacity(indep.len());
        {
            let mut targets = indep.iter().copied().peekable();
            for (i, slot) in self.slots[first..=last].iter_mut().enumerate() {
                if targets.peek() == Some(&(first + i)) {
                    targets.next();
                    lanes.push(Mutex::new(slot.exec.as_mut().expect("active slot")));
                }
            }
        }
        debug_assert_eq!(lanes.len(), indep.len());
        let barrier = WaveBarrier::new(lanes.len());
        let runners = workers.min(lanes.len());
        {
            let lanes_ref = &lanes;
            let barrier_ref = &barrier;
            let drain = move || {
                while let Some(i) = barrier_ref.claim() {
                    // The finish must fire even if a step panics: the
                    // panicking runner unwinds into the pool's panic
                    // capture, and without its finish_one the
                    // coordinator's barrier wait below would hang
                    // instead of reaching the scope's panic replay.
                    struct FinishOne<'b>(&'b WaveBarrier);
                    impl Drop for FinishOne<'_> {
                        fn drop(&mut self) {
                            self.0.finish_one();
                        }
                    }
                    let _finish = FinishOne(barrier_ref);
                    lock_ok(&lanes_ref[i]).step_until(t);
                }
            };
            WorkerPool::global().scope(runners, |scope| {
                for k in 1..runners {
                    scope.spawn_nested(k, drain);
                }
                drain();
                // Merge barrier: every claimed executor finished
                // stepping before the wave rejoins the serial timeline.
                // No help — this thread already drained the claim
                // cursor, so the only outstanding work is in flight on
                // pool workers.
                barrier.wait(|| false);
            });
        }
        for (k, lane) in lanes.iter().enumerate() {
            merge(lock_ok(lane).next_time(), indep[k], drained);
        }
        self.exec_next = next_min;
    }

    /// The admission budget is exceeded (strictly — usage exactly at the
    /// budget still admits).
    fn over_budget(&self) -> bool {
        self.max_stem_bytes
            .is_some_and(|max| self.bytes_total > max)
            || self
                .max_shared_builds
                .is_some_and(|max| self.builds_total > max)
    }

    /// An `Admit` event fired: activate the query, or queue/shed it if
    /// the budget is exceeded.
    fn on_admit(&mut self, idx: usize) {
        if self.slots[idx].status.is_some() {
            // Cancelled before admission.
            return;
        }
        if self.over_budget() {
            match self.policy {
                AdmissionPolicy::Queue => {
                    self.queued += 1;
                    self.pending.push_back(idx);
                }
                AdmissionPolicy::Shed => {
                    self.shed += 1;
                    self.slots[idx].status = Some(QueryStatus::Shed);
                    self.slots[idx].exec = None;
                }
            }
            return;
        }
        self.activate(idx);
    }

    /// A `Cancel` event fired. Running queries retire with their partial
    /// report; queued / not-yet-admitted ones go terminal with none.
    fn on_cancel(&mut self, idx: usize) {
        if self.slots[idx].status.is_some() {
            return;
        }
        if self.slots[idx].active {
            self.retire(idx, QueryStatus::Cancelled);
            if !self.pending.is_empty() {
                self.drain_pending();
            }
            return;
        }
        self.cancelled += 1;
        self.slots[idx].status = Some(QueryStatus::Cancelled);
        self.slots[idx].exec = None;
        self.pending.retain(|&i| i != idx);
    }

    /// Activate slot `idx`: decide folding per instance, rewire the plan,
    /// subscribe to scan streams, catch up on anything the streams
    /// already produced, and install the deadline.
    fn activate(&mut self, idx: usize) {
        let now = self.now;
        self.slots[idx].admitted_at = now;
        self.slots[idx].active = true;
        let pos = self.active_set.binary_search(&idx).unwrap_or_else(|p| p);
        self.active_set.insert(pos, idx);
        if let Some(rel) = self.slots[idx].deadline {
            let exec = self.slots[idx].exec.as_mut().expect("admitting slot");
            exec.clamp_max_time(now.saturating_add(rel));
        }
        if !self.fold {
            // Classic executor: self-contained, scans seeded privately,
            // private timestamp space — never threads the counter.
            self.note_exec_next(idx);
            return;
        }
        let query = self.slots[idx].query.clone();
        let plan_opts = self.slots[idx].config.resolved_plan_opts();
        let mut claimed: Vec<usize> = Vec::new();
        let mut folded_tables: Vec<TableIdx> = Vec::new();
        let mut raw_tables: Vec<(SourceId, Vec<TableIdx>)> = Vec::new();
        for t in 0..query.n_tables() {
            let ti = TableIdx(t as u8);
            let source = query.instance(ti).source;
            if !self.catalog.has_scan(source) {
                // Index-only source: driven by probes, nothing to stream.
                continue;
            }
            let opts = plan_opts.stem_opts_for(ti);
            let foldable = !self.catalog.has_index(source)
                && !opts.deferred_bounce
                && !plan_opts.no_stem.contains(ti);
            if foldable {
                let key = StemKey {
                    source,
                    join_cols: query.join_cols_of(ti),
                    opts,
                };
                let ei = match self
                    .entries
                    .iter()
                    .position(|e| e.as_ref().is_some_and(|e| e.key == key))
                {
                    // A self-join over the same key needs two
                    // dictionaries; the second instance stays private.
                    Some(ei) if claimed.contains(&ei) => None,
                    Some(ei) => Some(ei),
                    None => Some(self.new_entry(key, ti)),
                };
                if let Some(ei) = ei {
                    claimed.push(ei);
                    folded_tables.push(ti);
                    self.ensure_scan(source);
                    self.subscribe_folded(idx, ei, ti);
                    continue;
                }
            }
            match raw_tables.iter_mut().find(|(s, _)| *s == source) {
                Some((_, tables)) => tables.push(ti),
                None => raw_tables.push((source, vec![ti])),
            }
        }
        for (source, tables) in raw_tables {
            let si = self.ensure_scan(source);
            self.subscribe_raw(idx, si, tables);
        }
        // Memo folding: every memo-enabled query running a UDF spec gets
        // the registry's shared verdict cache for that (spec, budget)
        // identity — created by the first such query, subscribed to by
        // the rest.
        let mut memo_folded = false;
        let exec = self.slots[idx].exec.as_ref().expect("admitting slot");
        if exec.memo_enabled() {
            let budget = self.slots[idx].config.memo_bytes;
            for spec in exec.udf_specs() {
                let cell = match self
                    .memo_cells
                    .iter()
                    .find(|(s, b, _)| *s == spec && *b == budget)
                {
                    Some((_, _, c)) => {
                        self.shared_memos += 1;
                        c.clone()
                    }
                    None => {
                        let c = MemoCache::cell(DEFAULT_MEMO_SHARDS, budget);
                        self.memo_cells.push((spec, budget, c.clone()));
                        c
                    }
                };
                let exec = self.slots[idx].exec.as_mut().expect("admitting slot");
                exec.fold_memo(spec, &cell);
                memo_folded = true;
            }
        }
        // An executor consumes the global timestamp counter iff it can
        // route private Build envelopes — a stem-bearing instance the
        // server did not fold. Everything else steps in the parallel
        // phase — except memo-folded executors: their hit/miss/eviction
        // observations depend on who reached the shared cache first, so
        // they step serially (admission order) to stay deterministic at
        // every worker budget.
        let exec = self.slots[idx].exec.as_ref().expect("admitting slot");
        let threads = (0..query.n_tables()).any(|t| {
            let ti = TableIdx(t as u8);
            exec.has_stem(ti) && !folded_tables.contains(&ti)
        });
        self.slots[idx].threads_ts = threads || memo_folded;
        self.note_exec_next(idx);
    }

    /// Merge a just-activated executor's agenda head into the cached
    /// next-event minimum (catch-up deliveries may have queued work
    /// earlier than anything the last wave pass saw).
    fn note_exec_next(&mut self, idx: usize) {
        if let Some(nt) = self.slots[idx]
            .exec
            .as_ref()
            .and_then(EddyExecutor::next_time)
        {
            if self.exec_next.is_none_or(|m| nt < m) {
                self.exec_next = Some(nt);
            }
        }
    }

    /// Create a shared entry for `key`, replaying any prefix its source's
    /// scan already emitted so the newcomer's SteM matches what a
    /// from-the-start subscriber would hold.
    fn new_entry(&mut self, key: StemKey, instance: TableIdx) -> usize {
        let stem = ShardedStem::new(
            instance,
            key.source,
            &key.join_cols,
            true,  // foldable requires a scan AM
            false, // ... and no index AM
            key.opts.clone(),
        );
        let ei = self.entries.len();
        let source = key.source;
        self.entries.push(Some(SharedEntry {
            key,
            cell: StemCell::new(stem),
            log: Vec::new(),
            released: 0,
            eot_applied: false,
            eot_released: false,
            busy_until: self.now,
            subs: 0,
            bytes: 0,
        }));
        self.entries_created += 1;
        if let Some(si) = self.scans.iter().position(|s| s.source == source) {
            let rows = self.scans[si].emitted.clone();
            let eot = self.scans[si].eot;
            let arity = self.scans[si].arity;
            if !rows.is_empty() || eot {
                self.build_into_entry(ei, &rows, eot, arity);
            }
        }
        ei
    }

    /// Rewire slot `idx`'s instance `ti` onto entry `ei` and deliver the
    /// released log prefix (late admission catch-up).
    fn subscribe_folded(&mut self, idx: usize, ei: usize, ti: TableIdx) {
        let exec = self.slots[idx].exec.as_mut().expect("admitting slot");
        let entry = self.entries[ei].as_mut().expect("live entry");
        entry.subs += 1;
        exec.fold_stem(ti, &entry.cell);
        let stamped: Vec<Tuple> = entry.log[..entry.released]
            .iter()
            .map(|(row, ts)| Tuple::singleton(ti, Arc::clone(row)).with_timestamp(ti, *ts))
            .collect();
        if !stamped.is_empty() || entry.eot_released {
            let eot = entry.eot_released;
            exec.deliver_folded_wave(self.now, ti, &stamped, eot);
        }
        let entry = self.entries[ei].as_ref().expect("live entry");
        self.slots[idx].folded.push(FoldedSub {
            entry: ei,
            table: ti,
            cursor: entry.released,
            eot_seen: entry.eot_released,
        });
    }

    /// Subscribe slot `idx`'s instances to scan `si` raw, catching up on
    /// the emitted prefix (and EOT, if the scan already finished).
    fn subscribe_raw(&mut self, idx: usize, si: usize, tables: Vec<TableIdx>) {
        let scan = &self.scans[si];
        let eot = scan.eot;
        let mut tuples = Vec::new();
        for row in &scan.emitted {
            for &t in &tables {
                tuples.push(Tuple::singleton(t, Arc::clone(row)));
            }
        }
        if eot {
            for &t in &tables {
                tuples.push(Tuple::singleton(t, make_scan_eot_row(scan.arity)));
            }
        }
        if !tuples.is_empty() {
            let exec = self.slots[idx].exec.as_mut().expect("admitting slot");
            exec.deliver_raw_wave(self.now, tuples);
        }
        self.scans[si].raw_subs += 1;
        self.slots[idx].raw.push(RawSub {
            scan: si,
            tables,
            eot_seen: eot,
        });
    }

    /// The shared scan stream for `source`, creating (and scheduling) it
    /// on first subscription. Multiple competitive scan AMs collapse to
    /// one stream built from the first spec.
    fn ensure_scan(&mut self, source: SourceId) -> usize {
        if let Some(si) = self.scans.iter().position(|s| s.source == source) {
            return si;
        }
        let catalog = self.catalog;
        let table = catalog.table_expect(source);
        let arity = table.schema.arity();
        let spec = catalog
            .ams_of(source)
            .into_iter()
            .find_map(|(_, d)| match d {
                AccessMethodDef::Scan(s) => Some(s),
                _ => None,
            })
            .expect("scan subscription on a scan-less source");
        // The dummy instance makes each emitted batch map 1:1 to rows;
        // the server re-tags rows per subscriber.
        let mut am = ScanAm::new(
            source,
            vec![TableIdx(0)],
            table.rows().to_vec(),
            arity,
            spec,
        );
        am.clamp_chunk(self.config.batch_size);
        let si = self.scans.len();
        self.agenda
            .push(self.now + am.first_emit_time(), ServerEvent::ScanEmit(si));
        self.scans.push(ServerScan {
            source,
            am,
            arity,
            emitted: Vec::new(),
            eot: false,
            raw_subs: 0,
        });
        si
    }

    /// A scan wave: build it into every live shared entry on the source
    /// (once per entry — the folding win) and fan it raw to every raw
    /// sub.
    fn on_scan_emit(&mut self, si: usize) {
        let (batch, next) = self.scans[si].am.emit_next(self.now);
        if let Some(nt) = next {
            self.agenda.push(nt, ServerEvent::ScanEmit(si));
        }
        let mut rows: Vec<Arc<Row>> = Vec::new();
        let mut eot = false;
        for t in batch {
            let row = Arc::clone(&t.components()[0].row);
            if row.is_eot() {
                eot = true;
            } else {
                rows.push(row);
            }
        }
        let source = self.scans[si].source;
        let arity = self.scans[si].arity;
        self.scans[si].emitted.extend(rows.iter().cloned());
        if eot {
            self.scans[si].eot = true;
        }
        for ei in 0..self.entries.len() {
            if self.entries[ei]
                .as_ref()
                .is_some_and(|e| e.key.source == source)
            {
                self.build_into_entry(ei, &rows, eot, arity);
            }
        }
        if self.scans[si].raw_subs == 0 {
            return;
        }
        for pos in 0..self.active_set.len() {
            let idx = self.active_set[pos];
            let mut tuples = Vec::new();
            for sub in self.slots[idx].raw.iter_mut() {
                if sub.scan != si {
                    continue;
                }
                // Classic emission order: rows outer, instances inner.
                for row in &rows {
                    for &t in &sub.tables {
                        tuples.push(Tuple::singleton(t, Arc::clone(row)));
                    }
                }
                if eot {
                    for &t in &sub.tables {
                        tuples.push(Tuple::singleton(t, make_scan_eot_row(arity)));
                    }
                    sub.eot_seen = true;
                }
            }
            if !tuples.is_empty() {
                let exec = self.slots[idx].exec.as_mut().expect("active slot");
                exec.deliver_raw_wave(self.now, tuples);
                self.note_exec_next(idx);
            }
        }
    }

    /// Build `rows` (and EOT) into entry `ei` now, consuming global
    /// timestamps, and schedule the subscriber release for when the
    /// SteM's build server has absorbed the wave. Re-samples the entry's
    /// dictionary footprint for the admission budget.
    fn build_into_entry(&mut self, ei: usize, rows: &[Arc<Row>], eot: bool, arity: usize) {
        let apply_eot = eot && !self.entries[ei].as_ref().expect("live entry").eot_applied;
        if rows.is_empty() && !apply_eot {
            return;
        }
        let cell = self.entries[ei].as_ref().expect("live entry").cell.share();
        let mut stem = cell.lock();
        let instance = stem.instance;
        let mut batch: TupleBatch = rows
            .iter()
            .map(|r| Tuple::singleton(instance, Arc::clone(r)))
            .collect();
        if apply_eot {
            batch.push(Tuple::singleton(instance, make_scan_eot_row(arity)));
        }
        let states = vec![TupleState::new(); batch.len()];
        let mut ts = self.ts_counter;
        let results = stem.build_batch(&batch, &states, &mut ts);
        self.ts_counter = ts;
        let new_bytes = stem.approx_bytes();
        drop(stem);
        let entry = self.entries[ei].as_mut().expect("live entry");
        let mut results = results.into_iter();
        let before = entry.log.len();
        for row in rows {
            if let Some(BuildResult::Fresh(stamped)) = results.next() {
                entry.log.push((Arc::clone(row), stamped.timestamp()));
            }
            // Duplicates are absorbed server-side: every subscriber
            // would have absorbed them identically, so nothing ships.
        }
        self.builds_total += (entry.log.len() - before) as u64;
        self.bytes_total = self.bytes_total - entry.bytes + new_bytes;
        entry.bytes = new_bytes;
        self.bytes_peak = self.bytes_peak.max(self.bytes_total);
        if apply_eot {
            entry.eot_applied = true;
        }
        let wave = batch.len() as u64;
        let t_done = self.now.max(entry.busy_until) + self.config.costs.stem_build_us * wave.max(1);
        entry.busy_until = t_done;
        self.agenda.push(
            t_done,
            ServerEvent::DeliverBuilt {
                entry: ei,
                upto: entry.log.len(),
                eot: apply_eot,
            },
        );
    }

    /// A build wave finished service: hand every subscriber its stamped
    /// singletons (plus the EOT signal on the final wave). The stamped
    /// wave is identical for every subscriber with the same instance
    /// index and cursor — the steady-state 1000-subscriber case — so it
    /// is materialized once and the slice shared (the executor clones
    /// what it keeps).
    fn on_deliver_built(&mut self, ei: usize, upto: usize, eot: bool) {
        {
            // The entry may have been evicted with this release in
            // flight (it had no subscribers, so nobody misses the wave).
            let Some(entry) = self.entries[ei].as_mut() else {
                return;
            };
            entry.released = entry.released.max(upto);
            if eot {
                entry.eot_released = true;
            }
        }
        let mut scratch: Vec<Tuple> = Vec::new();
        let mut scratch_key: Option<(TableIdx, usize)> = None;
        for pos in 0..self.active_set.len() {
            let idx = self.active_set[pos];
            let mut wave: Option<(TableIdx, bool, bool)> = None;
            for sub in self.slots[idx].folded.iter_mut() {
                if sub.entry != ei {
                    continue;
                }
                let from = sub.cursor.min(upto);
                if from < upto && scratch_key != Some((sub.table, from)) {
                    let entry = self.entries[ei].as_ref().expect("subscribed entry");
                    scratch.clear();
                    scratch.extend(entry.log[from..upto].iter().map(|(row, ts)| {
                        Tuple::singleton(sub.table, Arc::clone(row)).with_timestamp(sub.table, *ts)
                    }));
                    scratch_key = Some((sub.table, from));
                }
                sub.cursor = sub.cursor.max(upto);
                let deliver_eot = eot && !sub.eot_seen;
                if deliver_eot {
                    sub.eot_seen = true;
                }
                if from < upto || deliver_eot {
                    wave = Some((sub.table, from < upto, deliver_eot));
                }
            }
            if let Some((table, has_rows, deliver_eot)) = wave {
                let exec = self.slots[idx].exec.as_mut().expect("active slot");
                let stamped: &[Tuple] = if has_rows { &scratch } else { &[] };
                exec.deliver_folded_wave(self.now, table, stamped, deliver_eot);
                self.note_exec_next(idx);
            }
        }
    }

    /// Retire slot `idx` with `status`: take its report, release its
    /// registry claims, and drop it from the active set.
    fn retire(&mut self, idx: usize, status: QueryStatus) {
        let exec = self.slots[idx].exec.take().expect("active slot");
        let completed_at = exec.now();
        let report = exec.finish();
        let slot = &mut self.slots[idx];
        slot.report = Some(ServerReport {
            query: idx,
            admitted_at: slot.admitted_at,
            completed_at,
            report,
        });
        slot.status = Some(status);
        slot.active = false;
        if let Ok(pos) = self.active_set.binary_search(&idx) {
            self.active_set.remove(pos);
        }
        for f in 0..self.slots[idx].folded.len() {
            let ei = self.slots[idx].folded[f].entry;
            if let Some(entry) = self.entries[ei].as_mut() {
                entry.subs = entry.subs.saturating_sub(1);
            }
        }
        for r in 0..self.slots[idx].raw.len() {
            let si = self.slots[idx].raw[r].scan;
            self.scans[si].raw_subs = self.scans[si].raw_subs.saturating_sub(1);
        }
        match status {
            QueryStatus::TimedOut => self.timed_out += 1,
            QueryStatus::Cancelled => self.cancelled += 1,
            QueryStatus::Completed | QueryStatus::Shed => {}
        }
    }

    /// Retire `idx` if it is finished: deadline guard tripped (the
    /// reaper — deadlines are observed at wave boundaries), or agenda
    /// drained with every scan stream closed. Returns whether it
    /// retired.
    fn try_retire(&mut self, idx: usize) -> bool {
        let slot = &self.slots[idx];
        let exec = slot.exec.as_ref().expect("active slot");
        if exec.hit_deadline() {
            self.retire(idx, QueryStatus::TimedOut);
            true
        } else if !slot.streams_open() && exec.next_time().is_none() {
            self.retire(idx, QueryStatus::Completed);
            true
        } else {
            false
        }
    }

    /// Retire the finished among this wave's drained executors, then let
    /// the freed budget drain the admission queue.
    fn sweep_candidates(&mut self, drained: &[usize]) {
        let mut any = false;
        for &idx in drained {
            any |= self.try_retire(idx);
        }
        if any && !self.pending.is_empty() {
            self.drain_pending();
        }
    }

    /// The quiescent-state sweep: every active slot is a candidate (this
    /// also catches a deadline tripped by wave *delivery* rather than
    /// stepping, which never surfaces as a drained executor mid-run),
    /// and the admission queue is always retried — quiescence is where
    /// the forced-progress rule fires.
    fn sweep_all(&mut self) {
        let candidates: Vec<usize> = self.active_set.clone();
        for idx in candidates {
            self.try_retire(idx);
        }
        self.drain_pending();
    }

    /// Admit queued queries while the budget allows, evicting
    /// subscriber-less entries while it does not. If the budget can
    /// never free — nothing running, nothing evictable — the head is
    /// force-admitted: an unsatisfiable budget degrades to serial
    /// execution, never to a stranded queue.
    fn drain_pending(&mut self) {
        loop {
            let Some(&head) = self.pending.front() else {
                return;
            };
            if self.slots[head].status.is_some() {
                // Cancelled while queued.
                self.pending.pop_front();
                continue;
            }
            if !self.over_budget() {
                self.pending.pop_front();
                self.activate(head);
                continue;
            }
            if self.evict_idle_entry() {
                continue;
            }
            if self.active_set.is_empty() {
                self.pending.pop_front();
                self.activate(head);
                continue;
            }
            return;
        }
    }

    /// Evict one subscriber-less registry entry (creation order). Only
    /// called under budget pressure: idle entries are otherwise kept as
    /// warm caches for the next compatible query.
    fn evict_idle_entry(&mut self) -> bool {
        for slot in self.entries.iter_mut() {
            if slot.as_ref().is_some_and(|e| e.subs == 0) {
                let entry = slot.take().expect("just checked");
                self.bytes_total -= entry.bytes;
                self.evicted += 1;
                return true;
            }
        }
        false
    }
}
