//! Per-tuple routing state — the paper's "TupleState" (§2.1.1).
//!
//! "Each tuple also carries some state with it, called its TupleState, to
//! track the work it has done in furthering query progress. ... as a bare
//! minimum, the TupleState must contain (a) the tables spanned by the
//! tuple, and (b) the predicates that the tuple has passed." The span is
//! derivable from the tuple itself ([`stems_types::Tuple::span`]); this
//! struct carries the rest, including the prior-prober marker of
//! Definition 3 and the LastMatchTimeStamp of §3.5.

use stems_types::{PredSet, TableIdx, TableSet, Timestamp};

/// Why a prior prober must (or need not) complete its probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionNeed {
    /// The bounced probe is the only way to reach the table's remaining
    /// matches (no scan AM covers completeness): the tuple must stay in the
    /// dataflow until probed into a completion AM or its SteM completes.
    Required,
    /// A scan AM (plus the tuple's own components being cached in SteMs)
    /// guarantees completeness; the bounce exists only to *offer* the
    /// routing policy an index probe (paper §4.1 / §4.3 hybridization).
    /// The policy may drop the tuple instead.
    Optional,
}

/// The prior-prober marker (paper Definition 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorProber {
    /// The probe completion table.
    pub table: TableIdx,
    /// Whether completion is required for correctness.
    pub need: CompletionNeed,
}

/// Routing state carried by every tuple in the dataflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleState {
    /// Predicates this tuple has passed — the paper's "donebits".
    pub done: PredSet,
    /// SteMs (by table instance) this tuple has already probed.
    pub probed_stems: TableSet,
    /// Tables whose access methods this tuple has already probed.
    pub probed_ams: TableSet,
    /// Prior-prober marker: set when a SteM bounces this tuple's probe.
    pub prior_prober: Option<PriorProber>,
    /// LastMatchTimeStamp (§3.5): matches with build timestamps ≤ this were
    /// already returned to this tuple by an earlier probe.
    pub last_match_ts: Timestamp,
    /// Version (build/EOT count) of the probed SteM at this tuple's last
    /// probe — re-probes are offered only when the SteM has changed, which
    /// is what makes BoundedRepetition hold under the §3.5 relaxation.
    pub last_probe_version: u64,
    /// Total routing hops, the BoundedRepetition safety valve.
    pub hops: u32,
    /// The index AM whose response produced this tuple, if any — used by
    /// adaptive policies to attribute freshness feedback.
    pub origin_am: Option<usize>,
    /// Whether the tuple matches the user's priority predicate (§4.1).
    pub prioritized: bool,
}

impl Default for TupleState {
    fn default() -> Self {
        TupleState::new()
    }
}

impl TupleState {
    pub fn new() -> TupleState {
        TupleState {
            done: PredSet::EMPTY,
            probed_stems: TableSet::EMPTY,
            probed_ams: TableSet::EMPTY,
            prior_prober: None,
            last_match_ts: 0,
            last_probe_version: 0,
            hops: 0,
            origin_am: None,
            prioritized: false,
        }
    }

    /// The state a probe *result* (concatenation) starts with: donebits are
    /// merged by the SteM; routing history does not transfer — the result
    /// is a new tuple that has probed nothing yet.
    pub fn for_result(done: PredSet) -> TupleState {
        TupleState {
            done,
            ..TupleState::new()
        }
    }

    /// Mark a completed SteM probe of table `t`.
    pub fn mark_probed(&mut self, t: TableIdx) {
        self.probed_stems.insert(t);
    }

    /// Mark a completed AM probe on table `t`.
    pub fn mark_am_probed(&mut self, t: TableIdx) {
        self.probed_ams.insert(t);
    }

    /// Is this tuple a prior prober that *must* still complete its probe?
    pub fn completion_required(&self) -> bool {
        matches!(
            self.prior_prober,
            Some(PriorProber {
                need: CompletionNeed::Required,
                ..
            })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_types::PredId;

    #[test]
    fn fresh_state_is_empty() {
        let s = TupleState::new();
        assert!(s.done.is_empty());
        assert!(s.probed_stems.is_empty());
        assert!(s.prior_prober.is_none());
        assert_eq!(s.last_match_ts, 0);
        assert!(!s.completion_required());
    }

    #[test]
    fn result_state_keeps_only_donebits() {
        let mut parent = TupleState::new();
        parent.mark_probed(TableIdx(1));
        parent.hops += 7;
        assert_eq!(parent.hops, 7);
        let mut done = PredSet::EMPTY;
        done.insert(PredId(2));
        let child = TupleState::for_result(done);
        assert!(child.done.contains(PredId(2)));
        assert!(child.probed_stems.is_empty());
        assert_eq!(child.hops, 0);
    }

    #[test]
    fn completion_required_flags() {
        let mut s = TupleState::new();
        s.prior_prober = Some(PriorProber {
            table: TableIdx(1),
            need: CompletionNeed::Required,
        });
        assert!(s.completion_required());
        s.prior_prober = Some(PriorProber {
            table: TableIdx(1),
            need: CompletionNeed::Optional,
        });
        assert!(!s.completion_required());
    }

    #[test]
    fn probe_marks() {
        let mut s = TupleState::new();
        s.mark_probed(TableIdx(3));
        s.mark_am_probed(TableIdx(2));
        assert!(s.probed_stems.contains(TableIdx(3)));
        assert!(s.probed_ams.contains(TableIdx(2)));
        assert!(!s.probed_stems.contains(TableIdx(2)));
    }
}
