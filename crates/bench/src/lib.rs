//! Shared harness for the experiment binaries.
//!
//! Every binary regenerates one figure (or reconstructed experiment) of
//! the paper: it runs the SteM architecture and its baselines on the same
//! workload, prints the figure's series as aligned rows and an ASCII
//! chart, writes a CSV to `results/`, and evaluates the paper's
//! qualitative claims as explicit SHAPE-CHECK lines.
//!
//! Binaries (one per experiment; see DESIGN.md §3 for the index):
//! `fig7`, `fig8`, `exp_competition`, `exp_spanning_tree`, `exp_reorder`,
//! `exp_nary_shj`, `exp_grace_hybrid`, `exp_buildfirst`.

use std::fmt::Write as _;
use std::path::PathBuf;
use stems_sim::{ascii_plot, to_secs, PlotSpec, Series, Time};

/// Where CSV outputs go: `$STEMS_RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("STEMS_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Write a CSV file into the results directory, reporting the path.
pub fn save_csv(name: &str, content: &str) {
    let path = results_dir().join(name);
    match std::fs::write(&path, content) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  ! could not write {}: {e}", path.display()),
    }
}

/// Render several series as an aligned table sampled on a uniform time
/// grid — the textual equivalent of one paper figure panel.
pub fn series_table(title: &str, horizon: Time, rows: usize, series: &[(&str, &Series)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n{title}");
    let _ = write!(out, "{:>10}", "time(s)");
    for (name, _) in series {
        let _ = write!(out, "{name:>16}");
    }
    let _ = writeln!(out);
    for i in 0..=rows {
        let t = (horizon as u128 * i as u128 / rows as u128) as Time;
        let _ = write!(out, "{:>10.1}", to_secs(t));
        for (_, s) in series {
            let _ = write!(out, "{:>16.1}", s.value_at(t));
        }
        let _ = writeln!(out);
    }
    out
}

/// Render the figure as an ASCII chart.
pub fn chart(title: &str, y_label: &str, horizon: Time, series: &[(&str, &Series)]) -> String {
    let spec = PlotSpec {
        title: title.to_string(),
        y_label: y_label.to_string(),
        horizon,
        ..PlotSpec::default()
    };
    ascii_plot(&spec, series)
}

/// Positive-integer environment knob shared by the bench binaries
/// (`STEMS_BENCH_ROWS`, `STEMS_BENCH_RUNS`, ...). A set-but-invalid
/// value panics rather than silently benchmarking the default workload.
pub fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => default,
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("{name} must be a positive integer, got {s:?}"),
        },
        Err(e) => panic!("{name} is not valid unicode: {e}"),
    }
}

/// Median of a set of wall-clock samples (upper median for even counts).
pub fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// FNV-1a over a byte slice — the deterministic primitive behind the
/// bench binaries' result hashes.
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = seed;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A machine-independent hash of a result multiset, rendered as 16 hex
/// digits. Rows are rendered to strings by the caller; the hash sorts
/// them first, so emission order never matters — two series hash equal
/// iff they produced the same result multiset. Benchmarks embed this as
/// the `result_hash` JSON field, and `tools/bench_check.py` gates CI on
/// cross-series (and cross-commit) equality.
pub fn result_hash(mut rows: Vec<String>) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    rows.sort_unstable();
    let mut h = OFFSET;
    for row in &rows {
        h = fnv1a(h, row.as_bytes());
        h = fnv1a(h, &[0x1e]); // row separator
    }
    h = fnv1a(h, &rows.len().to_le_bytes());
    format!("{h:016x}")
}

/// Render a canonical result multiset (`Report::canonical`) for hashing.
pub fn render_canonical(rows: &[Vec<stems_types::Value>]) -> Vec<String> {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|v| format!("{v:?}"))
                .collect::<Vec<_>>()
                .join("\u{1f}")
        })
        .collect()
}

/// Evaluate and print one qualitative claim from the paper. Returns the
/// outcome so binaries can exit non-zero when a shape check fails.
pub fn shape_check(claim: &str, ok: bool) -> bool {
    println!(
        "  SHAPE-CHECK [{}] {claim}",
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

/// Standard binary epilogue: exit code reflects shape checks.
pub fn finish(all_ok: bool) {
    if all_ok {
        println!("\nall shape checks passed");
    } else {
        println!("\nSOME SHAPE CHECKS FAILED");
        std::process::exit(1);
    }
}

/// Convenience: the fraction of grid points in `[from, to]` where series
/// `a` ≥ series `b` (used for "curve X dominates curve Y" claims).
pub fn dominance_fraction(a: &Series, b: &Series, from: Time, to: Time, points: usize) -> f64 {
    let mut wins = 0;
    for i in 0..=points {
        let t = from + ((to - from) as u128 * i as u128 / points as u128) as Time;
        if a.value_at(t) >= b.value_at(t) {
            wins += 1;
        }
    }
    wins as f64 / (points + 1) as f64
}

/// Linearity measure: maximum absolute deviation of a cumulative series
/// from the straight line through (0,0)–(horizon, final), normalized by
/// the final value. Small ⇒ the curve is nearly linear (fig 7's SteM
/// curve); large ⇒ strongly convex/concave (the index join parabola).
pub fn linearity_deviation(s: &Series, horizon: Time, points: usize) -> f64 {
    let total = s.value_at(horizon);
    if total <= 0.0 {
        return 0.0;
    }
    let mut max_dev = 0.0f64;
    for i in 0..=points {
        let t = (horizon as u128 * i as u128 / points as u128) as Time;
        let line = total * t as f64 / horizon as f64;
        max_dev = max_dev.max((s.value_at(t) - line).abs());
    }
    max_dev / total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(rate: f64, horizon: Time) -> Series {
        let mut s = Series::new();
        for i in 0..=100u64 {
            let t = horizon * i / 100;
            s.push(t, rate * to_secs(t));
        }
        s
    }

    fn quadratic(scale: f64, horizon: Time) -> Series {
        let mut s = Series::new();
        for i in 0..=100u64 {
            let t = horizon * i / 100;
            s.push(t, scale * to_secs(t) * to_secs(t));
        }
        s
    }

    #[test]
    fn dominance_of_faster_series() {
        let fast = linear(2.0, 1_000_000);
        let slow = linear(1.0, 1_000_000);
        assert_eq!(dominance_fraction(&fast, &slow, 0, 1_000_000, 20), 1.0);
        assert!(dominance_fraction(&slow, &fast, 100, 1_000_000, 20) < 0.1);
    }

    #[test]
    fn linearity_separates_line_from_parabola() {
        let h = stems_sim::secs(100);
        let line = linear(5.0, h);
        let para = quadratic(0.05, h);
        assert!(linearity_deviation(&line, h, 50) < 0.02);
        assert!(linearity_deviation(&para, h, 50) > 0.15);
    }

    #[test]
    fn table_contains_header_and_values() {
        let s = linear(1.0, 1_000_000);
        let t = series_table("fig", 1_000_000, 4, &[("stems", &s)]);
        assert!(t.contains("stems"));
        assert!(t.contains("time(s)"));
        assert!(t.lines().count() >= 7);
    }

    #[test]
    fn results_dir_exists() {
        let d = results_dir();
        assert!(d.exists());
    }

    #[test]
    fn result_hash_is_order_insensitive_and_content_sensitive() {
        let a = result_hash(vec!["r1".into(), "r2".into()]);
        let b = result_hash(vec!["r2".into(), "r1".into()]);
        assert_eq!(a, b, "multiset hash must ignore emission order");
        assert_eq!(a.len(), 16);
        assert_ne!(a, result_hash(vec!["r1".into()]));
        assert_ne!(a, result_hash(vec!["r1".into(), "r3".into()]));
        // Duplicates count: a multiset, not a set.
        assert_ne!(
            result_hash(vec!["r1".into(), "r1".into()]),
            result_hash(vec!["r1".into()])
        );
    }

    #[test]
    fn render_canonical_distinguishes_types() {
        use stems_types::Value;
        let a = render_canonical(&[vec![Value::Int(1), Value::Null]]);
        let b = render_canonical(&[vec![Value::Float(1.0), Value::Null]]);
        assert_ne!(a, b, "Int(1) and Float(1.0) are distinct result values");
        assert_eq!(a.len(), 1);
    }
}
