//! Shared harness for the experiment binaries.
//!
//! Every binary regenerates one figure (or reconstructed experiment) of
//! the paper: it runs the SteM architecture and its baselines on the same
//! workload, prints the figure's series as aligned rows and an ASCII
//! chart, writes a CSV to `results/`, and evaluates the paper's
//! qualitative claims as explicit SHAPE-CHECK lines.
//!
//! Binaries (one per experiment; see DESIGN.md §3 for the index):
//! `fig7`, `fig8`, `exp_competition`, `exp_spanning_tree`, `exp_reorder`,
//! `exp_nary_shj`, `exp_grace_hybrid`, `exp_buildfirst`.

use std::fmt::Write as _;
use std::path::PathBuf;
use stems_sim::{ascii_plot, to_secs, PlotSpec, Series, Time};

/// Where CSV outputs go: `$STEMS_RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("STEMS_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Write a CSV file into the results directory, reporting the path.
pub fn save_csv(name: &str, content: &str) {
    let path = results_dir().join(name);
    match std::fs::write(&path, content) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  ! could not write {}: {e}", path.display()),
    }
}

/// Render several series as an aligned table sampled on a uniform time
/// grid — the textual equivalent of one paper figure panel.
pub fn series_table(title: &str, horizon: Time, rows: usize, series: &[(&str, &Series)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n{title}");
    let _ = write!(out, "{:>10}", "time(s)");
    for (name, _) in series {
        let _ = write!(out, "{name:>16}");
    }
    let _ = writeln!(out);
    for i in 0..=rows {
        let t = (horizon as u128 * i as u128 / rows as u128) as Time;
        let _ = write!(out, "{:>10.1}", to_secs(t));
        for (_, s) in series {
            let _ = write!(out, "{:>16.1}", s.value_at(t));
        }
        let _ = writeln!(out);
    }
    out
}

/// Render the figure as an ASCII chart.
pub fn chart(title: &str, y_label: &str, horizon: Time, series: &[(&str, &Series)]) -> String {
    let spec = PlotSpec {
        title: title.to_string(),
        y_label: y_label.to_string(),
        horizon,
        ..PlotSpec::default()
    };
    ascii_plot(&spec, series)
}

/// Evaluate and print one qualitative claim from the paper. Returns the
/// outcome so binaries can exit non-zero when a shape check fails.
pub fn shape_check(claim: &str, ok: bool) -> bool {
    println!(
        "  SHAPE-CHECK [{}] {claim}",
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

/// Standard binary epilogue: exit code reflects shape checks.
pub fn finish(all_ok: bool) {
    if all_ok {
        println!("\nall shape checks passed");
    } else {
        println!("\nSOME SHAPE CHECKS FAILED");
        std::process::exit(1);
    }
}

/// Convenience: the fraction of grid points in `[from, to]` where series
/// `a` ≥ series `b` (used for "curve X dominates curve Y" claims).
pub fn dominance_fraction(a: &Series, b: &Series, from: Time, to: Time, points: usize) -> f64 {
    let mut wins = 0;
    for i in 0..=points {
        let t = from + ((to - from) as u128 * i as u128 / points as u128) as Time;
        if a.value_at(t) >= b.value_at(t) {
            wins += 1;
        }
    }
    wins as f64 / (points + 1) as f64
}

/// Linearity measure: maximum absolute deviation of a cumulative series
/// from the straight line through (0,0)–(horizon, final), normalized by
/// the final value. Small ⇒ the curve is nearly linear (fig 7's SteM
/// curve); large ⇒ strongly convex/concave (the index join parabola).
pub fn linearity_deviation(s: &Series, horizon: Time, points: usize) -> f64 {
    let total = s.value_at(horizon);
    if total <= 0.0 {
        return 0.0;
    }
    let mut max_dev = 0.0f64;
    for i in 0..=points {
        let t = (horizon as u128 * i as u128 / points as u128) as Time;
        let line = total * t as f64 / horizon as f64;
        max_dev = max_dev.max((s.value_at(t) - line).abs());
    }
    max_dev / total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(rate: f64, horizon: Time) -> Series {
        let mut s = Series::new();
        for i in 0..=100u64 {
            let t = horizon * i / 100;
            s.push(t, rate * to_secs(t));
        }
        s
    }

    fn quadratic(scale: f64, horizon: Time) -> Series {
        let mut s = Series::new();
        for i in 0..=100u64 {
            let t = horizon * i / 100;
            s.push(t, scale * to_secs(t) * to_secs(t));
        }
        s
    }

    #[test]
    fn dominance_of_faster_series() {
        let fast = linear(2.0, 1_000_000);
        let slow = linear(1.0, 1_000_000);
        assert_eq!(dominance_fraction(&fast, &slow, 0, 1_000_000, 20), 1.0);
        assert!(dominance_fraction(&slow, &fast, 100, 1_000_000, 20) < 0.1);
    }

    #[test]
    fn linearity_separates_line_from_parabola() {
        let h = stems_sim::secs(100);
        let line = linear(5.0, h);
        let para = quadratic(0.05, h);
        assert!(linearity_deviation(&line, h, 50) < 0.02);
        assert!(linearity_deviation(&para, h, 50) > 0.15);
    }

    #[test]
    fn table_contains_header_and_values() {
        let s = linear(1.0, 1_000_000);
        let t = series_table("fig", 1_000_000, 4, &[("stems", &s)]);
        assert!(t.contains("stems"));
        assert!(t.contains("time(s)"));
        assert!(t.lines().count() >= 7);
    }

    #[test]
    fn results_dir_exists() {
        let d = results_dir();
        assert!(d.exists());
    }
}
