//! Figure 7 — index join improvement through SteMs (paper §4.2).
//!
//! Query Q1: `SELECT * FROM R, S WHERE R.a = S.x`, with a scan on R and an
//! asynchronous index on S.x (Table 3 sources). Two systems:
//!
//! * **index join** — the static fig-5 plan: one join module encapsulating
//!   a lookup cache and the remote index behind a single input queue;
//! * **SteMs** — fig 6: SteM_R as rendezvous buffer, SteM_S as shared
//!   lookup cache, the index AM probed only on cache misses.
//!
//! Panel (i): cumulative result tuples over time. Panel (ii): cumulative
//! probes into the remote S index. Expected shapes (paper): index-join
//! output is "parabolic" (convex — slow while misses dominate), SteMs
//! "almost linear" and ahead for most of the run, same overall finish;
//! probe curves "almost identical", ≈ 250 = |distinct R.a|.

use stems_baseline::{index_join, ArrivalStream, IndexJoinParams};
use stems_bench::*;
use stems_catalog::reference;
use stems_core::{EddyExecutor, ExecConfig};
use stems_datagen::{Table3, Table3Config};
use stems_sim::{secs_f, to_secs, Series};
use stems_types::TableIdx;

fn main() {
    let cfg = Table3Config::default();
    println!(
        "fig7: Q1 = R({} rows, {} distinct a) ⋈ S on R.a = S.x; \
         S index latency {}s, R scan {} tps",
        cfg.r_rows, cfg.r_distinct, cfg.s_index_latency_s, cfg.q1_r_scan_tps
    );

    // ---- SteMs execution -------------------------------------------------
    let (catalog, query, _r, _s) = Table3::q1(&cfg).expect("table 3 setup");
    let expected = reference::execute(&catalog, &query).len();
    let report = EddyExecutor::build(&catalog, &query, ExecConfig::default())
        .expect("plan")
        .run();
    assert_eq!(
        report.results.len(),
        expected,
        "SteMs run must produce the exact result set"
    );

    // ---- Index-join baseline --------------------------------------------
    let r_table = Table3::r_table(&cfg);
    let s_table = Table3::s_table(&cfg);
    let r_stream = ArrivalStream::from_scan(
        &r_table,
        &stems_catalog::ScanSpec::with_rate(cfg.q1_r_scan_tps),
    );
    let base = index_join(
        &r_stream,
        s_table.rows(),
        &IndexJoinParams {
            lookup_latency_us: secs_f(cfg.s_index_latency_s),
            hit_cost_us: 1_000,
            outer_instance: TableIdx(0),
            inner_instance: TableIdx(1),
            outer_col: 1,
            inner_col: 0,
        },
    );
    assert_eq!(
        base.results.len(),
        expected,
        "baseline must agree on results"
    );

    // ---- Figure panels ----------------------------------------------------
    let horizon = report.end_time.max(base.end_time);
    let empty = Series::new();
    let stems_out = report.metrics.series("results").unwrap_or(&empty);
    let base_out = base.metrics.series("results").unwrap_or(&empty);
    let stems_probes = report.metrics.series("index_probes").unwrap_or(&empty);
    let base_probes = base.metrics.series("index_probes").unwrap_or(&empty);

    print!(
        "{}",
        series_table(
            "Figure 7(i): number of result tuples over time",
            horizon,
            16,
            &[("SteM", stems_out), ("IndexJoin", base_out)],
        )
    );
    println!(
        "{}",
        chart(
            "fig 7(i)",
            "result tuples",
            horizon,
            &[("SteM", stems_out), ("IndexJoin", base_out),]
        )
    );
    print!(
        "{}",
        series_table(
            "Figure 7(ii): number of index probes over time",
            horizon,
            16,
            &[("SteM", stems_probes), ("IndexJoin", base_probes)],
        )
    );
    println!(
        "{}",
        chart(
            "fig 7(ii)",
            "index probes",
            horizon,
            &[("SteM", stems_probes), ("IndexJoin", base_probes),]
        )
    );

    save_csv(
        "fig7_results.csv",
        &report
            .metrics
            .to_csv(&["results", "index_probes"], horizon, 100)
            .replace("results", "stems_results")
            .replace("index_probes", "stems_index_probes"),
    );
    save_csv(
        "fig7_baseline.csv",
        &base
            .metrics
            .to_csv(&["results", "index_probes"], horizon, 100),
    );

    // ---- Shape checks (paper §4.2 claims) ---------------------------------
    let mut ok = true;
    ok &= shape_check(
        "both systems produce the full result set",
        report.results.len() == expected && base.results.len() == expected,
    );
    ok &= shape_check(
        "probe counts nearly identical (coalesced to ~|distinct a|)",
        report.counter("index_probes") == cfg.r_distinct as u64
            && base.metrics.counter("index_probes") == cfg.r_distinct as u64,
    );
    ok &= shape_check(
        "SteM output is ahead of the index join for ≥ 90% of the run",
        dominance_fraction(stems_out, base_out, horizon / 50, horizon, 50) >= 0.9,
    );
    let lin_stems = linearity_deviation(stems_out, horizon, 50);
    let lin_base = linearity_deviation(base_out, horizon, 50);
    ok &= shape_check(
        &format!(
            "SteM curve nearly linear (dev {lin_stems:.3}), index join strongly convex (dev {lin_base:.3})"
        ),
        lin_stems < 0.05 && lin_base > 0.15,
    );
    ok &= shape_check(
        &format!(
            "overall completion within 10% ({:.0}s vs {:.0}s)",
            to_secs(report.end_time),
            to_secs(base.end_time)
        ),
        (report.end_time as f64 - base.end_time as f64).abs() < 0.10 * base.end_time as f64,
    );
    finish(ok);
}
