//! Kernel-family throughput, emitted as `BENCH_3.json` — the third point
//! of the perf trajectory (`BENCH_1.json`: batched routing, `BENCH_2.json`:
//! chunked ingestion + Int kernels).
//!
//! Two workloads:
//!
//! * **int_chain** — the exact selection-heavy pure-Int chain of
//!   `bench_ingest` (`BENCH_2.json`). The partial-gather rebuild must not
//!   regress it: every batch is all-Int, so the typed lane covers whole
//!   batches just like the PR-2 kernels did.
//! * **mixed_chain** — the same 3-table chain shape with mixed-type
//!   selection columns: a NULL-sprinkled Float column (`<` against a Float
//!   constant), a NULL-sprinkled Str column (`IN` list), a second Int
//!   selection on the same table (conjunction fusion), and a NULL-sprinkled
//!   Int column. Under the PR-2 kernels every wave containing one NULL (or
//!   any non-Int value) re-ran the whole scalar loop after a failed gather
//!   — the double-scan bug this PR fixes; the partial gather keeps the
//!   typed lanes engaged and only the exception rows go scalar. The
//!   `unfused_batch64` series isolates the conjunction-fusion share of the
//!   win.
//!
//! Quick mode for CI smoke: `STEMS_BENCH_ROWS` (default 3000) and
//! `STEMS_BENCH_RUNS` (default 5) shrink the workload; the binary still
//! asserts cross-series result equality and validates the JSON it wrote,
//! so a rotted bench binary fails loudly rather than silently emitting
//! garbage. Output lands in `$STEMS_BENCH_OUT` or `./BENCH_3.json`.

use std::time::Instant;
use stems_bench::{env_usize, median, render_canonical, result_hash};
use stems_catalog::{Catalog, QuerySpec, ScanSpec};
use stems_core::{EddyExecutor, ExecConfig, RoutingPolicyKind};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sql::parse_query;

/// The pure-Int selection-heavy chain of `bench_ingest` (BENCH_2's
/// workload): no regression allowed here.
fn build_int(rows: usize, chunk: usize) -> (Catalog, QuerySpec) {
    let mut catalog = Catalog::new();
    TableBuilder::new("R", rows, 81)
        .col("a", ColGen::Mod(500))
        .col("u", ColGen::Mod(500))
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("S", rows, 82)
        .col("x", ColGen::Mod(500))
        .col("y", ColGen::Mod(400))
        .col("v", ColGen::Mod(500))
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("T", rows, 83)
        .col("b", ColGen::Mod(400))
        .col("w", ColGen::Mod(500))
        .register(&mut catalog)
        .unwrap();
    for src in (0..3).map(stems_catalog::SourceId) {
        catalog
            .add_scan(src, ScanSpec::with_rate(100_000.0).with_chunk(chunk))
            .unwrap();
    }
    let query = parse_query(
        &catalog,
        "SELECT * FROM R, S, T WHERE R.a = S.x AND S.y = T.b \
         AND R.u < 300 AND S.v < 300 AND T.w < 300",
    )
    .unwrap();
    (catalog, query)
}

/// The mixed-type variant: Float / Str / NULL-sprinkled selection columns,
/// an IN-list, and two selections on one table (fusion).
fn build_mixed(rows: usize, chunk: usize) -> (Catalog, QuerySpec) {
    let mut catalog = Catalog::new();
    TableBuilder::new("R", rows, 81)
        .col("a", ColGen::Mod(500))
        .col("u", ColGen::FloatMod(500).with_nulls(11))
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("S", rows, 82)
        .col("x", ColGen::Mod(500))
        .col("y", ColGen::Mod(400))
        .col("v", ColGen::StrMod(8).with_nulls(13))
        .col("w", ColGen::Mod(500))
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("T", rows, 83)
        .col("b", ColGen::Mod(400))
        .col("w", ColGen::Mod(500).with_nulls(7))
        .register(&mut catalog)
        .unwrap();
    for src in (0..3).map(stems_catalog::SourceId) {
        catalog
            .add_scan(src, ScanSpec::with_rate(100_000.0).with_chunk(chunk))
            .unwrap();
    }
    // FloatMod(500) spans 0.0..250.0 → `< 150.0` keeps ~60%; StrMod(8) IN
    // 5-of-8 keeps ~62%; S.w/T.w Int selections keep 60% — selectivities
    // comparable to the int_chain workload.
    let query = parse_query(
        &catalog,
        "SELECT * FROM R, S, T WHERE R.a = S.x AND S.y = T.b \
         AND R.u < 150.0 AND S.v IN ('s0', 's1', 's2', 's3', 's4') \
         AND S.w < 300 AND T.w < 300",
    )
    .unwrap();
    (catalog, query)
}

struct Entry {
    label: &'static str,
    chunk: usize,
    batch_size: usize,
    rows_per_sec: f64,
    median_secs: f64,
    results: usize,
    result_hash: String,
}

#[allow(clippy::type_complexity)]
fn run_workload(
    name: &str,
    rows: usize,
    runs: usize,
    series: &[(&'static str, usize, usize, bool)],
    build: fn(usize, usize) -> (Catalog, QuerySpec),
) -> Vec<Entry> {
    let input_rows = (3 * rows) as f64;
    let mut entries: Vec<Entry> = Vec::new();
    for &(label, chunk, batch_size, fuse) in series {
        let (catalog, query) = build(rows, chunk);
        let mut secs = Vec::new();
        let mut results = 0usize;
        let mut hash = String::new();
        for _ in 0..runs {
            let config = ExecConfig {
                batch_size,
                fuse_selections: fuse,
                policy: RoutingPolicyKind::BenefitCost {
                    epsilon: 0.05,
                    drop_rate: 1.0,
                },
                ..ExecConfig::default()
            };
            let start = Instant::now();
            let report = EddyExecutor::build(&catalog, &query, config)
                .expect("plan")
                .run();
            secs.push(start.elapsed().as_secs_f64());
            results = report.results.len();
            assert!(report.violations.is_empty(), "{:?}", report.violations);
            hash = result_hash(render_canonical(&report.canonical(&catalog, &query)));
        }
        if let Some(first) = entries.first() {
            // Hash, not just count: the series must agree on the result
            // *multiset* — the field CI's bench_check gate keys on.
            assert_eq!(
                hash, first.result_hash,
                "{name}/{label} changed the result multiset — kernels are not scalar-equivalent"
            );
        }
        let med = median(secs);
        let rows_per_sec = input_rows / med;
        println!(
            "{name:>11}/{label:<16} (chunk {chunk:>3}, batch {batch_size:>3}): \
             {rows_per_sec:>12.0} rows/s  (median {med:.4}s over {runs} runs, {results} results)"
        );
        entries.push(Entry {
            label,
            chunk,
            batch_size,
            rows_per_sec,
            median_secs: med,
            results,
            result_hash: hash,
        });
    }
    entries
}

fn series_json(entries: &[Entry]) -> String {
    let scalar = entries[0].rows_per_sec;
    entries
        .iter()
        .map(|e| {
            format!(
                "      {{\"label\": \"{}\", \"chunk\": {}, \"batch_size\": {}, \
                 \"rows_per_sec\": {:.0}, \"median_secs\": {:.6}, \"results\": {}, \
                 \"result_hash\": \"{}\", \"speedup_vs_scalar\": {:.3}}}",
                e.label,
                e.chunk,
                e.batch_size,
                e.rows_per_sec,
                e.median_secs,
                e.results,
                e.result_hash,
                e.rows_per_sec / scalar
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

/// Minimal structural validation of the emitted JSON: balanced braces and
/// brackets outside strings, and the keys the CI smoke job greps for. Not
/// a parser — just enough to make a silently-rotted bench fail loudly.
fn validate_json(text: &str) {
    let (mut depth, mut brackets, mut in_str, mut esc) = (0i64, 0i64, false, false);
    for c in text.chars() {
        if in_str {
            match (esc, c) {
                (true, _) => esc = false,
                (false, '\\') => esc = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth += 1,
            '}' => depth -= 1,
            '[' => brackets += 1,
            ']' => brackets -= 1,
            _ => {}
        }
        assert!(depth >= 0 && brackets >= 0, "malformed JSON nesting");
    }
    assert!(
        depth == 0 && brackets == 0 && !in_str,
        "unbalanced JSON output"
    );
    for key in [
        "\"benchmark\"",
        "\"workloads\"",
        "\"rows_per_sec\"",
        "\"result_hash\"",
    ] {
        assert!(text.contains(key), "JSON output missing {key}");
    }
}

fn main() {
    let rows = env_usize("STEMS_BENCH_ROWS", 3000);
    let runs = env_usize("STEMS_BENCH_RUNS", 5);

    // (label, scan chunk, routing batch, fuse_selections). The scalar
    // baselines run unfused: they are the strict one-SM-per-hop cascade
    // the speedups claim to beat (fusion is batch-size-independent, so a
    // fused "scalar" row would already carry part of this PR's win).
    let int_entries = run_workload(
        "int_chain",
        rows,
        runs,
        &[("scalar", 1, 1, false), ("chunked_batch64", 64, 64, true)],
        build_int,
    );
    let mixed_entries = run_workload(
        "mixed_chain",
        rows,
        runs,
        &[
            ("scalar", 1, 1, false),
            ("unfused_batch64", 64, 64, false),
            ("chunked_batch64", 64, 64, true),
        ],
        build_mixed,
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = stems_core::runtime::default_workers();
    let json = format!(
        "{{\n  \"benchmark\": \"kernel_family_chain3_{rows}x{rows}x{rows}_benefit_cost\",\n  \
         \"metric\": \"input_rows_per_sec_wall\",\n  \"rows\": {rows},\n  \"runs\": {runs},\n  \
         \"cores\": {cores},\n  \"workers\": {workers},\n  \
         \"workloads\": [\n    {{\"name\": \"int_chain\", \"series\": [\n{}\n    ]}},\n    \
         {{\"name\": \"mixed_chain\", \"series\": [\n{}\n    ]}}\n  ]\n}}\n",
        series_json(&int_entries),
        series_json(&mixed_entries),
    );
    validate_json(&json);
    let path = std::env::var("STEMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_3.json".into());
    std::fs::write(&path, &json).expect("write BENCH_3.json");
    // Read back what actually landed on disk — a truncated write must
    // fail here, not in the next bench PR.
    let on_disk = std::fs::read_to_string(&path).expect("re-read bench output");
    validate_json(&on_disk);
    println!("wrote {path}");
}
