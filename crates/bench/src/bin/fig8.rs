//! Figure 8 — index/hash join hybridization based on costs (paper §4.3).
//!
//! Query Q4: `SELECT * FROM R, T WHERE R.key = T.key`, with a scan on R
//! and **both** a scan and an index AM on T (Table 3). Three systems:
//!
//! * **index join** — R drives the T index (static plan);
//! * **hash join** — binary symmetric hash join over both scans;
//! * **hybrid** — the eddy with SteMs and the benefit/cost policy, free to
//!   route each bounced R tuple either to the T index or back to the scan
//!   side ("Drop" arm).
//!
//! Expected shapes (paper): the index join wins the first seconds (exact
//! matches per probe); the hash join catches up as the hash tables fill
//! and "beats the index join handily" overall; the hybrid tracks the best
//! of the two throughout, completing slightly after the hash join because
//! the eddy "keeps sending a small fraction of the R tuples to probe into
//! the T index throughout the processing to explore".

use stems_baseline::{index_join, symmetric_hash_join, ArrivalStream, IndexJoinParams, ShjParams};
use stems_bench::*;
use stems_catalog::{reference, ScanSpec};
use stems_core::{EddyExecutor, ExecConfig, RoutingPolicyKind};
use stems_datagen::{Table3, Table3Config};
use stems_sim::{secs, secs_f, to_secs, Series};
use stems_types::TableIdx;

fn main() {
    let cfg = Table3Config::default();
    println!(
        "fig8: Q4 = R({} rows, scan {} tps) ⋈ T({} rows, scan {} tps + index {}s) on key",
        cfg.r_rows, cfg.q4_r_scan_tps, cfg.t_rows, cfg.q4_t_scan_tps, cfg.t_index_latency_s
    );

    // ---- Hybrid: eddy + SteMs + benefit/cost policy -----------------------
    let (catalog, query, _r, _t) = Table3::q4(&cfg).expect("table 3 setup");
    let expected = reference::execute(&catalog, &query).len();
    let config = ExecConfig {
        policy: RoutingPolicyKind::BenefitCost {
            epsilon: 0.05,
            drop_rate: 0.5,
        },
        ..ExecConfig::default()
    };
    let hybrid = EddyExecutor::build(&catalog, &query, config)
        .expect("plan")
        .run();
    assert_eq!(hybrid.results.len(), expected, "hybrid must be exact");

    // ---- Baselines ---------------------------------------------------------
    let r_table = Table3::r_table(&cfg);
    let t_table = Table3::t_table(&cfg);
    let r_stream = ArrivalStream::from_scan(&r_table, &ScanSpec::with_rate(cfg.q4_r_scan_tps));
    let t_stream = ArrivalStream::from_scan(&t_table, &ScanSpec::with_rate(cfg.q4_t_scan_tps));

    let ij = index_join(
        &r_stream,
        t_table.rows(),
        &IndexJoinParams {
            lookup_latency_us: secs_f(cfg.t_index_latency_s),
            hit_cost_us: 1_000,
            outer_instance: TableIdx(0),
            inner_instance: TableIdx(1),
            outer_col: 0,
            inner_col: 0,
        },
    );
    assert_eq!(ij.results.len(), expected, "index join must be exact");

    let hj = symmetric_hash_join(
        &r_stream,
        TableIdx(0),
        0,
        &t_stream,
        TableIdx(1),
        0,
        &ShjParams::default(),
    );
    assert_eq!(hj.results.len(), expected, "hash join must be exact");

    // ---- Figure panels ------------------------------------------------------
    let empty = Series::new();
    let hy = hybrid.metrics.series("results").unwrap_or(&empty);
    let ij_s = ij.metrics.series("results").unwrap_or(&empty);
    let hj_s = hj.metrics.series("results").unwrap_or(&empty);
    let series: [(&str, &Series); 3] = [("hybrid", hy), ("index join", ij_s), ("hash join", hj_s)];

    for (panel, horizon) in [("(i) first 30s", secs(30)), ("(ii) first 200s", secs(200))] {
        print!(
            "{}",
            series_table(
                &format!("Figure 8{panel}: number of results output"),
                horizon,
                15,
                &series,
            )
        );
        println!(
            "{}",
            chart(&format!("fig 8{panel}"), "results", horizon, &series)
        );
    }

    save_csv(
        "fig8_hybrid.csv",
        &hybrid.metrics.to_csv(
            &[
                "results",
                "index_probes",
                "am_probe_choices",
                "policy_drops",
            ],
            secs(220),
            110,
        ),
    );
    save_csv(
        "fig8_index_join.csv",
        &ij.metrics.to_csv(&["results"], secs(220), 110),
    );
    save_csv(
        "fig8_hash_join.csv",
        &hj.metrics.to_csv(&["results"], secs(220), 110),
    );

    // Routing-fraction diagnostics: how the hybrid split bounced tuples.
    println!(
        "hybrid routing: {} index probes chosen, {} drops, {} index lookups issued, {} fresh / {} dup index builds",
        hybrid.counter("am_probe_choices"),
        hybrid.counter("policy_drops"),
        hybrid.counter("index_probes"),
        hybrid.counter("am_fresh_builds"),
        hybrid.counter("am_dup_builds"),
    );

    // ---- Shape checks (paper §4.3 claims) -----------------------------------
    let mut ok = true;
    ok &= shape_check(
        "all three systems produce the exact result set",
        hybrid.results.len() == expected
            && ij.results.len() == expected
            && hj.results.len() == expected,
    );
    ok &= shape_check(
        "index join initially outperforms the hash join (dominates first 20s)",
        dominance_fraction(ij_s, hj_s, secs(2), secs(20), 18) >= 0.9,
    );
    ok &= shape_check(
        &format!(
            "hash join beats the index join handily overall ({:.0}s vs {:.0}s)",
            to_secs(hj.end_time),
            to_secs(ij.end_time)
        ),
        hj.end_time as f64 <= 0.85 * ij.end_time as f64,
    );
    ok &= shape_check(
        "hybrid tracks the best of both: ≥ 90% of max(index, hash) everywhere",
        {
            let horizon = secs(200);
            (0..=50u64).all(|i| {
                let t = horizon * i / 50;
                let best = ij_s.value_at(t).max(hj_s.value_at(t));
                hy.value_at(t) >= 0.9 * best - 5.0
            })
        },
    );
    ok &= shape_check(
        &format!(
            "hybrid completes slightly after the hash join ({:.0}s vs {:.0}s, within 25%)",
            to_secs(hybrid.end_time),
            to_secs(hj.end_time)
        ),
        hybrid.end_time >= hj.end_time && (hybrid.end_time as f64) <= 1.25 * hj.end_time as f64,
    );
    // Paper: "the eddy keeps sending a small fraction of the R tuples to
    // probe into the T index throughout the processing to explore". R
    // tuples exist as routable probers only while the R scan runs (~59s);
    // exploration must span that whole window, not cut off early once the
    // scan side starts winning.
    ok &= shape_check(
        "exploration spans the whole R-processing window (index probes past 50s)",
        {
            let probes = hybrid.metrics.series("index_probes").unwrap_or(&empty);
            let total = probes.last_value();
            let late = total - probes.value_at(secs(50));
            total > 50.0 && late > 0.0
        },
    );
    finish(ok);
}
