//! Sharded-SteM build+probe throughput, emitted as `BENCH_4.json` — the
//! fourth point of the perf trajectory (`BENCH_1`: batched routing,
//! `BENCH_2`: chunked ingestion + Int kernels, `BENCH_3`: kernel family).
//!
//! Drives the SteM layer directly with the build/probe traffic of the
//! 3-table chain workload (R ⋈ S on `R.a = S.x`, S ⋈ T on `S.y = T.b`):
//! all three relations build into their SteMs in envelope-sized batches
//! (T first, then S, then R, so the TimeStamp rule lets the probe wave
//! generate every result), then the stamped R singletons probe SteM S and
//! the R⋈S concatenations probe SteM T. That is exactly the traffic the
//! eddy routes on this workload, minus the routing machinery — which is
//! the point: the series isolates what hash-partition sharding
//! ([`stems_core::ShardedStem`]) buys on the module hot path itself, at
//! envelope sizes where the scoped-thread fan-out engages.
//!
//! Series: shard fan-outs {1, 2, 4} over identical input (shard 1 is the
//! unsharded PR-3 SteM). Every series must produce the identical result
//! multiset — asserted via the same `result_hash` the CI bench_check gate
//! consumes.
//!
//! Two speedup measurements per shard count:
//!
//! * **`virtual_speedup_vs_shards1`** — the full eddy runs the chain
//!   query under the parallel-server cost model
//!   (`CostModel::shard_parallel_service`: an envelope's SteM service
//!   time is the *busiest shard's* load, the discrete-event expression of
//!   per-shard servers). Virtual completion time is deterministic —
//!   independent of host core count and CI noise — so this is the
//!   headline scaling series and the ≥ 1.3× at 4 shards the PR claims.
//! * **`wall_speedup_vs_shards1`** — measured wall clock of the direct
//!   build+probe loop. Faithful to the machine it ran on: ≥ 1 only when
//!   the host grants real cores (`cores` records what was available;
//!   on a single-core runner the scoped fan-out stays serial by design
//!   and this ratio just reports the sharding layer's overhead).
//!
//! Quick mode for CI smoke: `STEMS_BENCH_ROWS` (default 60000),
//! `STEMS_BENCH_RUNS` (default 5) and `STEMS_BENCH_ENVELOPE` (default
//! 4096) shrink the workload. Output lands in `$STEMS_BENCH_OUT` or
//! `./BENCH_4.json`.

use std::time::Instant;
use stems_bench::{env_usize, median, result_hash};
use stems_catalog::{Catalog, QuerySpec, ScanSpec};
use stems_core::engine::CostModel;
use stems_core::stem::ProbeReplySet;
use stems_core::{
    EddyExecutor, ExecConfig, RoutingPolicyKind, ShardedStem, StemOptions, TupleState,
};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sql::parse_query;
use stems_types::{TableIdx, Timestamp, Tuple, TupleBatch};

/// The 3-table chain, join keys spanning ~`rows` distinct values so the
/// probe side stays selective (≈1 match per probe) and the build side
/// spreads evenly across shards. Scans deliver `chunk`-row bursts at a
/// rate fast enough that SteM service dominates the virtual timeline
/// (only the engine-driven virtual series uses the scans; the direct
/// build+probe loop reads the catalog rows itself).
fn build_workload(rows: usize, chunk: usize) -> (Catalog, QuerySpec) {
    let domain = rows as i64;
    let mut catalog = Catalog::new();
    TableBuilder::new("R", rows, 91)
        .col("a", ColGen::Mod(domain))
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("S", rows, 92)
        .col("x", ColGen::Mod(domain))
        .col("y", ColGen::Mod(domain))
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("T", rows, 93)
        .col("b", ColGen::Mod(domain))
        .register(&mut catalog)
        .unwrap();
    for src in (0..3).map(stems_catalog::SourceId) {
        catalog
            .add_scan(src, ScanSpec::with_rate(10_000_000.0).with_chunk(chunk))
            .unwrap();
    }
    let query = parse_query(
        &catalog,
        "SELECT * FROM R, S, T WHERE R.a = S.x AND S.y = T.b",
    )
    .unwrap();
    (catalog, query)
}

struct RunOutcome {
    build_secs: f64,
    probe_secs: f64,
    /// Builds performed + probe tuples issued — the work unit the
    /// throughput metric divides by (identical across shard counts).
    ops: usize,
    results: usize,
    result_hash: String,
}

/// One full build+probe pass of the chain traffic at `num_shards`.
fn run_once(
    catalog: &Catalog,
    query: &QuerySpec,
    envelope: usize,
    num_shards: usize,
) -> RunOutcome {
    let mk = |t: usize| {
        let ti = TableIdx(t as u8);
        ShardedStem::new(
            ti,
            query.tables[t].source,
            &query.join_cols_of(ti),
            true,
            false,
            StemOptions {
                num_shards,
                ..StemOptions::default()
            },
        )
    };
    let (mut stem_r, mut stem_s, mut stem_t) = (mk(0), mk(1), mk(2));
    let singletons = |t: usize| -> Vec<Tuple> {
        catalog
            .table_expect(query.tables[t].source)
            .rows()
            .iter()
            .map(|row| Tuple::singleton(TableIdx(t as u8), row.clone()))
            .collect()
    };
    let (r_rows, s_rows, t_rows) = (singletons(0), singletons(1), singletons(2));
    let mut ops = 0usize;
    let mut ts: Timestamp = 0;

    // Build phase: T, then S, then R — every probe below is by the
    // later-built side, so the TimeStamp rule passes every match.
    let build_start = Instant::now();
    let mut stamped_r: Vec<Tuple> = Vec::with_capacity(r_rows.len());
    for (stem, rows, keep) in [
        (&mut stem_t, &t_rows, false),
        (&mut stem_s, &s_rows, false),
        (&mut stem_r, &r_rows, true),
    ] {
        for chunk in rows.chunks(envelope) {
            let batch: TupleBatch = chunk.iter().cloned().collect();
            let states = vec![TupleState::new(); batch.len()];
            let results = stem.build_batch(&batch, &states, &mut ts);
            ops += batch.len();
            if keep {
                for r in results {
                    if let stems_core::stem::BuildResult::Fresh(t) = r {
                        stamped_r.push(t);
                    }
                }
            }
        }
    }
    let build_secs = build_start.elapsed().as_secs_f64();

    // Probe phase: R probes SteM S; the concatenations probe SteM T. One
    // reply arena serves every envelope — the steady-state reply path.
    let probe_start = Instant::now();
    let fresh_state = TupleState::new();
    let mut final_results: Vec<Tuple> = Vec::new();
    let mut intermediates: Vec<(Tuple, TupleState)> = Vec::new();
    let mut replies = ProbeReplySet::new();
    for chunk in stamped_r.chunks(envelope) {
        let batch: TupleBatch = chunk.iter().cloned().collect();
        let states = vec![fresh_state.clone(); batch.len()];
        ops += batch.len();
        replies.clear();
        stem_s.probe_batch_into(batch.as_slice(), &states, query, &mut replies);
        let (metas, mut results) = replies.metas_and_results();
        for meta in metas {
            for (tuple, done) in results.by_ref().take(meta.len) {
                intermediates.push((tuple, TupleState::for_result(done)));
            }
        }
    }
    for chunk in intermediates.chunks(envelope) {
        let batch: TupleBatch = chunk.iter().map(|(t, _)| t.clone()).collect();
        let states: Vec<TupleState> = chunk.iter().map(|(_, s)| s.clone()).collect();
        ops += batch.len();
        replies.clear();
        stem_t.probe_batch_into(batch.as_slice(), &states, query, &mut replies);
        let (_, results) = replies.metas_and_results();
        for (tuple, _) in results {
            final_results.push(tuple);
        }
    }
    let probe_secs = probe_start.elapsed().as_secs_f64();

    let rendered: Vec<String> = final_results.iter().map(|t| t.to_string()).collect();
    RunOutcome {
        build_secs,
        probe_secs,
        ops,
        results: final_results.len(),
        result_hash: result_hash(rendered),
    }
}

fn main() {
    let rows = env_usize("STEMS_BENCH_ROWS", 60_000);
    let runs = env_usize("STEMS_BENCH_RUNS", 5);
    let envelope = env_usize("STEMS_BENCH_ENVELOPE", 4096);
    // The virtual series runs the full eddy, which is slower per row than
    // the direct loop — a smaller relation keeps the bench snappy without
    // affecting the (deterministic) virtual ratios.
    let vrows = env_usize("STEMS_BENCH_VROWS", 8000);
    let vbatch = envelope.min(1024);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = stems_core::runtime::default_workers();
    let (catalog, query) = build_workload(rows, 1);
    let (vcatalog, vquery) = build_workload(vrows, vbatch);

    struct Entry {
        num_shards: usize,
        ops_per_sec: f64,
        median_secs: f64,
        build_secs: f64,
        probe_secs: f64,
        virtual_end_secs: f64,
        results: usize,
        result_hash: String,
    }
    let mut entries: Vec<Entry> = Vec::new();
    let mut virtual_results: Option<usize> = None;
    for num_shards in [1usize, 2, 4] {
        // Wall-clock series: the direct build+probe loop.
        let mut secs = Vec::new();
        let mut last: Option<RunOutcome> = None;
        for _ in 0..runs {
            let out = run_once(&catalog, &query, envelope, num_shards);
            secs.push(out.build_secs + out.probe_secs);
            last = Some(out);
        }
        let out = last.expect("at least one run");
        if let Some(first) = entries.first() {
            assert_eq!(
                out.result_hash, first.result_hash,
                "shards {num_shards} changed the result multiset"
            );
            assert_eq!(out.results, first.results);
        }
        let med = median(secs);
        let ops_per_sec = out.ops as f64 / med;

        // Virtual series: the full eddy under the parallel-server cost
        // model. Deterministic — one run suffices.
        let config = ExecConfig {
            batch_size: vbatch,
            num_shards,
            costs: CostModel {
                shard_parallel_service: true,
                ..CostModel::default()
            },
            policy: RoutingPolicyKind::BenefitCost {
                epsilon: 0.05,
                drop_rate: 1.0,
            },
            ..ExecConfig::default()
        };
        let report = EddyExecutor::build(&vcatalog, &vquery, config)
            .expect("plan")
            .run();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        match virtual_results {
            None => virtual_results = Some(report.results.len()),
            Some(want) => assert_eq!(
                report.results.len(),
                want,
                "shards {num_shards} changed the engine result count"
            ),
        }
        let virtual_end_secs = stems_sim::to_secs(report.end_time);

        println!(
            "shards {num_shards}: {ops_per_sec:>12.0} ops/s wall (median {med:.4}s over {runs} \
             runs, build {:.4}s + probe {:.4}s, {} results) | virtual chain completion \
             {virtual_end_secs:.4}s",
            out.build_secs, out.probe_secs, out.results
        );
        entries.push(Entry {
            num_shards,
            ops_per_sec,
            median_secs: med,
            build_secs: out.build_secs,
            probe_secs: out.probe_secs,
            virtual_end_secs,
            results: out.results,
            result_hash: out.result_hash,
        });
    }

    let wall_base = entries[0].ops_per_sec;
    let virtual_base = entries[0].virtual_end_secs;
    let json = format!(
        "{{\n  \"benchmark\": \"sharded_stem_chain3_{rows}x{rows}x{rows}\",\n  \
         \"metric\": \"virtual_chain_speedup_and_wall_ops_per_sec\",\n  \"rows\": {rows},\n  \
         \"virtual_rows\": {vrows},\n  \"runs\": {runs},\n  \"envelope\": {envelope},\n  \
         \"cores\": {cores},\n  \"workers\": {workers},\n  \"series\": [\n{}\n  ]\n}}\n",
        entries
            .iter()
            .map(|e| format!(
                "    {{\"label\": \"shards{}\", \"num_shards\": {}, \
                 \"virtual_end_secs\": {:.6}, \"speedup_vs_shards1\": {:.3}, \
                 \"ops_per_sec\": {:.0}, \"median_secs\": {:.6}, \
                 \"build_secs\": {:.6}, \"probe_secs\": {:.6}, \
                 \"wall_speedup_vs_shards1\": {:.3}, \
                 \"results\": {}, \"result_hash\": \"{}\"}}",
                e.num_shards,
                e.num_shards,
                e.virtual_end_secs,
                virtual_base / e.virtual_end_secs,
                e.ops_per_sec,
                e.median_secs,
                e.build_secs,
                e.probe_secs,
                e.ops_per_sec / wall_base,
                e.results,
                e.result_hash,
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let path = std::env::var("STEMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_4.json".into());
    std::fs::write(&path, &json).expect("write BENCH_4.json");
    println!("wrote {path}");
}
