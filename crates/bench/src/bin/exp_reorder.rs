//! Adaptive reordering under user interest (paper §4.1 / salient point ⑤).
//!
//! Reconstruction of a tech-report-only experiment: "With SteMs, the eddy
//! can adaptively choose the way it reorders tuples in interactive
//! environments." The §4.1 policy addition: SteMs on tables with index AMs
//! "bounce back any probe tuple that satisfies a predicate prioritized by
//! the user ... this speeds up the entry of matches for these tuples into
//! the dataflow and thereby the output of prioritized results".
//!
//! Workload: fig-7-style Q1 (R scan drives an index-only S). The user is
//! interested in `R.a < 30` (20% of tuples). We compare a run without
//! priorities against one where prioritized tuples jump module queues.
//! Expected: the time to the K-th *interesting* result drops sharply;
//! total results and completion time stay (almost) unchanged.

use stems_bench::*;
use stems_catalog::{reference, Catalog, IndexSpec, QuerySpec, ScanSpec, TableInstance};
use stems_core::{EddyExecutor, ExecConfig, Report};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sim::{secs_f, to_secs, Series, Time};
use stems_types::{CmpOp, ColRef, PredId, Predicate, TableIdx, Value};

const R_ROWS: usize = 600;
const DISTINCT: i64 = 150;
const INTEREST_BOUND: i64 = 30; // a < 30 ⇒ 20% of tuples

fn setup() -> (Catalog, QuerySpec) {
    let mut c = Catalog::new();
    let r = TableBuilder::new("R", R_ROWS, 31)
        .col("a", ColGen::ModShuffled(DISTINCT))
        .register(&mut c)
        .expect("R");
    let s = TableBuilder::new("S", DISTINCT as usize, 32)
        .col("v", ColGen::Serial)
        .register(&mut c)
        .expect("S");
    c.add_scan(r, ScanSpec::with_rate(100.0)).expect("r scan");
    // S reachable only through its (slow) index on key.
    c.add_index(s, IndexSpec::new(vec![0], secs_f(0.5)))
        .expect("s index");
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 0),
        )],
        None,
    )
    .expect("query");
    (c, q)
}

fn interest_pred() -> Predicate {
    // Standalone predicate (not part of the query): R.a < 30.
    Predicate::selection(
        PredId(0),
        ColRef::new(TableIdx(0), 1),
        CmpOp::Lt,
        Value::Int(INTEREST_BOUND),
    )
}

/// Time at which the `k`-th result satisfying the interest predicate was
/// emitted (pairing results with the "results" series points).
fn kth_interesting(report: &Report, k: usize) -> Option<Time> {
    let pred = interest_pred();
    let series = report.metrics.series("results")?;
    let mut seen = 0;
    for (tuple, (t, _)) in report.results.iter().zip(series.points()) {
        if pred.eval(tuple) == Some(true) {
            seen += 1;
            if seen == k {
                return Some(*t);
            }
        }
    }
    None
}

fn main() {
    println!(
        "exp_reorder: Q1-style R({R_ROWS}) ⋈ S({DISTINCT}, index-only, 0.5s); \
         user interest: R.a < {INTEREST_BOUND}"
    );
    let (c, q) = setup();
    let expected = reference::execute(&c, &q).len();

    let plain = EddyExecutor::build(&c, &q, ExecConfig::default())
        .expect("plan")
        .run();
    let boosted = EddyExecutor::build(
        &c,
        &q,
        ExecConfig {
            priority_pred: Some(interest_pred()),
            ..ExecConfig::default()
        },
    )
    .expect("plan")
    .run();
    assert_eq!(plain.results.len(), expected);
    assert_eq!(boosted.results.len(), expected);

    let n_interesting = plain
        .results
        .iter()
        .filter(|t| interest_pred().eval(t) == Some(true))
        .count();
    let k = n_interesting / 2;
    let t_plain = kth_interesting(&plain, k).expect("plain kth");
    let t_boost = kth_interesting(&boosted, k).expect("boosted kth");
    let t_all_plain = kth_interesting(&plain, n_interesting).expect("plain all");
    let t_all_boost = kth_interesting(&boosted, n_interesting).expect("boosted all");

    println!(
        "\ninteresting results: {n_interesting} of {expected} \
         \n  median interesting result: plain {:.1}s, prioritized {:.1}s \
         \n  last interesting result:   plain {:.1}s, prioritized {:.1}s \
         \n  completion:                plain {:.1}s, prioritized {:.1}s",
        to_secs(t_plain),
        to_secs(t_boost),
        to_secs(t_all_plain),
        to_secs(t_all_boost),
        to_secs(plain.end_time),
        to_secs(boosted.end_time),
    );

    let empty = Series::new();
    let horizon = plain.end_time.max(boosted.end_time);
    print!(
        "{}",
        series_table(
            "prioritized results delivered over time",
            horizon,
            16,
            &[
                (
                    "prioritized run",
                    boosted.metrics.series("priority_results").unwrap_or(&empty),
                ),
                (
                    "all results (plain)",
                    plain.metrics.series("results").unwrap_or(&empty)
                ),
            ],
        )
    );
    save_csv(
        "exp_reorder.csv",
        &boosted
            .metrics
            .to_csv(&["results", "priority_results"], horizon, 100),
    );

    let mut ok = true;
    ok &= shape_check(
        "both runs produce the exact result set",
        plain.results.len() == expected && boosted.results.len() == expected,
    );
    ok &= shape_check(
        &format!(
            "median interesting result arrives ≥ 2× sooner ({:.1}s → {:.1}s)",
            to_secs(t_plain),
            to_secs(t_boost)
        ),
        2 * t_boost <= t_plain,
    );
    ok &= shape_check(
        &format!(
            "all interesting results arrive sooner ({:.1}s → {:.1}s)",
            to_secs(t_all_plain),
            to_secs(t_all_boost)
        ),
        t_all_boost < t_all_plain,
    );
    ok &= shape_check(
        "prioritization does not hurt completion time (within 5%)",
        (boosted.end_time as f64) <= 1.05 * plain.end_time as f64,
    );
    finish(ok);
}
