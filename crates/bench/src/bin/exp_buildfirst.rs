//! Relaxing BuildFirst for a huge single-scan table (paper §3.5).
//!
//! "The BuildFirst constraint ... could result in highly inefficient
//! execution in situations where one of the input tables is much larger
//! than the others. ... it might be better to build SteMs on the \[small\]
//! tuples and probe the \[large\] tuples directly into these two SteMs,
//! without building into \[the large table's SteM]. This is equivalent to
//! building a temporary index on only one side of the join."
//!
//! Chain `R(small) ⋈ S(small) ⋈ T(huge)`. Default: T's 20k rows all build
//! into SteM_T (memory!). Relaxed (`no_stem` on T): T tuples probe
//! directly, re-probing under LastMatchTimeStamp until the S side is
//! covered — no SteM_T at all. Both must be exact; the relaxed run should
//! hold an order of magnitude less state.

use stems_bench::*;
use stems_catalog::{reference, Catalog, QuerySpec, ScanSpec, TableInstance};
use stems_core::{EddyExecutor, ExecConfig, Report};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sim::{to_secs, Series};
use stems_types::{CmpOp, ColRef, PredId, Predicate, TableIdx, TableSet};

const SMALL: usize = 100;
const HUGE: usize = 20_000;

fn setup() -> (Catalog, QuerySpec) {
    let mut c = Catalog::new();
    let r = TableBuilder::new("R", SMALL, 61)
        .col("v", ColGen::Serial)
        .register(&mut c)
        .expect("R");
    let s = TableBuilder::new("S", SMALL, 62)
        .col("v", ColGen::Serial)
        .register(&mut c)
        .expect("S");
    let t = TableBuilder::new("T", HUGE, 63)
        .col("w", ColGen::Mod(SMALL as i64))
        .register(&mut c)
        .expect("T");
    c.add_scan(r, ScanSpec::with_rate(1000.0)).expect("r");
    c.add_scan(s, ScanSpec::with_rate(1000.0)).expect("s");
    c.add_scan(t, ScanSpec::with_rate(5000.0)).expect("t");
    let q = QuerySpec::new(
        &c,
        [(r, "r"), (s, "s"), (t, "t")]
            .iter()
            .map(|(src, al)| TableInstance {
                source: *src,
                alias: al.to_string(),
            })
            .collect(),
        vec![
            // R.key = S.key (1:1), S.key = T.w (1:200)
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            ),
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(1), 0),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 1),
            ),
        ],
        None,
    )
    .expect("query");
    (c, q)
}

fn run(relaxed: bool) -> (Report, usize) {
    let (c, q) = setup();
    let expected = reference::execute(&c, &q).len();
    let mut config = ExecConfig::default();
    if relaxed {
        config.plan.no_stem = TableSet::single(TableIdx(2));
    }
    (
        EddyExecutor::build(&c, &q, config).expect("plan").run(),
        expected,
    )
}

fn main() {
    println!(
        "exp_buildfirst: R({SMALL}) ⋈ S({SMALL}) ⋈ T({HUGE}); \
         relaxation: T probes without building (§3.5)"
    );
    let (default_run, expected) = run(false);
    let (relaxed_run, e2) = run(true);
    assert_eq!(expected, e2);

    let empty = Series::new();
    let d_mem = default_run
        .metrics
        .series("stem_bytes_total")
        .unwrap_or(&empty);
    let r_mem = relaxed_run
        .metrics
        .series("stem_bytes_total")
        .unwrap_or(&empty);
    let d_out = default_run.metrics.series("results").unwrap_or(&empty);
    let r_out = relaxed_run.metrics.series("results").unwrap_or(&empty);
    let horizon = default_run.end_time.max(relaxed_run.end_time);

    print!(
        "{}",
        series_table(
            "results over time",
            horizon,
            12,
            &[("BuildFirst", d_out), ("relaxed (§3.5)", r_out)],
        )
    );
    print!(
        "{}",
        series_table(
            "SteM memory (bytes)",
            horizon,
            12,
            &[("BuildFirst", d_mem), ("relaxed (§3.5)", r_mem)],
        )
    );
    save_csv(
        "exp_buildfirst.csv",
        &relaxed_run
            .metrics
            .to_csv(&["results", "stem_bytes_total"], horizon, 100),
    );
    println!(
        "peak SteM memory: BuildFirst {:.0} bytes, relaxed {:.0} bytes; \
         completion {:.1}s vs {:.1}s; relaxed re-probes (unparks): {}",
        d_mem.last_value(),
        r_mem.last_value(),
        to_secs(default_run.end_time),
        to_secs(relaxed_run.end_time),
        relaxed_run.counter("unparked"),
    );

    let mut ok = true;
    ok &= shape_check(
        "both configurations produce the exact result set",
        default_run.results.len() == expected && relaxed_run.results.len() == expected,
    );
    ok &= shape_check(
        "relaxed run holds ≤ 10% of the default's SteM memory",
        r_mem.last_value() * 10.0 <= d_mem.last_value(),
    );
    ok &= shape_check("completion times comparable (within 30%)", {
        let (a, b) = (relaxed_run.end_time as f64, default_run.end_time as f64);
        (a - b).abs() <= 0.30 * b
    });
    finish(ok);
}
