//! Probe-pipeline throughput, emitted as `BENCH_5.json` — the fifth point
//! of the perf trajectory (`BENCH_1`: batched routing, `BENCH_2`: chunked
//! ingestion + Int kernels, `BENCH_3`: kernel family, `BENCH_4`: sharded
//! SteMs).
//!
//! Drives SteM probes directly (the eddy's dominant operation) and
//! measures what the hash-once, allocation-lean flat pipeline buys at
//! envelope sizes where its savings engage, against the same engine at
//! envelope 1 — the scalar per-tuple probe path, which pays the pre-PR
//! per-probe costs (one index descent, one hash, one candidate
//! materialization per probe; one scan snapshot per unbindable probe).
//!
//! Three workloads, chosen so each lever is visible:
//!
//! * **dup_keys** — Int-keyed probes with ~`DUP_DOMAIN` distinct keys per
//!   relation: a 4096-probe envelope repeats each key dozens of times, so
//!   key-run dedup resolves the index once per *distinct* key and
//!   duplicate probes share one candidate span. Most of the wave is
//!   §3.5-style re-probe traffic (stamped older than the store, so the
//!   TimeStamp rule filters the matches) — the realistic duplicate-heavy
//!   stream, and the one where fetch cost, not result concatenation,
//!   dominates; every 8th probe is live and forms results.
//! * **str_keys** — string join keys: every probe key is hashed exactly
//!   once at the envelope boundary and the prehashed index descends
//!   without re-hashing (the scalar path re-hashes the string per probe).
//! * **fanout** — a predicate-free (cartesian) probe: unbindable probes
//!   share one scan snapshot per envelope instead of materializing the
//!   scan per probe.
//!
//! Every series of a workload must produce identical replies — asserted
//! internally via the same `result_hash` the CI bench_check gate
//! consumes. The hash covers the result multiset AND the per-probe
//! `raw_matches` profile, so a candidate-fetch bug (e.g. bad dedup
//! sharing) fails the gate even for probes whose matches the timestamp
//! rules filter out.
//!
//! Quick mode for CI smoke: `STEMS_BENCH_ROWS` (default 30000),
//! `STEMS_BENCH_RUNS` (default 3) and `STEMS_BENCH_ENVELOPE` (default
//! 4096) shrink the workload. Output lands in `$STEMS_BENCH_OUT` or
//! `./BENCH_5.json`.

use std::time::Instant;
use stems_bench::{env_usize, median, result_hash};
use stems_catalog::{Catalog, QuerySpec, ScanSpec, TableInstance};
use stems_core::stem::ProbeReplySet;
use stems_core::{ShardedStem, StemOptions, TupleState};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sql::parse_query;
use stems_types::{TableIdx, Timestamp, Tuple, TupleBatch};

/// Distinct join-key count of the duplicate-heavy workload: a 4096-probe
/// envelope carries each key ~42 times.
const DUP_DOMAIN: i64 = 97;

struct Workload {
    name: &'static str,
    catalog: Catalog,
    query: QuerySpec,
    /// Probe timestamp: large = every stored row passes the TimeStamp
    /// rule (keyed workloads), small = only the first build does (keeps
    /// the cartesian result set linear in probes, not probes × rows).
    probe_ts: Timestamp,
    /// Every `stride`-th probe keeps `probe_ts`; the rest are stamped
    /// `ts = 1` — re-probe traffic whose matches the TimeStamp rule
    /// filters (fetch-dominated). `1` = every probe is live.
    live_stride: usize,
}

/// R ⋈ S on `R.a = S.x`; column generators pick the key shape.
fn keyed_workload(
    name: &'static str,
    rows: usize,
    r_gen: ColGen,
    s_gen: ColGen,
    live_stride: usize,
) -> Workload {
    let mut catalog = Catalog::new();
    TableBuilder::new("R", rows, 51)
        .col("a", r_gen)
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("S", rows, 52)
        .col("x", s_gen)
        .register(&mut catalog)
        .unwrap();
    for src in (0..2).map(stems_catalog::SourceId) {
        catalog.add_scan(src, ScanSpec::with_rate(1e7)).unwrap();
    }
    let query = parse_query(&catalog, "SELECT * FROM R, S WHERE R.a = S.x").unwrap();
    Workload {
        name,
        catalog,
        query,
        probe_ts: u64::MAX - 1,
        live_stride,
    }
}

/// Predicate-free R × S: every probe is unbindable and takes the scan
/// path. Probes are stamped just above the first build so each one forms
/// exactly one result (the fetch, not the concat, is what's measured).
fn fanout_workload(rows: usize) -> Workload {
    let mut catalog = Catalog::new();
    TableBuilder::new("R", rows, 53)
        .col("a", ColGen::Serial)
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("S", rows, 54)
        .col("x", ColGen::Serial)
        .register(&mut catalog)
        .unwrap();
    for src in (0..2).map(stems_catalog::SourceId) {
        catalog.add_scan(src, ScanSpec::with_rate(1e7)).unwrap();
    }
    let tables = vec![
        TableInstance {
            source: stems_catalog::SourceId(0),
            alias: "r".into(),
        },
        TableInstance {
            source: stems_catalog::SourceId(1),
            alias: "s".into(),
        },
    ];
    let query = QuerySpec::new(&catalog, tables, vec![], None).unwrap();
    Workload {
        name: "fanout",
        catalog,
        query,
        probe_ts: 2,
        live_stride: 1,
    }
}

struct ProbeOutcomeStats {
    probes: usize,
    results: usize,
    result_hash: String,
}

/// Build SteM S once, then time probe envelopes of the given size.
fn run_probes(w: &Workload, envelope: usize, runs: usize) -> (f64, ProbeOutcomeStats) {
    let s_idx = TableIdx(1);
    let mut stem = ShardedStem::new(
        s_idx,
        w.query.tables[1].source,
        &w.query.join_cols_of(s_idx),
        true,
        false,
        StemOptions::default(),
    );
    let mut ts: Timestamp = 0;
    let s_rows = w.catalog.table_expect(w.query.tables[1].source).rows();
    for chunk in s_rows.chunks(4096) {
        let batch: TupleBatch = chunk
            .iter()
            .map(|row| Tuple::singleton(s_idx, row.clone()))
            .collect();
        let states = vec![TupleState::new(); batch.len()];
        stem.build_batch(&batch, &states, &mut ts);
    }

    let probes: Vec<Tuple> = w
        .catalog
        .table_expect(w.query.tables[0].source)
        .rows()
        .iter()
        .enumerate()
        .map(|(k, row)| {
            let ts = if k % w.live_stride == 0 {
                w.probe_ts
            } else {
                1
            };
            Tuple::singleton(TableIdx(0), row.clone()).with_timestamp(TableIdx(0), ts)
        })
        .collect();

    // Timed passes: drive the probe pipeline, touching replies only
    // enough to keep them from being optimized away. One reply arena per
    // workload — the steady-state (allocation-free) reply path.
    let mut replies = ProbeReplySet::new();
    let mut secs = Vec::new();
    for _ in 0..runs {
        let mut touched = 0usize;
        let start = Instant::now();
        for chunk in probes.chunks(envelope) {
            let batch: TupleBatch = chunk.iter().cloned().collect();
            let states = vec![TupleState::new(); batch.len()];
            replies.clear();
            stem.probe_batch_into(batch.as_slice(), &states, &w.query, &mut replies);
            for (meta, results) in replies.iter() {
                touched += results.len() + meta.raw_matches;
            }
        }
        secs.push(start.elapsed().as_secs_f64());
        std::hint::black_box(touched);
    }

    // Untimed verification pass: render the replies for the result hash
    // (replies are deterministic, so once is enough).
    let mut results = 0usize;
    let mut rendered: Vec<String> = Vec::new();
    for (c, chunk) in probes.chunks(envelope).enumerate() {
        let batch: TupleBatch = chunk.iter().cloned().collect();
        let states = vec![TupleState::new(); batch.len()];
        replies.clear();
        stem.probe_batch_into(batch.as_slice(), &states, &w.query, &mut replies);
        for (p, (meta, reply_results)) in replies.iter().enumerate() {
            results += reply_results.len();
            for (tuple, _) in reply_results {
                rendered.push(tuple.to_string());
            }
            rendered.push(format!("raw:{}:{}", c * envelope + p, meta.raw_matches));
        }
    }
    (
        median(secs),
        ProbeOutcomeStats {
            probes: probes.len(),
            results,
            result_hash: result_hash(rendered),
        },
    )
}

struct Entry {
    label: String,
    envelope: usize,
    probes_per_sec: f64,
    median_secs: f64,
    results: usize,
    result_hash: String,
}

fn run_workload(w: &Workload, envelopes: &[usize], runs: usize) -> Vec<Entry> {
    let mut entries: Vec<Entry> = Vec::new();
    for &envelope in envelopes {
        let (med, out) = run_probes(w, envelope, runs);
        if let Some(first) = entries.first() {
            assert_eq!(
                out.result_hash, first.result_hash,
                "{}/envelope{envelope} changed the result multiset — the flat pipeline is \
                 not scalar-equivalent",
                w.name
            );
            assert_eq!(out.results, first.results);
        }
        let probes_per_sec = out.probes as f64 / med;
        println!(
            "{:>9}/envelope{envelope:<5}: {probes_per_sec:>12.0} probes/s \
             (median {med:.4}s over {runs} runs, {} results)",
            w.name, out.results
        );
        entries.push(Entry {
            label: format!("envelope{envelope}"),
            envelope,
            probes_per_sec,
            median_secs: med,
            results: out.results,
            result_hash: out.result_hash,
        });
    }
    entries
}

fn series_json(entries: &[Entry]) -> String {
    let scalar = entries[0].probes_per_sec;
    entries
        .iter()
        .map(|e| {
            format!(
                "      {{\"label\": \"{}\", \"envelope\": {}, \"probes_per_sec\": {:.0}, \
                 \"median_secs\": {:.6}, \"results\": {}, \"result_hash\": \"{}\", \
                 \"speedup_vs_scalar\": {:.3}}}",
                e.label,
                e.envelope,
                e.probes_per_sec,
                e.median_secs,
                e.results,
                e.result_hash,
                e.probes_per_sec / scalar
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let rows = env_usize("STEMS_BENCH_ROWS", 30_000);
    let runs = env_usize("STEMS_BENCH_RUNS", 3);
    let envelope = env_usize("STEMS_BENCH_ENVELOPE", 4096);
    let envelopes = [1usize, envelope];

    let workloads = [
        keyed_workload("dup_keys", rows, ColGen::Mod(DUP_DOMAIN), ColGen::Serial, 8),
        keyed_workload(
            "str_keys",
            rows,
            ColGen::StrMod(DUP_DOMAIN * 4),
            ColGen::StrMod(rows as i64),
            8,
        ),
        fanout_workload((rows / 10).max(200)),
    ];
    let results: Vec<(&'static str, Vec<Entry>)> = workloads
        .iter()
        .map(|w| (w.name, run_workload(w, &envelopes, runs)))
        .collect();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = stems_core::runtime::default_workers();
    let json = format!(
        "{{\n  \"benchmark\": \"flat_probe_pipeline_{rows}x{rows}\",\n  \
         \"metric\": \"probes_per_sec_wall\",\n  \"rows\": {rows},\n  \"runs\": {runs},\n  \
         \"envelope\": {envelope},\n  \"cores\": {cores},\n  \"workers\": {workers},\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        results
            .iter()
            .map(|(name, entries)| format!(
                "    {{\"name\": \"{name}\", \"series\": [\n{}\n    ]}}",
                series_json(entries)
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let path = std::env::var("STEMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_5.json".into());
    std::fs::write(&path, &json).expect("write BENCH_5.json");
    println!("wrote {path}");
}
