//! Worker-pool scaling of the sharded SteM hot path, emitted as
//! `BENCH_6.json` — the sixth point of the perf trajectory (`BENCH_4`:
//! sharded SteMs, `BENCH_5`: flat probe pipeline).
//!
//! Drives the same 3-table chain build+probe traffic as `bench_shards`,
//! but holds the shard fan-out fixed at 8 and sweeps the **worker
//! budget** {1, 2, 4, 8} of the persistent work-stealing pool
//! ([`stems_core::runtime::WorkerPool`]) that services the fan-outs.
//! Workers = 1 is the serial engine: every lane runs on the calling
//! thread. Larger budgets dispatch per-shard build lanes and skew-chunked
//! probe lanes to long-lived pool workers (no per-envelope thread
//! spawn/join, per-shard queue affinity, round-robin stealing).
//!
//! Every series must produce the identical result multiset — asserted
//! internally and gated in CI via `result_hash`, which is the
//! load-bearing claim on a single-core runner: the pool must be a pure
//! scheduling device, bit-invisible at every budget. `speedup_vs_1`
//! reports the wall-clock scaling actually observed; it is ≥ 1.5× at
//! workers = 4 only when the host grants real cores (`cores` records
//! what was available; on a 1-core container the series documents pool
//! overhead, not speedup).
//!
//! Quick mode for CI smoke: `STEMS_BENCH_ROWS` (default 60000),
//! `STEMS_BENCH_RUNS` (default 5) and `STEMS_BENCH_ENVELOPE` (default
//! 4096) shrink the workload. Output lands in `$STEMS_BENCH_OUT` or
//! `./BENCH_6.json`.

use std::time::Instant;
use stems_bench::{env_usize, median, result_hash};
use stems_catalog::{Catalog, QuerySpec, ScanSpec};
use stems_core::stem::ProbeReplySet;
use stems_core::{ShardedStem, StemOptions, TupleState};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sql::parse_query;
use stems_types::{TableIdx, Timestamp, Tuple, TupleBatch};

/// Shard fan-out under test: enough lanes that every worker budget in the
/// sweep has parallel work available.
const NUM_SHARDS: usize = 8;

/// The 3-table chain (R ⋈ S on `R.a = S.x`, S ⋈ T on `S.y = T.b`), keys
/// spanning ~`rows` distinct values — selective probes, even spread.
fn build_workload(rows: usize) -> (Catalog, QuerySpec) {
    let domain = rows as i64;
    let mut catalog = Catalog::new();
    TableBuilder::new("R", rows, 91)
        .col("a", ColGen::Mod(domain))
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("S", rows, 92)
        .col("x", ColGen::Mod(domain))
        .col("y", ColGen::Mod(domain))
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("T", rows, 93)
        .col("b", ColGen::Mod(domain))
        .register(&mut catalog)
        .unwrap();
    for src in (0..3).map(stems_catalog::SourceId) {
        catalog.add_scan(src, ScanSpec::with_rate(1e7)).unwrap();
    }
    let query = parse_query(
        &catalog,
        "SELECT * FROM R, S, T WHERE R.a = S.x AND S.y = T.b",
    )
    .unwrap();
    (catalog, query)
}

struct RunOutcome {
    build_secs: f64,
    probe_secs: f64,
    ops: usize,
    results: usize,
    result_hash: String,
}

/// One full build+probe pass of the chain traffic at `workers`.
fn run_once(catalog: &Catalog, query: &QuerySpec, envelope: usize, workers: usize) -> RunOutcome {
    let mk = |t: usize| {
        let ti = TableIdx(t as u8);
        ShardedStem::new(
            ti,
            query.tables[t].source,
            &query.join_cols_of(ti),
            true,
            false,
            StemOptions {
                num_shards: NUM_SHARDS,
                workers: Some(workers),
                ..StemOptions::default()
            },
        )
    };
    let (mut stem_r, mut stem_s, mut stem_t) = (mk(0), mk(1), mk(2));
    let singletons = |t: usize| -> Vec<Tuple> {
        catalog
            .table_expect(query.tables[t].source)
            .rows()
            .iter()
            .map(|row| Tuple::singleton(TableIdx(t as u8), row.clone()))
            .collect()
    };
    let (r_rows, s_rows, t_rows) = (singletons(0), singletons(1), singletons(2));
    let mut ops = 0usize;
    let mut ts: Timestamp = 0;

    // Build phase: T, then S, then R — every probe below is by the
    // later-built side, so the TimeStamp rule passes every match.
    let build_start = Instant::now();
    let mut stamped_r: Vec<Tuple> = Vec::with_capacity(r_rows.len());
    for (stem, rows, keep) in [
        (&mut stem_t, &t_rows, false),
        (&mut stem_s, &s_rows, false),
        (&mut stem_r, &r_rows, true),
    ] {
        for chunk in rows.chunks(envelope) {
            let batch: TupleBatch = chunk.iter().cloned().collect();
            let states = vec![TupleState::new(); batch.len()];
            let results = stem.build_batch(&batch, &states, &mut ts);
            ops += batch.len();
            if keep {
                for r in results {
                    if let stems_core::stem::BuildResult::Fresh(t) = r {
                        stamped_r.push(t);
                    }
                }
            }
        }
    }
    let build_secs = build_start.elapsed().as_secs_f64();

    // Probe phase: R probes SteM S; the concatenations probe SteM T.
    let probe_start = Instant::now();
    let fresh_state = TupleState::new();
    let mut final_results: Vec<Tuple> = Vec::new();
    let mut intermediates: Vec<(Tuple, TupleState)> = Vec::new();
    let mut replies = ProbeReplySet::new();
    for chunk in stamped_r.chunks(envelope) {
        let batch: TupleBatch = chunk.iter().cloned().collect();
        let states = vec![fresh_state.clone(); batch.len()];
        ops += batch.len();
        replies.clear();
        stem_s.probe_batch_into(batch.as_slice(), &states, query, &mut replies);
        let (metas, mut results) = replies.metas_and_results();
        for meta in metas {
            for (tuple, done) in results.by_ref().take(meta.len) {
                intermediates.push((tuple, TupleState::for_result(done)));
            }
        }
    }
    for chunk in intermediates.chunks(envelope) {
        let batch: TupleBatch = chunk.iter().map(|(t, _)| t.clone()).collect();
        let states: Vec<TupleState> = chunk.iter().map(|(_, s)| s.clone()).collect();
        ops += batch.len();
        replies.clear();
        stem_t.probe_batch_into(batch.as_slice(), &states, query, &mut replies);
        let (_, results) = replies.metas_and_results();
        for (tuple, _) in results {
            final_results.push(tuple);
        }
    }
    let probe_secs = probe_start.elapsed().as_secs_f64();

    let rendered: Vec<String> = final_results.iter().map(|t| t.to_string()).collect();
    RunOutcome {
        build_secs,
        probe_secs,
        ops,
        results: final_results.len(),
        result_hash: result_hash(rendered),
    }
}

fn main() {
    let rows = env_usize("STEMS_BENCH_ROWS", 60_000);
    let runs = env_usize("STEMS_BENCH_RUNS", 5);
    let envelope = env_usize("STEMS_BENCH_ENVELOPE", 4096);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ambient_workers = stems_core::runtime::default_workers();
    let (catalog, query) = build_workload(rows);

    struct Entry {
        workers: usize,
        ops_per_sec: f64,
        median_secs: f64,
        build_secs: f64,
        probe_secs: f64,
        results: usize,
        result_hash: String,
    }
    let mut entries: Vec<Entry> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut secs = Vec::new();
        let mut last: Option<RunOutcome> = None;
        for _ in 0..runs {
            let out = run_once(&catalog, &query, envelope, workers);
            secs.push(out.build_secs + out.probe_secs);
            last = Some(out);
        }
        let out = last.expect("at least one run");
        if let Some(first) = entries.first() {
            assert_eq!(
                out.result_hash, first.result_hash,
                "workers {workers} changed the result multiset — the pool is not a pure \
                 scheduling device"
            );
            assert_eq!(out.results, first.results);
        }
        let med = median(secs);
        let ops_per_sec = out.ops as f64 / med;
        println!(
            "workers {workers}: {ops_per_sec:>12.0} ops/s wall (median {med:.4}s over {runs} \
             runs, build {:.4}s + probe {:.4}s, {} results)",
            out.build_secs, out.probe_secs, out.results
        );
        entries.push(Entry {
            workers,
            ops_per_sec,
            median_secs: med,
            build_secs: out.build_secs,
            probe_secs: out.probe_secs,
            results: out.results,
            result_hash: out.result_hash,
        });
    }

    let base = entries[0].ops_per_sec;
    let json = format!(
        "{{\n  \"benchmark\": \"worker_pool_chain3_{rows}x{rows}x{rows}_shards{NUM_SHARDS}\",\n  \
         \"metric\": \"wall_ops_per_sec_vs_worker_budget\",\n  \"rows\": {rows},\n  \
         \"runs\": {runs},\n  \"envelope\": {envelope},\n  \"num_shards\": {NUM_SHARDS},\n  \
         \"cores\": {cores},\n  \"workers\": {ambient_workers},\n  \"series\": [\n{}\n  ]\n}}\n",
        entries
            .iter()
            .map(|e| format!(
                "    {{\"label\": \"workers{}\", \"workers\": {}, \"ops_per_sec\": {:.0}, \
                 \"median_secs\": {:.6}, \"build_secs\": {:.6}, \"probe_secs\": {:.6}, \
                 \"speedup_vs_1\": {:.3}, \"results\": {}, \"result_hash\": \"{}\"}}",
                e.workers,
                e.workers,
                e.ops_per_sec,
                e.median_secs,
                e.build_secs,
                e.probe_secs,
                e.ops_per_sec / base,
                e.results,
                e.result_hash,
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let path = std::env::var("STEMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_6.json".into());
    std::fs::write(&path, &json).expect("write BENCH_6.json");
    println!("wrote {path}");
}
