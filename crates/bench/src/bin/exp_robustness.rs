//! Robustness ablation: do the fig-7/fig-8 shapes depend on our chosen
//! constants?
//!
//! The paper's curves were measured once, on one machine, with one data
//! seed. Our reproduction targets *shapes*, so this binary re-derives the
//! two headline claims across a grid of seeds, scan rates and index
//! latencies and asserts they hold at every point:
//!
//! * fig 7: SteM output linear & dominant, index join convex, equal probe
//!   counts, comparable completion;
//! * fig 8: hash join beats index join overall while the benefit/cost
//!   hybrid tracks the best of both.

use stems_baseline::{index_join, symmetric_hash_join, ArrivalStream, IndexJoinParams, ShjParams};
use stems_bench::*;
use stems_catalog::ScanSpec;
use stems_core::{EddyExecutor, ExecConfig, RoutingPolicyKind};
use stems_datagen::{Table3, Table3Config};
use stems_sim::{secs_f, Series};
use stems_types::TableIdx;

fn fig7_shape_holds(cfg: &Table3Config) -> bool {
    let (catalog, query, _, _) = Table3::q1(cfg).expect("q1");
    let report = EddyExecutor::build(&catalog, &query, ExecConfig::default())
        .expect("plan")
        .run();
    let r_table = Table3::r_table(cfg);
    let s_table = Table3::s_table(cfg);
    let r_stream = ArrivalStream::from_scan(&r_table, &ScanSpec::with_rate(cfg.q1_r_scan_tps));
    let base = index_join(
        &r_stream,
        s_table.rows(),
        &IndexJoinParams {
            lookup_latency_us: secs_f(cfg.s_index_latency_s),
            hit_cost_us: 1_000,
            outer_instance: TableIdx(0),
            inner_instance: TableIdx(1),
            outer_col: 1,
            inner_col: 0,
        },
    );
    let horizon = report.end_time.max(base.end_time);
    let empty = Series::new();
    let stems_out = report.metrics.series("results").unwrap_or(&empty);
    let base_out = base.metrics.series("results").unwrap_or(&empty);
    report.results.len() == base.results.len()
        && report.counter("index_probes") == cfg.r_distinct as u64
        && dominance_fraction(stems_out, base_out, horizon / 50, horizon, 50) >= 0.85
        && linearity_deviation(stems_out, horizon, 50) < 0.08
        && linearity_deviation(base_out, horizon, 50) > 0.12
}

fn fig8_shape_holds(cfg: &Table3Config) -> bool {
    let (catalog, query, _, _) = Table3::q4(cfg).expect("q4");
    let hybrid = EddyExecutor::build(
        &catalog,
        &query,
        ExecConfig {
            policy: RoutingPolicyKind::BenefitCost {
                epsilon: 0.05,
                drop_rate: 0.5,
            },
            ..ExecConfig::default()
        },
    )
    .expect("plan")
    .run();
    let r_table = Table3::r_table(cfg);
    let t_table = Table3::t_table(cfg);
    let r_stream = ArrivalStream::from_scan(&r_table, &ScanSpec::with_rate(cfg.q4_r_scan_tps));
    let t_stream = ArrivalStream::from_scan(&t_table, &ScanSpec::with_rate(cfg.q4_t_scan_tps));
    let ij = index_join(
        &r_stream,
        t_table.rows(),
        &IndexJoinParams {
            lookup_latency_us: secs_f(cfg.t_index_latency_s),
            hit_cost_us: 1_000,
            outer_instance: TableIdx(0),
            inner_instance: TableIdx(1),
            outer_col: 0,
            inner_col: 0,
        },
    );
    let hj = symmetric_hash_join(
        &r_stream,
        TableIdx(0),
        0,
        &t_stream,
        TableIdx(1),
        0,
        &ShjParams::default(),
    );
    let empty = Series::new();
    let hy = hybrid.metrics.series("results").unwrap_or(&empty);
    let ij_s = ij.metrics.series("results").unwrap_or(&empty);
    let hj_s = hj.metrics.series("results").unwrap_or(&empty);
    let horizon = hybrid.end_time.max(ij.end_time).max(hj.end_time);
    let tracks_best = (0..=40u64).all(|i| {
        let t = horizon * i / 40;
        hy.value_at(t) >= 0.85 * ij_s.value_at(t).max(hj_s.value_at(t)) - 5.0
    });
    hybrid.results.len() == ij.results.len()
        && ij.results.len() == hj.results.len()
        && hj.end_time < ij.end_time
        && tracks_best
}

fn main() {
    println!("exp_robustness: fig-7/fig-8 shape stability across seeds and rates\n");
    let mut ok = true;

    // fig 7 grid: 3 seeds × {R scan rate, index latency} variations.
    for seed in [2003u64, 7, 99] {
        for (rate, lat) in [(50.0, 1.6), (25.0, 1.0), (100.0, 2.4)] {
            let cfg = Table3Config {
                seed,
                q1_r_scan_tps: rate,
                s_index_latency_s: lat,
                ..Table3Config::default()
            };
            let holds = fig7_shape_holds(&cfg);
            ok &= shape_check(
                &format!("fig7 shape holds (seed {seed}, scan {rate} tps, latency {lat}s)"),
                holds,
            );
        }
    }

    // fig 8 grid: 3 seeds × scan-rate variations (keeping R faster than T
    // and the index slower than the T scan overall — the paper's regime).
    for seed in [2003u64, 7, 99] {
        for (r_tps, t_tps, lat) in [(17.0, 7.0, 0.18), (25.0, 10.0, 0.15), (12.0, 5.0, 0.25)] {
            let cfg = Table3Config {
                seed,
                q4_r_scan_tps: r_tps,
                q4_t_scan_tps: t_tps,
                t_index_latency_s: lat,
                ..Table3Config::default()
            };
            let holds = fig8_shape_holds(&cfg);
            ok &= shape_check(
                &format!(
                    "fig8 shape holds (seed {seed}, R {r_tps} tps, T {t_tps} tps, latency {lat}s)"
                ),
                holds,
            );
        }
    }
    finish(ok);
}
