//! Competitive access methods (paper §3.2 / salient point ② of §4).
//!
//! Reconstruction of a tech-report-only experiment: "SteMs allow the eddy
//! to efficiently learn between competitive access methods, while doing
//! almost no redundant work." One table S is served by two mirror scan
//! AMs — a fast one that *stalls* mid-query (the paper's volatile web
//! source) and a slow but steady one. Because every copy builds into the
//! same SteM, the mirrors cooperate: duplicates are absorbed at build time
//! (set semantics) and whichever copy arrives first wins.
//!
//! Compared systems: both AMs racing, fast-only (suffers the stall),
//! slow-only. Expected: racing tracks the best of both throughout, ends
//! no later than either single choice, and the redundant work is bounded
//! by |S| absorbed duplicates.

use stems_bench::*;
use stems_catalog::{reference, Catalog, QuerySpec, ScanSpec, SourceId, TableInstance};
use stems_core::{EddyExecutor, ExecConfig, Report};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sim::{secs, to_secs, Series};
use stems_types::{CmpOp, ColRef, PredId, Predicate, TableIdx};

const S_ROWS: usize = 500;

/// Build the catalog; `ams`: which of (fast, slow) scan AMs S gets.
fn setup(fast: bool, slow: bool) -> (Catalog, QuerySpec, SourceId, SourceId) {
    let mut c = Catalog::new();
    let r = TableBuilder::new("R", 500, 11)
        .col("a", ColGen::Mod(S_ROWS as i64))
        .register(&mut c)
        .expect("R");
    let s = TableBuilder::new("S", S_ROWS, 12)
        .col("v", ColGen::Serial)
        .register(&mut c)
        .expect("S");
    c.add_scan(r, ScanSpec::with_rate(400.0)).expect("r scan");
    if fast {
        // Fast mirror: 100 tps, but the source goes away from 2s to 40s.
        c.add_scan(
            s,
            ScanSpec::with_rate(100.0).stalled_during(secs(2), secs(40)),
        )
        .expect("fast");
    }
    if slow {
        // Slow steady mirror: 20 tps.
        c.add_scan(s, ScanSpec::with_rate(20.0)).expect("slow");
    }
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 0),
        )],
        None,
    )
    .expect("query");
    (c, q, r, s)
}

fn run(fast: bool, slow: bool) -> (Report, usize) {
    let (c, q, _, _) = setup(fast, slow);
    let expected = reference::execute(&c, &q).len();
    let report = EddyExecutor::build(&c, &q, ExecConfig::default())
        .expect("plan")
        .run();
    (report, expected)
}

fn main() {
    println!(
        "exp_competition: R(500) ⋈ S({S_ROWS}); S mirrored by a fast scan \
         (100 tps, stalled 2s–40s) and a slow scan (20 tps)"
    );
    let (racing, expected) = run(true, true);
    let (fast_only, e2) = run(true, false);
    let (slow_only, e3) = run(false, true);
    assert_eq!(expected, e2);
    assert_eq!(expected, e3);

    let empty = Series::new();
    let ra = racing.metrics.series("results").unwrap_or(&empty);
    let fo = fast_only.metrics.series("results").unwrap_or(&empty);
    let so = slow_only.metrics.series("results").unwrap_or(&empty);
    let horizon = racing
        .end_time
        .max(fast_only.end_time)
        .max(slow_only.end_time);
    let series: [(&str, &Series); 3] = [("both AMs", ra), ("fast only", fo), ("slow only", so)];
    print!(
        "{}",
        series_table(
            "results over time (source stall 2s–40s)",
            horizon,
            16,
            &series
        )
    );
    println!("{}", chart("competitive AMs", "results", horizon, &series));
    save_csv(
        "exp_competition.csv",
        &racing
            .metrics
            .to_csv(&["results", "duplicates_absorbed", "scanned"], horizon, 100),
    );
    // A stalled mirror keeps scanning (and being absorbed) long after the
    // last result: completion is measured as time-of-last-result.
    let last = |s: &Series| s.end_time().unwrap_or(0);
    println!(
        "racing: duplicates absorbed = {} (bound: |S| = {S_ROWS}); last result {:.1}s vs fast-only {:.1}s, slow-only {:.1}s",
        racing.counter("duplicates_absorbed"),
        to_secs(last(ra)),
        to_secs(last(fo)),
        to_secs(last(so)),
    );

    let mut ok = true;
    ok &= shape_check(
        "all three configurations produce the exact result set",
        racing.results.len() == expected
            && fast_only.results.len() == expected
            && slow_only.results.len() == expected,
    );
    ok &= shape_check(
        "racing AMs track the best single AM (≥ both on ≥95% of the run)",
        dominance_fraction(ra, fo, 0, horizon, 60) >= 0.95
            && dominance_fraction(ra, so, 0, horizon, 60) >= 0.95,
    );
    ok &= shape_check(
        "racing emits its last result no later than either single choice",
        last(ra) <= last(fo) && last(ra) <= last(so),
    );
    ok &= shape_check(
        "redundant work bounded: 0 < duplicates absorbed ≤ |S|",
        racing.counter("duplicates_absorbed") > 0
            && racing.counter("duplicates_absorbed") <= S_ROWS as u64,
    );
    ok &= shape_check(
        "fast-only flatlines during the stall (no progress 10s→35s)",
        fo.value_at(secs(35)) - fo.value_at(secs(10)) < 1.0,
    );
    finish(ok);
}
