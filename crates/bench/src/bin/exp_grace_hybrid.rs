//! SHJ ↔ Grace ↔ Hybrid-Hash via SteM implementation choice (paper §3.1).
//!
//! "The SteM implementation decides exactly which join algorithm will be
//! simulated": withholding build bounce-backs and releasing them clustered
//! by hash partition turns the routing into a Grace hash join; keeping a
//! prefix of partitions memory-resident (bouncing immediately) yields
//! Hybrid-Hash; bouncing everything immediately is the symmetric hash
//! join. Same query, same data, same routing policy — only the SteM
//! options differ.
//!
//! Clustered probes get a cost discount (I/O locality), so Grace finishes
//! sooner while SHJ streams results from the start: the classic
//! interactivity-vs-completion-time trade-off the paper describes
//! ("frequent probes give interactive responses early on, occasional
//! probes reduce completion time").

use stems_bench::*;
use stems_catalog::{reference, Catalog, QuerySpec, ScanSpec, TableInstance};
use stems_core::{EddyExecutor, ExecConfig, Report, StemOptions};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sim::{to_secs, Series};
use stems_types::{CmpOp, ColRef, PredId, Predicate, TableIdx};

const ROWS: usize = 3000;

fn setup() -> (Catalog, QuerySpec) {
    let mut c = Catalog::new();
    let r = TableBuilder::new("R", ROWS, 51)
        .col("v", ColGen::ModShuffled(ROWS as i64 / 2))
        .register(&mut c)
        .expect("R");
    let s = TableBuilder::new("S", ROWS, 52)
        .col("v", ColGen::ModShuffled(ROWS as i64 / 2))
        .register(&mut c)
        .expect("S");
    // Fast arrivals: the run is probe-service-bound, so the join
    // algorithm (not the network) determines completion time.
    c.add_scan(r, ScanSpec::with_rate(20_000.0)).expect("r");
    c.add_scan(s, ScanSpec::with_rate(20_000.0)).expect("s");
    let q = QuerySpec::new(
        &c,
        vec![
            TableInstance {
                source: r,
                alias: "r".into(),
            },
            TableInstance {
                source: s,
                alias: "s".into(),
            },
        ],
        vec![Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 1),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 1),
        )],
        None,
    )
    .expect("query");
    (c, q)
}

fn run(label: &str, stem: StemOptions) -> Report {
    let (c, q) = setup();
    let mut config = ExecConfig::default();
    // Probe cost dominates so the algorithm choice matters; clustered
    // probes enjoy locality.
    config.costs.stem_probe_us = 400;
    config.costs.clustered_probe_discount = 0.2;
    config.plan.default_stem = stem;
    let report = EddyExecutor::build(&c, &q, config).expect("plan").run();
    println!(
        "  {label:<12} completion {:>6.2}s, results {}",
        to_secs(report.end_time),
        report.results.len()
    );
    report
}

fn main() {
    println!("exp_grace_hybrid: R({ROWS}) ⋈ S({ROWS}), probe cost 400µs, clustered discount 0.2");
    let (c, q) = setup();
    let expected = reference::execute(&c, &q).len();

    let shj = run("SHJ", StemOptions::default());
    let grace = run(
        "Grace",
        StemOptions {
            deferred_bounce: true,
            partitions: 8,
            mem_partitions: 0,
            ..StemOptions::default()
        },
    );
    let hybrid = run(
        "Hybrid-Hash",
        StemOptions {
            deferred_bounce: true,
            partitions: 8,
            mem_partitions: 4,
            ..StemOptions::default()
        },
    );

    let empty = Series::new();
    let sh = shj.metrics.series("results").unwrap_or(&empty);
    let gr = grace.metrics.series("results").unwrap_or(&empty);
    let hy = hybrid.metrics.series("results").unwrap_or(&empty);
    let horizon = shj.end_time.max(grace.end_time).max(hybrid.end_time);
    let series: [(&str, &Series); 3] = [("SHJ", sh), ("Grace", gr), ("Hybrid", hy)];
    print!(
        "{}",
        series_table("results over time", horizon, 14, &series)
    );
    println!(
        "{}",
        chart("SHJ vs Grace vs Hybrid", "results", horizon, &series)
    );
    save_csv(
        "exp_grace_hybrid_shj.csv",
        &shj.metrics.to_csv(&["results"], horizon, 100),
    );
    save_csv(
        "exp_grace_hybrid_grace.csv",
        &grace.metrics.to_csv(&["results"], horizon, 100),
    );
    save_csv(
        "exp_grace_hybrid_hybrid.csv",
        &hybrid.metrics.to_csv(&["results"], horizon, 100),
    );

    // First-result interactivity.
    let first = |r: &Report| {
        r.metrics
            .series("results")
            .and_then(|s| s.points().first().map(|(t, _)| *t))
            .unwrap_or(0)
    };
    println!(
        "first result: SHJ {:.2}s, Grace {:.2}s, Hybrid {:.2}s",
        to_secs(first(&shj)),
        to_secs(first(&grace)),
        to_secs(first(&hybrid))
    );

    let mut ok = true;
    ok &= shape_check(
        "all three produce the exact result set",
        shj.results.len() == expected
            && grace.results.len() == expected
            && hybrid.results.len() == expected,
    );
    ok &= shape_check(
        &format!(
            "Grace finishes sooner than SHJ ({:.2}s vs {:.2}s — clustered locality)",
            to_secs(grace.end_time),
            to_secs(shj.end_time)
        ),
        grace.end_time < shj.end_time,
    );
    ok &= shape_check(
        "SHJ streams results far earlier than Grace (first result ≤ 1/5 the time)",
        5 * first(&shj) <= first(&grace),
    );
    ok &= shape_check(
        "Hybrid is between the two on both axes",
        first(&hybrid) <= first(&grace)
            && hybrid.end_time <= shj.end_time
            && hybrid.end_time >= grace.end_time,
    );
    // Interactivity: time to the first 5% of results (the paper's online
    // metric rewards early partial results).
    let time_to = |s: &Series, k: f64| {
        s.points()
            .iter()
            .find(|(_, v)| *v >= k)
            .map(|(t, _)| *t)
            .unwrap_or(u64::MAX)
    };
    let k = expected as f64 * 0.01;
    ok &= shape_check(
        &format!(
            "first 1% of results arrive sooner under SHJ ({:.2}s) than Grace ({:.2}s)",
            to_secs(time_to(sh, k)),
            to_secs(time_to(gr, k))
        ),
        time_to(sh, k) < time_to(gr, k),
    );
    finish(ok);
}
