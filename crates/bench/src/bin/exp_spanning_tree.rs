//! Dynamic spanning-tree selection for cyclic queries (paper §3.4 /
//! salient point ③ of §4).
//!
//! Reconstruction of a tech-report-only experiment. A triangle query
//! `A ⋈ B ⋈ C` has join predicates on *every* pair, so the join graph is
//! cyclic and a traditional plan must pick a spanning tree before
//! execution. Paper §3.4: "if we choose \[one tree\] and a source stalls
//! during query execution, the entire query blocks. If the spanning tree
//! could be changed dynamically, \[other\] tuples could be generated."
//!
//! Here source B — the *middle* of the natural chain tree — delivers
//! nothing until late in the run. Compared systems:
//!
//! * **dynamic** — the eddy may probe along any join-graph edge;
//! * **chain tree A–B,B–C** — the paper's blocked case: both tree edges
//!   need B, so "the entire query blocks";
//! * **tree A–B,A–C** — a tree with one live edge: A⋈C partials can form.
//!
//! All three must produce the exact result set; the dynamic eddy forms
//! A⋈C partials during the stall (routing around the dead source without
//! having been told which tree is safe) and tracks the live tree.

use stems_bench::*;
use stems_catalog::{reference, Catalog, QuerySpec, ScanSpec, SourceId, TableInstance};
use stems_core::{EddyExecutor, ExecConfig, Report};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sim::{secs, to_secs, Series};
use stems_types::{CmpOp, ColRef, PredId, Predicate, TableIdx};

fn setup() -> (Catalog, QuerySpec, Vec<SourceId>) {
    let mut c = Catalog::new();
    let a = TableBuilder::new("A", 120, 21)
        .col("v", ColGen::Mod(40))
        .register(&mut c)
        .expect("A");
    let b = TableBuilder::new("B", 120, 22)
        .col("v", ColGen::Mod(40))
        .register(&mut c)
        .expect("B");
    let d = TableBuilder::new("C", 120, 23)
        .col("v", ColGen::Mod(40))
        .register(&mut c)
        .expect("C");
    // A and B trickle in over ~40s so partial-result formation is
    // observable *during* C's stall.
    // A and C trickle in over ~40s so partial-result formation is
    // observable *during* B's stall.
    c.add_scan(a, ScanSpec::with_rate(3.0)).expect("a");
    // B is unavailable from the very start until 60s.
    c.add_scan(b, ScanSpec::with_rate(60.0).stalled_during(0, secs(60)))
        .expect("b");
    c.add_scan(d, ScanSpec::with_rate(3.0)).expect("c");
    let q = QuerySpec::new(
        &c,
        [(a, "a"), (b, "b"), (d, "c")]
            .iter()
            .map(|(s, al)| TableInstance {
                source: *s,
                alias: al.to_string(),
            })
            .collect(),
        vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 1),
            ),
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(1), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 1),
            ),
            Predicate::join(
                PredId(2),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 1),
            ),
        ],
        None,
    )
    .expect("query");
    (c, q, vec![a, b, d])
}

fn run(tree: Option<Vec<(TableIdx, TableIdx)>>) -> (Report, usize) {
    let (c, q, _) = setup();
    let expected = reference::execute(&c, &q).len();
    let config = ExecConfig {
        probe_edges: tree,
        ..ExecConfig::default()
    };
    let report = EddyExecutor::build(&c, &q, config).expect("plan").run();
    (report, expected)
}

fn main() {
    println!(
        "exp_spanning_tree: cyclic A ⋈ B ⋈ C (all pairwise predicates); \
         B stalled 0s–60s"
    );
    let (dynamic, expected) = run(None);
    // Blocked chain tree: every edge involves the stalled B.
    let (blocked, e2) = run(Some(vec![
        (TableIdx(0), TableIdx(1)),
        (TableIdx(1), TableIdx(2)),
    ]));
    // Live tree: the A–C edge keeps working during the stall.
    let (live, e3) = run(Some(vec![
        (TableIdx(0), TableIdx(1)),
        (TableIdx(0), TableIdx(2)),
    ]));
    assert_eq!(expected, e2);
    assert_eq!(expected, e3);

    let empty = Series::new();
    let dy = dynamic.metrics.series("results").unwrap_or(&empty);
    let bl = blocked.metrics.series("results").unwrap_or(&empty);
    let li = live.metrics.series("results").unwrap_or(&empty);
    let dy2 = dynamic.metrics.series("span2_formed").unwrap_or(&empty);
    let bl2 = blocked.metrics.series("span2_formed").unwrap_or(&empty);
    let horizon = dynamic.end_time.max(blocked.end_time).max(live.end_time);

    let series: [(&str, &Series); 3] =
        [("dynamic", dy), ("chain A-B,B-C", bl), ("tree A-B,A-C", li)];
    print!(
        "{}",
        series_table("full results over time", horizon, 16, &series)
    );
    println!(
        "{}",
        chart(
            "spanning trees under a C stall",
            "results",
            horizon,
            &series
        )
    );
    print!(
        "{}",
        series_table(
            "intermediate (2-table) tuples formed",
            horizon,
            16,
            &[("dynamic", dy2), ("chain A-B,B-C", bl2)],
        )
    );
    save_csv(
        "exp_spanning_tree.csv",
        &dynamic
            .metrics
            .to_csv(&["results", "span2_formed"], horizon, 100),
    );
    println!(
        "completion: dynamic {:.1}s, blocked chain {:.1}s, live tree {:.1}s",
        to_secs(dynamic.end_time),
        to_secs(blocked.end_time),
        to_secs(live.end_time)
    );

    let mut ok = true;
    ok &= shape_check(
        "all three configurations produce the exact result set",
        dynamic.results.len() == expected
            && blocked.results.len() == expected
            && live.results.len() == expected,
    );
    ok &= shape_check(
        "dynamic keeps forming partial results during the stall (5s→55s)",
        dy2.value_at(secs(55)) - dy2.value_at(secs(5)) > 0.0,
    );
    ok &= shape_check(
        "the blocked chain tree makes no progress at all during the stall",
        bl2.value_at(secs(55)) == 0.0 && bl.value_at(secs(55)) == 0.0,
    );
    ok &= shape_check(
        "dynamic matches the live tree without knowing the stall in advance \
         (results within 5% at every grid point)",
        (0..=40u64).all(|i| {
            let t = horizon * i / 40;
            (dy.value_at(t) - li.value_at(t)).abs() <= 0.05 * expected as f64 + 3.0
        }),
    );
    finish(ok);
}
