//! Expensive-predicate memoization, emitted as `BENCH_9.json` — the ninth
//! point of the perf trajectory (`BENCH_8`: parallel server drain).
//!
//! Drives the full eddy engine over a high-cost selection chain — a
//! duplicate-heavy scan filtered by `SIEVE(a, ppm, cost_us)`, the UDF-style
//! predicate whose every *computed* verdict charges `cost_us` of virtual
//! latency — and sweeps the two work-avoidance levers of the expensive-
//! predicate fast path:
//!
//! * **udf_dedup** — one verdict computation per distinct key per routing
//!   envelope (`Sm::apply_batch_udf`), duplicates share it;
//! * **memo** — the sharded cross-batch verdict cache ([`stems_core`'s
//!   `MemoCache`]): each distinct key is computed once per *query*, every
//!   later envelope is served from the cache.
//!
//! The metric is **virtual end time**: the levers don't change a single
//! verdict (the memo keys on the value's equality key, and the sieve is a
//! pure function of it), they only avoid re-paying `cost_us`. With `d`
//! distinct keys over `n` rows the plain cell pays `n · cost_us`, the
//! memo+dedup cell pays `d · cost_us` — the gap is the speedup. All four
//! memo×dedup cells must report the same `result_hash` (asserted here and
//! by the CI `bench_check` gate), and the combined cell must finish at
//! least [`MIN_SPEEDUP`]× sooner than the plain one.
//!
//! Quick mode for CI smoke: `STEMS_BENCH_ROWS` (default 20000) and
//! `STEMS_BENCH_RUNS` (default 3) shrink the workload. Output lands in
//! `$STEMS_BENCH_OUT` or `./BENCH_9.json`.

use std::time::Instant;
use stems_bench::{env_usize, median, result_hash};
use stems_catalog::{Catalog, QuerySpec, ScanSpec};
use stems_core::{EddyExecutor, ExecConfig};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sql::parse_query;

/// Distinct sieve keys: 20k rows repeat each key ~500 times, so the memo
/// pays the virtual cost 40 times instead of 20000.
const DISTINCT: i64 = 40;

/// Virtual µs charged per *computed* sieve verdict.
const COST_US: u64 = 1_000;

/// The combined memo+dedup cell must beat the plain cell by at least this
/// factor of virtual time (the acceptance bar; the analytic gap at the
/// default shape is ~ rows/distinct = 500×).
const MIN_SPEEDUP: f64 = 3.0;

fn workload(rows: usize) -> (Catalog, QuerySpec) {
    let mut catalog = Catalog::new();
    TableBuilder::new("R", rows, 91)
        .col("a", ColGen::ModShuffled(DISTINCT))
        .register(&mut catalog)
        .unwrap();
    // Chunked delivery: rows land 64 at a time, so routing envelopes are
    // real batches and the dedup-only cell has duplicates to share.
    catalog
        .add_scan(
            stems_catalog::SourceId(0),
            ScanSpec::with_rate(1e6).with_chunk(64),
        )
        .unwrap();
    // Through the SQL surface: pass half the keys, 1ms per computed call.
    let query = parse_query(
        &catalog,
        &format!("SELECT * FROM R WHERE SIEVE(R.a, 500, {COST_US})"),
    )
    .unwrap();
    (catalog, query)
}

struct Cell {
    label: String,
    memo: bool,
    dedup: bool,
    end_time_us: u64,
    udf_calls: u64,
    memo_hits: u64,
    results: usize,
    median_secs: f64,
    result_hash: String,
}

fn run_cell(catalog: &Catalog, query: &QuerySpec, memo: bool, dedup: bool, runs: usize) -> Cell {
    let config = ExecConfig {
        memo,
        udf_dedup: dedup,
        ..ExecConfig::default()
    };
    let mut secs = Vec::new();
    let mut report = None;
    for _ in 0..runs {
        let exec = EddyExecutor::build(catalog, query, config.clone()).expect("plan");
        let start = Instant::now();
        let r = exec.run();
        secs.push(start.elapsed().as_secs_f64());
        if let Some(prev) = &report {
            let prev: &stems_core::Report = prev;
            assert_eq!(prev.end_time, r.end_time, "virtual time must be exact");
        }
        report = Some(r);
    }
    let report = report.expect("at least one run");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    let canonical = report.canonical(catalog, query);
    let rendered: Vec<String> = canonical.iter().map(|row| format!("{row:?}")).collect();
    Cell {
        label: format!("memo{}_dedup{}", memo as u8, dedup as u8),
        memo,
        dedup,
        end_time_us: report.end_time,
        udf_calls: report.counter("udf_calls"),
        memo_hits: report.counter("memo_hits"),
        results: canonical.len(),
        median_secs: median(secs),
        result_hash: result_hash(rendered),
    }
}

fn main() {
    let rows = env_usize("STEMS_BENCH_ROWS", 20_000);
    let runs = env_usize("STEMS_BENCH_RUNS", 3);
    let (catalog, query) = workload(rows);

    let cells: Vec<Cell> = [(false, false), (false, true), (true, false), (true, true)]
        .into_iter()
        .map(|(memo, dedup)| {
            let cell = run_cell(&catalog, &query, memo, dedup, runs);
            println!(
                "{:<14}: end_time {:>12} µs, {:>6} udf calls, {:>6} memo hits, \
                 {} results (median {:.4}s wall over {runs} runs)",
                cell.label,
                cell.end_time_us,
                cell.udf_calls,
                cell.memo_hits,
                cell.results,
                cell.median_secs,
            );
            cell
        })
        .collect();

    // Observational equivalence: the levers must not change one verdict.
    for cell in &cells[1..] {
        assert_eq!(
            cell.result_hash, cells[0].result_hash,
            "{} changed the result multiset — memoization is not invisible",
            cell.label
        );
        assert_eq!(cell.results, cells[0].results);
    }
    // The acceptance bar: memo+dedup ≥ MIN_SPEEDUP× in virtual time.
    let plain = &cells[0];
    let both = cells.last().expect("four cells");
    let speedup = plain.end_time_us as f64 / both.end_time_us.max(1) as f64;
    println!(
        "memo+dedup speedup vs plain: {speedup:.1}x virtual time \
         ({} µs -> {} µs)",
        plain.end_time_us, both.end_time_us
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "memo+dedup speedup {speedup:.2}x below the {MIN_SPEEDUP}x bar"
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = stems_core::runtime::default_workers();
    let series = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"label\": \"{}\", \"memo\": {}, \"dedup\": {}, \
                 \"end_time_us\": {}, \"udf_calls\": {}, \"memo_hits\": {}, \
                 \"results\": {}, \"median_secs\": {:.6}, \"result_hash\": \"{}\", \
                 \"speedup_vs_plain\": {:.3}}}",
                c.label,
                c.memo,
                c.dedup,
                c.end_time_us,
                c.udf_calls,
                c.memo_hits,
                c.results,
                c.median_secs,
                c.result_hash,
                plain.end_time_us as f64 / c.end_time_us.max(1) as f64,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"benchmark\": \"memoized_expensive_predicate_{rows}x{DISTINCT}\",\n  \
         \"metric\": \"virtual_end_time_us\",\n  \"rows\": {rows},\n  \"runs\": {runs},\n  \
         \"distinct\": {DISTINCT},\n  \"cost_us\": {COST_US},\n  \"cores\": {cores},\n  \
         \"workers\": {workers},\n  \"series\": [\n{series}\n  ]\n}}\n"
    );
    let path = std::env::var("STEMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_9.json".into());
    std::fs::write(&path, &json).expect("write BENCH_9.json");
    println!("wrote {path}");
}
