//! Adaptive selection ordering — the original eddies behaviour the SteM
//! architecture inherits (paper §1: "dynamically reconsidering the
//! ordering of such modules on a per-tuple basis").
//!
//! One scanned table, two selection modules:
//!
//! * `wide`  — passes ~90% of tuples (declared first in the query);
//! * `narrow` — passes ~5%.
//!
//! A static plan that honours the declared order runs `wide` on every
//! tuple and `narrow` on the 90% that survive: ≈ 1.9 SM applications per
//! tuple. An adaptive eddy learns `narrow`'s selectivity from feedback and
//! runs it first: ≈ 1.05 applications per tuple. Both orders are legal
//! candidate sets under the constraint layer; only the policy differs.

use stems_bench::*;
use stems_catalog::{reference, Catalog, QuerySpec, ScanSpec, TableInstance};
use stems_core::{EddyExecutor, ExecConfig, Report, RoutingPolicyKind};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_types::{CmpOp, ColRef, PredId, Predicate, TableIdx, Value};

const ROWS: usize = 4000;

fn setup() -> (Catalog, QuerySpec) {
    let mut c = Catalog::new();
    let r = TableBuilder::new("R", ROWS, 77)
        .col("w", ColGen::Uniform(0, 99)) // wide: w >= 10 passes ~90%
        .col("n", ColGen::Uniform(0, 99)) // narrow: n < 5 passes ~5%
        .register(&mut c)
        .expect("R");
    c.add_scan(r, ScanSpec::with_rate(10_000.0)).expect("scan");
    let q = QuerySpec::new(
        &c,
        vec![TableInstance {
            source: r,
            alias: "r".into(),
        }],
        vec![
            // Declared order puts the unselective predicate first — the
            // trap a static left-to-right evaluator falls into.
            Predicate::selection(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Ge,
                Value::Int(10),
            ),
            Predicate::selection(
                PredId(1),
                ColRef::new(TableIdx(0), 2),
                CmpOp::Lt,
                Value::Int(5),
            ),
        ],
        None,
    )
    .expect("query");
    (c, q)
}

fn run(policy: RoutingPolicyKind, seed: u64) -> Report {
    let (c, q) = setup();
    EddyExecutor::build(
        &c,
        &q,
        ExecConfig {
            policy,
            seed,
            ..ExecConfig::default()
        },
    )
    .expect("plan")
    .run()
}

fn main() {
    println!(
        "exp_selection_order: {ROWS} tuples × (wide ~90% pass, narrow ~5% pass); \
         declared order is wide-first"
    );
    let (c, q) = setup();
    let expected = reference::execute(&c, &q).len();

    let fixed = run(RoutingPolicyKind::Fixed { probe_order: None }, 1);
    let adaptive = run(
        RoutingPolicyKind::BenefitCost {
            epsilon: 0.05,
            drop_rate: 1.0,
        },
        1,
    );
    let lottery = run(RoutingPolicyKind::Lottery, 1);

    let work = |r: &Report| r.counter("sm_applied");
    let per_tuple = |r: &Report| work(r) as f64 / ROWS as f64;
    println!("\n  policy        SM applications   per tuple   results");
    for (name, r) in [
        ("fixed", &fixed),
        ("benefit-cost", &adaptive),
        ("lottery", &lottery),
    ] {
        println!(
            "  {name:<13} {:>15} {:>11.3} {:>9}",
            work(r),
            per_tuple(r),
            r.results.len()
        );
    }
    save_csv(
        "exp_selection_order.csv",
        &adaptive.metrics.to_csv(
            &["sm_applied", "filtered", "results"],
            adaptive.end_time,
            50,
        ),
    );

    // Static wide-first ⇒ 1 + P(wide) ≈ 1.9 applications/tuple.
    // Narrow-first optimum ⇒ 1 + P(narrow) ≈ 1.05.
    let mut ok = true;
    ok &= shape_check(
        "all policies produce the exact result set",
        fixed.results.len() == expected
            && adaptive.results.len() == expected
            && lottery.results.len() == expected,
    );
    ok &= shape_check(
        &format!(
            "fixed declared order pays ~1.9 applications/tuple (got {:.2})",
            per_tuple(&fixed)
        ),
        (per_tuple(&fixed) - 1.9).abs() < 0.1,
    );
    ok &= shape_check(
        &format!(
            "adaptive policy learns narrow-first, ≤ 1.25/tuple (got {:.2})",
            per_tuple(&adaptive)
        ),
        per_tuple(&adaptive) <= 1.25,
    );
    ok &= shape_check(
        &format!(
            "adaptive saves ≥ 30% of selection work vs the static order ({} vs {})",
            work(&adaptive),
            work(&fixed)
        ),
        (work(&adaptive) as f64) <= 0.7 * work(&fixed) as f64,
    );
    finish(ok);
}
