//! Scalar-vs-batched routing throughput, emitted as `BENCH_1.json`.
//!
//! Runs a three-table chain join — the workload where intermediate
//! results dominate routing traffic — through the eddy at batch sizes
//! {1, 64, 256} (1 = the paper's tuple-at-a-time routing; 64 is the
//! engine default) and reports wall-clock throughput in input rows per
//! second. The adaptive benefit/cost policy is used so every routing
//! decision actually scores candidates; batching amortizes those scores
//! over same-destination tuples. The JSON lands in `$STEMS_BENCH_OUT` or
//! `./BENCH_1.json`, so later PRs have a perf trajectory to regress
//! against.
//!
//! The result multiset is asserted identical across batch sizes — this
//! binary doubles as a smoke test of batch/scalar equivalence.

use std::time::Instant;
use stems_bench::median;
use stems_catalog::{Catalog, ScanSpec};
use stems_core::{EddyExecutor, ExecConfig, RoutingPolicyKind};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sql::parse_query;

const RUNS: usize = 5;
const ROWS_PER_TABLE: usize = 3000;

fn main() {
    let mut catalog = Catalog::new();
    let r = TableBuilder::new("R", ROWS_PER_TABLE, 71)
        .col("a", ColGen::Mod(500))
        .register(&mut catalog)
        .unwrap();
    let s = TableBuilder::new("S", ROWS_PER_TABLE, 72)
        .col("x", ColGen::Mod(500))
        .col("y", ColGen::Mod(400))
        .register(&mut catalog)
        .unwrap();
    let t = TableBuilder::new("T", ROWS_PER_TABLE, 73)
        .col("b", ColGen::Mod(400))
        .register(&mut catalog)
        .unwrap();
    catalog.add_scan(r, ScanSpec::with_rate(100_000.0)).unwrap();
    catalog.add_scan(s, ScanSpec::with_rate(100_000.0)).unwrap();
    catalog.add_scan(t, ScanSpec::with_rate(100_000.0)).unwrap();
    let query = parse_query(
        &catalog,
        "SELECT * FROM R, S, T WHERE R.a = S.x AND S.y = T.b",
    )
    .unwrap();
    let input_rows = (3 * ROWS_PER_TABLE) as f64;

    let mut entries = Vec::new();
    let mut reference_results: Option<usize> = None;
    for batch_size in [1usize, 64, 256] {
        let mut secs = Vec::new();
        let mut results = 0usize;
        for _ in 0..RUNS {
            let config = ExecConfig {
                batch_size,
                policy: RoutingPolicyKind::BenefitCost {
                    epsilon: 0.05,
                    drop_rate: 1.0,
                },
                ..ExecConfig::default()
            };
            let start = Instant::now();
            let report = EddyExecutor::build(&catalog, &query, config)
                .expect("plan")
                .run();
            secs.push(start.elapsed().as_secs_f64());
            results = report.results.len();
            assert!(report.violations.is_empty(), "{:?}", report.violations);
        }
        match reference_results {
            None => reference_results = Some(results),
            Some(want) => assert_eq!(
                results, want,
                "batch_size {batch_size} changed the result count"
            ),
        }
        let med = median(secs);
        let rows_per_sec = input_rows / med;
        println!(
            "batch_size {batch_size:>4}: {rows_per_sec:>12.0} rows/s  \
             (median {med:.4}s over {RUNS} runs, {results} results)"
        );
        entries.push((batch_size, rows_per_sec, med, results));
    }

    let base = entries[0].1;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = stems_core::runtime::default_workers();
    let json = format!(
        "{{\n  \"benchmark\": \"eddy_chain3_{rows}x{rows}x{rows}_benefit_cost\",\n  \
         \"metric\": \"input_rows_per_sec_wall\",\n  \"runs\": {RUNS},\n  \
         \"cores\": {cores},\n  \"workers\": {workers},\n  \
         \"series\": [\n{}\n  ]\n}}\n",
        entries
            .iter()
            .map(|(bs, rps, med, res)| format!(
                "    {{\"batch_size\": {bs}, \"rows_per_sec\": {rps:.0}, \
                 \"median_secs\": {med:.6}, \"results\": {res}, \
                 \"speedup_vs_scalar\": {:.3}}}",
                rps / base
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        rows = ROWS_PER_TABLE,
    );
    let path = std::env::var("STEMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_1.json".into());
    std::fs::write(&path, &json).expect("write BENCH_1.json");
    println!("wrote {path}");
}
