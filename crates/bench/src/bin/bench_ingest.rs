//! Chunked-ingestion + vectorized-kernel throughput, emitted as
//! `BENCH_2.json` — the second point of the perf trajectory started by
//! `bench_batch` (`BENCH_1.json`).
//!
//! Runs a selection-heavy three-table chain join — every table carries a
//! column-vs-Int-constant selection, so base-table rows dominate routing
//! traffic and Selection Modules dominate module work. That is exactly the
//! workload PR 1's batching could not speed up: scans emitted one row per
//! simulation event, so singleton ingestion paid per-row envelopes no
//! matter the batch size. Chunked scans (`ScanSpec::chunk`) ride the
//! batched path end to end, and `Sm::apply_batch` runs the column-at-a-time
//! Int kernels over each envelope.
//!
//! Series: scalar (chunk 1, batch 1), PR 1's best (chunk 1, batch 64),
//! chunked ingestion (chunk 64, batch 64; chunk 256, batch 256). The JSON
//! lands in `$STEMS_BENCH_OUT` or `./BENCH_2.json`; `speedup_vs_pr1` > 1 on
//! the chunked rows is the win this PR claims. The result multiset is
//! asserted identical across series — the binary doubles as a smoke test of
//! chunked/scalar equivalence — and each series embeds a `result_hash`
//! that `tools/bench_check.py` compares against the committed baseline in
//! CI. `STEMS_BENCH_ROWS` / `STEMS_BENCH_RUNS` shrink the workload (CI
//! runs the committed row count with 1 run so hashes stay comparable).

use std::time::Instant;
use stems_bench::{env_usize, median, render_canonical, result_hash};
use stems_catalog::{Catalog, QuerySpec, ScanSpec};
use stems_core::{EddyExecutor, ExecConfig, RoutingPolicyKind};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sql::parse_query;

/// Build the selection-heavy chain workload with every scan delivering
/// `chunk` rows per event. Seeds are fixed, so every chunk size sees the
/// same rows.
fn build(rows_per_table: usize, chunk: usize) -> (Catalog, QuerySpec) {
    let mut catalog = Catalog::new();
    TableBuilder::new("R", rows_per_table, 81)
        .col("a", ColGen::Mod(500))
        .col("u", ColGen::Mod(500))
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("S", rows_per_table, 82)
        .col("x", ColGen::Mod(500))
        .col("y", ColGen::Mod(400))
        .col("v", ColGen::Mod(500))
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("T", rows_per_table, 83)
        .col("b", ColGen::Mod(400))
        .col("w", ColGen::Mod(500))
        .register(&mut catalog)
        .unwrap();
    let sources: Vec<_> = (0..3).map(stems_catalog::SourceId).collect();
    for src in sources {
        catalog
            .add_scan(src, ScanSpec::with_rate(100_000.0).with_chunk(chunk))
            .unwrap();
    }
    let query = parse_query(
        &catalog,
        "SELECT * FROM R, S, T WHERE R.a = S.x AND S.y = T.b \
         AND R.u < 300 AND S.v < 300 AND T.w < 300",
    )
    .unwrap();
    (catalog, query)
}

struct Entry {
    label: &'static str,
    chunk: usize,
    batch_size: usize,
    rows_per_sec: f64,
    median_secs: f64,
    results: usize,
    result_hash: String,
}

fn main() {
    let rows = env_usize("STEMS_BENCH_ROWS", 3000);
    let runs = env_usize("STEMS_BENCH_RUNS", 5);
    let input_rows = (3 * rows) as f64;
    // (label, scan chunk, routing batch size)
    let series: [(&str, usize, usize); 4] = [
        ("scalar", 1, 1),
        ("pr1_batch64", 1, 64),
        ("chunked_batch64", 64, 64),
        ("chunked_batch256", 256, 256),
    ];

    let mut entries: Vec<Entry> = Vec::new();
    for (label, chunk, batch_size) in series {
        let (catalog, query) = build(rows, chunk);
        let mut secs = Vec::new();
        let mut results = 0usize;
        let mut hash = String::new();
        for _ in 0..runs {
            let config = ExecConfig {
                batch_size,
                policy: RoutingPolicyKind::BenefitCost {
                    epsilon: 0.05,
                    drop_rate: 1.0,
                },
                ..ExecConfig::default()
            };
            let start = Instant::now();
            let report = EddyExecutor::build(&catalog, &query, config)
                .expect("plan")
                .run();
            secs.push(start.elapsed().as_secs_f64());
            results = report.results.len();
            assert!(report.violations.is_empty(), "{:?}", report.violations);
            hash = result_hash(render_canonical(&report.canonical(&catalog, &query)));
        }
        if let Some(first) = entries.first() {
            // Every series must produce the same result *multiset*, not
            // just the same count — the bench doubles as a smoke test of
            // chunked/scalar (and sharded, under STEMS_NUM_SHARDS)
            // equivalence, and CI's bench_check gate keys on this field.
            assert_eq!(
                hash, first.result_hash,
                "series {label} changed the result multiset"
            );
        }
        let med = median(secs);
        let rows_per_sec = input_rows / med;
        println!(
            "{label:>18} (chunk {chunk:>3}, batch {batch_size:>3}): \
             {rows_per_sec:>12.0} rows/s  (median {med:.4}s over {runs} runs, {results} results)"
        );
        entries.push(Entry {
            label,
            chunk,
            batch_size,
            rows_per_sec,
            median_secs: med,
            results,
            result_hash: hash,
        });
    }

    let scalar = entries[0].rows_per_sec;
    let pr1 = entries[1].rows_per_sec;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = stems_core::runtime::default_workers();
    let json = format!(
        "{{\n  \"benchmark\": \"eddy_chain3_sel3_{rows}x{rows}x{rows}_benefit_cost\",\n  \
         \"metric\": \"input_rows_per_sec_wall\",\n  \"rows\": {rows},\n  \"runs\": {runs},\n  \
         \"cores\": {cores},\n  \"workers\": {workers},\n  \
         \"series\": [\n{}\n  ]\n}}\n",
        entries
            .iter()
            .map(|e| format!(
                "    {{\"label\": \"{}\", \"chunk\": {}, \"batch_size\": {}, \
                 \"rows_per_sec\": {:.0}, \"median_secs\": {:.6}, \"results\": {}, \
                 \"result_hash\": \"{}\", \
                 \"speedup_vs_scalar\": {:.3}, \"speedup_vs_pr1\": {:.3}}}",
                e.label,
                e.chunk,
                e.batch_size,
                e.rows_per_sec,
                e.median_secs,
                e.results,
                e.result_hash,
                e.rows_per_sec / scalar,
                e.rows_per_sec / pr1
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let path = std::env::var("STEMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_2.json".into());
    std::fs::write(&path, &json).expect("write BENCH_2.json");
    println!("wrote {path}");
}
