//! Multi-query server throughput under shared-SteM folding, emitted as
//! `BENCH_8.json` — the eighth point of the perf trajectory (`BENCH_6`:
//! worker-pool scaling, `BENCH_7`: the PR 7 serial drain at up to 100
//! concurrent queries).
//!
//! Drives the 3-table chain (R ⋈ S ⋈ T) as a *query stream*: N
//! concurrent queries, identical joins with per-query selection cuts,
//! all submitted at once to a [`stems_core::QueryServer`] — once with
//! folding off (the server degenerates to N private classic executors,
//! the baseline) and once with folding on (one shared SteM per join
//! column set, one scan stream per source; every row is built once and
//! probed by all N queries). The per-workload claim gated in CI via
//! `result_hash` is observational equivalence: folding must not change
//! any query's result multiset at any concurrency level. The wall-clock
//! `queries_per_sec` ratio documents the throughput gain — fold-on skips
//! N−1 of every N builds, so the gain grows with concurrency (visible
//! from ~10 queries; `shared_builds` records the build work actually
//! performed).
//!
//! New at this point: the **1000-query workload** (single run — the
//! stream dominates wall time), exercising the active-set drain
//! batching and, on multi-core hosts, the parallel step phase. Its
//! fold-on wall throughput is the headline the CI gate compares against
//! the PR 7 serial drain at N=100.
//!
//! Latency percentiles are *virtual* (deterministic simulation time from
//! admission to completion), so they are reproducible on any host;
//! wall-clock fields are noisy and deliberately ungated.
//!
//! Quick mode for CI smoke: `STEMS_BENCH_ROWS` (default 2000) and
//! `STEMS_BENCH_RUNS` (default 3) shrink the workload. Output lands in
//! `$STEMS_BENCH_OUT` or `./BENCH_8.json`.

use std::time::Instant;
use stems_bench::{env_usize, median, render_canonical, result_hash};
use stems_catalog::{Catalog, QuerySpec, ScanSpec, SourceId, TableInstance};
use stems_core::{QueryServer, QueryStatus, ServerReport, ServerStats, Submission};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_types::{CmpOp, ColRef, PredId, Predicate, TableIdx, Value};

/// The 3-table chain over generated tables (schema: `key` + attribute
/// cols): R(key, a), S(key, x, y), T(key, b), keys 1:1 across the joins.
fn build_catalog(rows: usize) -> Catalog {
    let domain = rows as i64;
    let mut catalog = Catalog::new();
    TableBuilder::new("R", rows, 71)
        .col("a", ColGen::Mod(domain))
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("S", rows, 72)
        .col("x", ColGen::Mod(domain))
        .col("y", ColGen::Mod(domain))
        .register(&mut catalog)
        .unwrap();
    TableBuilder::new("T", rows, 73)
        .col("b", ColGen::Mod(domain))
        .register(&mut catalog)
        .unwrap();
    for src in (0..3).map(SourceId) {
        catalog.add_scan(src, ScanSpec::with_rate(1e6)).unwrap();
    }
    catalog
}

/// Query `i` of the stream: the shared chain joins plus a per-query
/// selection cut on R — five distinct cuts cycle, so result sets differ
/// across the stream while every SteM still folds.
fn query_for(catalog: &Catalog, rows: usize, i: usize) -> QuerySpec {
    let cut = (rows / 2 + (i % 5) * rows / 20) as i64;
    let inst = |s: u32, alias: &str| TableInstance {
        source: SourceId(s),
        alias: alias.into(),
    };
    QuerySpec::new(
        catalog,
        vec![inst(0, "r"), inst(1, "s"), inst(2, "t")],
        vec![
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 1),
            ),
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(1), 2),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 1),
            ),
            Predicate::selection(
                PredId(2),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Lt,
                Value::Int(cut),
            ),
        ],
        None,
    )
    .unwrap()
}

fn run_once(
    catalog: &Catalog,
    queries: &[QuerySpec],
    fold: bool,
) -> (Vec<ServerReport>, ServerStats, f64) {
    let mut server = QueryServer::builder(catalog).fold(fold).build().unwrap();
    for q in queries {
        server.submit(Submission::new(q.clone())).unwrap();
    }
    let start = Instant::now();
    let (handles, stats) = server.serve();
    let wall = start.elapsed().as_secs_f64();
    let reports = handles
        .into_iter()
        .map(|h| {
            assert_eq!(h.status, QueryStatus::Completed);
            h.report.expect("completed query has a report")
        })
        .collect();
    (reports, stats, wall)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct SeriesOut {
    label: &'static str,
    queries_per_sec: f64,
    median_secs: f64,
    results_total: usize,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    shared_stems: usize,
    shared_builds: u64,
    result_hash: String,
}

fn run_series(catalog: &Catalog, queries: &[QuerySpec], fold: bool, runs: usize) -> SeriesOut {
    let mut secs = Vec::new();
    let mut last = None;
    for _ in 0..runs {
        let (reports, stats, wall) = run_once(catalog, queries, fold);
        secs.push(wall);
        last = Some((reports, stats));
    }
    let (reports, stats) = last.expect("at least one run");
    let mut rendered = Vec::new();
    let mut results_total = 0;
    for (i, sr) in reports.iter().enumerate() {
        results_total += sr.report.results.len();
        for line in render_canonical(&sr.report.canonical(catalog, &queries[i])) {
            rendered.push(format!("q{i}|{line}"));
        }
    }
    let mut latencies: Vec<u64> = reports.iter().map(ServerReport::latency).collect();
    latencies.sort_unstable();
    let med = median(secs);
    SeriesOut {
        label: if fold { "fold_on" } else { "fold_off" },
        queries_per_sec: queries.len() as f64 / med,
        median_secs: med,
        results_total,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        shared_stems: stats.shared_stems,
        shared_builds: stats.shared_builds,
        result_hash: result_hash(rendered),
    }
}

fn main() {
    let rows = env_usize("STEMS_BENCH_ROWS", 2000);
    let runs = env_usize("STEMS_BENCH_RUNS", 3);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ambient_workers = stems_core::runtime::default_workers();
    let catalog = build_catalog(rows);

    let mut workloads_json = Vec::new();
    for n in [1usize, 10, 100, 1000] {
        // The 1000-query stream dominates wall time; one run suffices
        // (virtual metrics and result hashes are deterministic anyway).
        let n_runs = if n >= 1000 { 1 } else { runs };
        let queries: Vec<QuerySpec> = (0..n).map(|i| query_for(&catalog, rows, i)).collect();
        let off = run_series(&catalog, &queries, false, n_runs);
        let on = run_series(&catalog, &queries, true, n_runs);
        assert_eq!(
            off.result_hash, on.result_hash,
            "folding changed the result multiset at {n} concurrent queries"
        );
        assert_eq!(off.results_total, on.results_total);
        println!(
            "q{n}: fold_off {:>8.2} q/s | fold_on {:>8.2} q/s ({:.2}x, {} shared builds vs {} \
             private; virtual p50/p95/p99 {}/{}/{} µs)",
            off.queries_per_sec,
            on.queries_per_sec,
            on.queries_per_sec / off.queries_per_sec,
            on.shared_builds,
            n * 3 * rows, // N queries x (R + S + T) rows built privately
            on.p50_us,
            on.p95_us,
            on.p99_us,
        );
        let series = [&off, &on]
            .iter()
            .map(|e| {
                format!(
                    "        {{\"label\": \"{}\", \"queries\": {n}, \"queries_per_sec\": \
                     {:.3}, \"median_secs\": {:.6}, \"results_total\": {}, \"latency_p50_us\": \
                     {}, \"latency_p95_us\": {}, \"latency_p99_us\": {}, \"shared_stems\": {}, \
                     \"shared_builds\": {}, \"result_hash\": \"{}\"}}",
                    e.label,
                    e.queries_per_sec,
                    e.median_secs,
                    e.results_total,
                    e.p50_us,
                    e.p95_us,
                    e.p99_us,
                    e.shared_stems,
                    e.shared_builds,
                    e.result_hash,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        workloads_json.push(format!(
            "    {{\"name\": \"q{n}\", \"series\": [\n{series}\n    ]}}"
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"query_server_chain3_{rows}x{rows}x{rows}\",\n  \"metric\": \
         \"wall_queries_per_sec_folding_on_vs_off\",\n  \"rows\": {rows},\n  \"runs\": {runs},\n  \
         \"cores\": {cores},\n  \"workers\": {ambient_workers},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        workloads_json.join(",\n"),
    );
    let path = std::env::var("STEMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_8.json".into());
    std::fs::write(&path, &json).expect("write BENCH_8.json");
    println!("wrote {path}");
}
