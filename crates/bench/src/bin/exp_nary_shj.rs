//! n-ary SHJ through SteMs vs pipelined binary SHJs (paper fig 2, §2.3).
//!
//! "The n-way SHJ description above stores only singleton tuples in hash
//! tables, whereas the traditional pipeline of binary SHJs materializes
//! intermediate result tuples from joins below the root."
//!
//! A 3-way chain `A ⋈ B ⋈ C` with a fan-out first join makes the
//! intermediate relation A⋈B much larger than its inputs. The pipeline of
//! binary SHJs (fig 2(i)) must materialize every A⋈B composite in the
//! second join's hash table; the eddy with SteMs (fig 2(iii)) stores only
//! the base-table singletons. Output curves should be comparable; memory
//! should differ by roughly the size of the intermediate relation — the
//! space/time trade-off the paper calls out.

use stems_baseline::{pipelined_shj, ArrivalStream, PipelineStage, ShjParams};
use stems_bench::*;
use stems_catalog::{reference, Catalog, QuerySpec, ScanSpec, TableInstance};
use stems_core::{EddyExecutor, ExecConfig};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sim::Series;
use stems_types::{CmpOp, ColRef, PredId, Predicate, TableIdx};

const A_ROWS: usize = 200;
const B_ROWS: usize = 100;
const C_ROWS: usize = 75;
const V_DISTINCT: i64 = 20; // A⋈B fan-out: 200×100/20 = 1000 intermediates

fn main() {
    println!(
        "exp_nary_shj: A({A_ROWS}) ⋈ B({B_ROWS}) on v ({V_DISTINCT} distinct) \
         ⋈ C({C_ROWS}) on w — intermediate A⋈B has {} tuples",
        A_ROWS * B_ROWS / V_DISTINCT as usize
    );
    let mut c = Catalog::new();
    let a = TableBuilder::new("A", A_ROWS, 41)
        .col("v", ColGen::Mod(V_DISTINCT))
        .register(&mut c)
        .expect("A");
    let b = TableBuilder::new("B", B_ROWS, 42)
        .col("v", ColGen::Mod(V_DISTINCT))
        .col("w", ColGen::Mod(C_ROWS as i64 / 3))
        .register(&mut c)
        .expect("B");
    let d = TableBuilder::new("C", C_ROWS, 43)
        .col("w", ColGen::Mod(C_ROWS as i64 / 3))
        .register(&mut c)
        .expect("C");
    for (src, rate) in [(a, 100.0), (b, 80.0), (d, 70.0)] {
        c.add_scan(src, ScanSpec::with_rate(rate)).expect("scan");
    }
    let q = QuerySpec::new(
        &c,
        [(a, "a"), (b, "b"), (d, "c")]
            .iter()
            .map(|(s, al)| TableInstance {
                source: *s,
                alias: al.to_string(),
            })
            .collect(),
        vec![
            // A.v = B.v
            Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 1),
            ),
            // B.w = C.w
            Predicate::join(
                PredId(1),
                ColRef::new(TableIdx(1), 2),
                CmpOp::Eq,
                ColRef::new(TableIdx(2), 1),
            ),
        ],
        None,
    )
    .expect("query");
    let expected = reference::execute(&c, &q).len();

    // n-ary SHJ via eddy + SteMs (fig 2(iii)).
    let stems_run = EddyExecutor::build(&c, &q, ExecConfig::default())
        .expect("plan")
        .run();
    assert_eq!(stems_run.results.len(), expected);

    // Pipeline of binary SHJs (fig 2(i)).
    let a_stream = ArrivalStream::from_scan(c.table_expect(a), &ScanSpec::with_rate(100.0));
    let b_stream = ArrivalStream::from_scan(c.table_expect(b), &ScanSpec::with_rate(80.0));
    let c_stream = ArrivalStream::from_scan(c.table_expect(d), &ScanSpec::with_rate(70.0));
    let pipe = pipelined_shj(
        (&a_stream, TableIdx(0)),
        &[
            PipelineStage {
                stream: b_stream,
                instance: TableIdx(1),
                col: 1, // B.v
                prev_instance: TableIdx(0),
                prev_col: 1, // A.v
            },
            PipelineStage {
                stream: c_stream,
                instance: TableIdx(2),
                col: 1, // C.w
                prev_instance: TableIdx(1),
                prev_col: 2, // B.w
            },
        ],
        &ShjParams::default(),
    );
    assert_eq!(pipe.results.len(), expected);

    let empty = Series::new();
    let horizon = stems_run.end_time.max(pipe.end_time);
    let s_out = stems_run.metrics.series("results").unwrap_or(&empty);
    let p_out = pipe.metrics.series("results").unwrap_or(&empty);
    let s_mem = stems_run
        .metrics
        .series("stem_bytes_total")
        .unwrap_or(&empty);
    let p_mem = pipe.metrics.series("mem_bytes").unwrap_or(&empty);

    print!(
        "{}",
        series_table(
            "results over time",
            horizon,
            12,
            &[("SteMs (n-ary)", s_out), ("binary pipeline", p_out)],
        )
    );
    print!(
        "{}",
        series_table(
            "join-state memory (bytes)",
            horizon,
            12,
            &[("SteMs (n-ary)", s_mem), ("binary pipeline", p_mem)],
        )
    );
    println!(
        "{}",
        chart(
            "memory footprint",
            "bytes",
            horizon,
            &[("SteMs", s_mem), ("pipeline", p_mem),]
        )
    );
    save_csv(
        "exp_nary_shj_stems.csv",
        &stems_run
            .metrics
            .to_csv(&["results", "stem_bytes_total"], horizon, 100),
    );
    save_csv(
        "exp_nary_shj_pipeline.csv",
        &pipe.metrics.to_csv(&["results", "mem_bytes"], horizon, 100),
    );
    println!(
        "peak memory: SteMs {:.0} bytes, pipeline {:.0} bytes ({}× ratio); results {expected}",
        s_mem.last_value(),
        p_mem.last_value(),
        (p_mem.last_value() / s_mem.last_value().max(1.0)).round(),
    );

    let mut ok = true;
    ok &= shape_check(
        "both produce the exact result set",
        stems_run.results.len() == expected && pipe.results.len() == expected,
    );
    ok &= shape_check(
        "SteMs store ≤ 1/3 of the pipeline's memory (singletons vs intermediates)",
        s_mem.last_value() * 3.0 <= p_mem.last_value(),
    );
    ok &= shape_check(
        "output progress comparable (within 15% of total at mid-run)",
        {
            let t = horizon / 2;
            (s_out.value_at(t) - p_out.value_at(t)).abs() <= 0.15 * expected as f64 + 5.0
        },
    );
    finish(ok);
}
