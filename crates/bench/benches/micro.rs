//! Microbenchmarks: engineering costs of the SteM machinery.
//!
//! These are wall-clock benches of the *implementation* (the figures
//! measure virtual time; these measure real CPU), run with a small
//! self-contained harness (`cargo bench` — no external benchmark crate):
//!
//! * `stem_build/*` — dictionary insert throughput per store backend,
//!   scalar and batched;
//! * `stem_probe/*` — equality probe throughput per backend (hash vs the
//!   list fallback — why SteMs index their join columns);
//! * `dedup` — the §3.2 set-semantics duplicate filter;
//! * `policy_choose/*` — per-routing-decision overhead of each policy;
//! * `eddy_end_to_end/*` — full engine throughput on a two-table
//!   symmetric-hash-join workload, scalar (`batch=1`) vs batched routing.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use stems_catalog::{Catalog, ScanSpec, TableDef};
use stems_core::policy::Feedback;
use stems_core::router::Action;
use stems_core::{EddyExecutor, ExecConfig, RoutingPolicyKind};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sim::SimRng;
use stems_sql::parse_query;
use stems_storage::{DictStore, HashStore, ListStore, RowSet, StoreKind};
use stems_types::{ColumnType, PredId, Row, Schema, TableIdx, Tuple, Value};

const N_ROWS: usize = 10_000;

/// Time `f` over `iters` iterations (after one warm-up) and print ns/op.
fn bench(name: &str, iters: u64, mut f: impl FnMut() -> u64) {
    black_box(f());
    let start = Instant::now();
    let mut sink = 0u64;
    for _ in 0..iters {
        sink = sink.wrapping_add(f());
    }
    let elapsed = start.elapsed();
    black_box(sink);
    let ns_per_op = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<44} {ns_per_op:>14.1} ns/op   ({iters} iters)");
}

fn rows(n: usize) -> Vec<Arc<Row>> {
    (0..n as i64)
        .map(|k| Row::shared(vec![Value::Int(k), Value::Int(k % 250)]))
        .collect()
}

fn bench_stem_build() {
    let data = rows(N_ROWS);
    for (name, kind) in [
        ("list", StoreKind::List),
        ("hash", StoreKind::Hash),
        ("adaptive", StoreKind::Adaptive { threshold: 128 }),
    ] {
        bench(&format!("stem_build/{name}"), 20, || {
            let mut store = kind.build(&[1]);
            for r in &data {
                store.insert(r.clone());
            }
            store.len() as u64
        });
        bench(&format!("stem_build/{name}_batched"), 20, || {
            let mut store = kind.build(&[1]);
            store.insert_batch(data.clone());
            store.len() as u64
        });
    }
}

fn bench_stem_probe() {
    let data = rows(N_ROWS);
    let mut hash = HashStore::new(&[1]);
    let mut list = ListStore::new();
    for r in &data {
        hash.insert(r.clone());
        list.insert(r.clone());
    }
    let mut k = 0i64;
    bench("stem_probe/hash_indexed", 200_000, || {
        k = (k + 1) % 250;
        hash.lookup_eq(1, &Value::Int(k)).len() as u64
    });
    let keys: Vec<Value> = (0..64i64).map(Value::Int).collect();
    bench("stem_probe/hash_indexed_batch64", 4_000, || {
        hash.lookup_eq_batch(1, &keys).len() as u64
    });
    // The list store scans: orders of magnitude slower — the reason the
    // paper's SteMs keep "one main-memory index on each [join] column".
    bench("stem_probe/list_scan", 200, || {
        k = (k + 1) % 250;
        list.lookup_eq(1, &Value::Int(k)).len() as u64
    });
}

fn bench_dedup() {
    let data = rows(N_ROWS);
    bench("dedup_rowset", 20, || {
        let mut set = RowSet::new();
        for r in &data {
            set.insert(r.clone());
        }
        // Second pass: every row is a duplicate.
        for r in &data {
            black_box(set.insert(r.clone()));
        }
        set.len() as u64
    });
}

fn bench_policy_choose() {
    let actions = vec![
        (
            Action::ProbeStem {
                mid: 3,
                table: TableIdx(1),
            },
            stems_core::policy::Hint { est_cost_us: 50 },
        ),
        (
            Action::ProbeStem {
                mid: 4,
                table: TableIdx(2),
            },
            stems_core::policy::Hint { est_cost_us: 80 },
        ),
        (
            Action::Select {
                mid: 5,
                pred: PredId(1),
            },
            stems_core::policy::Hint { est_cost_us: 10 },
        ),
        (
            Action::ProbeAm {
                mid: 6,
                table: TableIdx(2),
            },
            stems_core::policy::Hint {
                est_cost_us: 200_000,
            },
        ),
    ];
    let tuple = Tuple::singleton_of(TableIdx(0), vec![Value::Int(1)]);
    let state = stems_core::TupleState::new();
    for kind in [
        RoutingPolicyKind::Fixed { probe_order: None },
        RoutingPolicyKind::Lottery,
        RoutingPolicyKind::BenefitCost {
            epsilon: 0.05,
            drop_rate: 1.0,
        },
    ] {
        let mut policy = kind.build();
        // Warm the EWMAs so the benched path is steady-state.
        for i in 0..64 {
            policy.feedback(&Feedback::StemProbe {
                table: TableIdx(1 + (i % 2) as u8),
                emitted: (i % 3) as usize,
            });
        }
        let mut rng = SimRng::new(7);
        let name = format!("policy_choose/{}", policy.name());
        bench(&name, 200_000, || {
            policy.choose(&tuple, &state, &actions, &mut rng) as u64
        });
    }
}

fn bench_eddy_end_to_end() {
    // 2000 × 2000 row symmetric hash join through the full engine, scalar
    // routing vs the batched default.
    let mut catalog = Catalog::new();
    let r = TableBuilder::new("R", 2000, 71)
        .col("a", ColGen::Mod(500))
        .register(&mut catalog)
        .unwrap();
    let s = TableBuilder::new("S", 2000, 72)
        .col("x", ColGen::Mod(500))
        .register(&mut catalog)
        .unwrap();
    catalog.add_scan(r, ScanSpec::with_rate(100_000.0)).unwrap();
    catalog.add_scan(s, ScanSpec::with_rate(100_000.0)).unwrap();
    let query = parse_query(&catalog, "SELECT * FROM R, S WHERE R.a = S.x").unwrap();
    for batch_size in [1usize, 64, 256] {
        bench(
            &format!("eddy_end_to_end/shj_2kx2k_batch{batch_size}"),
            5,
            || {
                let config = ExecConfig {
                    batch_size,
                    ..ExecConfig::default()
                };
                let report = EddyExecutor::build(&catalog, &query, config).unwrap().run();
                report.results.len() as u64
            },
        );
    }

    // Single-table pass-through: pure routing overhead per tuple.
    let mut catalog2 = Catalog::new();
    let t = catalog2
        .add_table(
            TableDef::new("T", Schema::of(&[("k", ColumnType::Int)]))
                .with_rows((0..5000i64).map(|k| vec![Value::Int(k)]).collect()),
        )
        .unwrap();
    catalog2
        .add_scan(t, ScanSpec::with_rate(100_000.0))
        .unwrap();
    let q2 = parse_query(&catalog2, "SELECT * FROM T WHERE T.k >= 0").unwrap();
    bench("eddy_end_to_end/routing_overhead_5k", 5, || {
        let report = EddyExecutor::build(&catalog2, &q2, ExecConfig::default())
            .unwrap()
            .run();
        report.results.len() as u64
    });
}

fn main() {
    println!("stems microbenchmarks (wall-clock)\n");
    bench_stem_build();
    bench_stem_probe();
    bench_dedup();
    bench_policy_choose();
    bench_eddy_end_to_end();
}
