//! Criterion microbenchmarks: engineering costs of the SteM machinery.
//!
//! These are wall-clock benches of the *implementation* (the figures
//! measure virtual time; these measure real CPU):
//!
//! * `stem_build/*` — dictionary insert throughput per store backend;
//! * `stem_probe/*` — equality probe throughput per backend (hash vs the
//!   list fallback — why SteMs index their join columns);
//! * `dedup` — the §3.2 set-semantics duplicate filter;
//! * `policy_choose/*` — per-routing-decision overhead of each policy;
//! * `eddy_end_to_end` — full engine throughput (events/second) on a
//!   two-table symmetric-hash-join workload.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use stems_catalog::{Catalog, ScanSpec, TableDef};
use stems_core::policy::Feedback;
use stems_core::router::Action;
use stems_core::{EddyExecutor, ExecConfig, RoutingPolicyKind};
use stems_datagen::{gen::ColGen, TableBuilder};
use stems_sim::SimRng;
use stems_sql::parse_query;
use stems_storage::{DictStore, HashStore, ListStore, RowSet, StoreKind};
use stems_types::{ColumnType, PredId, Row, Schema, TableIdx, Tuple, Value};

const N_ROWS: usize = 10_000;

fn rows(n: usize) -> Vec<Arc<Row>> {
    (0..n as i64)
        .map(|k| Row::shared(vec![Value::Int(k), Value::Int(k % 250)]))
        .collect()
}

fn bench_stem_build(c: &mut Criterion) {
    let data = rows(N_ROWS);
    let mut g = c.benchmark_group("stem_build");
    for (name, kind) in [
        ("list", StoreKind::List),
        ("hash", StoreKind::Hash),
        ("adaptive", StoreKind::Adaptive { threshold: 128 }),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || kind.build(&[1]),
                |mut store| {
                    for r in &data {
                        store.insert(r.clone());
                    }
                    black_box(store.len())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_stem_probe(c: &mut Criterion) {
    let data = rows(N_ROWS);
    let mut hash = HashStore::new(&[1]);
    let mut list = ListStore::new();
    for r in &data {
        hash.insert(r.clone());
        list.insert(r.clone());
    }
    let mut g = c.benchmark_group("stem_probe");
    g.bench_function("hash_indexed", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 1) % 250;
            black_box(hash.lookup_eq(1, &Value::Int(k)).len())
        })
    });
    // The list store scans: orders of magnitude slower — the reason the
    // paper's SteMs keep "one main-memory index on each [join] column".
    g.bench_function("list_scan", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 1) % 250;
            black_box(list.lookup_eq(1, &Value::Int(k)).len())
        })
    });
    g.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let data = rows(N_ROWS);
    c.bench_function("dedup_rowset", |b| {
        b.iter_batched(
            RowSet::new,
            |mut set| {
                for r in &data {
                    set.insert(r.clone());
                }
                // Second pass: every row is a duplicate.
                for r in &data {
                    black_box(set.insert(r.clone()));
                }
                black_box(set.len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_policy_choose(c: &mut Criterion) {
    let actions = vec![
        (
            Action::ProbeStem {
                mid: 3,
                table: TableIdx(1),
            },
            stems_core::policy::Hint { est_cost_us: 50 },
        ),
        (
            Action::ProbeStem {
                mid: 4,
                table: TableIdx(2),
            },
            stems_core::policy::Hint { est_cost_us: 80 },
        ),
        (
            Action::Select {
                mid: 5,
                pred: PredId(1),
            },
            stems_core::policy::Hint { est_cost_us: 10 },
        ),
        (
            Action::ProbeAm {
                mid: 6,
                table: TableIdx(2),
            },
            stems_core::policy::Hint {
                est_cost_us: 200_000,
            },
        ),
    ];
    let tuple = Tuple::singleton_of(TableIdx(0), vec![Value::Int(1)]);
    let state = stems_core::TupleState::new();
    let mut g = c.benchmark_group("policy_choose");
    for kind in [
        RoutingPolicyKind::Fixed { probe_order: None },
        RoutingPolicyKind::Lottery,
        RoutingPolicyKind::BenefitCost {
            epsilon: 0.05,
            drop_rate: 1.0,
        },
    ] {
        let mut policy = kind.build();
        // Warm the EWMAs so the benched path is steady-state.
        for i in 0..64 {
            policy.feedback(&Feedback::StemProbe {
                table: TableIdx(1 + (i % 2) as u8),
                emitted: (i % 3) as usize,
            });
        }
        let mut rng = SimRng::new(7);
        g.bench_function(policy.name(), |b| {
            b.iter(|| black_box(policy.choose(&tuple, &state, &actions, &mut rng)))
        });
    }
    g.finish();
}

fn bench_eddy_end_to_end(c: &mut Criterion) {
    // 2000 × 2000 row symmetric hash join through the full engine.
    let mut catalog = Catalog::new();
    let r = TableBuilder::new("R", 2000, 71)
        .col("a", ColGen::Mod(500))
        .register(&mut catalog)
        .unwrap();
    let s = TableBuilder::new("S", 2000, 72)
        .col("x", ColGen::Mod(500))
        .register(&mut catalog)
        .unwrap();
    catalog.add_scan(r, ScanSpec::with_rate(100_000.0)).unwrap();
    catalog.add_scan(s, ScanSpec::with_rate(100_000.0)).unwrap();
    let query = parse_query(&catalog, "SELECT * FROM R, S WHERE R.a = S.x").unwrap();
    c.bench_function("eddy_end_to_end_shj_2kx2k", |b| {
        b.iter(|| {
            let report = EddyExecutor::build(&catalog, &query, ExecConfig::default())
                .unwrap()
                .run();
            black_box(report.results.len())
        })
    });

    // Single-table pass-through: pure routing overhead per tuple.
    let mut catalog2 = Catalog::new();
    let t = catalog2
        .add_table(
            TableDef::new("T", Schema::of(&[("k", ColumnType::Int)])).with_rows(
                (0..5000i64).map(|k| vec![Value::Int(k)]).collect(),
            ),
        )
        .unwrap();
    catalog2.add_scan(t, ScanSpec::with_rate(100_000.0)).unwrap();
    let q2 = parse_query(&catalog2, "SELECT * FROM T WHERE T.k >= 0").unwrap();
    c.bench_function("eddy_routing_overhead_5k_tuples", |b| {
        b.iter(|| {
            let report = EddyExecutor::build(&catalog2, &q2, ExecConfig::default())
                .unwrap()
                .run();
            black_box(report.results.len())
        })
    });
}

criterion_group!(
    benches,
    bench_stem_build,
    bench_stem_probe,
    bench_dedup,
    bench_policy_choose,
    bench_eddy_end_to_end
);
criterion_main!(benches);
