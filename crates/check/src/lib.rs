//! A bounded-exhaustive model checker for small closed concurrency
//! protocols — the correctness tool under `stems_core::sync`.
//!
//! The parallel runtime's safety net so far is output bit-equality
//! (`worker_count_is_invariant` and friends), which cannot see a lost
//! wakeup, a barrier race, or UB that happens to produce the right
//! answer. This crate closes that gap in-tree, with no external
//! dependencies: a test writes its protocol against [`sync`] and
//! [`thread`] (API-compatible subsets of `std::sync` / `std::thread`),
//! wraps it in [`model`], and the checker runs the closed program under
//! **every schedule** reachable within a preemption bound, reporting the
//! first assertion failure or deadlock together with the interleaving
//! that produced it.
//!
//! # How it works
//!
//! Execution is *stateless model checking* in the CHESS style:
//!
//! * Model threads are real OS threads, but a central scheduler lets
//!   exactly one run at a time. Every visible operation — mutex lock,
//!   condvar wait/notify, atomic access, join — is a **yield point**: the
//!   thread parks, hands control back, and continues only when the
//!   scheduler picks it again.
//! * The scheduler explores schedules by **depth-first search over the
//!   choice points**, replaying the program from the start with a
//!   recorded decision prefix and diverging at the last unexplored
//!   branch. Programs must therefore be deterministic apart from
//!   scheduling (no wall clocks, no ambient randomness) — which the
//!   virtual-time discipline of this workspace already guarantees.
//! * A **preemption bound** (default [`DEFAULT_PREEMPTION_BOUND`]) keeps
//!   the search tractable: schedules are explored exhaustively up to that
//!   many *involuntary* context switches (switching away from a thread
//!   that could have continued). Empirically — and in this repo's seeded
//!   mutation tests — real synchronization bugs need only one or two.
//!
//! # Memory model
//!
//! The checker explores **sequentially consistent** interleavings only:
//! atomics take their `Ordering` argument for API compatibility but are
//! modelled as SC, and non-atomic data is expected to be protected by the
//! model [`sync::Mutex`]. Weak-memory reorderings are out of scope — the
//! nightly ThreadSanitizer CI leg covers data races at that level, while
//! this checker covers the *protocol* level (lost wakeups, barrier
//! misorder, deadlock, poison recovery), which sanitizers can only hit by
//! luck.
//!
//! # Poison
//!
//! [`sync::Mutex`] models poisoning faithfully: a model thread that
//! panics while holding a guard poisons the mutex, and `lock` returns
//! `Err(PoisonError)` exactly like `std`. A test may wrap the panicking
//! region in [`std::panic::catch_unwind`] to model *recovery* protocols
//! (the scratch free-list's poison discard) without the panic counting as
//! a checker failure; an *uncaught* panic on any model thread fails the
//! schedule and is reported with its trace.
//!
//! # Outside a model
//!
//! Every primitive in [`sync`] and [`thread`] degrades to a thin wrapper
//! over its `std` counterpart when used outside [`model`]. That is what
//! lets `stems-core` compile against them unconditionally under its
//! `model` feature: ordinary tests keep running on real `std`
//! synchronization, while model tests drive the very same protocol types
//! through the checker.

pub mod sched;
pub mod sync;
pub mod thread;

use sched::Explorer;
use std::sync::Arc;

/// Default bound on involuntary context switches per schedule.
pub const DEFAULT_PREEMPTION_BOUND: usize = 3;
/// Default cap on explored schedules before the checker gives up.
pub const DEFAULT_MAX_EXECUTIONS: usize = 200_000;
/// Default cap on scheduling steps within one schedule (livelock guard).
pub const DEFAULT_MAX_STEPS: usize = 10_000;
/// Hard cap on live model threads in one schedule.
pub const MAX_MODEL_THREADS: usize = 8;

/// What went wrong on the failing schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure, explicit panic, ...).
    Panic(String),
    /// No runnable thread, but not every thread finished — a deadlock or
    /// a lost wakeup. The string lists each stuck thread and what it was
    /// blocked on.
    Deadlock(String),
    /// One schedule exceeded the step budget — a livelock or an unbounded
    /// loop in the protocol under test.
    StepBudget,
    /// Replay diverged: the program is not deterministic under identical
    /// scheduling, so exploration is unsound for it.
    Nondeterminism(String),
}

/// A failing schedule: the kind of failure plus the full interleaving
/// (one line per scheduling decision) that reaches it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    pub trace: Vec<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Panic(msg) => writeln!(f, "model thread panicked: {msg}")?,
            FailureKind::Deadlock(what) => writeln!(f, "deadlock: {what}")?,
            FailureKind::StepBudget => writeln!(f, "step budget exceeded (livelock?)")?,
            FailureKind::Nondeterminism(what) => writeln!(f, "nondeterministic replay: {what}")?,
        }
        writeln!(f, "failing schedule ({} steps):", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// The result of a model run.
#[derive(Debug)]
pub struct Report {
    /// Schedules explored (including the failing one, if any).
    pub executions: usize,
    /// True when every schedule within the preemption bound was explored.
    /// False when a failure stopped the search early or the execution cap
    /// was hit.
    pub complete: bool,
    /// The first failing schedule found, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Assert the protocol passed *and* the state space was fully
    /// explored within the bound — the green-path contract model tests
    /// should hold the checker to.
    #[track_caller]
    pub fn assert_ok(&self) {
        if let Some(failure) = &self.failure {
            panic!(
                "model check failed on schedule {} of {}:\n{failure}",
                self.executions, self.executions
            );
        }
        assert!(
            self.complete,
            "model check passed {} schedules but did not exhaust the bounded state space; \
             raise max_executions or lower the protocol size",
            self.executions
        );
    }

    /// Assert the checker *did* find a failing schedule — the contract of
    /// the seeded-mutation tests that prove the checker has teeth.
    #[track_caller]
    pub fn expect_failure(&self) -> &Failure {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "expected the checker to find a failure, but {} schedules passed (complete: {})",
                self.executions, self.complete
            )
        })
    }
}

/// Configurable checker. [`model`] is the default-configured shorthand.
#[derive(Debug, Clone)]
pub struct Checker {
    preemption_bound: usize,
    max_executions: usize,
    max_steps: usize,
}

impl Default for Checker {
    fn default() -> Checker {
        Checker {
            preemption_bound: DEFAULT_PREEMPTION_BOUND,
            max_executions: DEFAULT_MAX_EXECUTIONS,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }
}

impl Checker {
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Explore schedules with up to `n` involuntary context switches.
    pub fn preemption_bound(mut self, n: usize) -> Checker {
        self.preemption_bound = n;
        self
    }

    /// Stop after `n` schedules even if the space is not exhausted.
    pub fn max_executions(mut self, n: usize) -> Checker {
        self.max_executions = n;
        self
    }

    /// Per-schedule scheduling-step budget (livelock guard).
    pub fn max_steps(mut self, n: usize) -> Checker {
        self.max_steps = n;
        self
    }

    /// Run `f` under every schedule reachable within the preemption
    /// bound. `f` is re-invoked once per schedule and must construct its
    /// whole protocol (mutexes, condvars, threads) freshly inside.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        sched::install_quiet_panic_hook();
        let f = Arc::new(f);
        let mut explorer = Explorer::new(self.preemption_bound);
        let mut executions = 0;
        loop {
            executions += 1;
            if let Some(failure) = sched::run_one(Arc::clone(&f), &mut explorer, self.max_steps) {
                return Report {
                    executions,
                    complete: false,
                    failure: Some(failure),
                };
            }
            if !explorer.advance() {
                return Report {
                    executions,
                    complete: true,
                    failure: None,
                };
            }
            if executions >= self.max_executions {
                return Report {
                    executions,
                    complete: false,
                    failure: None,
                };
            }
        }
    }
}

/// Model-check `f` with the default [`Checker`] configuration.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::default().check(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::*;

    #[test]
    fn finds_lost_update_between_load_and_store() {
        // Classic racy increment: load, then store(load + 1). Two threads
        // can interleave between the load and the store and lose one
        // update — the checker must find the schedule where the final
        // value is 1, not 2.
        let report = model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
        let failure = report.expect_failure();
        assert!(
            matches!(&failure.kind, FailureKind::Panic(msg) if msg.contains("lost update")),
            "wrong failure kind: {failure}"
        );
        assert!(!failure.trace.is_empty(), "failure must carry its schedule");
    }

    #[test]
    fn mutex_protected_increment_passes_every_schedule() {
        let report = model(|| {
            let n = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let mut g = n.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock().unwrap(), 2);
        });
        report.assert_ok();
        assert!(
            report.executions > 1,
            "two racing threads must yield more than one schedule"
        );
    }

    #[test]
    fn finds_ab_ba_deadlock() {
        let report = model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            t.join().unwrap();
        });
        let failure = report.expect_failure();
        assert!(
            matches!(failure.kind, FailureKind::Deadlock(_)),
            "wrong failure kind: {failure}"
        );
    }

    #[test]
    fn finds_lost_wakeup_when_notify_races_the_wait() {
        // The waiter checks readiness that lives OUTSIDE the gate mutex
        // (an atomic), and the signaller notifies without holding the
        // gate — so the notify can fire inside the waiter's check-to-wait
        // window and the waiter sleeps forever. This is the exact bug
        // class the gate protocol in `stems_core::runtime` is shaped to
        // exclude (its `looks_empty` scan reads other mutexes' state, and
        // submitters notify only while holding the gate).
        use super::sync::atomic::AtomicBool;
        let report = model(|| {
            let gate = Arc::new(Mutex::new(()));
            let cv = Arc::new(Condvar::new());
            let ready = Arc::new(AtomicBool::new(false));
            let (cv2, ready2) = (Arc::clone(&cv), Arc::clone(&ready));
            let t = thread::spawn(move || {
                ready2.store(true, Ordering::SeqCst);
                // BUG (deliberate): notify without holding the gate.
                cv2.notify_one();
            });
            let g = gate.lock().unwrap();
            // Single non-looping check models "wait exactly once" so the
            // lost wakeup is a hard deadlock rather than a retry.
            if !ready.load(Ordering::SeqCst) {
                drop(cv.wait(g).unwrap());
            } else {
                drop(g);
            }
            t.join().unwrap();
        });
        let failure = report.expect_failure();
        assert!(
            matches!(failure.kind, FailureKind::Deadlock(_)),
            "lost wakeup must surface as a deadlock: {failure}"
        );
    }

    #[test]
    fn condvar_handshake_under_the_lock_passes() {
        // The correct version of the protocol above: the notify happens
        // while holding the mutex, so it cannot fall into the waiter's
        // check-to-wait window.
        let report = model(|| {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let t = thread::spawn(move || {
                let mut g = m2.lock().unwrap();
                *g = true;
                cv2.notify_one();
                drop(g);
            });
            let mut g = m.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            t.join().unwrap();
        });
        report.assert_ok();
    }

    #[test]
    fn poisoned_mutex_recovery_is_modelled() {
        // A thread panics while holding the guard; a catch_unwind keeps
        // the panic from failing the schedule, and the other thread must
        // observe Err(PoisonError) and recover — on every schedule.
        let report = model(|| {
            let m = Arc::new(Mutex::new(7usize));
            let m2 = Arc::clone(&m);
            let t = thread::spawn(move || {
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _g = m2.lock().unwrap();
                    panic!("die holding the lock");
                }));
                assert!(caught.is_err());
            });
            t.join().unwrap();
            // After the panicking thread is joined, the mutex MUST be
            // poisoned; recovery hands back the intact value.
            let v = match m.lock() {
                Ok(_) => panic!("join ordered the panic before this lock; must be poisoned"),
                Err(poisoned) => *poisoned.into_inner(),
            };
            assert_eq!(v, 7);
        });
        report.assert_ok();
    }

    #[test]
    fn join_returns_the_thread_value() {
        let report = model(|| {
            let t = thread::spawn(|| 41 + 1);
            assert_eq!(t.join().unwrap(), 42);
        });
        report.assert_ok();
    }

    #[test]
    fn primitives_pass_through_outside_a_model() {
        // No model() wrapper: everything must behave like plain std.
        let m = Mutex::new(3usize);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 4);
        assert!(!m.is_poisoned());
        let n = AtomicUsize::new(0);
        n.fetch_add(5, Ordering::SeqCst);
        assert_eq!(n.load(Ordering::SeqCst), 5);
        let t = thread::spawn(|| 9usize);
        assert_eq!(t.join().unwrap(), 9);
        let cv = Condvar::new();
        cv.notify_all(); // no waiters; must not panic
    }

    #[test]
    fn step_budget_catches_livelock() {
        let report = Checker::new().max_steps(64).check(|| {
            let n = AtomicUsize::new(0);
            // Unbounded spin on a flag nobody sets.
            while n.load(Ordering::SeqCst) == 0 {
                std::hint::spin_loop();
            }
        });
        let failure = report.expect_failure();
        assert!(matches!(failure.kind, FailureKind::StepBudget));
    }
}
