//! Model-aware `thread::spawn`/`JoinHandle`.
//!
//! Inside a model execution, `spawn` registers a scheduler tid and
//! launches a real OS thread whose first act is to park at its `Start`
//! yield point; `join` is a yield point granted only once the target
//! thread finished. Outside a model, both delegate to `std::thread`.

use crate::sched::{self, Abort, Op, Tid};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

pub struct JoinHandle<T> {
    model: Option<ModelJoin<T>>,
    std: Option<std::thread::JoinHandle<T>>,
}

struct ModelJoin<T> {
    tid: Tid,
    result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some(ctx) = sched::current_ctx() else {
        return JoinHandle {
            model: None,
            std: Some(std::thread::spawn(f)),
        };
    };
    let exec = Arc::clone(&ctx.exec);
    let tid = exec.register_thread();
    let result = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let exec_thread = Arc::clone(&exec);
    let os = std::thread::Builder::new()
        .name(format!("model-t{tid}"))
        .spawn(move || {
            sched::set_ctx(&exec_thread, tid);
            let r = catch_unwind(AssertUnwindSafe(|| {
                exec_thread.request(tid, Op::Start);
                f()
            }));
            sched::clear_ctx();
            match r {
                Ok(v) => {
                    *slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Ok(v));
                    exec_thread.finish_ok(tid);
                }
                Err(p) if p.is::<Abort>() => exec_thread.finish_abort(tid),
                Err(p) => {
                    let msg = sched::panic_msg(&*p);
                    *slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Err(p));
                    exec_thread.finish_panicked(tid, msg);
                }
            }
        })
        .expect("spawn model thread");
    exec.add_os_handle(os);
    JoinHandle {
        model: Some(ModelJoin { tid, result }),
        std: None,
    }
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.model {
            Some(mj) => {
                let ctx = sched::current_ctx()
                    .expect("join() on a model JoinHandle outside its model execution");
                ctx.exec.request(ctx.tid, Op::Join(mj.tid));
                mj.result
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("joined model thread must have stored its result")
            }
            None => self.std.expect("handle has std half").join(),
        }
    }
}
