//! Model-aware drop-in replacements for `std::sync` primitives.
//!
//! Each primitive wraps its `std` counterpart and remembers whether it
//! was *created inside a model execution* (a thread-local [`Ctx`] was
//! live at construction). If so, every visible operation first yields to
//! the scheduler; otherwise — or when the primitive outlives its
//! execution — every method is a straight passthrough to `std`, so code
//! compiled against these types behaves identically outside
//! [`crate::model`].
//!
//! Poisoning is modelled with the real thing: the inner `std` mutex is
//! genuinely held while a model guard is live, so a panic that unwinds
//! through a guard poisons it exactly as in production, and `lock()`
//! reports `Err(PoisonError)` with the data still accessible via
//! `into_inner()`.

use crate::sched::{self, Ctx, ObjKind, Op};
use std::fmt;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

pub use std::sync::{LockResult, PoisonError};

/// Where a model primitive registered itself: which execution, which id.
#[derive(Clone, Copy, Debug)]
struct ModelRef {
    exec_id: u64,
    id: usize,
}

fn model_ref(kind: ObjKind) -> Option<ModelRef> {
    sched::current_ctx().map(|ctx| ModelRef {
        exec_id: ctx.exec.id,
        id: ctx.exec.register_object(kind),
    })
}

/// The live model context for an operation on `model`, if the current
/// thread belongs to the same execution the object registered with.
fn ctx_for(model: Option<ModelRef>) -> Option<(Ctx, usize)> {
    let m = model?;
    let ctx = sched::current_ctx()?;
    (ctx.exec.id == m.exec_id).then_some((ctx, m.id))
}

pub struct Mutex<T: ?Sized> {
    model: Option<ModelRef>,
    inner: StdMutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: Option<(Ctx, usize)>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            model: model_ref(ObjKind::Mutex),
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = ctx_for(self.model);
        if let Some((ctx, id)) = &model {
            ctx.exec.request(ctx.tid, Op::Lock(*id));
        }
        // Under the model the scheduler has granted exclusivity, so this
        // never blocks; it exists to carry the data and real poison.
        let (inner, poisoned) = match self.inner.lock() {
            Ok(g) => (g, false),
            Err(p) => (p.into_inner(), true),
        };
        let guard = MutexGuard {
            lock: self,
            inner: Some(inner),
            model,
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    pub fn clear_poison(&self) {
        self.inner.clear_poison();
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not consumed")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not consumed")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first: if we are unwinding, this is what
        // sets the poison bit, exactly like production.
        drop(self.inner.take());
        if let Some((ctx, id)) = self.model.take() {
            ctx.exec.unlock(ctx.tid, id);
        }
    }
}

pub struct Condvar {
    model: Option<ModelRef>,
    inner: StdCondvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            model: model_ref(ObjKind::Condvar),
            inner: StdCondvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match (ctx_for(self.model), guard.model.is_some()) {
            (Some((ctx, cv)), true) => {
                let (_, mutex) = guard.model.take().expect("checked above");
                let lock = guard.lock;
                // Really release, then skip the guard's model unlock: the
                // scheduler clears ownership as part of granting CondWait,
                // atomically with parking us on the condvar.
                drop(guard.inner.take());
                std::mem::forget(guard);
                ctx.exec.request(ctx.tid, Op::CondWait { cv, mutex });
                // Woken and re-granted the mutex; retake the real lock.
                let (inner, poisoned) = match lock.inner.lock() {
                    Ok(g) => (g, false),
                    Err(p) => (p.into_inner(), true),
                };
                let guard = MutexGuard {
                    lock,
                    inner: Some(inner),
                    model: Some((ctx, mutex)),
                };
                if poisoned {
                    Err(PoisonError::new(guard))
                } else {
                    Ok(guard)
                }
            }
            (None, false) => {
                let lock = guard.lock;
                let inner = guard.inner.take().expect("guard not consumed");
                std::mem::forget(guard);
                match self.inner.wait(inner) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        model: None,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                        model: None,
                    })),
                }
            }
            _ => panic!("stems-check: Condvar and Mutex must both be model-managed or both std"),
        }
    }

    pub fn notify_one(&self) {
        if let Some((ctx, cv)) = ctx_for(self.model) {
            ctx.exec.request(ctx.tid, Op::Notify { cv, all: false });
        } else {
            self.inner.notify_one();
        }
    }

    pub fn notify_all(&self) {
        if let Some((ctx, cv)) = ctx_for(self.model) {
            ctx.exec.request(ctx.tid, Op::Notify { cv, all: true });
        } else {
            self.inner.notify_all();
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Sequentially-consistent model atomics. Every access is a yield point,
/// making load/store races visible to the explorer. Weak-memory effects
/// are out of scope (that is ThreadSanitizer's half of the contract).
pub mod atomic {
    use super::{ctx_for, model_ref, ModelRef};
    use crate::sched::{ObjKind, Op};
    use std::fmt;

    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            pub struct $name {
                model: Option<ModelRef>,
                inner: $std,
            }

            impl $name {
                pub fn new(v: $prim) -> Self {
                    Self {
                        model: model_ref(ObjKind::Atomic),
                        inner: <$std>::new(v),
                    }
                }

                fn hook(&self, op: &'static str) {
                    if let Some((ctx, id)) = ctx_for(self.model) {
                        ctx.exec.request(ctx.tid, Op::Atomic(op, id));
                    }
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    self.hook("load");
                    self.inner.load(order)
                }

                pub fn store(&self, v: $prim, order: Ordering) {
                    self.hook("store");
                    self.inner.store(v, order)
                }

                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    self.hook("swap");
                    self.inner.swap(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.hook("cas");
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }

            impl fmt::Debug for $name {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
    }

    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

    impl AtomicUsize {
        pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
            self.hook("fetch_add");
            self.inner.fetch_add(v, order)
        }

        pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
            self.hook("fetch_sub");
            self.inner.fetch_sub(v, order)
        }
    }

    impl AtomicU64 {
        pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
            self.hook("fetch_add");
            self.inner.fetch_add(v, order)
        }

        pub fn fetch_sub(&self, v: u64, order: Ordering) -> u64 {
            self.hook("fetch_sub");
            self.inner.fetch_sub(v, order)
        }
    }

    impl AtomicBool {
        pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
            self.hook("fetch_or");
            self.inner.fetch_or(v, order)
        }

        pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
            self.hook("fetch_and");
            self.inner.fetch_and(v, order)
        }
    }
}
