//! The deterministic scheduler and its DFS schedule explorer.
//!
//! One *execution* (schedule) runs the model program on real OS threads,
//! but with exactly one thread unblocked at a time: every visible
//! operation first parks its thread in [`ExecState::request`], and the
//! scheduler — running on the thread that called [`crate::model`] —
//! grants one parked request per step. Which request it grants is the
//! only source of nondeterminism, so recording the sequence of choices
//! makes the execution replayable, and depth-first search over those
//! choice points enumerates the whole (preemption-bounded) schedule
//! space.

use crate::{Failure, FailureKind, MAX_MODEL_THREADS};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock,
};

pub(crate) type Tid = usize;

/// A visible operation a model thread asks the scheduler to grant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// First yield of every model thread, before it runs user code.
    Start,
    /// Acquire model mutex `m`. Granted only while the mutex is free.
    Lock(usize),
    /// Atomically release `mutex` and sleep on `cv` (the release is the
    /// granted step; the wakeup arrives via [`Op::Notify`]).
    CondWait { cv: usize, mutex: usize },
    /// Wake one (FIFO) or all waiters of `cv`; woken threads move to
    /// [`Op::Lock`] on their released mutex.
    Notify { cv: usize, all: bool },
    /// One sequentially-consistent atomic access (op name, object id).
    Atomic(&'static str, usize),
    /// Join model thread `t`. Granted only once `t` finished.
    Join(Tid),
}

impl Op {
    fn describe(&self) -> String {
        match self {
            Op::Start => "start".to_string(),
            Op::Lock(m) => format!("lock(m{m})"),
            Op::CondWait { cv, mutex } => format!("wait(cv{cv}) releasing m{mutex}"),
            Op::Notify { cv, all: true } => format!("notify_all(cv{cv})"),
            Op::Notify { cv, all: false } => format!("notify_one(cv{cv})"),
            Op::Atomic(name, id) => format!("{name}(a{id})"),
            Op::Join(t) => format!("join(t{t})"),
        }
    }
}

#[derive(Debug)]
enum Status {
    /// OS thread spawned but not yet parked at its first yield.
    Starting,
    /// Parked at a yield point, waiting for the scheduler to grant `Op`.
    Requesting(Op),
    /// Granted: executing user code up to its next yield point.
    Running,
    /// Released its mutex inside a condvar wait; wakes via Notify.
    CondWaiting {
        cv: usize,
        mutex: usize,
        seq: u64,
    },
    Finished,
}

/// Kinds of model objects (ids are per-kind and per-execution).
#[derive(Clone, Copy, Debug)]
pub(crate) enum ObjKind {
    Mutex,
    Condvar,
    Atomic,
}

/// Panic payload used to unwind model threads when a failing schedule
/// aborts the execution; recognized (and swallowed) by the thread
/// wrappers.
pub(crate) struct Abort;

#[derive(Default)]
struct Sched {
    threads: Vec<Status>,
    mutex_owner: Vec<Option<Tid>>,
    n_cvs: usize,
    n_atomics: usize,
    wait_seq: u64,
    abort: bool,
    failure: Option<Failure>,
    trace: Vec<String>,
    steps: usize,
    last_chosen: Option<Tid>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// Shared state of one execution: the scheduler and every model thread
/// rendezvous through this lock + condvar pair.
pub(crate) struct ExecState {
    /// Distinguishes executions so model objects created in one cannot
    /// silently route a different one (they fall back to std behaviour).
    pub(crate) id: u64,
    m: StdMutex<Sched>,
    cv: StdCondvar,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static MODEL_THREAD: Cell<bool> = const { Cell::new(false) };
}

/// A model thread's identity: which execution it belongs to and its tid.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<ExecState>,
    pub(crate) tid: Tid,
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(exec: &Arc<ExecState>, tid: Tid) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: Arc::clone(exec),
            tid,
        })
    });
    MODEL_THREAD.with(|f| f.set(true));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
    MODEL_THREAD.with(|f| f.set(false));
}

/// Model-thread panics are reported through [`Failure`] traces; the
/// default hook's stderr backtrace for every *explored* failing schedule
/// (mutation tests explore thousands) would drown test output, so a
/// process-wide filter silences the hook on model threads only.
pub(crate) fn install_quiet_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !MODEL_THREAD.with(|f| f.get()) {
                prev(info)
            }
        }));
    });
}

pub(crate) fn panic_msg(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl ExecState {
    /// The scheduler lock. Internal poison is impossible by construction
    /// (no user code runs under it), but shrug it off anyway: a poisoned
    /// scheduler must still be able to abort and drain its threads.
    fn locked(&self) -> StdMutexGuard<'_, Sched> {
        self.m.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub(crate) fn register_object(&self, kind: ObjKind) -> usize {
        let mut s = self.locked();
        match kind {
            ObjKind::Mutex => {
                s.mutex_owner.push(None);
                s.mutex_owner.len() - 1
            }
            ObjKind::Condvar => {
                s.n_cvs += 1;
                s.n_cvs - 1
            }
            ObjKind::Atomic => {
                s.n_atomics += 1;
                s.n_atomics - 1
            }
        }
    }

    pub(crate) fn register_thread(&self) -> Tid {
        let mut s = self.locked();
        let tid = s.threads.len();
        if tid >= MAX_MODEL_THREADS {
            drop(s);
            panic!("model exceeds MAX_MODEL_THREADS ({MAX_MODEL_THREADS}) live threads");
        }
        s.threads.push(Status::Starting);
        tid
    }

    pub(crate) fn add_os_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.locked().os_handles.push(handle);
    }

    /// Park at a yield point until the scheduler grants `op`. Panics with
    /// [`Abort`] when the execution is being torn down.
    pub(crate) fn request(&self, tid: Tid, op: Op) {
        let mut s = self.locked();
        if s.abort {
            drop(s);
            std::panic::panic_any(Abort);
        }
        s.threads[tid] = Status::Requesting(op);
        self.cv.notify_all();
        loop {
            if s.abort {
                drop(s);
                std::panic::panic_any(Abort);
            }
            if matches!(s.threads[tid], Status::Running) {
                return;
            }
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Release model mutex `mid`. Not a yield point: the thread keeps its
    /// grant and runs on to its next visible operation (any interleaving
    /// lost by not switching here is reachable at that next yield, since
    /// the code in between touches no model-visible state).
    pub(crate) fn unlock(&self, tid: Tid, mid: usize) {
        let mut s = self.locked();
        debug_assert_eq!(s.mutex_owner[mid], Some(tid), "unlock by non-owner");
        s.mutex_owner[mid] = None;
        s.trace.push(format!("t{tid} unlock(m{mid})"));
        self.cv.notify_all();
    }

    pub(crate) fn finish_ok(&self, tid: Tid) {
        let mut s = self.locked();
        s.trace.push(format!("t{tid} finished"));
        s.threads[tid] = Status::Finished;
        self.cv.notify_all();
    }

    pub(crate) fn finish_abort(&self, tid: Tid) {
        let mut s = self.locked();
        s.threads[tid] = Status::Finished;
        self.cv.notify_all();
    }

    pub(crate) fn finish_panicked(&self, tid: Tid, msg: String) {
        let mut s = self.locked();
        if s.failure.is_none() {
            s.trace.push(format!("t{tid} panicked: {msg}"));
            s.failure = Some(Failure {
                kind: FailureKind::Panic(msg),
                trace: s.trace.clone(),
            });
        }
        s.abort = true;
        s.threads[tid] = Status::Finished;
        self.cv.notify_all();
    }
}

/// One scheduling decision on the DFS stack.
struct Decision {
    /// Grantable tids, default-first ([0] extends the current thread when
    /// it can continue — the preemption-free choice).
    candidates: Vec<Tid>,
    /// Which candidate the current branch takes.
    idx: usize,
    /// Preemptions consumed by the stack prefix before this decision.
    preemptions_before: usize,
    /// Whether the previously-running thread was grantable here — if so,
    /// every non-default candidate costs one preemption.
    prev_enabled: bool,
}

/// Depth-first enumerator over scheduling decisions, with a preemption
/// bound à la CHESS: the default branch always extends the running
/// thread when possible (zero preemptions), and alternatives that switch
/// away from a runnable thread are explored only while the budget lasts.
pub(crate) struct Explorer {
    bound: usize,
    stack: Vec<Decision>,
    depth: usize,
    preemptions: usize,
}

impl Explorer {
    pub(crate) fn new(bound: usize) -> Explorer {
        Explorer {
            bound,
            stack: Vec::new(),
            depth: 0,
            preemptions: 0,
        }
    }

    fn begin_execution(&mut self) {
        self.depth = 0;
        self.preemptions = 0;
    }

    /// Choose among `enabled` (ascending tids): replay the recorded
    /// branch below the stack frontier, extend with the default choice
    /// beyond it.
    fn pick(&mut self, enabled: Vec<Tid>, last: Option<Tid>) -> Result<Tid, String> {
        let mut ordered = enabled;
        let prev_enabled = last.is_some_and(|l| ordered.contains(&l));
        if let Some(l) = last {
            if let Some(pos) = ordered.iter().position(|&t| t == l) {
                ordered.remove(pos);
                ordered.insert(0, l);
            }
        }
        let chosen = if self.depth < self.stack.len() {
            let d = &self.stack[self.depth];
            if d.candidates != ordered {
                return Err(format!(
                    "decision {}: recorded candidates {:?}, replay saw {:?}",
                    self.depth, d.candidates, ordered
                ));
            }
            if d.idx > 0 && d.prev_enabled {
                self.preemptions += 1;
            }
            d.candidates[d.idx]
        } else {
            self.stack.push(Decision {
                candidates: ordered.clone(),
                idx: 0,
                preemptions_before: self.preemptions,
                prev_enabled,
            });
            ordered[0]
        };
        self.depth += 1;
        Ok(chosen)
    }

    /// Move to the next unexplored branch; false when the space is
    /// exhausted.
    pub(crate) fn advance(&mut self) -> bool {
        // Decisions beyond the depth actually reached belong to a longer
        // sibling branch that no longer exists.
        self.stack.truncate(self.depth);
        loop {
            let Some(d) = self.stack.last_mut() else {
                return false;
            };
            let next = d.idx + 1;
            // A non-default candidate is a preemption exactly when the
            // default extended a still-runnable thread.
            if next < d.candidates.len() && (!d.prev_enabled || d.preemptions_before < self.bound) {
                d.idx = next;
                self.begin_execution();
                return true;
            }
            self.stack.pop();
        }
    }
}

/// Run one execution of `f` under the explorer's current branch.
/// Returns the failure if this schedule failed.
pub(crate) fn run_one<F>(f: Arc<F>, explorer: &mut Explorer, max_steps: usize) -> Option<Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    explorer.begin_execution();
    static EXEC_IDS: AtomicU64 = AtomicU64::new(1);
    let exec = Arc::new(ExecState {
        id: EXEC_IDS.fetch_add(1, Ordering::Relaxed),
        m: StdMutex::new(Sched::default()),
        cv: StdCondvar::new(),
    });
    let tid0 = exec.register_thread();
    let exec_thread = Arc::clone(&exec);
    let h0 = std::thread::Builder::new()
        .name("model-t0".to_string())
        .spawn(move || {
            set_ctx(&exec_thread, tid0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                exec_thread.request(tid0, Op::Start);
                f();
            }));
            clear_ctx();
            match result {
                Ok(()) => exec_thread.finish_ok(tid0),
                Err(p) if p.is::<Abort>() => exec_thread.finish_abort(tid0),
                Err(p) => exec_thread.finish_panicked(tid0, panic_msg(&*p)),
            }
        })
        .expect("spawn model main thread");
    exec.add_os_handle(h0);

    let failure = scheduler(&exec, explorer, max_steps);

    // Every model OS thread must be gone before the next execution
    // starts, or a straggler could observe freshly-registered state.
    let handles = std::mem::take(&mut exec.locked().os_handles);
    for h in handles {
        let _ = h.join();
    }
    failure
}

/// The per-execution scheduler loop. Returns the failure recorded for
/// this schedule, if any.
fn scheduler(exec: &Arc<ExecState>, explorer: &mut Explorer, max_steps: usize) -> Option<Failure> {
    let mut s = exec.locked();
    loop {
        // Wait for quiescence: nobody running, nobody mid-startup.
        if s.threads
            .iter()
            .any(|t| matches!(t, Status::Starting | Status::Running))
        {
            s = exec
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            continue;
        }
        if s.abort {
            // Tear down: every wake-up of a parked thread turns into an
            // Abort unwind; loop until they have all finished.
            exec.cv.notify_all();
            while s.threads.iter().any(|t| !matches!(t, Status::Finished)) {
                s = exec
                    .cv
                    .wait(s)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                exec.cv.notify_all();
            }
            return s.failure.clone();
        }
        if s.threads.iter().all(|t| matches!(t, Status::Finished)) {
            return s.failure.clone();
        }

        let enabled: Vec<Tid> = s
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, st)| match st {
                Status::Requesting(op) => match op {
                    Op::Lock(m) => s.mutex_owner[*m].is_none().then_some(i),
                    Op::Join(t) => matches!(s.threads[*t], Status::Finished).then_some(i),
                    _ => Some(i),
                },
                _ => None,
            })
            .collect();

        if enabled.is_empty() {
            // Quiescent, unfinished, nothing grantable: deadlock (or a
            // lost wakeup, which is the same thing observably).
            let stuck: Vec<String> = s
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, st)| match st {
                    Status::Requesting(op) => Some(format!("t{i} blocked on {}", op.describe())),
                    Status::CondWaiting { cv, .. } => {
                        Some(format!("t{i} waiting on cv{cv} (never notified)"))
                    }
                    _ => None,
                })
                .collect();
            s.failure = Some(Failure {
                kind: FailureKind::Deadlock(stuck.join("; ")),
                trace: s.trace.clone(),
            });
            s.abort = true;
            continue;
        }
        if s.steps >= max_steps {
            s.failure = Some(Failure {
                kind: FailureKind::StepBudget,
                trace: s.trace.clone(),
            });
            s.abort = true;
            continue;
        }

        let chosen = match explorer.pick(enabled, s.last_chosen) {
            Ok(t) => t,
            Err(msg) => {
                s.failure = Some(Failure {
                    kind: FailureKind::Nondeterminism(msg),
                    trace: s.trace.clone(),
                });
                s.abort = true;
                continue;
            }
        };
        s.steps += 1;
        s.last_chosen = Some(chosen);
        let Status::Requesting(op) = &s.threads[chosen] else {
            unreachable!("picked thread must be requesting");
        };
        let op = op.clone();
        s.trace.push(format!("t{chosen} {}", op.describe()));
        match op {
            Op::Lock(m) => {
                s.mutex_owner[m] = Some(chosen);
                s.threads[chosen] = Status::Running;
            }
            Op::CondWait { cv, mutex } => {
                debug_assert_eq!(s.mutex_owner[mutex], Some(chosen));
                s.mutex_owner[mutex] = None;
                let seq = s.wait_seq;
                s.wait_seq += 1;
                s.threads[chosen] = Status::CondWaiting { cv, mutex, seq };
                // Not Running: the release was the granted step; the
                // thread stays parked until a Notify re-arms it.
            }
            Op::Notify { cv, all } => {
                let mut waiters: Vec<(u64, Tid, usize)> = s
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, st)| match st {
                        Status::CondWaiting { cv: c, mutex, seq } if *c == cv => {
                            Some((*seq, i, *mutex))
                        }
                        _ => None,
                    })
                    .collect();
                waiters.sort_unstable();
                let take = if all {
                    waiters.len()
                } else {
                    waiters.len().min(1)
                };
                for &(_, t, mutex) in waiters.iter().take(take) {
                    s.threads[t] = Status::Requesting(Op::Lock(mutex));
                    s.trace.push(format!("t{t} woken, reacquiring m{mutex}"));
                }
                s.threads[chosen] = Status::Running;
            }
            Op::Start | Op::Atomic(..) | Op::Join(_) => {
                s.threads[chosen] = Status::Running;
            }
        }
        exec.cv.notify_all();
    }
}
