//! The paper's Table 3 sources and the Q1/Q4 experiment setups.
//!
//! Table 3 (paper §4): "Index lookups are implemented as sleeps of
//! identical duration."
//!
//! * **R** `(key, a)` — 1000 tuples, scan AM; `a` has 250 distinct values
//!   randomly assigned (exactly four rows per value, shuffled).
//! * **S** `(x, y)` — asynchronous index AMs on both x and y; x = y per
//!   tuple. One row per distinct `R.a` value, so Q1 yields 1000 results.
//! * **T** `(key)` — async index AM on `key` **and** a scan AM.
//!
//! Rates/latencies are chosen so the virtual-time curves land where the
//! paper's wall-clock curves do: Q1 runs ≈ 400 s dominated by 250
//! serialized index lookups (fig 7); in Q4 the R scan finishes ≈ 59 s and
//! the hash join wins overall (fig 8, incl. footnote 6).

use crate::gen::{ColGen, TableBuilder};
use stems_catalog::{Catalog, IndexSpec, QuerySpec, ScanSpec, SourceId, TableDef, TableInstance};
use stems_sim::secs_f;
use stems_types::{CmpOp, ColRef, ColumnType, PredId, Predicate, Result, Schema, TableIdx};

/// Sizing and timing knobs for the Table 3 reproduction.
#[derive(Debug, Clone)]
pub struct Table3Config {
    pub seed: u64,
    /// |R| and the number of distinct `R.a` values.
    pub r_rows: usize,
    pub r_distinct: usize,
    /// R scan rate for Q1 (fast local scan; the index dominates).
    pub q1_r_scan_tps: f64,
    /// S index lookup latency (the paper's "sleep"), seconds.
    pub s_index_latency_s: f64,
    /// |T|; T.key matches R.key 1:1 in Q4.
    pub t_rows: usize,
    /// Q4 rates: R scan ≈ 17 tps (1000 rows ≈ 59 s), T scan ≈ 7 tps.
    pub q4_r_scan_tps: f64,
    pub q4_t_scan_tps: f64,
    /// T index lookup latency, seconds.
    pub t_index_latency_s: f64,
}

impl Default for Table3Config {
    fn default() -> Self {
        Table3Config {
            seed: 2003,
            r_rows: 1000,
            r_distinct: 250,
            q1_r_scan_tps: 50.0,
            s_index_latency_s: 1.6,
            t_rows: 1000,
            q4_r_scan_tps: 17.0,
            q4_t_scan_tps: 7.0,
            t_index_latency_s: 0.18,
        }
    }
}

/// Materialized Table 3 catalogs and queries.
pub struct Table3;

impl Table3 {
    /// Build R per Table 3 (serial key + shuffled `a` with `r_distinct`
    /// values).
    pub fn r_table(cfg: &Table3Config) -> TableDef {
        TableBuilder::new("R", cfg.r_rows, cfg.seed)
            .col("a", ColGen::ModShuffled(cfg.r_distinct as i64))
            .build()
    }

    /// Build S: one row per distinct `a` value, x = y (Table 3: "All
    /// tuples have identical values of x and y").
    pub fn s_table(cfg: &Table3Config) -> TableDef {
        let rows = (0..cfg.r_distinct as i64)
            .map(|v| vec![v.into(), v.into()])
            .collect();
        TableDef::new(
            "S",
            Schema::of(&[("x", ColumnType::Int), ("y", ColumnType::Int)]),
        )
        .with_rows(rows)
    }

    /// Build T: `t_rows` single-column key rows, in shuffled order — the
    /// scan "outputs all T tuples in an arbitrary order" (paper §4.3),
    /// which is what makes the hash join's early output quadratic: "only
    /// some of the R probes find matches in the tuples scanned from T".
    pub fn t_table(cfg: &Table3Config) -> TableDef {
        let mut keys: Vec<i64> = (0..cfg.t_rows as i64).collect();
        let mut rng = stems_sim::SimRng::new(cfg.seed ^ 0x7A11);
        rng.shuffle(&mut keys);
        let rows = keys.into_iter().map(|k| vec![k.into()]).collect();
        TableDef::new("T", Schema::of(&[("key", ColumnType::Int)])).with_rows(rows)
    }

    /// Q1: `SELECT * FROM R, S WHERE R.a = S.x` — R by scan, S only by
    /// asynchronous index AMs (on both x and y; only x is usable here).
    pub fn q1(cfg: &Table3Config) -> Result<(Catalog, QuerySpec, SourceId, SourceId)> {
        let mut c = Catalog::new();
        let r = c.add_table(Self::r_table(cfg))?;
        let s = c.add_table(Self::s_table(cfg))?;
        c.add_scan(r, ScanSpec::with_rate(cfg.q1_r_scan_tps))?;
        c.add_index(s, IndexSpec::new(vec![0], secs_f(cfg.s_index_latency_s)))?;
        c.add_index(s, IndexSpec::new(vec![1], secs_f(cfg.s_index_latency_s)))?;
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "R".into(),
                },
                TableInstance {
                    source: s,
                    alias: "S".into(),
                },
            ],
            vec![Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 1),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            )],
            None,
        )?;
        Ok((c, q, r, s))
    }

    /// Q4: `SELECT * FROM R, T WHERE R.key = T.key` — R by scan; T by
    /// **both** a scan and an index on key (the hybridization setup).
    pub fn q4(cfg: &Table3Config) -> Result<(Catalog, QuerySpec, SourceId, SourceId)> {
        let mut c = Catalog::new();
        let r = c.add_table(Self::r_table(cfg))?;
        let t = c.add_table(Self::t_table(cfg))?;
        c.add_scan(r, ScanSpec::with_rate(cfg.q4_r_scan_tps))?;
        c.add_scan(t, ScanSpec::with_rate(cfg.q4_t_scan_tps))?;
        c.add_index(t, IndexSpec::new(vec![0], secs_f(cfg.t_index_latency_s)))?;
        let q = QuerySpec::new(
            &c,
            vec![
                TableInstance {
                    source: r,
                    alias: "R".into(),
                },
                TableInstance {
                    source: t,
                    alias: "T".into(),
                },
            ],
            vec![Predicate::join(
                PredId(0),
                ColRef::new(TableIdx(0), 0),
                CmpOp::Eq,
                ColRef::new(TableIdx(1), 0),
            )],
            None,
        )?;
        Ok((c, q, r, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_catalog::reference;
    use stems_types::Value;

    fn small() -> Table3Config {
        Table3Config {
            r_rows: 100,
            r_distinct: 25,
            t_rows: 100,
            ..Table3Config::default()
        }
    }

    #[test]
    fn r_has_exact_distinct_counts() {
        let cfg = Table3Config::default();
        let r = Table3::r_table(&cfg);
        assert_eq!(r.num_rows(), 1000);
        let mut counts = std::collections::HashMap::new();
        for row in r.rows() {
            *counts.entry(row.get(1).cloned().unwrap()).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 250);
        assert!(counts.values().all(|c| *c == 4));
    }

    #[test]
    fn r_assignment_is_shuffled() {
        let cfg = Table3Config::default();
        let r = Table3::r_table(&cfg);
        // Not the plain cyclic pattern: some prefix repeats a value.
        let first_100: Vec<_> = r.rows()[..100]
            .iter()
            .map(|row| row.get(1).cloned().unwrap())
            .collect();
        let distinct: std::collections::HashSet<_> = first_100.iter().cloned().collect();
        assert!(
            distinct.len() < 100,
            "first 100 rows all distinct — unshuffled?"
        );
    }

    #[test]
    fn s_rows_have_x_equal_y() {
        let cfg = small();
        let s = Table3::s_table(&cfg);
        assert_eq!(s.num_rows(), 25);
        for row in s.rows() {
            assert_eq!(row.get(0), row.get(1));
        }
    }

    #[test]
    fn q1_yields_one_result_per_r_row() {
        let cfg = small();
        let (c, q, _, _) = Table3::q1(&cfg).unwrap();
        let res = reference::execute(&c, &q);
        assert_eq!(res.len(), cfg.r_rows);
    }

    #[test]
    fn q4_is_one_to_one() {
        let cfg = small();
        let (c, q, _, _) = Table3::q4(&cfg).unwrap();
        let res = reference::execute(&c, &q);
        assert_eq!(res.len(), cfg.r_rows.min(cfg.t_rows));
        // Every result has matching keys.
        for t in &res {
            assert_eq!(
                t.value(TableIdx(0), 0).cloned(),
                t.value(TableIdx(1), 0).cloned()
            );
        }
    }

    #[test]
    fn q1_feasible_despite_index_only_s() {
        let cfg = small();
        let (c, q, _, _) = Table3::q1(&cfg).unwrap();
        assert!(stems_catalog::feasible::check(&c, &q).is_ok());
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Table3::r_table(&Table3Config::default());
        let b = Table3::r_table(&Table3Config::default());
        assert_eq!(
            a.rows().first().map(|r| r.values().to_vec()),
            b.rows().first().map(|r| r.values().to_vec())
        );
        let c = Table3::r_table(&Table3Config {
            seed: 7,
            ..Table3Config::default()
        });
        assert_ne!(
            a.rows()
                .iter()
                .map(|r| r.get(1).cloned().unwrap())
                .collect::<Vec<_>>(),
            c.rows()
                .iter()
                .map(|r| r.get(1).cloned().unwrap())
                .collect::<Vec<_>>()
        );
        let _ = Value::Int(0);
    }
}
