//! Synthetic data sources and workload generators.
//!
//! The paper controls its experiments with synthetic sources (Table 3):
//!
//! | Source | Schema | Description |
//! |--------|--------|-------------|
//! | R | key:int, a:int | 1000 tuples, scan AM; `key` primary, `a` has 250 distinct values, randomly assigned |
//! | S | x:int, y:int | two keys x and y, asynchronous index AMs on both |
//! | T | key:int | async index AM on `key` + scan AM |
//!
//! [`table3`] reproduces exactly those sources (sized and seeded
//! configurably); [`gen`] provides the general-purpose builders the tests
//! and extra experiments use (uniform/zipf key columns, unique serial
//! keys). Rows within one table are always distinct (the engine's SteMs
//! use set semantics, §3.2, so workloads are duplicate-free by
//! construction; competition experiments create duplicates by *mirroring
//! AMs*, not by duplicating rows).

pub mod gen;
pub mod table3;

pub use gen::{zipf_values, TableBuilder};
pub use table3::{Table3, Table3Config};
