//! General-purpose table builders.

use stems_catalog::{Catalog, SourceId, TableDef};
use stems_sim::SimRng;
use stems_types::{Column, ColumnType, Result, Schema, Value};

/// Builder for a synthetic table: a unique serial `key` column plus any
/// number of generated attribute columns.
///
/// The serial key guarantees row distinctness, keeping multiset semantics
/// aligned between the set-semantics SteMs and the reference executor.
pub struct TableBuilder {
    name: String,
    rows: usize,
    columns: Vec<(String, ColGen)>,
    rng: SimRng,
}

/// How an attribute column is generated.
#[derive(Debug, Clone)]
pub enum ColGen {
    /// `key % n` — evenly distributed, deterministic (the paper's "250
    /// distinct values" columns are uniform like this).
    Mod(i64),
    /// `key % n`, then shuffled across rows: exactly `n` distinct values
    /// with equal frequencies, in random row order — Table 3's "250
    /// distinct values, randomly assigned".
    ModShuffled(i64),
    /// Uniform random in `[lo, hi]`.
    Uniform(i64, i64),
    /// Zipf-distributed over `n` distinct values with exponent `theta`.
    Zipf { n: usize, theta: f64 },
    /// The row's serial number itself (secondary unique key).
    Serial,
    /// A random permutation of `0..rows` (unique, shuffled — the paper's
    /// "randomly assigned" key columns).
    Permutation,
    /// `(key % n) / 2.0` as a `Float` column — `n` distinct values, half
    /// of them non-integral (typed-lane kernel workloads).
    FloatMod(i64),
    /// `"s<key % n>"` as a `Str` column — `n` distinct interned strings.
    StrMod(i64),
    /// The wrapped generator, except every `every`-th row (1-based) is
    /// NULL — exception rows for the partial-gather kernels.
    WithNulls { gen: Box<ColGen>, every: u64 },
}

impl ColGen {
    /// Shorthand for [`ColGen::WithNulls`].
    pub fn with_nulls(self, every: u64) -> ColGen {
        ColGen::WithNulls {
            gen: Box::new(self),
            every: every.max(1),
        }
    }

    /// The generator behind any `WithNulls` wrapper.
    fn unwrapped(&self) -> &ColGen {
        match self {
            ColGen::WithNulls { gen, .. } => gen.unwrapped(),
            g => g,
        }
    }

    /// The schema type of the generated column.
    fn col_type(&self) -> ColumnType {
        match self.unwrapped() {
            ColGen::FloatMod(_) => ColumnType::Float,
            ColGen::StrMod(_) => ColumnType::Str,
            _ => ColumnType::Int,
        }
    }
}

/// Generate one value. `perms`/`zipfs` are the per-column precomputed
/// tables (keyed by top-level column index `ci`).
fn gen_value(
    g: &ColGen,
    k: i64,
    ci: usize,
    rng: &mut SimRng,
    perms: &[Vec<i64>],
    zipfs: &[Option<ZipfSampler>],
) -> Value {
    match g {
        ColGen::Mod(n) => Value::Int(k % n.max(&1)),
        ColGen::Uniform(lo, hi) => Value::Int(rng.range_inclusive(*lo, *hi)),
        ColGen::Zipf { .. } => Value::Int(
            zipfs[ci]
                .as_ref()
                .expect("sampler precomputed for Zipf column")
                .sample(rng),
        ),
        ColGen::Serial => Value::Int(k),
        ColGen::Permutation | ColGen::ModShuffled(_) => Value::Int(perms[ci][k as usize]),
        ColGen::FloatMod(n) => Value::Float((k % n.max(&1)) as f64 / 2.0),
        ColGen::StrMod(n) => Value::str(&format!("s{}", k % n.max(&1))),
        ColGen::WithNulls { gen, every } => {
            if (k as u64 + 1).is_multiple_of(*every.max(&1)) {
                Value::Null
            } else {
                gen_value(gen, k, ci, rng, perms, zipfs)
            }
        }
    }
}

impl TableBuilder {
    pub fn new(name: &str, rows: usize, seed: u64) -> TableBuilder {
        TableBuilder {
            name: name.to_string(),
            rows,
            columns: Vec::new(),
            rng: SimRng::new(seed),
        }
    }

    /// Add a generated attribute column.
    pub fn col(mut self, name: &str, gen: ColGen) -> TableBuilder {
        self.columns.push((name.to_string(), gen));
        self
    }

    /// Materialize the table definition (schema: `key` + attribute cols,
    /// each typed after its generator).
    pub fn build(mut self) -> TableDef {
        let mut cols = vec![Column::new("key", ColumnType::Int)];
        for (name, g) in &self.columns {
            cols.push(Column::new(name, g.col_type()));
        }
        let schema = Schema::new(cols).expect("generated schema is valid");

        // Pre-compute permutation / shuffled-mod columns (also behind any
        // `WithNulls` wrapper).
        let mut perms: Vec<Vec<i64>> = Vec::new();
        for (_, g) in &self.columns {
            match g.unwrapped() {
                ColGen::Permutation => {
                    let mut p: Vec<i64> = (0..self.rows as i64).collect();
                    self.rng.shuffle(&mut p);
                    perms.push(p);
                }
                ColGen::ModShuffled(n) => {
                    let mut p: Vec<i64> = (0..self.rows as i64).map(|k| k % n.max(&1)).collect();
                    self.rng.shuffle(&mut p);
                    perms.push(p);
                }
                _ => perms.push(Vec::new()),
            }
        }
        let zipf_tables: Vec<Option<ZipfSampler>> = self
            .columns
            .iter()
            .map(|(_, g)| match g.unwrapped() {
                ColGen::Zipf { n, theta } => Some(ZipfSampler::new(*n, *theta)),
                _ => None,
            })
            .collect();

        let mut rows = Vec::with_capacity(self.rows);
        for k in 0..self.rows as i64 {
            let mut vals = vec![Value::Int(k)];
            for (ci, (_, g)) in self.columns.iter().enumerate() {
                vals.push(gen_value(g, k, ci, &mut self.rng, &perms, &zipf_tables));
            }
            rows.push(vals);
        }
        TableDef::new(&self.name, schema).with_rows(rows)
    }

    /// Build and register in a catalog.
    pub fn register(self, catalog: &mut Catalog) -> Result<SourceId> {
        catalog.add_table(self.build())
    }
}

/// Inverse-CDF Zipf sampler over `0..n`.
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, theta: f64) -> ZipfSampler {
        let n = n.max(1);
        let mut weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        ZipfSampler { cdf: weights }
    }

    fn sample(&self, rng: &mut SimRng) -> i64 {
        let u = rng.unit();
        self.cdf.partition_point(|c| *c < u) as i64
    }
}

/// Standalone helper: `count` zipf-distributed values over `n` distinct
/// outcomes (used by workload sweeps).
pub fn zipf_values(count: usize, n: usize, theta: f64, seed: u64) -> Vec<i64> {
    let sampler = ZipfSampler::new(n, theta);
    let mut rng = SimRng::new(seed);
    (0..count).map(|_| sampler.sample(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_keys_are_unique_and_ordered() {
        let t = TableBuilder::new("t", 100, 1)
            .col("a", ColGen::Mod(7))
            .build();
        assert_eq!(t.num_rows(), 100);
        for (i, r) in t.rows().iter().enumerate() {
            assert_eq!(r.get(0), Some(&Value::Int(i as i64)));
        }
    }

    #[test]
    fn mod_column_has_exactly_n_distinct() {
        let t = TableBuilder::new("t", 1000, 1)
            .col("a", ColGen::Mod(250))
            .build();
        let distinct: std::collections::HashSet<_> = t
            .rows()
            .iter()
            .map(|r| r.get(1).cloned().unwrap())
            .collect();
        assert_eq!(distinct.len(), 250);
    }

    #[test]
    fn permutation_column_is_a_bijection() {
        let t = TableBuilder::new("t", 64, 3)
            .col("p", ColGen::Permutation)
            .build();
        let mut vals: Vec<i64> = t
            .rows()
            .iter()
            .map(|r| match r.get(1) {
                Some(Value::Int(v)) => *v,
                _ => panic!(),
            })
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn typed_columns_and_nulls() {
        let t = TableBuilder::new("t", 30, 9)
            .col("f", ColGen::FloatMod(4))
            .col("s", ColGen::StrMod(3))
            .col("n", ColGen::Mod(5).with_nulls(3))
            .build();
        assert_eq!(t.schema.columns()[1].ty, ColumnType::Float);
        assert_eq!(t.schema.columns()[2].ty, ColumnType::Str);
        assert_eq!(t.schema.columns()[3].ty, ColumnType::Int);
        let mut nulls = 0;
        for (k, r) in t.rows().iter().enumerate() {
            match r.get(1) {
                Some(Value::Float(f)) => assert_eq!(*f, (k as i64 % 4) as f64 / 2.0),
                other => panic!("expected float, got {other:?}"),
            }
            match r.get(2) {
                Some(Value::Str(s)) => assert_eq!(**s, *format!("s{}", k % 3)),
                other => panic!("expected str, got {other:?}"),
            }
            match r.get(3) {
                Some(Value::Null) => {
                    nulls += 1;
                    assert_eq!((k + 1) % 3, 0, "NULL cadence");
                }
                Some(Value::Int(v)) => assert_eq!(*v, k as i64 % 5),
                other => panic!("expected int/null, got {other:?}"),
            }
        }
        assert_eq!(nulls, 10);
    }

    #[test]
    fn uniform_in_bounds() {
        let t = TableBuilder::new("t", 500, 5)
            .col("u", ColGen::Uniform(-3, 3))
            .build();
        for r in t.rows() {
            match r.get(1) {
                Some(Value::Int(v)) => assert!((-3..=3).contains(v)),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn zipf_is_skewed_toward_small_values() {
        let vals = zipf_values(10_000, 100, 1.2, 7);
        let zeros = vals.iter().filter(|v| **v == 0).count();
        let nineties = vals.iter().filter(|v| **v >= 90).count();
        assert!(zeros > 1_000, "zipf head too light: {zeros}");
        assert!(zeros > nineties * 5);
        assert!(vals.iter().all(|v| (0..100).contains(v)));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = TableBuilder::new("t", 50, 9)
            .col("u", ColGen::Uniform(0, 1000))
            .build();
        let b = TableBuilder::new("t", 50, 9)
            .col("u", ColGen::Uniform(0, 1000))
            .build();
        assert_eq!(
            a.rows()
                .iter()
                .map(|r| r.values().to_vec())
                .collect::<Vec<_>>(),
            b.rows()
                .iter()
                .map(|r| r.values().to_vec())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn register_adds_to_catalog() {
        let mut c = Catalog::new();
        let id = TableBuilder::new("t", 10, 1)
            .col("a", ColGen::Serial)
            .register(&mut c)
            .unwrap();
        assert_eq!(c.table(id).unwrap().num_rows(), 10);
    }
}
