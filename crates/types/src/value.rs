//! Dynamically typed scalar values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A scalar value stored in a row.
///
/// `Value` is the unit of data the whole system moves around. Two variants
/// deserve comment:
///
/// * [`Value::Eot`] is the special End-Of-Transmission marker the paper puts
///   in the *non-bound* fields of an EOT tuple (§2.1.3): "the EOT tuple is a
///   regular tuple with a special EOT value in all the non-bound fields".
///   `Eot` never compares equal to a data value, so EOT tuples can be stored
///   in SteMs "alongside standard tuples" without polluting join results.
/// * [`Value::Float`] wraps an `f64` by bit pattern for `Eq`/`Hash`, which
///   lets floats participate in hash indexes. `NaN` equals itself under this
///   scheme (total order by bits), which is the standard dictionary-key
///   compromise.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Never equal to anything under [`Value::sql_eq`], including
    /// itself, but equal to itself for dictionary purposes (`Eq`/`Hash`).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float, compared by bit pattern for dictionary purposes.
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// End-Of-Transmission marker (paper §2.1.3).
    Eot,
}

impl Value {
    /// Build a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// True if this value is the EOT marker.
    pub fn is_eot(&self) -> bool {
        matches!(self, Value::Eot)
    }

    /// True if this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL equality: `NULL = x` is never true, and the EOT marker matches
    /// nothing. Values of different types are unequal (no coercion).
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Eot, _) | (_, Value::Eot) => false,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }

    /// SQL ordering comparison. Returns `None` when the values are not
    /// comparable (NULLs, EOT markers, mixed non-numeric types).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Eot, _) | (_, Value::Eot) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// A stable total order used by sorted stores (sort-merge simulation).
    /// Orders first by type tag, then by value; NULL sorts first, EOT last.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Str(_) => 4,
                Value::Eot => 5,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => tag(self).cmp(&tag(other)),
        }
    }

    /// Normalize this value for use as an equality-dictionary key.
    ///
    /// Returns `None` for values that can never satisfy an SQL equality
    /// predicate (`NULL`, the EOT marker). Integral floats normalize to
    /// `Int` so that mixed `Int`/`Float` columns still find every match a
    /// scan-filter would under [`Value::sql_eq`]. This is the single
    /// source of truth for key normalization: `index_key` in
    /// `stems-storage` delegates here, and [`Value::stable_key_hash`]
    /// hashes exactly this normal form — the consistency invariant the
    /// hash-once probe pipeline (shard router → hash index) depends on.
    pub fn equality_key(&self) -> Option<Value> {
        match self {
            Value::Null | Value::Eot => None,
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Some(Value::Int(*f as i64)),
            other => Some(other.clone()),
        }
    }

    /// A stable 64-bit hash of this value *as an equality key*, used to
    /// route rows to SteM shards and to probe prehashed dictionary
    /// indexes without re-hashing. `None` marks values that can never
    /// satisfy an SQL equality predicate (NULL, the EOT marker) — sharded
    /// stores keep such rows in a dedicated overflow lane instead of a
    /// hash partition (mirroring `PartitionedStore`).
    ///
    /// The hash must agree with [`Value::equality_key`] normalization:
    /// any two values that can be `sql_eq` hash identically, so `Int(5)`
    /// and `Float(5.0)` land in the same shard and a partitioned equality
    /// lookup stays complete. The mixing is a fixed Fx-style
    /// multiply-rotate — deterministic across processes and machines, so
    /// shard layouts are reproducible.
    pub fn stable_key_hash(&self) -> Option<u64> {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        #[inline]
        fn mix(h: u64, w: u64) -> u64 {
            (h.rotate_left(5) ^ w).wrapping_mul(SEED)
        }
        match self {
            Value::Null | Value::Eot => None,
            // Integral floats normalize to Int, exactly like `index_key`.
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => {
                Value::Int(*f as i64).stable_key_hash()
            }
            Value::Bool(b) => Some(mix(mix(0, 1), *b as u64)),
            Value::Int(i) => Some(mix(mix(0, 2), *i as u64)),
            Value::Float(f) => Some(mix(mix(0, 3), f.to_bits())),
            Value::Str(s) => {
                let mut h = mix(0, 4);
                for chunk in s.as_bytes().chunks(8) {
                    let mut buf = [0u8; 8];
                    buf[..chunk.len()].copy_from_slice(chunk);
                    h = mix(h, u64::from_le_bytes(buf));
                }
                h = mix(h, s.len() as u64);
                Some(h)
            }
        }
    }

    /// Approximate heap footprint in bytes, used for SteM and memo-cache
    /// memory accounting.
    ///
    /// Convention for interned strings: every `Str` handle charges the
    /// full payload *plus* the `Arc<str>` allocation header (strong +
    /// weak refcounts), even when several handles share one allocation.
    /// Budgets therefore over-count shared strings rather than depending
    /// on sharing structure — the estimate for a value is a pure function
    /// of the value, so SteM and memo budgets agree on what a key costs
    /// no matter which of them interned it first.
    pub fn approx_bytes(&self) -> usize {
        // Two usize refcount slots precede the payload in an ArcInner.
        const ARC_HEADER: usize = 2 * std::mem::size_of::<usize>();
        std::mem::size_of::<Value>()
            + match self {
                Value::Str(s) => ARC_HEADER + s.len(),
                _ => 0,
            }
    }
}

impl PartialEq for Value {
    /// Dictionary equality (used by hash indexes and duplicate elimination):
    /// byte-level, so `Null == Null`, `Eot == Eot`, and floats compare by
    /// bits. Query predicates must use [`Value::sql_eq`] instead.
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Eot, Value::Eot) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Eot => 5u8.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Eot => write!(f, "EOT"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn sql_eq_null_never_matches() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
        assert!(!Value::Int(1).sql_eq(&Value::Null));
    }

    #[test]
    fn sql_eq_eot_never_matches() {
        assert!(!Value::Eot.sql_eq(&Value::Eot));
        assert!(!Value::Eot.sql_eq(&Value::Int(15)));
    }

    #[test]
    fn dictionary_eq_is_reflexive_for_null_and_eot() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Eot, Value::Eot);
        assert_ne!(Value::Null, Value::Eot);
    }

    #[test]
    fn numeric_coercion_in_sql_eq() {
        assert!(Value::Int(3).sql_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).sql_eq(&Value::Float(3.5)));
    }

    #[test]
    fn sql_cmp_orders_numbers_and_strings() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::str("b").sql_cmp(&Value::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(1).sql_cmp(&Value::str("a")), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(0)), None);
    }

    #[test]
    fn total_cmp_is_total_and_consistent() {
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Int(-5),
            Value::Float(2.5),
            Value::str("x"),
            Value::Eot,
        ];
        for a in &vals {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn float_hash_eq_by_bits() {
        assert_eq!(Value::Float(1.5), Value::Float(1.5));
        assert_eq!(h(&Value::Float(1.5)), h(&Value::Float(1.5)));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
    }

    #[test]
    fn hash_consistent_with_eq_for_ints_strings() {
        assert_eq!(h(&Value::Int(42)), h(&Value::Int(42)));
        assert_eq!(h(&Value::str("abc")), h(&Value::str("abc")));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Eot.to_string(), "EOT");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn approx_bytes_counts_string_payload() {
        assert!(Value::str("hello").approx_bytes() > Value::Int(1).approx_bytes());
    }

    #[test]
    fn approx_bytes_charges_arc_header_per_handle() {
        // The convention: each handle pays enum + Arc header + payload,
        // independent of how many handles share the allocation.
        let inline = std::mem::size_of::<Value>();
        let header = 2 * std::mem::size_of::<usize>();
        let a = Value::str("hello");
        let b = a.clone(); // shares the Arc<str> allocation
        assert_eq!(a.approx_bytes(), inline + header + 5);
        assert_eq!(b.approx_bytes(), a.approx_bytes());
        assert_eq!(Value::Int(1).approx_bytes(), inline);
        assert_eq!(Value::Null.approx_bytes(), inline);
    }

    #[test]
    fn stable_key_hash_unhashable_values() {
        assert_eq!(Value::Null.stable_key_hash(), None);
        assert_eq!(Value::Eot.stable_key_hash(), None);
    }

    #[test]
    fn stable_key_hash_agrees_with_sql_eq_coercion() {
        // Values that can compare sql_eq must co-locate in one shard.
        assert_eq!(
            Value::Int(5).stable_key_hash(),
            Value::Float(5.0).stable_key_hash()
        );
        assert_ne!(
            Value::Int(5).stable_key_hash(),
            Value::Float(5.5).stable_key_hash()
        );
        assert_eq!(
            Value::str("abc").stable_key_hash(),
            Value::str("abc").stable_key_hash()
        );
    }

    #[test]
    fn stable_key_hash_separates_types_and_values() {
        let vals = [
            Value::Int(0),
            Value::Int(1),
            Value::Bool(false),
            Value::Bool(true),
            Value::Float(0.5),
            Value::str(""),
            Value::str("a"),
            Value::str("aa"),
        ];
        let hashes: std::collections::HashSet<u64> =
            vals.iter().map(|v| v.stable_key_hash().unwrap()).collect();
        assert_eq!(hashes.len(), vals.len());
        // Small ints spread across 4 shards reasonably.
        let shards: std::collections::HashSet<u64> = (0..64i64)
            .map(|i| Value::Int(i).stable_key_hash().unwrap() % 4)
            .collect();
        assert_eq!(shards.len(), 4, "small ints must hit every shard");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
