//! Data model for the `stems` adaptive query processor.
//!
//! This crate defines the fundamental vocabulary shared by every other crate
//! in the workspace:
//!
//! * [`Value`] — a dynamically typed scalar, including the special
//!   [`Value::Eot`] marker used by End-Of-Transmission tuples (paper §2.1.3).
//! * [`Row`] — one base-table row (a boxed slice of values).
//! * [`Tuple`] — a (possibly composite) tuple made of *base-table
//!   components* (paper Definition 1), together with its *span* and the
//!   build [`Timestamp`] of each component.
//! * [`TupleBatch`] — an ordered batch of tuples moving through the
//!   dataflow as one unit (the batched engine path).
//! * [`Predicate`] / [`Operand`] — the select-project-join predicate
//!   language (comparisons and IN-lists), evaluable over partial tuples,
//!   with column-at-a-time batch kernels over a typed partial gather
//!   ([`Predicate::eval_batch`], [`ConstKernel`], [`PartialGather`]).
//! * [`Schema`] — column names and types of a table.
//!
//! The terminology follows the paper: a tuple *spans* the set of base tables
//! whose components it carries; a *singleton* tuple has exactly one
//! component (Definition 2).

mod batch;
mod error;
mod expr;
mod kernel;
mod key;
mod row;
mod schema;
mod span;
mod tuple;
mod value;

pub use batch::TupleBatch;
pub use error::{Result, StemsError};
pub use expr::{
    CmpOp, ColRef, ExprKind, Operand, PredId, PredSet, Predicate, UdfKind, UdfSpec, MAX_PREDS,
};
pub use kernel::{ConstKernel, PartialGather};
pub use key::{HashedKey, KeyHash};
pub use row::Row;
pub use schema::{Column, ColumnType, Schema};
pub use span::{TableIdx, TableSet, MAX_TABLES};
pub use tuple::{Component, Timestamp, Tuple, UNBUILT_TS};
pub use value::Value;
