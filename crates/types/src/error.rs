//! Error type shared across the workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, StemsError>;

/// Errors surfaced by the stems query processor.
///
/// The library is infallible on the hot path (routing, probing); errors
/// occur at setup time (schema mismatches, invalid queries) or when a user
/// request cannot be satisfied (e.g. a query with no feasible access plan,
/// paper §2.2 step 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StemsError {
    /// A schema-level inconsistency: wrong arity, unknown column, type clash.
    Schema(String),
    /// The query references tables or columns not present in the catalog.
    UnknownName(String),
    /// The query cannot be executed given the bind-field constraints of its
    /// sources (paper §2.2 step 1, the Nail! feasibility check).
    Infeasible(String),
    /// SQL text could not be parsed.
    Parse(String),
    /// A routing-constraint violation detected by the constraint checker
    /// (only produced when the checker is enabled; see `stems-core`).
    ConstraintViolation(String),
    /// Internal invariant breakage — indicates a bug in the engine.
    Internal(String),
}

impl fmt::Display for StemsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StemsError::Schema(m) => write!(f, "schema error: {m}"),
            StemsError::UnknownName(m) => write!(f, "unknown name: {m}"),
            StemsError::Infeasible(m) => write!(f, "query infeasible: {m}"),
            StemsError::Parse(m) => write!(f, "parse error: {m}"),
            StemsError::ConstraintViolation(m) => {
                write!(f, "routing constraint violation: {m}")
            }
            StemsError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for StemsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = StemsError::Schema("arity mismatch".into());
        assert_eq!(e.to_string(), "schema error: arity mismatch");
        let e = StemsError::Infeasible("no access path for T".into());
        assert!(e.to_string().contains("infeasible"));
        let e = StemsError::ConstraintViolation("BuildFirst".into());
        assert!(e.to_string().contains("BuildFirst"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&StemsError::Parse("x".into()));
    }
}
