//! Composite tuples: base-table components, spans, timestamps.

use crate::{Row, TableIdx, TableSet, Value};
use std::fmt;
use std::sync::Arc;

/// Global, monotonically increasing build timestamp (paper §3.1, the
/// TimeStamp constraint). Timestamps are assigned by the engine when a
/// singleton tuple *builds* into a SteM.
pub type Timestamp = u64;

/// The timestamp of a tuple that has not yet been built into a SteM.
///
/// The paper defines an unbuilt tuple's timestamp as infinity, so that a
/// probe by a fresh tuple always passes the `ts(probe) > ts(match)` test.
pub const UNBUILT_TS: Timestamp = u64::MAX;

/// One base-table component of a tuple (paper Definition 1): a row of one
/// table instance, plus the build timestamp of that row.
#[derive(Debug, Clone)]
pub struct Component {
    pub table: TableIdx,
    pub row: Arc<Row>,
    /// Build timestamp; [`UNBUILT_TS`] until the singleton builds into a SteM.
    pub ts: Timestamp,
}

impl Component {
    pub fn new(table: TableIdx, row: Arc<Row>) -> Component {
        Component {
            table,
            row,
            ts: UNBUILT_TS,
        }
    }
}

impl PartialEq for Component {
    /// Components compare by table and row *value* — timestamps are
    /// execution metadata, not data (duplicate elimination must identify
    /// copies of the same row that built at different times, §3.2).
    fn eq(&self, other: &Component) -> bool {
        self.table == other.table && self.row == other.row
    }
}

impl Eq for Component {}

impl std::hash::Hash for Component {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.table.hash(state);
        self.row.hash(state);
    }
}

/// A (possibly composite) tuple: an ordered set of base-table components.
///
/// Components are kept sorted by table index, giving every tuple value a
/// canonical form — two tuples assembled along different join orders compare
/// equal, which is what the duplicate-avoidance theorems (paper Theorems
/// 1–2) quantify over.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    comps: Vec<Component>,
}

impl Tuple {
    /// A singleton tuple (paper Definition 2) for `table`.
    pub fn singleton(table: TableIdx, row: Arc<Row>) -> Tuple {
        Tuple {
            comps: vec![Component::new(table, row)],
        }
    }

    /// A singleton from owned values (convenience for tests/examples).
    pub fn singleton_of(table: TableIdx, values: Vec<Value>) -> Tuple {
        Tuple::singleton(table, Row::shared(values))
    }

    /// A tuple spanning no tables, carrying no allocation. Used as the
    /// placeholder left behind when a tuple is moved out of a reusable
    /// arena slot (`ProbeReplySet`); never a legal engine tuple.
    pub fn empty() -> Tuple {
        Tuple { comps: Vec::new() }
    }

    /// Build from components (sorted internally). Panics if two components
    /// share a table instance.
    pub fn from_components(mut comps: Vec<Component>) -> Tuple {
        comps.sort_by_key(|c| c.table);
        for w in comps.windows(2) {
            assert!(
                w[0].table != w[1].table,
                "tuple cannot span the same table instance twice"
            );
        }
        Tuple { comps }
    }

    /// The set of tables this tuple spans (paper Definition 1).
    pub fn span(&self) -> TableSet {
        self.comps.iter().map(|c| c.table).collect()
    }

    /// True for single-component tuples (paper Definition 2).
    pub fn is_singleton(&self) -> bool {
        self.comps.len() == 1
    }

    /// Components in table order.
    pub fn components(&self) -> &[Component] {
        &self.comps
    }

    /// The component for `table`, if spanned.
    pub fn component(&self, table: TableIdx) -> Option<&Component> {
        self.comps.iter().find(|c| c.table == table)
    }

    /// The tuple's timestamp: the max over component timestamps, i.e. "the
    /// timestamp of its last arriving base-table component" (paper §3.1).
    /// Unbuilt components make the whole tuple [`UNBUILT_TS`].
    pub fn timestamp(&self) -> Timestamp {
        self.comps.iter().map(|c| c.ts).max().unwrap_or(UNBUILT_TS)
    }

    /// Fetch the value at `(table, col)`. `None` if the table is not
    /// spanned or the column is out of range.
    pub fn value(&self, table: TableIdx, col: usize) -> Option<&Value> {
        self.component(table).and_then(|c| c.row.get(col))
    }

    /// Concatenate two tuples with disjoint spans (the SteM concatenates
    /// probe tuples with matches, paper Table 1). Panics on overlapping
    /// spans — the router must never join overlapping tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        assert!(
            self.span().is_disjoint_from(other.span()),
            "concat of overlapping tuples: {} vs {}",
            self.span(),
            other.span()
        );
        let mut comps = self.comps.clone();
        comps.extend(other.comps.iter().cloned());
        Tuple::from_components(comps)
    }

    /// Concatenate one component onto this tuple in a single allocation:
    /// equivalent to `self.concat(&Tuple::singleton(table, row)
    /// .with_timestamp(table, ts))` without the temporary singleton, the
    /// second components vec, or the re-sort — the SteM probe reply path
    /// builds every match this way. Panics if `table` is already spanned.
    pub fn concat_row(&self, table: TableIdx, row: Arc<Row>, ts: Timestamp) -> Tuple {
        let pos = self.comps.partition_point(|c| c.table < table);
        assert!(
            self.comps.get(pos).is_none_or(|c| c.table != table),
            "concat of overlapping tuples: {} vs {}",
            self.span(),
            TableSet::single(table)
        );
        let mut comps = Vec::with_capacity(self.comps.len() + 1);
        comps.extend_from_slice(&self.comps[..pos]);
        comps.push(Component { table, row, ts });
        comps.extend_from_slice(&self.comps[pos..]);
        Tuple { comps }
    }

    /// A copy of this tuple with the component for `table` stamped with
    /// build timestamp `ts`. Panics if the table is not spanned.
    pub fn with_timestamp(&self, table: TableIdx, ts: Timestamp) -> Tuple {
        let mut comps = self.comps.clone();
        let c = comps
            .iter_mut()
            .find(|c| c.table == table)
            .expect("with_timestamp: table not spanned");
        c.ts = ts;
        Tuple { comps }
    }

    /// True if any component row is an EOT tuple.
    pub fn is_eot(&self) -> bool {
        self.comps.iter().any(|c| c.row.is_eot())
    }

    /// Approximate heap footprint (shared rows counted fully; used for the
    /// memory-accounting series, not allocator-exact).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Tuple>()
            + self
                .comps
                .iter()
                .map(|c| std::mem::size_of::<Component>() + c.row.approx_bytes())
                .sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.comps.iter().enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            write!(f, "{}:{}", c.table, c.row)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Arc<Row> {
        Row::shared(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    #[test]
    fn singleton_span_and_flag() {
        let t = Tuple::singleton(TableIdx(2), row(&[1, 2]));
        assert!(t.is_singleton());
        assert_eq!(t.span(), TableSet::single(TableIdx(2)));
        assert_eq!(t.timestamp(), UNBUILT_TS);
    }

    #[test]
    fn concat_merges_and_sorts() {
        let s = Tuple::singleton(TableIdx(1), row(&[10]));
        let r = Tuple::singleton(TableIdx(0), row(&[20]));
        let rs = s.concat(&r);
        assert_eq!(rs.span(), TableSet::all(2));
        assert_eq!(rs.components()[0].table, TableIdx(0));
        assert_eq!(rs.components()[1].table, TableIdx(1));
        assert!(!rs.is_singleton());
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn concat_rejects_overlap() {
        let a = Tuple::singleton(TableIdx(0), row(&[1]));
        let b = Tuple::singleton(TableIdx(0), row(&[2]));
        let _ = a.concat(&b);
    }

    #[test]
    fn concat_row_equals_concat_of_stamped_singleton() {
        let base = Tuple::singleton(TableIdx(1), row(&[10])).with_timestamp(TableIdx(1), 3);
        for table in [TableIdx(0), TableIdx(2), TableIdx(5)] {
            let r = row(&[7]);
            let fast = base.concat_row(table, r.clone(), 9);
            let slow = base.concat(&Tuple::singleton(table, r).with_timestamp(table, 9));
            assert_eq!(fast, slow);
            assert_eq!(
                fast.component(table).unwrap().ts,
                slow.component(table).unwrap().ts
            );
            assert_eq!(fast.timestamp(), slow.timestamp());
        }
        assert_eq!(Tuple::empty().span(), TableSet::default());
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn concat_row_rejects_overlap() {
        let a = Tuple::singleton(TableIdx(0), row(&[1]));
        let _ = a.concat_row(TableIdx(0), row(&[2]), 1);
    }

    #[test]
    fn timestamp_is_max_of_components() {
        let r = Tuple::singleton(TableIdx(0), row(&[1])).with_timestamp(TableIdx(0), 5);
        let s = Tuple::singleton(TableIdx(1), row(&[2])).with_timestamp(TableIdx(1), 9);
        assert_eq!(r.concat(&s).timestamp(), 9);
        let unbuilt = Tuple::singleton(TableIdx(2), row(&[3]));
        assert_eq!(r.concat(&unbuilt).timestamp(), UNBUILT_TS);
    }

    #[test]
    fn equality_ignores_timestamps() {
        let a = Tuple::singleton(TableIdx(0), row(&[1])).with_timestamp(TableIdx(0), 1);
        let b = Tuple::singleton(TableIdx(0), row(&[1])).with_timestamp(TableIdx(0), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_order_makes_join_order_irrelevant() {
        let r = Tuple::singleton(TableIdx(0), row(&[1]));
        let s = Tuple::singleton(TableIdx(1), row(&[2]));
        let t = Tuple::singleton(TableIdx(2), row(&[3]));
        let rst1 = r.concat(&s).concat(&t);
        let rst2 = t.concat(&s).concat(&r);
        assert_eq!(rst1, rst2);
    }

    #[test]
    fn value_lookup() {
        let t = Tuple::singleton(TableIdx(1), row(&[7, 8]));
        assert_eq!(t.value(TableIdx(1), 1), Some(&Value::Int(8)));
        assert_eq!(t.value(TableIdx(0), 0), None);
        assert_eq!(t.value(TableIdx(1), 9), None);
    }

    #[test]
    fn eot_propagates() {
        let t = Tuple::singleton_of(TableIdx(0), vec![Value::Int(1), Value::Eot]);
        assert!(t.is_eot());
        let n = Tuple::singleton_of(TableIdx(1), vec![Value::Int(1)]);
        assert!(!n.is_eot());
        assert!(t.concat(&n).is_eot());
    }

    #[test]
    fn display_shows_components() {
        let t = Tuple::singleton(TableIdx(0), row(&[1]))
            .concat(&Tuple::singleton(TableIdx(1), row(&[2])));
        assert_eq!(t.to_string(), "[t0:(1) ⋈ t1:(2)]");
    }
}
