//! Table-instance indices and spans (sets of table instances).

use std::fmt;

/// Index of a table *instance* in a query's FROM list.
///
/// Self-joins give the same base table two distinct `TableIdx` values; the
/// paper handles this by sharing one SteM across both instances (§2.2), and
/// the catalog layer records the instance→source mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableIdx(pub u8);

impl TableIdx {
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TableIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A set of table instances — the *span* of a tuple (paper Definition 1).
///
/// Implemented as a 32-bit mask, which bounds queries at 32 table instances
/// (far beyond the paper's experiments and typical SPJ workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct TableSet(pub u32);

/// Maximum number of table instances in one query.
pub const MAX_TABLES: usize = 32;

impl TableSet {
    /// The empty span.
    pub const EMPTY: TableSet = TableSet(0);

    /// A span containing a single table.
    pub fn single(t: TableIdx) -> TableSet {
        debug_assert!((t.0 as usize) < MAX_TABLES);
        TableSet(1 << t.0)
    }

    /// The span of all tables `0..n`.
    pub fn all(n: usize) -> TableSet {
        assert!(n <= MAX_TABLES, "too many tables in query");
        if n == MAX_TABLES {
            TableSet(u32::MAX)
        } else {
            TableSet((1u32 << n) - 1)
        }
    }

    pub fn contains(self, t: TableIdx) -> bool {
        self.0 & (1 << t.0) != 0
    }

    pub fn insert(&mut self, t: TableIdx) {
        self.0 |= 1 << t.0;
    }

    pub fn with(self, t: TableIdx) -> TableSet {
        TableSet(self.0 | (1 << t.0))
    }

    pub fn union(self, other: TableSet) -> TableSet {
        TableSet(self.0 | other.0)
    }

    pub fn intersect(self, other: TableSet) -> TableSet {
        TableSet(self.0 & other.0)
    }

    pub fn minus(self, other: TableSet) -> TableSet {
        TableSet(self.0 & !other.0)
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn is_subset_of(self, other: TableSet) -> bool {
        self.0 & !other.0 == 0
    }

    pub fn is_disjoint_from(self, other: TableSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Number of tables in the span.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate over member table indices in increasing order.
    pub fn iter(self) -> impl Iterator<Item = TableIdx> {
        (0..MAX_TABLES as u8)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(TableIdx)
    }

    /// The single member, if the span is a singleton.
    pub fn as_singleton(self) -> Option<TableIdx> {
        if self.0.count_ones() == 1 {
            Some(TableIdx(self.0.trailing_zeros() as u8))
        } else {
            None
        }
    }
}

impl FromIterator<TableIdx> for TableSet {
    fn from_iter<I: IntoIterator<Item = TableIdx>>(iter: I) -> Self {
        let mut s = TableSet::EMPTY;
        for t in iter {
            s.insert(t);
        }
        s
    }
}

impl fmt::Display for TableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_contains() {
        let s = TableSet::single(TableIdx(3));
        assert!(s.contains(TableIdx(3)));
        assert!(!s.contains(TableIdx(0)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.as_singleton(), Some(TableIdx(3)));
    }

    #[test]
    fn all_covers_prefix() {
        let s = TableSet::all(3);
        assert_eq!(s.len(), 3);
        assert!(s.contains(TableIdx(0)));
        assert!(s.contains(TableIdx(2)));
        assert!(!s.contains(TableIdx(3)));
        assert_eq!(TableSet::all(32).len(), 32);
    }

    #[test]
    fn set_algebra() {
        let a = TableSet::single(TableIdx(0)).with(TableIdx(1));
        let b = TableSet::single(TableIdx(1)).with(TableIdx(2));
        assert_eq!(a.union(b), TableSet::all(3));
        assert_eq!(a.intersect(b), TableSet::single(TableIdx(1)));
        assert_eq!(a.minus(b), TableSet::single(TableIdx(0)));
        assert!(a.is_subset_of(TableSet::all(3)));
        assert!(!a.is_disjoint_from(b));
        assert!(TableSet::single(TableIdx(0)).is_disjoint_from(TableSet::single(TableIdx(5))));
    }

    #[test]
    fn iter_in_order() {
        let s: TableSet = [TableIdx(4), TableIdx(1)].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![TableIdx(1), TableIdx(4)]);
    }

    #[test]
    fn as_singleton_rejects_multi() {
        assert_eq!(TableSet::all(2).as_singleton(), None);
        assert_eq!(TableSet::EMPTY.as_singleton(), None);
    }

    #[test]
    fn display() {
        let s: TableSet = [TableIdx(0), TableIdx(2)].into_iter().collect();
        assert_eq!(s.to_string(), "{t0,t2}");
    }
}
