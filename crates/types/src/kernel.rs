//! Column-at-a-time predicate kernels.
//!
//! The scalar entry point, [`Predicate::eval`], resolves both operands and
//! dispatches on [`crate::Value`]'s type tag for every tuple. When a
//! selection of the common shape `col <op> Int-constant` is applied to a
//! whole [`TupleBatch`], that per-tuple dispatch dominates: the operator,
//! the constant, and the column are loop-invariant. [`Predicate::eval_batch`]
//! recognizes that shape, gathers the column once, and runs one tight
//! monomorphic comparison loop over primitive `i64`s — the standard
//! column-at-a-time lever that makes adaptive operators cheap enough to
//! re-route freely.
//!
//! # Dispatch rules
//!
//! 1. [`Predicate::int_const_kernel`] recognizes `Col op Const(Int)` and the
//!    flipped `Const(Int) op Col` orientation (the operator is flipped so the
//!    column is always on the left). Everything else — join predicates,
//!    non-`Int` constants, `Const op Const` — evaluates via the scalar loop.
//! 2. The kernel's gather phase requires every batch member to supply an
//!    `Int` at the kernel's column. The first `Null`, `Float`, `Str`,
//!    `Bool`, EOT marker, or missing column (tuple not spanning the table)
//!    aborts the gather and the **whole batch** falls back to the scalar
//!    loop, which is the semantic ground truth for SQL three-valued logic
//!    and numeric coercion.
//! 3. Either way the result is verdict-for-verdict identical to mapping
//!    [`Predicate::eval`] over the batch — `tests/prop_kernel_equivalence.rs`
//!    locks this down over randomized batches.

use crate::{CmpOp, ColRef, Operand, Predicate, TupleBatch, Value};

/// A predicate specialized to `Int(col) <op> Int(constant)`, with the
/// column on the left (flipped from the source predicate if needed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntConstKernel {
    pub col: ColRef,
    pub op: CmpOp,
    pub rhs: i64,
}

impl Predicate {
    /// Recognize the vectorizable `col <op> Int-constant` shape, in either
    /// orientation. `None` for every other predicate shape.
    pub fn int_const_kernel(&self) -> Option<IntConstKernel> {
        match (&self.left, &self.right) {
            (Operand::Col(c), Operand::Const(Value::Int(k))) => Some(IntConstKernel {
                col: *c,
                op: self.op,
                rhs: *k,
            }),
            (Operand::Const(Value::Int(k)), Operand::Col(c)) => Some(IntConstKernel {
                col: *c,
                op: self.op.flipped(),
                rhs: *k,
            }),
            _ => None,
        }
    }

    /// Evaluate the predicate over every tuple of a batch: one verdict per
    /// member, in batch order, verdict-for-verdict identical to mapping
    /// [`Predicate::eval`]. Uses the columnar kernel when the predicate and
    /// the batch qualify (see the module docs for the dispatch rules).
    pub fn eval_batch(&self, batch: &TupleBatch) -> Vec<Option<bool>> {
        match self.int_const_kernel() {
            Some(k) => k.eval(self, batch),
            None => batch.iter().map(|t| self.eval(t)).collect(),
        }
    }
}

impl IntConstKernel {
    /// Gather the kernel column, then compare column-at-a-time. `pred` is
    /// the source predicate, used for the scalar fallback when the gather
    /// finds a non-`Int` entry.
    pub fn eval(&self, pred: &Predicate, batch: &TupleBatch) -> Vec<Option<bool>> {
        let mut col: Vec<i64> = Vec::with_capacity(batch.len());
        for t in batch {
            match t.value(self.col.table, self.col.col) {
                Some(Value::Int(v)) => col.push(*v),
                // Null/EOT/Float/Str/Bool or a tuple that does not span the
                // column's table: the all-Int invariant is broken, so the
                // whole batch takes the scalar path (rule 2).
                _ => return batch.iter().map(|t| pred.eval(t)).collect(),
            }
        }
        let rhs = self.rhs;
        fn run(col: &[i64], f: impl Fn(i64) -> bool) -> Vec<Option<bool>> {
            col.iter().map(|&v| Some(f(v))).collect()
        }
        match self.op {
            CmpOp::Eq => run(&col, |v| v == rhs),
            CmpOp::Ne => run(&col, |v| v != rhs),
            CmpOp::Lt => run(&col, |v| v < rhs),
            CmpOp::Le => run(&col, |v| v <= rhs),
            CmpOp::Gt => run(&col, |v| v > rhs),
            CmpOp::Ge => run(&col, |v| v >= rhs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PredId, TableIdx, Tuple};

    fn t0(v: Value) -> Tuple {
        Tuple::singleton_of(TableIdx(0), vec![v])
    }

    fn batch(vals: Vec<Value>) -> TupleBatch {
        vals.into_iter().map(t0).collect()
    }

    fn sel(op: CmpOp, k: i64) -> Predicate {
        Predicate::selection(PredId(0), ColRef::new(TableIdx(0), 0), op, Value::Int(k))
    }

    #[test]
    fn recognizes_both_orientations() {
        let p = sel(CmpOp::Lt, 5);
        let k = p.int_const_kernel().unwrap();
        assert_eq!(k.op, CmpOp::Lt);
        assert_eq!(k.rhs, 5);
        // 5 > col  ⇔  col < 5
        let flipped = Predicate::new(
            PredId(0),
            Operand::Const(Value::Int(5)),
            CmpOp::Gt,
            Operand::Col(ColRef::new(TableIdx(0), 0)),
        );
        let k = flipped.int_const_kernel().unwrap();
        assert_eq!(k.op, CmpOp::Lt);
        assert_eq!(k.rhs, 5);
    }

    #[test]
    fn rejects_non_vectorizable_shapes() {
        let join = Predicate::join(
            PredId(0),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Eq,
            ColRef::new(TableIdx(1), 0),
        );
        assert!(join.int_const_kernel().is_none());
        let float = Predicate::selection(
            PredId(0),
            ColRef::new(TableIdx(0), 0),
            CmpOp::Eq,
            Value::Float(1.0),
        );
        assert!(float.int_const_kernel().is_none());
    }

    #[test]
    fn all_int_batch_runs_kernel_and_matches_scalar() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let p = sel(op, 3);
            let b = batch((0..7).map(Value::Int).collect());
            let want: Vec<_> = b.iter().map(|t| p.eval(t)).collect();
            assert_eq!(p.eval_batch(&b), want, "op {op}");
        }
    }

    #[test]
    fn mixed_batch_falls_back_to_scalar_semantics() {
        let p = sel(CmpOp::Ne, 3);
        let b = batch(vec![
            Value::Int(3),
            Value::Null,
            Value::str("x"),
            Value::Eot,
            Value::Float(3.0),
            Value::Int(4),
        ]);
        let want: Vec<_> = b.iter().map(|t| p.eval(t)).collect();
        assert_eq!(p.eval_batch(&b), want);
        // NULL <> 3 is not true under SQL semantics; Str <> Int is.
        assert_eq!(want[1], Some(false));
        assert_eq!(want[2], Some(true));
    }

    #[test]
    fn wrong_span_yields_none() {
        let p = sel(CmpOp::Eq, 1);
        let b: TupleBatch = vec![Tuple::singleton_of(TableIdx(1), vec![Value::Int(1)])]
            .into_iter()
            .collect();
        assert_eq!(p.eval_batch(&b), vec![None]);
    }

    #[test]
    fn empty_batch_yields_empty_verdicts() {
        assert!(sel(CmpOp::Eq, 1).eval_batch(&TupleBatch::new()).is_empty());
    }
}
